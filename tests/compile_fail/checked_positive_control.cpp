// GREEN: the checked operators are still constexpr for non-overflowing
// values — CPA_CHECKED_ARITH must not tax ordinary dimensional code.
#include "util/units.hpp"

using cpa::util::AccessCount;
using cpa::util::Cycles;

constexpr Cycles sum = Cycles{2} + Cycles{3};
static_assert(sum == Cycles{5});

constexpr Cycles demand = AccessCount{7} * Cycles{40};
static_assert(demand == Cycles{280});

int main()
{
    return 0;
}
