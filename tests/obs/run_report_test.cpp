#include "obs/run_report.hpp"

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpa::obs {
namespace {

TEST(RunReport, HeaderComesFirstAndKeepsInsertionOrder)
{
    RunReport report("cpa analyze");
    report.set("file", "demo.taskset");
    const std::string json = report.to_json();
    // Fixed header order: schema_version, tool, provenance, then caller
    // metadata. Provenance values vary by machine, so only the shape is
    // pinned here (the keys are checked below).
    EXPECT_EQ(json.rfind("{\"schema_version\":2,\"tool\":\"cpa analyze\","
                         "\"provenance\":{\"version\":\"",
                         0),
              0u);
    const std::size_t provenance_pos = json.find("\"provenance\"");
    const std::size_t file_pos = json.find("\"file\":\"demo.taskset\"");
    ASSERT_NE(provenance_pos, std::string::npos);
    ASSERT_NE(file_pos, std::string::npos);
    EXPECT_LT(provenance_pos, file_pos);
}

TEST(RunReport, ProvenanceCarriesTheBuildInfoKeys)
{
    const std::string json = RunReport("test").to_json();
    for (const char* key :
         {"\"version\"", "\"git_sha\"", "\"git_dirty\"", "\"compiler\"",
          "\"build_type\"", "\"obs\"", "\"check\"", "\"sanitize\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(RunReport, SectionsAndListsNest)
{
    RunReport report("bench");
    report.section("config").set("cores", JsonValue(4));
    report.list("sections").push([] {
        JsonValue entry = JsonValue::object();
        entry.set("name", JsonValue("sweep"));
        entry.set("seconds", JsonValue(1.5));
        return entry;
    }());
    const std::string json = report.to_json();
    EXPECT_NE(json.find(R"("config":{"cores":4})"), std::string::npos);
    EXPECT_NE(json.find(R"("sections":[{"name":"sweep","seconds":1.5}])"),
              std::string::npos);
}

TEST(RunReport, MetricsSnapshotSerializesAllFourKinds)
{
    MetricsSnapshot snapshot;
    snapshot.counters["wcrt.calls"] = 2;
    snapshot.gauges["tables.tasks"] = 8;
    snapshot.timers["tables.build"] = TimerStat{1500, 3};
    snapshot.histograms["trial.wall_ns"] =
        HistogramStat{4, 100, 10, 40, 20, 40, 40};

    RunReport report("test");
    report.set_metrics(snapshot);
    const std::string json = report.to_json();
    EXPECT_NE(json.find(R"("counters":{"wcrt.calls":2})"),
              std::string::npos);
    EXPECT_NE(json.find(R"("gauges":{"tables.tasks":8})"),
              std::string::npos);
    EXPECT_NE(
        json.find(R"("timers":{"tables.build":{"total_ns":1500,"count":3}})"),
        std::string::npos);
    EXPECT_NE(json.find(R"("histograms":{"trial.wall_ns":{"count":4,)"
                        R"("sum":100,"min":10,"max":40,"p50":20,"p90":40,)"
                        R"("p99":40}})"),
              std::string::npos);
}

TEST(RunReport, WriteJsonEmitsExactlyOneLine)
{
    RunReport report("test");
    std::ostringstream out;
    report.write_json(out);
    const std::string text = out.str();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(text.find('\n'), text.size() - 1);
}

} // namespace
} // namespace cpa::obs
