// Reproduces Fig. 3b: weighted schedulability vs. memory reload time d_mem
// (2..10 µs in steps of 2 µs). Expected shape: all curves decrease as d_mem
// grows; the persistence gap is largest for small d_mem.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("fig3b_dmem");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::standard_variants();

    std::vector<experiments::UtilizationSweep> sweeps;
    std::vector<std::string> labels;
    for (std::int64_t us = 2; us <= 10; us += 2) {
        auto platform = bench::default_platform();
        platform.d_mem =
            util::cycles_from_microseconds(util::Microseconds{us});
        sweeps.push_back(experiments::run_utilization_sweep(
            bench::default_generation(), platform, variants,
            bench::weighted_sweep(task_sets)));
        labels.push_back(std::to_string(us) + "us");
    }

    bench::print_weighted(
        "Fig. 3b: weighted schedulability vs memory reload time d_mem",
        "d_mem", labels, sweeps);
    return 0;
}
