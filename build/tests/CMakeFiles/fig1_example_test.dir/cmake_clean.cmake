file(REMOVE_RECURSE
  "CMakeFiles/fig1_example_test.dir/analysis/fig1_example_test.cpp.o"
  "CMakeFiles/fig1_example_test.dir/analysis/fig1_example_test.cpp.o.d"
  "fig1_example_test"
  "fig1_example_test.pdb"
  "fig1_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
