file(REMOVE_RECURSE
  "CMakeFiles/abstract_test.dir/program/abstract_test.cpp.o"
  "CMakeFiles/abstract_test.dir/program/abstract_test.cpp.o.d"
  "abstract_test"
  "abstract_test.pdb"
  "abstract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
