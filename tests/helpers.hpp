// Shared helpers for building small hand-crafted task sets in tests.
#pragma once

#include "tasks/task.hpp"
#include "util/set_mask.hpp"

#include <vector>

namespace cpa::testing {

// Raw integers on purpose: specs are written as brace literals in the
// tests; make_task_set() is the single place they acquire their dimension.
struct TaskSpec {
    std::size_t core = 0;
    std::int64_t pd = 1;          // cycles
    std::int64_t md = 0;          // accesses
    std::int64_t md_residual = 0; // accesses
    std::int64_t period = 100;    // cycles
    std::int64_t deadline = 0;    // cycles; 0 -> implicit (= period)
    std::vector<std::size_t> ecb;
    std::vector<std::size_t> ucb;
    std::vector<std::size_t> pcb;
};

// Builds a validated task set over `cache_sets` sets; tasks keep the given
// order as the priority order (first = highest priority).
inline tasks::TaskSet make_task_set(std::size_t num_cores,
                                    std::size_t cache_sets,
                                    const std::vector<TaskSpec>& specs)
{
    tasks::TaskSet ts(num_cores, cache_sets);
    int index = 0;
    for (const TaskSpec& spec : specs) {
        tasks::Task task;
        // Built in two steps: the one-expression form selects
        // operator+(const char*, std::string&&), which GCC 12's -Wrestrict
        // false-positives on at -O2.
        task.name = "t";
        task.name += std::to_string(++index);
        task.core = spec.core;
        task.pd = util::Cycles{spec.pd};
        task.md = util::AccessCount{spec.md};
        task.md_residual = util::AccessCount{spec.md_residual};
        task.period = util::Cycles{spec.period};
        task.deadline =
            util::Cycles{spec.deadline > 0 ? spec.deadline : spec.period};
        task.ecb = util::SetMask::from_indices(cache_sets, spec.ecb);
        task.ucb = util::SetMask::from_indices(cache_sets, spec.ucb);
        task.pcb = util::SetMask::from_indices(cache_sets, spec.pcb);
        ts.add_task(std::move(task));
    }
    ts.validate();
    return ts;
}

// The example of the paper's Fig. 1: τ1, τ2 on core 0, τ3 on core 1.
// Parameters exactly as printed under the figure.
inline tasks::TaskSet fig1_task_set(std::int64_t t1_period = 10,
                                    std::int64_t t2_period = 60,
                                    std::int64_t t3_period = 6)
{
    return make_task_set(
        2, 16,
        {
            // τ1: PD=4, MD=6, MDr=1, ECB={5..10}, PCB={5,6,7,8,10}
            {0, 4, 6, 1, t1_period, 0, {5, 6, 7, 8, 9, 10},
             {5, 6, 7, 8, 10}, {5, 6, 7, 8, 10}},
            // τ2: PD=32, MD=8, ECB={1..6}, UCB={5,6}
            {0, 32, 8, 8, t2_period, 0, {1, 2, 3, 4, 5, 6}, {5, 6}, {}},
            // τ3: PD=4, MD=6, MDr=1, same footprint as τ1, on core 1
            {1, 4, 6, 1, t3_period, 0, {5, 6, 7, 8, 9, 10},
             {5, 6, 7, 8, 10}, {5, 6, 7, 8, 10}},
        });
}

} // namespace cpa::testing
