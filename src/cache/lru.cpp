#include "cache/lru.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpa::cache {

LruCache::LruCache(CacheGeometry geometry)
    : geometry_(geometry), lines_(geometry.sets)
{
    if (geometry_.sets == 0) {
        throw std::invalid_argument("LruCache: zero sets");
    }
    if (geometry_.ways == 0) {
        throw std::invalid_argument("LruCache: zero ways");
    }
    for (auto& set : lines_) {
        set.reserve(geometry_.ways);
    }
}

bool LruCache::access(std::size_t block_address)
{
    auto& set = lines_[geometry_.set_of(block_address)];
    const auto it = std::find(set.begin(), set.end(), block_address);
    if (it != set.end()) {
        std::rotate(set.begin(), it, it + 1); // move to MRU position
        return true;
    }
    if (set.size() == geometry_.ways) {
        set.pop_back(); // evict LRU
    }
    set.insert(set.begin(), block_address);
    return false;
}

bool LruCache::contains(std::size_t block_address) const
{
    const auto& set = lines_[geometry_.set_of(block_address)];
    return std::find(set.begin(), set.end(), block_address) != set.end();
}

void LruCache::preload(std::size_t block_address)
{
    auto& set = lines_[geometry_.set_of(block_address)];
    const auto it = std::find(set.begin(), set.end(), block_address);
    if (it != set.end()) {
        std::rotate(set.begin(), it, it + 1);
        return;
    }
    if (set.size() == geometry_.ways) {
        set.pop_back();
    }
    set.insert(set.begin(), block_address);
}

void LruCache::flush()
{
    for (auto& set : lines_) {
        set.clear();
    }
}

std::size_t LruCache::occupied() const
{
    std::size_t count = 0;
    for (const auto& set : lines_) {
        count += set.size();
    }
    return count;
}

} // namespace cpa::cache
