// Branch-and-bound prover over the invariant catalog and a parameter box.
//
// Work is split into units of (property × concrete core count); each unit
// runs a depth-first bisection tree over the remaining dimensions. A
// sub-box is PROVED when the property's interval margin is non-negative,
// REFUTED when a concretely sampled point makes check_task_set report a
// matching violation (the sampled point IS the witness, so replay is
// guaranteed by construction), and UNDECIDED when the depth/node budget
// runs out or no interval rule exists — never silently dropped.
//
// Determinism: units are pure functions of their index writing into
// pre-sized slots, dispatched through obs::run_indexed_trials, so reports
// and metrics are byte-identical for any --jobs value.
#pragma once

#include "check/invariants.hpp"
#include "verify/box.hpp"
#include "verify/properties.hpp"
#include "verify/scenario.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cpa::verify {

enum class Verdict {
    kProved,
    kRefuted,
    kUndecided,
};

[[nodiscard]] const char* to_string(Verdict verdict);

struct Witness {
    std::string property;
    Point point;
    std::string detail; // violation text reported by check_task_set

    // "md=4 md_residual=2 ..." — the exact `--box` point-file contents
    // that replay this witness.
    [[nodiscard]] std::string describe() const;
};

struct PropertyReport {
    std::string name;
    Verdict verdict = Verdict::kUndecided;
    std::size_t nodes = 0;           // bisection nodes explored
    std::size_t proved_boxes = 0;    // leaves discharged by the margin rule
    std::size_t undecided_boxes = 0; // leaves left open (budget / no rule)
    std::size_t samples = 0;         // concrete points checked
    std::size_t max_depth = 0;       // deepest bisection level reached
    std::vector<Witness> witnesses;
    std::string note;
};

struct VerifyReport {
    std::vector<PropertyReport> properties;

    [[nodiscard]] std::size_t proved() const;
    [[nodiscard]] std::size_t refuted() const;
    [[nodiscard]] std::size_t undecided() const;
};

// Builds the oracle a sampled point is checked through. Tests substitute
// deliberately broken oracles to exercise the REFUTED path; the default
// constructs the real check::AnalysisOracle.
using OracleFactory =
    std::function<std::unique_ptr<check::AnalysisOracle>(const Scenario&)>;

struct ProverOptions {
    ParamBox box;              // must satisfy ParamBox::validate()
    std::size_t jobs = 1;      // worker threads (resolve upstream)
    std::size_t max_depth = 12;
    std::size_t max_nodes = 2048; // bisection nodes per work unit
    OracleFactory oracle_factory; // empty: real AnalysisOracle
    // WCRT engine the sampled checker runs under (`cpa verify --engine`):
    // witness replay must hold under either engine, which the differential
    // harness guarantees by making them byte-identical.
    analysis::WcrtEngine engine = analysis::WcrtEngine::kIncremental;
};

[[nodiscard]] VerifyReport run_prover(const ProverOptions& options);

} // namespace cpa::verify
