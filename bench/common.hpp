// Shared configuration and output helpers for the reproduction benches.
// Every binary prints the series of one paper artifact (Fig. 2, Fig. 3a-d,
// Table I) using the paper's default parameters:
//   4 cores, 8 tasks/core, 256-set 32 B/line L1 I-cache, d_mem = 5 µs,
//   RR/TDMA slot size s = 2, deadline-monotonic priorities, UUnifast
//   utilizations, T = D = (PD + MD)/U.
// The paper uses 1000 task sets per utilization point; the defaults below
// are smaller so `for b in build/bench/*; do $b; done` finishes in minutes.
// Set CPA_TASKSETS to override (e.g. CPA_TASKSETS=1000 for paper-scale).
#pragma once

#include "analysis/config.hpp"
#include "benchdata/generator.hpp"
#include "experiments/sweep.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace cpa::bench {

// Per-bench machine-readable run report. Construct one at the top of a
// bench's main(); on destruction it writes BENCH_<name>.json (to
// $CPA_BENCH_JSON_DIR, or the working directory) with the total wall time,
// optional named sections, and a snapshot of every obs metric recorded
// during the run — the perf trajectory the benches previously only printed
// as text. Validated by scripts/check_bench_json.py (registered as a ctest).
//
// `enable_metrics` turns the obs counters on for the run; analysis_perf
// passes false so its micro-benchmarks measure the uninstrumented hot path.
class BenchReport {
public:
    explicit BenchReport(std::string name, bool enable_metrics = true)
        : name_(std::move(name)), enable_metrics_(enable_metrics),
          jobs_(util::resolve_jobs(0)),
          started_(std::chrono::steady_clock::now())
    {
        if (enable_metrics_) {
            obs::MetricsRegistry::global().reset();
            obs::set_metrics_enabled(true);
        }
    }

    // The resolved worker count benches should hand to their thread pools,
    // recorded in the JSON so BENCH_*.json trajectories can relate wall
    // clock to parallelism.
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

    BenchReport(const BenchReport&) = delete;
    BenchReport& operator=(const BenchReport&) = delete;

    // Starts a named section (ending the previous one, if any). Sections
    // are optional; benches that don't call this report an empty list.
    void section(const std::string& section_name)
    {
        close_section();
        current_section_ = section_name;
        section_started_ = std::chrono::steady_clock::now();
    }

    ~BenchReport()
    {
        close_section();
        const double total_seconds = seconds_since(started_);
        if (enable_metrics_) {
            obs::set_metrics_enabled(false);
        }

        obs::RunReport report("bench");
        report.set("bench", obs::JsonValue(name_));
        report.set("total_seconds", obs::JsonValue(total_seconds));
        report.set("elapsed_ms",
                   obs::JsonValue(static_cast<std::int64_t>(
                       total_seconds * 1000.0)));
        report.set("jobs",
                   obs::JsonValue(static_cast<std::int64_t>(jobs_)));
        obs::JsonValue& section_list = report.list("sections");
        for (const auto& [section_name, seconds] : sections_) {
            obs::JsonValue entry = obs::JsonValue::object();
            entry.set("name", obs::JsonValue(section_name));
            entry.set("seconds", obs::JsonValue(seconds));
            section_list.push(std::move(entry));
        }

        // Wall-clock histograms injected directly into the snapshot (not
        // via the registry) so they appear even when the bench runs with
        // metrics disabled (analysis_perf) — the schema requires p50/p90/
        // p99 in every BENCH_*.json. "_ns" marks them as noise for
        // bench_compare.py.
        obs::MetricsSnapshot snapshot =
            obs::MetricsRegistry::global().snapshot();
        obs::HistogramData total_hist;
        total_hist.record(static_cast<std::int64_t>(total_seconds * 1e9));
        snapshot.histograms["bench.total_ns"] = total_hist.stat();
        if (!sections_.empty()) {
            obs::HistogramData section_hist;
            for (const auto& [section_name, seconds] : sections_) {
                section_hist.record(
                    static_cast<std::int64_t>(seconds * 1e9));
            }
            snapshot.histograms["bench.section_ns"] = section_hist.stat();
        }
        report.set_metrics(snapshot);

        std::filesystem::path dir = ".";
        if (const char* env_dir = std::getenv("CPA_BENCH_JSON_DIR");
            env_dir != nullptr) {
            dir = env_dir;
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
        }
        std::ofstream out(dir / ("BENCH_" + name_ + ".json"));
        if (out) {
            report.write_json(out);
        }
    }

private:
    [[nodiscard]] static double
    seconds_since(std::chrono::steady_clock::time_point start)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    void close_section()
    {
        if (!current_section_.empty()) {
            sections_.emplace_back(current_section_,
                                   seconds_since(section_started_));
            current_section_.clear();
        }
    }

    std::string name_;
    bool enable_metrics_;
    std::size_t jobs_;
    std::chrono::steady_clock::time_point started_;
    std::string current_section_;
    std::chrono::steady_clock::time_point section_started_{};
    std::vector<std::pair<std::string, double>> sections_;
};

// When CPA_CSV_DIR is set, every printed table is also written there as
// <slug>.csv for re-plotting.
inline void maybe_write_csv(const std::string& slug,
                            const util::TextTable& table)
{
    const char* dir = std::getenv("CPA_CSV_DIR");
    if (dir == nullptr) {
        return;
    }
    std::filesystem::create_directories(dir);
    std::ofstream out(std::filesystem::path(dir) / (slug + ".csv"));
    table.print_csv(out);
}

// Lower-cases and hyphenates a title into a file slug.
inline std::string slugify(const std::string& title)
{
    std::string slug;
    for (const char ch : title) {
        if (std::isalnum(static_cast<unsigned char>(ch))) {
            slug += static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        } else if (!slug.empty() && slug.back() != '-') {
            slug += '-';
        }
        if (slug.size() >= 48) {
            break;
        }
    }
    while (!slug.empty() && slug.back() == '-') {
        slug.pop_back();
    }
    return slug.empty() ? "table" : slug;
}

inline analysis::PlatformConfig default_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 4;
    platform.cache_sets = 256;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;
    return platform;
}

inline benchdata::GenerationConfig default_generation()
{
    benchdata::GenerationConfig gen;
    gen.num_cores = 4;
    gen.tasks_per_core = 8;
    gen.cache_sets = 256;
    gen.priority = benchdata::PriorityAssignment::kDeadlineMonotonic;
    return gen;
}

// Utilization grid of Fig. 2: 0.05 .. 1.00 in steps of 0.05.
inline experiments::SweepConfig fig2_sweep(std::size_t task_sets)
{
    experiments::SweepConfig sweep;
    sweep.u_min = 0.05;
    sweep.u_max = 1.0;
    sweep.u_step = 0.05;
    sweep.task_sets_per_point = task_sets;
    return sweep;
}

// Coarser grid for the weighted-schedulability sweeps of Fig. 3 (the
// measure integrates over utilization, so a 0.1 grid is adequate).
inline experiments::SweepConfig weighted_sweep(std::size_t task_sets)
{
    experiments::SweepConfig sweep;
    sweep.u_min = 0.1;
    sweep.u_max = 1.0;
    sweep.u_step = 0.1;
    sweep.task_sets_per_point = task_sets;
    return sweep;
}

// Prints one utilization-sweep table: a row per utilization, a column per
// variant with the count of schedulable task sets.
inline void print_sweep(const std::string& title,
                        const experiments::UtilizationSweep& sweep)
{
    std::cout << "== " << title << " ==\n";
    std::cout << "(task sets per point: " << sweep.task_sets_per_point
              << ")\n";
    std::vector<std::string> header{"U/core"};
    for (const auto& variant : sweep.variants) {
        header.push_back(variant.label);
    }
    util::TextTable table(header);
    for (const auto& point : sweep.points) {
        std::vector<std::string> row{util::TextTable::num(point.utilization,
                                                          2)};
        for (const std::size_t count : point.schedulable) {
            row.push_back(std::to_string(count));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    maybe_write_csv(slugify(title), table);
    std::cout << '\n';
}

// Prints a weighted-schedulability table: a row per parameter value, a
// column per variant.
inline void
print_weighted(const std::string& title, const std::string& parameter_name,
               const std::vector<std::string>& parameter_values,
               const std::vector<experiments::UtilizationSweep>& sweeps)
{
    std::cout << "== " << title << " ==\n";
    if (sweeps.empty()) {
        return;
    }
    std::vector<std::string> header{parameter_name};
    for (const auto& variant : sweeps.front().variants) {
        header.push_back(variant.label);
    }
    util::TextTable table(header);
    for (std::size_t p = 0; p < sweeps.size(); ++p) {
        std::vector<std::string> row{parameter_values[p]};
        for (std::size_t v = 0; v < sweeps[p].variants.size(); ++v) {
            row.push_back(util::TextTable::num(
                experiments::weighted_schedulability(sweeps[p], v), 3));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    maybe_write_csv(slugify(title), table);
    std::cout << '\n';
}

} // namespace cpa::bench
