# Empty compiler generated dependencies file for sim_vs_analysis.
# This may be replaced when dependencies are built.
