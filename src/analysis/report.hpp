// Response-time decomposition: explains WHERE a task's worst-case response
// time goes. Eq. (19) is a sum of four effects; evaluating each term at the
// converged fixed point attributes the response to processor demand,
// same-core preemption, same-core bus traffic and cross-core bus
// contention — the numbers a system designer acts on (move a task to
// another core? change the arbiter? shrink a footprint?).
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "analysis/wcrt.hpp"
#include "tasks/task.hpp"

#include <vector>

namespace cpa::analysis {

struct ResponseBreakdown {
    bool analyzed = false;   // false when the WCRT iteration diverged before
                             // reaching this task (no fixed point to explain)
    bool meets_deadline = false;
    Cycles response;

    Cycles cpu_self;       // PD_i
    Cycles cpu_preemption; // Σ ⌈R/T_j⌉ · PD_j over same-core hp(i)
    Cycles bus_same_core;  // BAS_i(R) · d_mem (own + hp memory traffic)
    Cycles bus_cross_core; // (BAT_i(R) - BAS_i(R)) · d_mem

    util::AccessCount bas_accesses; // BAS_i(R)
    util::AccessCount bat_accesses; // BAT_i(R)

    // The four components always sum to `response` when analyzed.
    [[nodiscard]] Cycles total() const
    {
        return cpu_self + cpu_preemption + bus_same_core + bus_cross_core;
    }
};

// Runs the WCRT analysis and decomposes every task's converged response.
// For an unschedulable set, tasks up to and including the failing one are
// still explained at their last iterate (the failing task's breakdown shows
// what blew the deadline); later tasks have analyzed == false.
[[nodiscard]] std::vector<ResponseBreakdown>
explain_responses(const tasks::TaskSet& ts, const PlatformConfig& platform,
                  const AnalysisConfig& config,
                  const InterferenceTables& tables);

[[nodiscard]] std::vector<ResponseBreakdown>
explain_responses(const tasks::TaskSet& ts, const PlatformConfig& platform,
                  const AnalysisConfig& config);

} // namespace cpa::analysis
