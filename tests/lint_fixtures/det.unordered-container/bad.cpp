// Fixture: unordered_map iteration order leaks libstdc++ hash details
// into anything that serializes it.
#include <unordered_map>

int lookup()
{
    std::unordered_map<int, int> cache;
    cache[3] = 4;
    return cache[3];
}
