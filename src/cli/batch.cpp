#include "cli/batch.hpp"

#include "analysis/request.hpp"
#include "analysis/session.hpp"
#include "cli/json_reader.hpp"
#include "cli/taskset_io.hpp"
#include "obs/obs.hpp"
#include "obs/parallel.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cpa::cli {

namespace {

using analysis::AnalysisRequest;
using analysis::RequestKey;
using analysis::Session;
using analysis::SessionResult;

// The request schema version this codec speaks. Bump only with docs/batch.md.
constexpr std::int64_t kSchemaVersion = 1;

constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

struct BatchError {
    std::string kind; // "bad-request" | "bad-taskset" | "budget-exhausted"
    std::string message;
};

// One input line after phase A: either an error, or a routed request with
// its session and unique-solve slot.
struct Row {
    AnalysisRequest request;
    std::string taskset_ref; // as written in the request / --taskset
    std::optional<BatchError> error;
    Session* session = nullptr;
    RequestKey key;
    std::size_t job = kNoJob;
};

// One unique (session, key) solve, fanned out in phase B.
struct Job {
    Session* session = nullptr;
    const analysis::InterferenceTables* tables = nullptr;
    AnalysisRequest request;
    RequestKey key;
    SessionResult result; // pre-sized slot, written by exactly one trial
};

[[nodiscard]] std::string resolve_taskset_path(const std::string& base_dir,
                                               const std::string& ref)
{
    if (base_dir.empty() || ref.empty() || ref.front() == '/') {
        return ref;
    }
    return base_dir + "/" + ref;
}

// Validates one parsed NDJSON line against schema v1 and fills
// `row.request`. Throws std::runtime_error (caught into a bad-request
// record) on any violation — unknown fields included, so typos fail loudly
// instead of silently analyzing the default configuration.
void decode_request(const JsonReader& json, Row& row)
{
    if (json.kind() != JsonReader::Kind::kObject) {
        throw std::runtime_error("request must be a JSON object");
    }
    for (const std::string& key : json.keys()) {
        if (key != "schema" && key != "id" && key != "taskset" &&
            key != "policy" && key != "persistence" && key != "crpd" &&
            key != "cpro" && key != "engine" && key != "d_mem_cycles" &&
            key != "d_mem_us" && key != "slot_size") {
            throw std::runtime_error("unknown field \"" + key + "\"");
        }
    }

    const JsonReader* schema = json.find("schema");
    if (schema == nullptr) {
        throw std::runtime_error("missing required field \"schema\"");
    }
    if (schema->as_int() != std::optional<std::int64_t>(kSchemaVersion)) {
        throw std::runtime_error("unsupported schema version (expected " +
                                 std::to_string(kSchemaVersion) + ")");
    }

    const auto take_string = [&](const char* field) -> const std::string* {
        const JsonReader* value = json.find(field);
        if (value == nullptr) {
            return nullptr;
        }
        const std::string* text = value->as_string();
        if (text == nullptr) {
            throw std::runtime_error(std::string("field \"") + field +
                                     "\" must be a string");
        }
        return text;
    };

    if (const std::string* id = take_string("id")) {
        row.request.id = *id;
    }
    if (const std::string* taskset = take_string("taskset")) {
        row.request.taskset = *taskset;
    }
    if (const std::string* policy = take_string("policy")) {
        const auto parsed = analysis::bus_policy_from_string(*policy);
        if (!parsed) {
            throw std::runtime_error("unknown policy \"" + *policy + "\"");
        }
        row.request.config.policy = *parsed;
    }
    if (const JsonReader* persistence = json.find("persistence")) {
        const auto value = persistence->as_bool();
        if (!value) {
            throw std::runtime_error(
                "field \"persistence\" must be a boolean");
        }
        row.request.config.persistence_aware = *value;
    }
    if (const std::string* crpd = take_string("crpd")) {
        const auto parsed = analysis::crpd_method_from_string(*crpd);
        if (!parsed) {
            throw std::runtime_error("unknown crpd method \"" + *crpd +
                                     "\"");
        }
        row.request.config.crpd = *parsed;
    }
    if (const std::string* cpro = take_string("cpro")) {
        const auto parsed = analysis::cpro_method_from_string(*cpro);
        if (!parsed) {
            throw std::runtime_error("unknown cpro method \"" + *cpro +
                                     "\"");
        }
        row.request.config.cpro = *parsed;
    }
    if (const std::string* engine = take_string("engine")) {
        const auto parsed = analysis::wcrt_engine_from_string(*engine);
        if (!parsed) {
            throw std::runtime_error("unknown engine \"" + *engine + "\"");
        }
        row.request.config.wcrt_engine = *parsed;
    }

    const JsonReader* d_mem_cycles = json.find("d_mem_cycles");
    const JsonReader* d_mem_us = json.find("d_mem_us");
    if (d_mem_cycles != nullptr && d_mem_us != nullptr) {
        throw std::runtime_error("give d_mem_cycles or d_mem_us, not both");
    }
    if (d_mem_cycles != nullptr) {
        const auto value = d_mem_cycles->as_int();
        if (!value || *value < 0) {
            throw std::runtime_error(
                "field \"d_mem_cycles\" must be a non-negative integer");
        }
        row.request.d_mem = util::Cycles{*value};
    }
    if (d_mem_us != nullptr) {
        const auto value = d_mem_us->as_int();
        if (!value || *value < 0) {
            throw std::runtime_error(
                "field \"d_mem_us\" must be a non-negative integer");
        }
        row.request.d_mem =
            util::cycles_from_microseconds(util::Microseconds{*value});
    }
    if (const JsonReader* slot_size = json.find("slot_size")) {
        const auto value = slot_size->as_int();
        if (!value || *value <= 0) {
            throw std::runtime_error(
                "field \"slot_size\" must be a positive integer");
        }
        row.request.slot_size = *value;
    }
}

// Loads task-set files once per batch run; parse failures are cached too so
// a bad reference costs one parse attempt, not one per request.
class SessionPool {
public:
    explicit SessionPool(std::string base_dir)
        : base_dir_(std::move(base_dir))
    {
    }

    // Returns the session for `ref` or throws std::runtime_error (caught
    // into a bad-taskset record). `use_base_dir` = resolve a relative ref
    // against the input file's directory (request-local references); the
    // --taskset default was typed relative to the CWD and is used as-is.
    [[nodiscard]] Session& session_for(const std::string& ref,
                                       bool use_base_dir)
    {
        const std::string path =
            use_base_dir ? resolve_taskset_path(base_dir_, ref) : ref;
        if (const auto failed = failures_.find(path);
            failed != failures_.end()) {
            throw std::runtime_error(failed->second);
        }
        if (const auto hit = sessions_.find(path); hit != sessions_.end()) {
            return *hit->second;
        }
        try {
            ParsedSystem parsed = parse_task_set_file(path);
            if (parsed.l2.has_value()) {
                throw std::runtime_error(
                    "task sets with a shared L2 are not supported by cpa "
                    "batch (use cpa analyze)");
            }
            auto session = std::make_unique<Session>(std::move(parsed.ts),
                                                     parsed.platform);
            return *sessions_.emplace(path, std::move(session))
                        .first->second;
        } catch (const std::exception& error) {
            failures_.emplace(path, error.what());
            throw;
        }
    }

private:
    std::string base_dir_;
    std::map<std::string, std::unique_ptr<Session>> sessions_;
    std::map<std::string, std::string> failures_; // path -> parse error
};

[[nodiscard]] obs::JsonValue record_header(std::size_t index,
                                           const Row& row)
{
    obs::JsonValue record = obs::JsonValue::object();
    record.set("schema", obs::JsonValue(kSchemaVersion));
    record.set("index", obs::JsonValue(index));
    if (!row.request.id.empty()) {
        record.set("id", obs::JsonValue(row.request.id));
    }
    return record;
}

[[nodiscard]] obs::JsonValue error_record(std::size_t index, const Row& row,
                                          const BatchError& error)
{
    obs::JsonValue record = record_header(index, row);
    record.set("status", obs::JsonValue("error"));
    obs::JsonValue detail = obs::JsonValue::object();
    detail.set("kind", obs::JsonValue(error.kind));
    detail.set("message", obs::JsonValue(error.message));
    record.set("error", std::move(detail));
    return record;
}

[[nodiscard]] obs::JsonValue ok_record(std::size_t index, const Row& row,
                                       const SessionResult& result)
{
    obs::JsonValue record = record_header(index, row);
    record.set("status", obs::JsonValue("ok"));
    record.set("taskset", obs::JsonValue(row.taskset_ref));
    record.set("policy",
               obs::JsonValue(analysis::spelling(result.config.policy)));
    record.set("persistence",
               obs::JsonValue(result.config.persistence_aware));
    record.set("crpd", obs::JsonValue(analysis::spelling(result.config.crpd)));
    record.set("cpro", obs::JsonValue(analysis::spelling(result.config.cpro)));
    record.set("engine",
               obs::JsonValue(analysis::spelling(result.config.wcrt_engine)));
    record.set("d_mem_cycles",
               obs::JsonValue(util::to_metric(result.platform.d_mem)));
    record.set("slot_size", obs::JsonValue(result.platform.slot_size));
    record.set("schedulable", obs::JsonValue(result.schedulable));
    record.set("bus_ok", obs::JsonValue(result.bus_ok));
    if (!result.bus_ok) {
        // Rejected by the perfect-bus utilization test; no fixed point ran,
        // so there are no per-task responses to report.
        return record;
    }
    const analysis::WcrtResult& wcrt = result.wcrt;
    record.set("stop_reason",
               obs::JsonValue(analysis::to_string(wcrt.stop_reason)));
    record.set("outer_iterations", obs::JsonValue(wcrt.outer_iterations));
    record.set("inner_iterations", obs::JsonValue(wcrt.inner_iterations));
    const tasks::TaskSet& ts = row.session->task_set();
    if (!wcrt.schedulable && wcrt.failed_task != analysis::kNoFailedTask) {
        record.set("failed_task",
                   obs::JsonValue(
                       ts[util::to_index(wcrt.failed_task)].name));
    }
    // Responses are reported for the analyzed prefix only: on a deadline
    // miss the outer loop stops at the failing task and later entries hold
    // no meaningful bound.
    const std::size_t analyzable =
        wcrt.schedulable
            ? ts.size()
            : (wcrt.failed_task == analysis::kNoFailedTask
                   ? ts.size()
                   : util::to_index(wcrt.failed_task) + 1);
    obs::JsonValue& responses = record.set("responses",
                                           obs::JsonValue::array());
    for (std::size_t i = 0; i < analyzable && i < ts.size(); ++i) {
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("task", obs::JsonValue(ts[i].name));
        entry.set("core", obs::JsonValue(ts[i].core));
        entry.set("response", obs::JsonValue(util::to_metric(
                                  wcrt.response[i])));
        entry.set("deadline",
                  obs::JsonValue(util::to_metric(ts[i].deadline)));
        entry.set("ok", obs::JsonValue(wcrt.response[i] <= ts[i].deadline));
        responses.push(std::move(entry));
    }
    return record;
}

// An exhausted iteration budget means the solver capitulated, not that the
// verdict is proven — surfaced as an error record so batch drivers can
// tell "analyzed as unschedulable" from "gave up".
[[nodiscard]] std::optional<BatchError>
budget_error(const SessionResult& result)
{
    if (!result.bus_ok) {
        return std::nullopt;
    }
    if (result.wcrt.inner_budget_exhausted) {
        return BatchError{
            "budget-exhausted",
            "inner fixed-point iteration budget exhausted; the "
            "unschedulable verdict is conservative, not proven"};
    }
    if (result.wcrt.stop_reason == analysis::StopReason::kNoOuterConvergence) {
        return BatchError{
            "budget-exhausted",
            "outer iteration budget exhausted before a fixed point"};
    }
    return std::nullopt;
}

} // namespace

ExitCode run_batch(const BatchOptions& options, std::istream& in,
                   std::ostream& out)
{
    // ---- Phase A (serial, input order): parse, route, dedup. -------------
    // All session-cache traffic happens here, on one thread, in request
    // order — the hit/miss/evict counters cannot depend on --jobs.
    SessionPool sessions(options.base_dir);
    std::vector<Row> rows;
    std::vector<Job> jobs;
    // (session, request key) -> unique solve, first occurrence wins. The
    // pointer key is only ever looked up, never iterated, so its address-
    // dependent ordering cannot leak into output or counters.
    std::map<std::pair<const Session*, RequestKey>, std::size_t> job_index;

    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.find_first_not_of(" \t") == std::string::npos) {
            continue; // blank lines separate nothing in NDJSON
        }
        Row row;
        CPA_COUNT("batch.requests");
        try {
            decode_request(JsonReader::parse(line), row);
            row.taskset_ref = row.request.taskset.empty()
                                  ? options.default_taskset
                                  : row.request.taskset;
            if (row.taskset_ref.empty()) {
                throw std::runtime_error(
                    "no task set: request has no \"taskset\" field and no "
                    "--taskset default was given");
            }
        } catch (const std::exception& error) {
            row.error = BatchError{"bad-request", error.what()};
            rows.push_back(std::move(row));
            continue;
        }
        try {
            row.session = &sessions.session_for(
                row.taskset_ref, !row.request.taskset.empty());
        } catch (const std::exception& error) {
            row.error = BatchError{"bad-taskset", error.what()};
            rows.push_back(std::move(row));
            continue;
        }
        row.key = row.session->key_for(row.request);
        const auto [slot, inserted] = job_index.emplace(
            std::pair(static_cast<const Session*>(row.session), row.key),
            jobs.size());
        if (inserted) {
            Job job;
            job.session = row.session;
            // Table build/reuse is charged to the unique solve, serially.
            job.tables = &row.session->tables(row.request.config.crpd);
            job.request = row.request;
            job.key = row.key;
            jobs.push_back(std::move(job));
        }
        row.job = slot->second;
        rows.push_back(std::move(row));
    }
    if (in.bad()) {
        throw std::runtime_error("error reading batch input");
    }

    // ---- Phase B (parallel): the unique solves. --------------------------
    // Sessions are only read here (evaluate is const and bypasses every
    // cache); each job writes its pre-sized slot, and run_indexed_trials
    // flushes per-trial metrics in index order.
    CPA_COUNT_ADD("batch.unique_solves",
                  static_cast<std::int64_t>(jobs.size()));
    util::ThreadPool pool(util::resolve_jobs(options.jobs));
    obs::run_indexed_trials(pool, jobs.size(), [&jobs](std::size_t i) {
        Job& job = jobs[i];
        job.result = job.session->evaluate(job.request, *job.tables);
    });

    // ---- Phase C (serial, request order): memoize + emit. ----------------
    bool any_error = false;
    bool any_unschedulable = false;
    for (std::size_t index = 0; index < rows.size(); ++index) {
        Row& row = rows[index];
        obs::JsonValue record = obs::JsonValue::object();
        if (row.error.has_value()) {
            record = error_record(index, row, *row.error);
            any_error = true;
            CPA_COUNT("batch.results.error");
        } else {
            // First occurrence of a key stores the solved result; repeats
            // are session warm hits (session.results.hit).
            const SessionResult* result = row.session->find_result(row.key);
            if (result == nullptr) {
                result = &row.session->store_result(
                    row.key, std::move(jobs[row.job].result));
            }
            if (const auto exhausted = budget_error(*result)) {
                record = error_record(index, row, *exhausted);
                any_error = true;
                CPA_COUNT("batch.results.error");
            } else {
                record = ok_record(index, row, *result);
                any_unschedulable =
                    any_unschedulable || !result->schedulable;
                CPA_COUNT("batch.results.ok");
            }
        }
        record.write(out);
        out << '\n';
        if (CPA_TRACE_ENABLED("batch")) {
            obs::Tracer::global().emit(
                obs::TraceEvent("batch", obs::Severity::kInfo,
                                "request_done")
                    .field("index", static_cast<std::int64_t>(index))
                    .field("status",
                           row.error.has_value() ? "error" : "ok"));
        }
    }

    if (any_error) {
        return ExitCode::kViolation;
    }
    return any_unschedulable ? ExitCode::kUnschedulable : ExitCode::kOk;
}

} // namespace cpa::cli
