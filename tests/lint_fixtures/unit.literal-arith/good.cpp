// Fixture: arithmetic stays inside the dimensional type.
#include "util/units.hpp"

cpa::util::Cycles off_by_one(cpa::util::Cycles c)
{
    return c + cpa::util::Cycles{1};
}
