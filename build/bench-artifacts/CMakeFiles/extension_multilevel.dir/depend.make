# Empty dependencies file for extension_multilevel.
# This may be replaced when dependencies are built.
