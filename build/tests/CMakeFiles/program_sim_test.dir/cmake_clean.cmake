file(REMOVE_RECURSE
  "CMakeFiles/program_sim_test.dir/sim/program_sim_test.cpp.o"
  "CMakeFiles/program_sim_test.dir/sim/program_sim_test.cpp.o.d"
  "program_sim_test"
  "program_sim_test.pdb"
  "program_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
