// Build provenance captured at configure time (git SHA, compiler, build
// type, feature gates). The definitions live in build_info.cpp, generated
// by CMake from build_info.cpp.in into the build tree, so reports and
// `cpa version --json` can state exactly which build produced them —
// the key the bench-trajectory history (scripts/bench_history.py) files
// runs under.
#pragma once

namespace cpa::obs {

struct BuildInfo {
    const char* version;    // project version (CMake project() VERSION)
    const char* git_sha;    // full commit SHA, "unknown" outside a checkout
    const char* git_dirty;  // "clean", "dirty", or "unknown"
    const char* compiler;   // "<id> <version>", e.g. "GNU 13.2.0"
    const char* build_type; // CMAKE_BUILD_TYPE, e.g. "Release"
    bool obs;               // CPA_OBS: observability layer compiled in
    bool check;             // CPA_CHECK: analytical assertions compiled in
    const char* sanitize;   // CPA_SANITIZE value, "" when off
};

[[nodiscard]] const BuildInfo& build_info() noexcept;

} // namespace cpa::obs
