#include "program/synthetic.hpp"

namespace cpa::program {

Program synthetic_lcdnum()
{
    // 20 blocks: 6 of setup, a 10-iteration digit loop over 12 blocks, and a
    // 2-block epilogue. Fits any cache >= 20 sets.
    ProgramBuilder b("lcdnum");
    b.straight(0, 6);
    b.begin_loop(10);
    b.straight(6, 12);
    b.end_loop();
    b.straight(18, 2);
    return std::move(b).build();
}

Program synthetic_bsort100()
{
    // 20 blocks, dominated by a 100x99 compare/swap double loop over a
    // 12-block inner body: extreme reuse, fully persistent footprint.
    ProgramBuilder b("bsort100");
    b.straight(0, 4);
    b.begin_loop(100);
    b.straight(4, 2);
    b.begin_loop(99);
    b.straight(6, 12);
    b.end_loop();
    b.end_loop();
    b.straight(18, 2);
    return std::move(b).build();
}

Program synthetic_ludcmp()
{
    // 98 blocks: elimination and substitution phases with nested loops.
    ProgramBuilder b("ludcmp");
    b.straight(0, 10);
    b.begin_loop(50);
    b.straight(10, 30); // elimination kernel
    b.begin_loop(5);
    b.straight(40, 20); // pivot row update
    b.end_loop();
    b.end_loop();
    b.begin_loop(50);
    b.straight(60, 30); // back substitution
    b.end_loop();
    b.straight(90, 8);
    return std::move(b).build();
}

Program synthetic_fdct()
{
    // Main region: blocks 0..105. Helper region placed at 278..361, which
    // aliases onto sets 22..105 of a 256-set cache: the loop alternates
    // between the aliasing halves, so those sets ping-pong (conflict misses
    // every iteration) while sets 0..21 stay persistent.
    ProgramBuilder b("fdct");
    b.straight(0, 22); // prologue, conflict-free at 256 sets
    b.begin_loop(8);
    b.straight(22, 84);  // row pass
    b.straight(278, 84); // column pass (aliases with the row pass at 256)
    b.end_loop();
    return std::move(b).build();
}

Program synthetic_nsichneu()
{
    // 1374 blocks of generated Petri-net code executed in a short outer
    // loop: the footprint wraps a 256-set cache >5 times, so every set holds
    // several blocks and no block survives an iteration.
    ProgramBuilder b("nsichneu");
    b.begin_loop(2);
    b.straight(0, 1374);
    b.end_loop();
    return std::move(b).build();
}

Program synthetic_statemate()
{
    // 476 blocks: at 256 sets the first 220 sets are doubly occupied and the
    // tail (sets 220..255) is persistent, as in Table I.
    ProgramBuilder b("statemate");
    b.begin_loop(6);
    b.straight(0, 476);
    b.end_loop();
    return std::move(b).build();
}

Program synthetic_bs()
{
    // Binary search: 16 blocks, log-depth loop re-executed per query.
    ProgramBuilder b("bs");
    b.straight(0, 4);
    b.begin_loop(12);
    b.straight(4, 10);
    b.end_loop();
    b.straight(14, 2);
    return std::move(b).build();
}

Program synthetic_crc()
{
    // CRC: 42 blocks; byte loop over a table-driven kernel.
    ProgramBuilder b("crc");
    b.straight(0, 8);
    b.begin_loop(40);
    b.straight(8, 30);
    b.end_loop();
    b.straight(38, 4);
    return std::move(b).build();
}

Program synthetic_matmult()
{
    // Matrix multiply: 48 blocks, triple nested loop, extreme reuse.
    ProgramBuilder b("matmult");
    b.straight(0, 6);
    b.begin_loop(20);
    b.straight(6, 4);
    b.begin_loop(20);
    b.straight(10, 4);
    b.begin_loop(20);
    b.straight(14, 28); // inner product kernel
    b.end_loop();
    b.end_loop();
    b.end_loop();
    b.straight(42, 6);
    return std::move(b).build();
}

Program synthetic_jfdctint()
{
    // Integer DCT: main region 0..95, helper at 284..351 aliasing sets
    // 28..95 at 256 sets -> |ECB| = 96, |PCB| = 28.
    ProgramBuilder b("jfdctint");
    b.straight(0, 28); // persistent prologue
    b.begin_loop(8);
    b.straight(28, 68);  // row pass
    b.straight(284, 68); // column pass (aliases at 256 sets)
    b.end_loop();
    return std::move(b).build();
}

Program synthetic_minver()
{
    // Matrix inversion: kernel 0..123, helper at 342..379 aliasing sets
    // 86..123 -> |ECB| = 124, |PCB| = 86.
    ProgramBuilder b("minver");
    b.straight(0, 86);
    b.begin_loop(10);
    b.straight(86, 38);  // elimination tail
    b.straight(342, 38); // pivot helper (aliases at 256 sets)
    b.end_loop();
    return std::move(b).build();
}

Program synthetic_qurt()
{
    // Root solver: kernel 0..51, helper at 296..307 aliasing sets 40..51
    // -> |ECB| = 52, |PCB| = 40.
    ProgramBuilder b("qurt");
    b.straight(0, 40);
    b.begin_loop(15);
    b.straight(40, 12);  // iteration tail
    b.straight(296, 12); // convergence check (aliases at 256 sets)
    b.end_loop();
    return std::move(b).build();
}

std::vector<Program> synthetic_suite()
{
    std::vector<Program> suite;
    suite.push_back(synthetic_lcdnum());
    suite.push_back(synthetic_bsort100());
    suite.push_back(synthetic_ludcmp());
    suite.push_back(synthetic_fdct());
    suite.push_back(synthetic_nsichneu());
    suite.push_back(synthetic_statemate());
    return suite;
}

std::vector<Program> synthetic_suite_extended()
{
    std::vector<Program> suite = synthetic_suite();
    suite.push_back(synthetic_bs());
    suite.push_back(synthetic_crc());
    suite.push_back(synthetic_matmult());
    suite.push_back(synthetic_jfdctint());
    suite.push_back(synthetic_minver());
    suite.push_back(synthetic_qurt());
    return suite;
}

} // namespace cpa::program
