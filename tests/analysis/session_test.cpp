// analysis::Session unit tests: table-cache hit/miss/evict accounting (both
// SessionStats and the session.* obs counters), result memoization with
// stable references, equivalence of the warm path with the one-shot
// is_schedulable()/compute_wcrt() path, and request-key resolution of
// platform overrides.
#include "analysis/session.hpp"

#include "analysis/schedulability.hpp"
#include "helpers.hpp"
#include "obs/obs.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;

PlatformConfig small_platform()
{
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 16;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    return platform;
}

tasks::TaskSet cross_core_set()
{
    return make_task_set(2, 16,
                         {
                             {0, 10, 4, 4, 100, 0, {1, 2, 3}, {1, 2}, {1, 2}},
                             {0, 20, 6, 6, 200, 0, {2, 3, 4}, {3}, {}},
                             {1, 15, 5, 5, 150, 0, {1, 2, 3}, {1, 2}, {1, 2}},
                         });
}

TEST(Session, TableCacheHitsAndMisses)
{
    Session session(cross_core_set(), small_platform());
    const InterferenceTables& first = session.tables(CrpdMethod::kEcbUnion);
    const InterferenceTables& again = session.tables(CrpdMethod::kEcbUnion);
    EXPECT_EQ(&first, &again);
    (void)session.tables(CrpdMethod::kUcbOnly);

    const SessionStats& stats = session.stats();
    EXPECT_EQ(stats.table_misses, 2u);
    EXPECT_EQ(stats.table_hits, 1u);
    EXPECT_EQ(stats.table_evictions, 0u);
}

TEST(Session, TableCacheEvictsLeastRecentlyUsed)
{
    Session::Options options;
    options.table_capacity = 1;
    Session session(cross_core_set(), small_platform(), options);
    (void)session.tables(CrpdMethod::kEcbUnion); // miss
    (void)session.tables(CrpdMethod::kUcbOnly);  // miss, evicts kEcbUnion
    (void)session.tables(CrpdMethod::kEcbUnion); // miss again, evicts back

    const SessionStats& stats = session.stats();
    EXPECT_EQ(stats.table_misses, 3u);
    EXPECT_EQ(stats.table_hits, 0u);
    EXPECT_EQ(stats.table_evictions, 2u);
}

TEST(Session, AnalyzeMemoizesByRequestKey)
{
    Session session(cross_core_set(), small_platform());
    AnalysisRequest request;
    const SessionResult& first = session.analyze(request);
    const SessionResult& again = session.analyze(request);
    EXPECT_EQ(&first, &again); // reference-stable memo, not a recompute

    AnalysisRequest different = request;
    different.config.policy = BusPolicy::kRoundRobin;
    const SessionResult& other = session.analyze(different);
    EXPECT_NE(&first, &other);

    const SessionStats& stats = session.stats();
    EXPECT_EQ(stats.result_misses, 2u);
    EXPECT_EQ(stats.result_hits, 1u);
    // Both requests share the kEcbUnion tables.
    EXPECT_EQ(stats.table_misses, 1u);
    EXPECT_EQ(stats.table_hits, 1u);
}

TEST(Session, ObsCountersMirrorStats)
{
    obs::MetricsRegistry::global().reset();
    obs::set_metrics_enabled(true);
    {
        Session session(cross_core_set(), small_platform());
        AnalysisRequest request;
        (void)session.analyze(request);
        (void)session.analyze(request);
    }
#if CPA_OBS_ENABLED
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("session.tables.miss"), 1);
    EXPECT_EQ(snap.counters.at("session.results.miss"), 1);
    EXPECT_EQ(snap.counters.at("session.results.hit"), 1);
    EXPECT_FALSE(snap.counters.contains("session.tables.evict"));
#endif
    obs::set_metrics_enabled(false);
    obs::MetricsRegistry::global().reset();
}

TEST(Session, AgreesWithOneShotPath)
{
    const tasks::TaskSet ts = cross_core_set();
    const PlatformConfig platform = small_platform();
    Session session(cross_core_set(), platform);

    for (const BusPolicy policy :
         {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin, BusPolicy::kTdma,
          BusPolicy::kPerfect}) {
        for (const bool persistence : {true, false}) {
            AnalysisRequest request;
            request.config.policy = policy;
            request.config.persistence_aware = persistence;
            const SessionResult& warm = session.analyze(request);
            EXPECT_EQ(warm.schedulable,
                      is_schedulable(ts, platform, request.config))
                << to_string(policy) << " persistence=" << persistence;
            if (warm.bus_ok && !ts.empty()) {
                const WcrtResult cold =
                    compute_wcrt(ts, platform, request.config);
                ASSERT_EQ(warm.wcrt.response.size(), cold.response.size());
                EXPECT_EQ(warm.wcrt.response, cold.response);
                EXPECT_EQ(warm.wcrt.outer_iterations, cold.outer_iterations);
            }
        }
    }
}

TEST(Session, PerfectBusOverloadShortCircuits)
{
    // MD*d_mem/T = 80*10/500 = 1.6 > 1: the perfect-bus admission test
    // rejects without running the fixed point, exactly like is_schedulable.
    Session session(
        make_task_set(2, 16, {{0, 10, 80, 80, 500, 0, {}, {}, {}}}),
        small_platform());
    AnalysisRequest request;
    request.config.policy = BusPolicy::kPerfect;
    const SessionResult& result = session.analyze(request);
    EXPECT_FALSE(result.schedulable);
    EXPECT_FALSE(result.bus_ok);
    EXPECT_TRUE(result.wcrt.response.empty());
}

TEST(Session, EmptyTaskSetIsSchedulable)
{
    Session session(tasks::TaskSet(2, 16), small_platform());
    AnalysisRequest request;
    const SessionResult& result = session.analyze(request);
    EXPECT_TRUE(result.schedulable);
    EXPECT_TRUE(result.bus_ok);
}

TEST(Session, PlatformOverridesEnterTheKey)
{
    Session session(cross_core_set(), small_platform());

    AnalysisRequest base;
    AnalysisRequest slower = base;
    slower.d_mem = util::Cycles{20};
    AnalysisRequest slotted = base;
    slotted.slot_size = 5;

    EXPECT_FALSE(session.key_for(base) < session.key_for(base));
    EXPECT_TRUE(session.key_for(base) < session.key_for(slower) ||
                session.key_for(slower) < session.key_for(base));
    EXPECT_TRUE(session.key_for(base) < session.key_for(slotted) ||
                session.key_for(slotted) < session.key_for(base));

    EXPECT_EQ(session.resolve_platform(slower).d_mem, util::Cycles{20});
    EXPECT_EQ(session.resolve_platform(slower).slot_size, 2);
    EXPECT_EQ(session.resolve_platform(slotted).slot_size, 5);

    (void)session.analyze(base);
    (void)session.analyze(slower);
    (void)session.analyze(slotted);
    EXPECT_EQ(session.stats().result_misses, 3u);
    EXPECT_EQ(session.stats().result_hits, 0u);
}

TEST(Session, EvaluateMatchesAnalyze)
{
    Session session(cross_core_set(), small_platform());
    AnalysisRequest request;
    request.config.policy = BusPolicy::kRoundRobin;
    const SessionResult detached =
        session.evaluate(request, session.tables(request.config.crpd));
    const SessionResult& memoized = session.analyze(request);
    EXPECT_EQ(detached.schedulable, memoized.schedulable);
    EXPECT_EQ(detached.wcrt.response, memoized.wcrt.response);
    // evaluate() bypassed the result memo: only analyze() recorded a miss.
    EXPECT_EQ(session.stats().result_misses, 1u);
}

} // namespace
} // namespace cpa::analysis
