// Fixture: raw Quantity::count() escape outside units.hpp.
#include "util/units.hpp"

#include <cstdint>

std::int64_t leak_cycles(cpa::util::Cycles c)
{
    return c.count();
}
