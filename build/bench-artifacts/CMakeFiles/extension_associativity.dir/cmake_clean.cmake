file(REMOVE_RECURSE
  "../bench/extension_associativity"
  "../bench/extension_associativity.pdb"
  "CMakeFiles/extension_associativity.dir/extension_associativity.cpp.o"
  "CMakeFiles/extension_associativity.dir/extension_associativity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
