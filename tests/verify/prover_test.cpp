// Branch-and-bound prover tests: the fast box proves the catalog with no
// refutations, the verdicts are jobs-invariant, a deliberately corrupted
// oracle is REFUTED with a replayable witness, and the property catalog
// stays in lockstep with the checker's invariant catalog.
#include "verify/prover.hpp"

#include "check/invariants.hpp"
#include "verify/box.hpp"
#include "verify/properties.hpp"
#include "verify/scenario.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

namespace cpa::verify {
namespace {

const PropertyReport* find_report(const VerifyReport& report,
                                  std::string_view name)
{
    for (const PropertyReport& entry : report.properties) {
        if (entry.name == name) {
            return &entry;
        }
    }
    return nullptr;
}

TEST(PropertyCatalog, MatchesCheckerInvariantCatalogExactly)
{
    const auto& properties = property_catalog();
    const auto& invariants = check::invariant_catalog();
    ASSERT_EQ(properties.size(), invariants.size());
    for (std::size_t i = 0; i < properties.size(); ++i) {
        EXPECT_EQ(properties[i].name, invariants[i].name);
    }
    EXPECT_NE(find_property("wcrt.fixed_point"), nullptr);
    EXPECT_EQ(find_property("no.such.invariant"), nullptr);
}

TEST(Prover, FastBoxProvesCatalogWithoutRefutations)
{
    ProverOptions options;
    options.box = fast_box();
    const VerifyReport report = run_prover(options);

    ASSERT_EQ(report.properties.size(), check::invariant_catalog().size());
    EXPECT_EQ(report.refuted(), 0u);
    EXPECT_GE(report.proved(), 12u);

    // The simulator has no interval rule; it must surface as a named open
    // obligation, never disappear.
    const PropertyReport* sim =
        find_report(report, "sim.response_soundness");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->verdict, Verdict::kUndecided);
    EXPECT_GT(sim->undecided_boxes, 0u);
    EXPECT_GT(sim->samples, 0u); // sampled even without a rule

    for (const PropertyReport& entry : report.properties) {
        // Every property was cross-checked on concrete points.
        EXPECT_GT(entry.samples, 0u) << entry.name;
        if (entry.verdict == Verdict::kProved) {
            EXPECT_EQ(entry.undecided_boxes, 0u) << entry.name;
            EXPECT_GT(entry.proved_boxes, 0u) << entry.name;
        }
    }
}

TEST(Prover, ReportIsIdenticalAcrossJobCounts)
{
    ProverOptions options;
    options.box = fast_box();
    options.jobs = 1;
    const VerifyReport serial = run_prover(options);
    options.jobs = 8;
    const VerifyReport parallel = run_prover(options);

    ASSERT_EQ(serial.properties.size(), parallel.properties.size());
    for (std::size_t i = 0; i < serial.properties.size(); ++i) {
        const PropertyReport& a = serial.properties[i];
        const PropertyReport& b = parallel.properties[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.verdict, b.verdict) << a.name;
        EXPECT_EQ(a.nodes, b.nodes) << a.name;
        EXPECT_EQ(a.proved_boxes, b.proved_boxes) << a.name;
        EXPECT_EQ(a.undecided_boxes, b.undecided_boxes) << a.name;
        EXPECT_EQ(a.samples, b.samples) << a.name;
        EXPECT_EQ(a.max_depth, b.max_depth) << a.name;
        EXPECT_EQ(a.note, b.note) << a.name;
        ASSERT_EQ(a.witnesses.size(), b.witnesses.size()) << a.name;
        for (std::size_t w = 0; w < a.witnesses.size(); ++w) {
            EXPECT_EQ(a.witnesses[w].point, b.witnesses[w].point);
            EXPECT_EQ(a.witnesses[w].detail, b.witnesses[w].detail);
        }
    }
}

// M̂D inflated by n*100: the checker's demand.md_hat_dominance fires on
// every sampled point, so the prover must refute it and the witness must
// replay as a failing trial through the same oracle.
TEST(Prover, CorruptedOracleIsRefutedWithReplayableWitness)
{
    class BrokenOracle : public check::AnalysisOracle {
    public:
        using AnalysisOracle::AnalysisOracle;
        util::AccessCount md_hat(std::size_t i,
                                 std::int64_t n) const override
        {
            return AnalysisOracle::md_hat(i, n) +
                   util::AccessCount{n > 0 ? n * 100 : 0};
        }
    };

    ProverOptions options;
    options.box = fast_box();
    options.oracle_factory = [](const Scenario& scenario) {
        return std::unique_ptr<check::AnalysisOracle>(
            new BrokenOracle(scenario.task_set, scenario.platform));
    };
    const VerifyReport report = run_prover(options);

    const PropertyReport* dominance =
        find_report(report, "demand.md_hat_dominance");
    ASSERT_NE(dominance, nullptr);
    EXPECT_EQ(dominance->verdict, Verdict::kRefuted);
    ASSERT_FALSE(dominance->witnesses.empty());

    // Replay: the witness point IS the checker input that failed.
    const Witness& witness = dominance->witnesses.front();
    const Scenario scenario = make_scenario(witness.point);
    const BrokenOracle replayed(scenario.task_set, scenario.platform);
    check::CheckOptions check_options;
    check_options.check_simulation = false;
    const check::CheckResult result =
        check::check_task_set(replayed, check_options);
    bool fired = false;
    for (const check::Violation& violation : result.violations) {
        fired = fired || violation.invariant == witness.property;
    }
    EXPECT_TRUE(fired) << "witness did not replay: " << witness.describe();

    // The genuine implementation is untouched — the same point passes the
    // real oracle, so the refutation is attributable to the mutation alone.
    const check::AnalysisOracle honest(scenario.task_set, scenario.platform);
    const check::CheckResult clean =
        check::check_task_set(honest, check_options);
    EXPECT_TRUE(clean.ok());
}

TEST(Prover, BudgetExhaustionReportsOpenBoxesNotSilence)
{
    ProverOptions options;
    options.box = full_box();
    options.max_nodes = 4;
    const VerifyReport report = run_prover(options);
    const PropertyReport* wcrt = find_report(report, "wcrt.fixed_point");
    ASSERT_NE(wcrt, nullptr);
    EXPECT_EQ(wcrt->verdict, Verdict::kUndecided);
    EXPECT_GT(wcrt->undecided_boxes, 0u);
    EXPECT_NE(wcrt->note.find("budget"), std::string::npos) << wcrt->note;
}

TEST(ParamBox, ParseAppliesOverridesAndRejectsGarbage)
{
    std::istringstream good("# comment\nmd 3 5\n\ncores 2 2\n");
    const ParamBox box = parse_box(good);
    EXPECT_EQ(box[Dim::kMd], (ICount{3, 5}));
    EXPECT_EQ(box[Dim::kCores], ICount::point(2));
    // Unlisted dimensions keep the fast-profile range.
    EXPECT_EQ(box[Dim::kPd], fast_box()[Dim::kPd]);

    std::istringstream unknown("bogus 1 2\n");
    EXPECT_THROW((void)parse_box(unknown), std::invalid_argument);
    std::istringstream inverted("md 5 3\n");
    EXPECT_THROW((void)parse_box(inverted), std::invalid_argument);
    std::istringstream malformed("md 5\n");
    EXPECT_THROW((void)parse_box(malformed), std::invalid_argument);
}

TEST(ParamBox, BisectSplitsTheWidestUsedDimension)
{
    ParamBox box = fast_box();
    const auto split = box.bisect({Dim::kMd, Dim::kPeriod});
    ASSERT_TRUE(split.has_value());
    // period ([4000,12000]) is far wider than md ([2,8]).
    EXPECT_EQ(split->first[Dim::kPeriod].lo, box[Dim::kPeriod].lo);
    EXPECT_EQ(split->second[Dim::kPeriod].hi, box[Dim::kPeriod].hi);
    EXPECT_EQ(split->first[Dim::kPeriod].hi + 1,
              split->second[Dim::kPeriod].lo);
    EXPECT_EQ(split->first[Dim::kMd], box[Dim::kMd]);

    ParamBox degenerate = fast_box();
    degenerate[Dim::kMd] = ICount::point(4);
    EXPECT_FALSE(degenerate.bisect({Dim::kMd}).has_value());
}

} // namespace
} // namespace cpa::verify
