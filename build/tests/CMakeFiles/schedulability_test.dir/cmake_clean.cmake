file(REMOVE_RECURSE
  "CMakeFiles/schedulability_test.dir/analysis/schedulability_test.cpp.o"
  "CMakeFiles/schedulability_test.dir/analysis/schedulability_test.cpp.o.d"
  "schedulability_test"
  "schedulability_test.pdb"
  "schedulability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
