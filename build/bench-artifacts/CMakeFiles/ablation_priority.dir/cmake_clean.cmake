file(REMOVE_RECURSE
  "../bench/ablation_priority"
  "../bench/ablation_priority.pdb"
  "CMakeFiles/ablation_priority.dir/ablation_priority.cpp.o"
  "CMakeFiles/ablation_priority.dir/ablation_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
