// Fixture: std::random_device is nondeterministic by definition.
#include <random>

unsigned entropy()
{
    std::random_device rd;
    return rd();
}
