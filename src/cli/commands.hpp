// Command dispatch of the `cpa` tool. Kept out of main() so the tests can
// drive the tool in-process with captured streams.
//
//   cpa analyze  <file> [--policy fp|rr|tdma|perfect|all] [--no-persistence]
//                       [--crpd ecb-union|ucb-only|ecb-only]
//                       [--cpro union|job-bound] [--report]
//   cpa simulate <file> [--policy fp|rr|tdma|perfect]
//                       [--horizon-periods N]
//   cpa generate [--cores N] [--tasks-per-core N] [--cache-sets N]
//                [--utilization U] [--seed S]
//   cpa check    [--seed S] [--trials N] [--skip-sim] [--fail-on-violation]
//                [--list]
//   cpa help
//
// `check` runs the analytical invariant catalog (src/check) over seeded
// random task sets; exit 0 unless --fail-on-violation is given, in which
// case any violation exits 3. See docs/static-analysis.md.
//
// analyze/simulate/sweep additionally accept the observability flags
// --metrics-out FILE (JSON run report; '-' = stdout) and
// --trace SUBSYS[,...] (NDJSON events on stderr); see docs/observability.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpa::cli {

// Runs one invocation; returns the process exit code (0 = success; for
// `analyze`, 0 also means the set was schedulable under every requested
// policy and 2 means at least one was not).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

} // namespace cpa::cli
