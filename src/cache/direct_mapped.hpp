// Concrete direct-mapped cache state. In a direct-mapped cache replacement is
// deterministic (each block has exactly one candidate set), so simulating a
// reference trace yields the *exact* miss count — this is what makes the
// extraction of MD/MDʳ in src/program exact rather than an abstract bound.
#pragma once

#include "cache/geometry.hpp"

#include <cstddef>
#include <optional>
#include <vector>

namespace cpa::cache {

class DirectMappedCache {
public:
    explicit DirectMappedCache(CacheGeometry geometry);

    [[nodiscard]] const CacheGeometry& geometry() const noexcept
    {
        return geometry_;
    }

    // References `block_address`; installs it on a miss. Returns true on hit.
    bool access(std::size_t block_address);

    // True when `block_address` is currently cached.
    [[nodiscard]] bool contains(std::size_t block_address) const;

    // Loads `block_address` without counting an access (used to pre-load
    // PCBs when measuring the residual demand MDʳ).
    void preload(std::size_t block_address);

    // Invalidates every line.
    void flush();

    // Invalidates the line of set `set_index` (models an eviction by another
    // task's ECB).
    void invalidate_set(std::size_t set_index);

    // Number of valid lines.
    [[nodiscard]] std::size_t occupied() const;

private:
    CacheGeometry geometry_;
    std::vector<std::optional<std::size_t>> lines_; // block address per set
};

} // namespace cpa::cache
