// Cross-validation bench (not a paper artifact): compares the analytical
// WCRT bounds against response times observed in the discrete-event
// simulator on random task sets, per bus policy. Reports the bound/observed
// ratio (tightness) and asserts soundness (observed <= bound) — the
// simulator-level counterpart of the paper's "safe upper bound" claims.
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "sim/simulator.hpp"

#include "common.hpp"

#include <algorithm>
#include <iostream>

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("soundness_sim");
    using analysis::BusPolicy;

    const std::size_t sets_per_policy = experiments::task_sets_from_env(40);

    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 128;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;

    benchdata::GenerationConfig generation;
    generation.num_cores = 2;
    generation.tasks_per_core = 4;
    generation.cache_sets = 128;
    generation.per_core_utilization = 0.3;
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);

    util::TextTable table({"policy", "persistence", "sets checked",
                           "violations", "mean bound/observed",
                           "max observed ratio"});

    for (const BusPolicy policy :
         {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
          BusPolicy::kTdma}) {
        for (const bool persistence : {true, false}) {
            util::Rng rng(2020);
            std::size_t checked = 0;
            std::size_t violations = 0;
            double ratio_sum = 0.0;
            double ratio_max = 0.0;
            std::size_t ratio_count = 0;

            for (std::size_t n = 0; n < sets_per_policy; ++n) {
                util::Rng child = rng.fork();
                const tasks::TaskSet ts =
                    benchdata::generate_task_set(child, generation, pool);

                analysis::AnalysisConfig config;
                config.policy = policy;
                config.persistence_aware = persistence;
                const auto wcrt =
                    analysis::compute_wcrt(ts, platform, config);
                if (!wcrt.schedulable) {
                    continue;
                }
                ++checked;

                util::Cycles max_period{0};
                for (const auto& task : ts.tasks()) {
                    max_period = std::max(max_period, task.period);
                }
                sim::SimConfig sim_config;
                sim_config.policy = policy;
                sim_config.horizon = 3 * max_period;
                const auto observed = sim::simulate(ts, platform, sim_config);

                for (std::size_t i = 0; i < ts.size(); ++i) {
                    if (observed.max_response[i] > wcrt.response[i]) {
                        ++violations;
                    }
                    if (observed.max_response[i] > util::Cycles{0}) {
                        const double ratio =
                            util::to_double(wcrt.response[i]) /
                            util::to_double(observed.max_response[i]);
                        ratio_sum += ratio;
                        ratio_max = std::max(
                            ratio_max,
                            util::to_double(observed.max_response[i]) /
                                util::to_double(wcrt.response[i]));
                        ++ratio_count;
                    }
                }
            }
            table.add_row(
                {analysis::to_string(policy), persistence ? "yes" : "no",
                 std::to_string(checked), std::to_string(violations),
                 ratio_count
                     ? util::TextTable::num(
                           ratio_sum / static_cast<double>(ratio_count), 2)
                     : "-",
                 util::TextTable::num(ratio_max, 3)});
        }
    }

    std::cout << "== Soundness: simulated response vs analytical WCRT ==\n"
              << "(violations must be 0; bound/observed > 1 quantifies "
                 "analysis pessimism)\n";
    table.print(std::cout);
    return 0;
}
