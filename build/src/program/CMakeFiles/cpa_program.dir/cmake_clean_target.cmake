file(REMOVE_RECURSE
  "libcpa_program.a"
)
