# Empty compiler generated dependencies file for cpa.
# This may be replaced when dependencies are built.
