# Empty compiler generated dependencies file for ablation_jitter.
# This may be replaced when dependencies are built.
