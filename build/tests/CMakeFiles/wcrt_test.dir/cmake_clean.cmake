file(REMOVE_RECURSE
  "CMakeFiles/wcrt_test.dir/analysis/wcrt_test.cpp.o"
  "CMakeFiles/wcrt_test.dir/analysis/wcrt_test.cpp.o.d"
  "wcrt_test"
  "wcrt_test.pdb"
  "wcrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
