// Fixture: the named conversion keeps the full 64-bit representation.
#include "util/units.hpp"

#include <cstdint>

std::int64_t metric(cpa::util::Cycles c)
{
    return cpa::util::to_metric(c);
}
