#include "sim/arbiter.hpp"

#include <stdexcept>

namespace cpa::sim {

using analysis::BusPolicy;
using util::Cycles;

BusArbiter::BusArbiter(BusPolicy policy, std::size_t num_cores, Cycles d_mem,
                       std::int64_t slot_size)
    : policy_(policy), num_cores_(num_cores), d_mem_(d_mem),
      slot_size_(slot_size), pending_(num_cores)
{
    if (num_cores == 0 || d_mem <= 0 || slot_size <= 0) {
        throw std::invalid_argument("BusArbiter: bad configuration");
    }
}

Cycles BusArbiter::tdma_start(std::size_t core, Cycles from) const
{
    const auto s = static_cast<std::uint64_t>(slot_size_);
    const auto m = static_cast<std::uint64_t>(num_cores_);
    const auto d = static_cast<std::uint64_t>(d_mem_);
    std::uint64_t k = static_cast<std::uint64_t>(from) / d;
    for (std::uint64_t step = 0; step <= m * s; ++step, ++k) {
        if ((k / s) % m == core) {
            return std::max(from, static_cast<Cycles>(k * d));
        }
    }
    throw std::logic_error("BusArbiter::tdma_start: no slot found");
}

std::optional<Cycles> BusArbiter::request(std::size_t core,
                                          std::size_t priority, Cycles now)
{
    if (core >= num_cores_) {
        throw std::out_of_range("BusArbiter::request: bad core");
    }
    if (pending_[core].has_value()) {
        throw std::logic_error(
            "BusArbiter::request: core already has an outstanding request");
    }
    switch (policy_) {
    case BusPolicy::kPerfect:
        return now + d_mem_;
    case BusPolicy::kTdma:
        return tdma_start(core, now) + d_mem_;
    case BusPolicy::kFixedPriority:
    case BusPolicy::kRoundRobin:
        pending_[core] = priority;
        if (busy_) {
            return std::nullopt;
        }
        // Idle bus: this request wins arbitration immediately (for RR it
        // either continues the current turn or starts a new one).
        if (const auto grant = pick_next(); grant.has_value()) {
            pending_[*grant].reset();
            busy_ = true;
            if (*grant == core) {
                return now + d_mem_;
            }
            throw std::logic_error(
                "BusArbiter::request: idle-bus grant must pick the requester");
        }
        return std::nullopt;
    }
    return std::nullopt;
}

std::optional<std::size_t> BusArbiter::pick_next()
{
    if (policy_ == BusPolicy::kFixedPriority) {
        std::optional<std::size_t> best;
        for (std::size_t c = 0; c < num_cores_; ++c) {
            if (pending_[c].has_value() &&
                (!best.has_value() ||
                 *pending_[c] < *pending_[*best])) {
                best = c;
            }
        }
        return best;
    }
    // Round-Robin: continue the current core's turn while it has pending
    // requests and slots left, else advance to the next pending core.
    if (pending_[rr_core_].has_value() && rr_used_ < slot_size_) {
        ++rr_used_;
        return rr_core_;
    }
    for (std::size_t step = 1; step <= num_cores_; ++step) {
        const std::size_t c = (rr_core_ + step) % num_cores_;
        if (pending_[c].has_value()) {
            rr_core_ = c;
            rr_used_ = 1;
            return c;
        }
    }
    return std::nullopt;
}

void BusArbiter::promote(std::size_t core, std::size_t priority)
{
    if (core >= num_cores_) {
        throw std::out_of_range("BusArbiter::promote: bad core");
    }
    if (pending_[core].has_value() && priority < *pending_[core]) {
        pending_[core] = priority;
    }
}

std::optional<std::pair<std::size_t, Cycles>>
BusArbiter::complete(std::size_t /*core*/, Cycles now)
{
    if (policy_ == BusPolicy::kPerfect || policy_ == BusPolicy::kTdma) {
        return std::nullopt;
    }
    busy_ = false;
    if (const auto grant = pick_next(); grant.has_value()) {
        pending_[*grant].reset();
        busy_ = true;
        return std::make_pair(*grant, now + d_mem_);
    }
    return std::nullopt;
}

} // namespace cpa::sim
