#include "sim/program_sim.hpp"

#include "cache/direct_mapped.hpp"
#include "sim/arbiter.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace cpa::sim {

namespace {

using util::AccessCount;
using util::CoreId;
using util::to_index;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

enum class EventType : std::uint8_t {
    kRelease, // a = task
    kCpuDone, // a = core, b = generation
    kBusDone, // a = core
};

struct Event {
    Cycles time;
    std::uint64_t seq = 0;
    EventType type = EventType::kRelease;
    std::size_t a = 0;
    std::uint64_t b = 0;

    [[nodiscard]] int rank() const
    {
        return type == EventType::kRelease ? 1 : 0;
    }
    bool operator>(const Event& other) const
    {
        if (time != other.time) {
            return time > other.time;
        }
        if (rank() != other.rank()) {
            return rank() > other.rank();
        }
        return seq > other.seq;
    }
};

struct PJob {
    std::size_t task = kNone;
    Cycles release;
    std::size_t pos = 0;   // next fetch in the trace
    Cycles partial;        // cycles already spent on the fetch at `pos`
    bool finished = false;
    // The compute chunk currently scheduled (hit-run bookkeeping).
    Cycles chunk_started;
    Cycles chunk_len;
    std::size_t chunk_end_pos = 0;
};

struct PCore {
    std::vector<std::size_t> ready;
    std::size_t running = kNone;
    bool stalled = false;
    std::uint64_t cpu_generation = 0;
    std::size_t pending_request = kNone; // job waiting for the bus
    cache::DirectMappedCache cache;

    explicit PCore(std::size_t sets) : cache({sets, 32}) {}
};

class ProgramSimulation {
public:
    ProgramSimulation(const std::vector<ProgramTask>& workload,
                      const PlatformConfig& platform,
                      const ProgramSimConfig& config)
        : workload_(workload), platform_(platform), config_(config),
          arbiter_(config.policy, platform.num_cores, platform.d_mem,
                   platform.slot_size)
    {
        if (config.horizon <= Cycles{0}) {
            throw std::invalid_argument(
                "simulate_programs: horizon must be > 0");
        }
        cores_.reserve(platform.num_cores);
        for (std::size_t c = 0; c < platform.num_cores; ++c) {
            cores_.emplace_back(platform.cache_sets);
        }
        traces_.reserve(workload.size());
        for (const ProgramTask& task : workload_) {
            if (task.program == nullptr) {
                throw std::invalid_argument(
                    "simulate_programs: null program");
            }
            if (task.core >= platform.num_cores) {
                throw std::invalid_argument(
                    "simulate_programs: bad core index");
            }
            if (task.period <= Cycles{0}) {
                throw std::invalid_argument(
                    "simulate_programs: period must be > 0");
            }
            std::vector<std::size_t> trace =
                task.program->reference_trace();
            for (std::size_t& block : trace) {
                block += task.address_base;
            }
            traces_.push_back(std::move(trace));
        }
        result_.max_response.assign(workload.size(), Cycles{0});
        result_.jobs_completed.assign(workload.size(), 0);
        result_.bus_accesses.assign(workload.size(), AccessCount{0});
        result_.cache_hits.assign(workload.size(), AccessCount{0});
        fetches_completed_.assign(workload.size(), AccessCount{0});
        current_job_of_task_.assign(workload.size(), kNone);
    }

    ProgramSimResult run()
    {
        for (std::size_t i = 0; i < workload_.size(); ++i) {
            if (workload_[i].offset < config_.horizon) {
                push(workload_[i].offset, EventType::kRelease, i, 0);
            }
        }
        while (!queue_.empty() && !stopped_) {
            const Event event = queue_.top();
            queue_.pop();
            now_ = event.time;
            switch (event.type) {
            case EventType::kRelease:
                on_release(event.a);
                break;
            case EventType::kCpuDone:
                on_cpu_done(event.a, event.b);
                break;
            case EventType::kBusDone:
                on_bus_done(event.a);
                break;
            }
        }
        for (std::size_t i = 0; i < workload_.size(); ++i) {
            result_.cache_hits[i] =
                fetches_completed_[i] - result_.bus_accesses[i];
        }
        return result_;
    }

private:
    void push(Cycles time, EventType type, std::size_t a, std::uint64_t b)
    {
        queue_.push(Event{time, seq_++, type, a, b});
    }

    [[nodiscard]] Cycles deadline_of(std::size_t task) const
    {
        return workload_[task].deadline > Cycles{0}
                   ? workload_[task].deadline
                   : workload_[task].period;
    }

    void record_miss(std::size_t task)
    {
        if (!result_.deadline_missed) {
            result_.deadline_missed = true;
            result_.missed_task = TaskId{task};
        }
        if (config_.stop_on_deadline_miss) {
            stopped_ = true;
        }
    }

    void on_release(std::size_t task)
    {
        if (current_job_of_task_[task] != kNone &&
            !jobs_[current_job_of_task_[task]].finished) {
            record_miss(task);
            if (stopped_) {
                return;
            }
        }
        PJob job;
        job.task = task;
        job.release = now_;
        const std::size_t job_id = jobs_.size();
        jobs_.push_back(job);
        current_job_of_task_[task] = job_id;
        cores_[workload_[task].core].ready.push_back(job_id);
        dispatch(workload_[task].core);

        const Cycles next = now_ + workload_[task].period;
        if (next < config_.horizon) {
            push(next, EventType::kRelease, task, 0);
        }
    }

    void dispatch(std::size_t core_index)
    {
        PCore& core = cores_[core_index];
        if (core.running != kNone && core.stalled) {
            return;
        }
        std::size_t best = kNone;
        for (const std::size_t job_id : core.ready) {
            if (best == kNone || jobs_[job_id].task < jobs_[best].task) {
                best = job_id;
            }
        }
        if (best == kNone) {
            return;
        }
        if (core.running != kNone &&
            jobs_[core.running].task <= jobs_[best].task) {
            return;
        }
        if (core.running != kNone) {
            preempt(core_index);
        }
        std::erase(core.ready, best);
        core.running = best;
        start_run(core_index);
    }

    // Schedules the next compute chunk of the running job: the maximal run
    // of fetches that hit the core's cache (hits have no side effects in a
    // direct-mapped cache, so the lookahead is safe).
    void start_run(std::size_t core_index)
    {
        PCore& core = cores_[core_index];
        PJob& job = jobs_[core.running];
        const auto& trace = traces_[job.task];
        const Cycles cpf = workload_[job.task].program->cycles_per_fetch();

        Cycles len{0};
        std::size_t p = job.pos;
        if (p < trace.size() && core.cache.contains(trace[p])) {
            len += cpf - job.partial;
            ++p;
            while (p < trace.size() && core.cache.contains(trace[p])) {
                len += cpf;
                ++p;
            }
        } else {
            // Next fetch misses (or the job is done): any partial progress
            // on an evicted fetch is discarded — the fetch restarts as a
            // miss. (Slightly optimistic; never pessimistic, so soundness
            // comparisons against the analysis remain valid.)
            job.partial = Cycles{0};
        }
        job.chunk_started = now_;
        job.chunk_len = len;
        job.chunk_end_pos = p;
        push(now_ + len, EventType::kCpuDone, core_index,
             core.cpu_generation);
    }

    void preempt(std::size_t core_index)
    {
        PCore& core = cores_[core_index];
        PJob& job = jobs_[core.running];
        const auto& trace = traces_[job.task];
        const Cycles cpf = workload_[job.task].program->cycles_per_fetch();
        Cycles elapsed =
            std::min(now_ - job.chunk_started, job.chunk_len);

        // Replay the chunk prefix that actually executed.
        if (job.pos < job.chunk_end_pos) {
            const Cycles first_cost = cpf - job.partial;
            if (elapsed >= first_cost) {
                elapsed -= first_cost;
                job.pos += 1;
                job.partial = Cycles{0};
                fetches_completed_[job.task] += AccessCount{1};
                const auto more = std::min<std::size_t>(
                    static_cast<std::size_t>(elapsed / cpf),
                    job.chunk_end_pos - job.pos);
                job.pos += more;
                fetches_completed_[job.task] +=
                    AccessCount{static_cast<std::int64_t>(more)};
                elapsed -= static_cast<std::int64_t>(more) * cpf;
                job.partial = elapsed;
            } else {
                job.partial += elapsed;
            }
        }
        (void)trace;

        core.cpu_generation++;
        core.ready.push_back(core.running);
        core.running = kNone;
    }

    void on_cpu_done(std::size_t core_index, std::uint64_t generation)
    {
        PCore& core = cores_[core_index];
        if (generation != core.cpu_generation || core.running == kNone) {
            return; // stale
        }
        PJob& job = jobs_[core.running];
        fetches_completed_[job.task] +=
            AccessCount{static_cast<std::int64_t>(job.chunk_end_pos - job.pos)};
        job.pos = job.chunk_end_pos;
        job.partial = Cycles{0};

        if (job.pos >= traces_[job.task].size()) {
            complete_job(core_index);
            return;
        }
        // The fetch at job.pos misses: request the bus.
        core.stalled = true;
        core.pending_request = core.running;
        const auto completion =
            arbiter_.request(CoreId{core_index}, TaskId{job.task}, now_);
        if (completion.has_value()) {
            push(*completion, EventType::kBusDone, core_index, 0);
        }
    }

    void on_bus_done(std::size_t core_index)
    {
        PCore& core = cores_[core_index];
        const std::size_t job_id = core.pending_request;
        core.pending_request = kNone;
        core.stalled = false;

        PJob& job = jobs_[job_id];
        // Install the fetched block; the fetch itself (cycles_per_fetch)
        // executes as the head of the job's next compute chunk.
        (void)core.cache.access(traces_[job.task][job.pos]);
        result_.bus_accesses[job.task] += AccessCount{1};

        core.ready.push_back(job_id);
        core.running = kNone;
        core.cpu_generation++;
        dispatch(core_index);

        if (const auto next = arbiter_.complete(CoreId{core_index}, now_);
            next.has_value()) {
            push(next->second, EventType::kBusDone, to_index(next->first), 0);
        }
    }

    void complete_job(std::size_t core_index)
    {
        PCore& core = cores_[core_index];
        PJob& job = jobs_[core.running];
        job.finished = true;
        core.running = kNone;
        core.cpu_generation++;

        const Cycles response = now_ - job.release;
        result_.max_response[job.task] =
            std::max(result_.max_response[job.task], response);
        result_.jobs_completed[job.task] += 1;
        if (response > deadline_of(job.task)) {
            record_miss(job.task);
        }
        dispatch(core_index);
    }

    const std::vector<ProgramTask>& workload_;
    PlatformConfig platform_;
    ProgramSimConfig config_;

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::uint64_t seq_ = 0;
    Cycles now_;
    bool stopped_ = false;

    std::vector<std::vector<std::size_t>> traces_;
    std::vector<PJob> jobs_;
    std::vector<PCore> cores_;
    std::vector<std::size_t> current_job_of_task_;
    std::vector<AccessCount> fetches_completed_;
    BusArbiter arbiter_;

    ProgramSimResult result_;
};

} // namespace

ProgramSimResult simulate_programs(const std::vector<ProgramTask>& workload,
                                   const PlatformConfig& platform,
                                   const ProgramSimConfig& config)
{
    if (workload.empty()) {
        return ProgramSimResult{};
    }
    ProgramSimulation simulation(workload, platform, config);
    return simulation.run();
}

} // namespace cpa::sim
