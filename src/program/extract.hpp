// Parameter extraction: measures (PD, MD, MDʳ, ECB, UCB, PCB) of a Program
// on an LRU instruction cache (ways = 1 is the paper's direct-mapped L1) —
// the role Heptane plays in the paper.
//
// Because LRU replacement is deterministic, simulating the reference trace
// gives exact values for a fixed path:
//   MD  = misses from a cold cache,
//   PCB = blocks whose set holds at most `ways` distinct program blocks
//         ("once loaded, never evicted or invalidated by the task itself";
//         exact for direct-mapped, safely under-approximate for LRU),
//   MDʳ = misses with all PCBs pre-loaded,
//   ECB = every set the program touches,
//   UCB = sets of blocks that are reused while cached (i.e., hit at least
//         once in the cold simulation).
//
// Exact only for programs without alternatives (the default trace takes
// branch 0); use program/abstract.hpp for sound bounds on branchy programs.
//
// Invariant (tested, direct-mapped): MD == MDʳ + |PCB| — each persistent
// block cold-misses exactly once and pre-loading it removes exactly that
// miss.
#pragma once

#include "cache/geometry.hpp"
#include "program/program.hpp"
#include "tasks/task.hpp"
#include "util/set_mask.hpp"
#include "util/units.hpp"

#include <cstdint>
#include <string>

namespace cpa::program {

struct ExtractedParams {
    std::string name;
    util::Cycles pd;              // trace length * cycles_per_fetch
    util::AccessCount md;         // cold-cache misses
    util::AccessCount md_residual; // misses with PCBs pre-loaded
    util::SetMask ecb;
    util::SetMask ucb;
    util::SetMask pcb;
    // Maximum over all program points of the number of simultaneously useful
    // blocks (the per-point UCB count used by tighter CRPD formulations).
    std::size_t ucb_max_point = 0;
};

[[nodiscard]] ExtractedParams
extract_parameters(const Program& program, const cache::CacheGeometry& geometry);

// Builds an analysis-ready task from extracted parameters. `period` and
// `deadline` are in cycles; deadline defaults to the period.
[[nodiscard]] tasks::Task to_task(const ExtractedParams& params,
                                  std::size_t core, util::Cycles period,
                                  util::Cycles deadline = util::Cycles{0});

} // namespace cpa::program
