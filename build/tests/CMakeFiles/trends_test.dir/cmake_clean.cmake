file(REMOVE_RECURSE
  "CMakeFiles/trends_test.dir/experiments/trends_test.cpp.o"
  "CMakeFiles/trends_test.dir/experiments/trends_test.cpp.o.d"
  "trends_test"
  "trends_test.pdb"
  "trends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
