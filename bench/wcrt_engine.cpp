// Engine-vs-engine perf bench for the Eq. (19) inner fixed point: runs the
// reference (paper-shaped) and incremental (breakpoint-driven) WCRT solvers
// over the same task sets and reports wall time plus a deterministic result
// checksum per engine. The checksums and iteration totals are emitted as
// obs counters so bench_compare.py hard-gates them against
// bench/history/baseline-small.json: any divergence between the engines —
// or any change to either engine's iterate sequence — fails the trajectory
// gate, not just the differential test suite. Exits nonzero if the two
// engines disagree on any profile.
//
// Profiles: "small" is the paper's default scale (4 cores x 8 tasks/core),
// "large" is the 16 cores x 32 tasks/core stress scale where the
// incremental engine's asymptotic advantage (O(changed terms) instead of
// O(n) work per iteration) dominates. CPA_TASKSETS scales the set count.
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include "common.hpp"

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace cpa;

struct EngineOutcome {
    std::uint64_t checksum = 14695981039346656037ULL; // FNV-1a offset basis
    std::int64_t inner_iterations = 0;
    std::int64_t outer_iterations = 0;
    std::int64_t schedulable = 0;
    double seconds = 0.0;

    void fold(std::uint64_t value)
    {
        checksum ^= value;
        checksum *= 1099511628211ULL; // FNV-1a prime
    }
};

struct Profile {
    std::string name;
    analysis::PlatformConfig platform;
    benchdata::GenerationConfig generation;
    std::size_t task_sets = 0;
};

EngineOutcome run_profile(const Profile& profile,
                          analysis::WcrtEngine engine)
{
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), profile.generation.cache_sets);
    EngineOutcome outcome;
    for (std::size_t n = 0; n < profile.task_sets; ++n) {
        util::Rng rng(util::seed_for(2020, n));
        const tasks::TaskSet ts =
            benchdata::generate_task_set(rng, profile.generation, pool);
        // Table construction is engine-independent; keep it outside the
        // timed region so `seconds` isolates the solver loops.
        const analysis::InterferenceTables tables(
            ts, analysis::CrpdMethod::kEcbUnion);
        for (const analysis::BusPolicy policy :
             {analysis::BusPolicy::kFixedPriority,
              analysis::BusPolicy::kRoundRobin,
              analysis::BusPolicy::kTdma}) {
            analysis::AnalysisConfig config;
            config.policy = policy;
            config.persistence_aware = true;
            config.wcrt_engine = engine;

            const auto start = std::chrono::steady_clock::now();
            const analysis::WcrtResult result =
                analysis::compute_wcrt(ts, profile.platform, config, tables);
            outcome.seconds += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count();

            for (const util::Cycles r : result.response) {
                outcome.fold(
                    static_cast<std::uint64_t>(util::to_metric(r)));
            }
            outcome.fold(result.schedulable ? 1 : 2);
            outcome.fold(static_cast<std::uint64_t>(result.outer_iterations));
            outcome.fold(static_cast<std::uint64_t>(result.inner_iterations));
            outcome.inner_iterations +=
                static_cast<std::int64_t>(result.inner_iterations);
            outcome.outer_iterations +=
                static_cast<std::int64_t>(result.outer_iterations);
            outcome.schedulable += result.schedulable ? 1 : 0;
        }
    }
    return outcome;
}

// Deterministic counters for the trajectory gate. Written via the registry
// directly (not CPA_COUNT) because the bench runs with metrics disabled to
// time the uninstrumented hot path.
void record(const std::string& profile, const std::string& engine,
            const EngineOutcome& outcome)
{
    auto& registry = obs::MetricsRegistry::global();
    const std::string prefix = "wcrt_engine." + profile + "." + engine;
    // Counters are int64; drop the checksum's top bit so the JSON value
    // stays non-negative.
    registry.counter(prefix + ".checksum")
        .add(static_cast<std::int64_t>(outcome.checksum >> 1));
    registry.counter(prefix + ".inner_iterations")
        .add(outcome.inner_iterations);
    registry.counter(prefix + ".outer_iterations")
        .add(outcome.outer_iterations);
    registry.counter(prefix + ".schedulable").add(outcome.schedulable);
}

} // namespace

int main()
{
    // enable_metrics=false: the timed loops measure the uninstrumented hot
    // path (as analysis_perf does); the gate counters are recorded
    // explicitly afterwards.
    bench::BenchReport bench_report("wcrt_engine",
                                    /*enable_metrics=*/false);

    const std::size_t small_sets = experiments::task_sets_from_env(12);
    const std::size_t large_sets = std::max<std::size_t>(1, small_sets / 4);

    std::vector<Profile> profiles;
    {
        Profile small{"small", bench::default_platform(),
                      bench::default_generation(), small_sets};
        small.generation.per_core_utilization = 0.5;
        profiles.push_back(std::move(small));
    }
    {
        Profile large;
        large.name = "large";
        large.platform.num_cores = 16;
        large.platform.cache_sets = 256;
        large.platform.d_mem =
            util::cycles_from_microseconds(util::Microseconds{5});
        large.platform.slot_size = 2;
        large.generation = bench::default_generation();
        large.generation.num_cores = 16;
        large.generation.tasks_per_core = 32;
        large.generation.per_core_utilization = 0.35;
        large.task_sets = large_sets;
        profiles.push_back(std::move(large));
    }

    util::TextTable table({"profile", "task sets", "engine",
                           "inner iterations", "seconds", "speedup"});
    bool mismatch = false;
    for (const Profile& profile : profiles) {
        bench_report.section(profile.name);
        const EngineOutcome reference =
            run_profile(profile, analysis::WcrtEngine::kReference);
        const EngineOutcome incremental =
            run_profile(profile, analysis::WcrtEngine::kIncremental);

        if (reference.checksum != incremental.checksum ||
            reference.inner_iterations != incremental.inner_iterations ||
            reference.outer_iterations != incremental.outer_iterations ||
            reference.schedulable != incremental.schedulable) {
            std::cerr << "wcrt_engine: ENGINE MISMATCH on profile '"
                      << profile.name << "' (checksum " << reference.checksum
                      << " vs " << incremental.checksum << ", inner "
                      << reference.inner_iterations << " vs "
                      << incremental.inner_iterations << ")\n";
            mismatch = true;
        }
        record(profile.name, "reference", reference);
        record(profile.name, "incremental", incremental);

        const double speedup = incremental.seconds > 0.0
                                   ? reference.seconds / incremental.seconds
                                   : 0.0;
        table.add_row({profile.name, std::to_string(profile.task_sets),
                       "reference",
                       std::to_string(reference.inner_iterations),
                       util::TextTable::num(reference.seconds, 4), "1.00"});
        table.add_row({profile.name, std::to_string(profile.task_sets),
                       "incremental",
                       std::to_string(incremental.inner_iterations),
                       util::TextTable::num(incremental.seconds, 4),
                       util::TextTable::num(speedup, 2)});
    }

    std::cout << "== WCRT engine comparison: reference vs incremental ==\n"
              << "(identical iterate sequences required; speedup = "
                 "reference/incremental wall time)\n";
    table.print(std::cout);
    bench::maybe_write_csv("wcrt-engine", table);
    return mismatch ? 1 : 0;
}
