file(REMOVE_RECURSE
  "../bench/fig3c_cache_size"
  "../bench/fig3c_cache_size.pdb"
  "CMakeFiles/fig3c_cache_size.dir/fig3c_cache_size.cpp.o"
  "CMakeFiles/fig3c_cache_size.dir/fig3c_cache_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
