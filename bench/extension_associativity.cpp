// Extension bench (the paper's future-work direction): how does cache
// associativity change the persistence picture? The bus-contention analysis
// is associativity-agnostic — it consumes (MD, MDʳ, ECB, UCB, PCB) — so we
// re-extract those parameters from the synthetic benchmark programs on LRU
// caches of 1..4 ways (same total capacity is NOT held constant: the
// set count stays at 256, so more ways = more capacity, isolating the
// conflict-miss effect) and rerun the schedulability analysis.
//
// Expected: associativity removes self-conflicts (fdct, nsichneu,
// statemate), growing both the persistent footprint and schedulability —
// persistence-aware analysis benefits disproportionately.
#include "analysis/schedulability.hpp"
#include "program/extract.hpp"
#include "program/synthetic.hpp"
#include "common.hpp"

#include <iostream>

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("extension_associativity");

    const std::size_t task_sets = experiments::task_sets_from_env(100);
    const auto platform = bench::default_platform();

    // Extract the synthetic suite per associativity.
    std::cout << "== Extension: parameters vs associativity (256 sets) ==\n";
    util::TextTable extraction(
        {"ways", "program", "MD", "MDr", "|PCB|", "|ECB|"});
    std::vector<std::vector<program::ExtractedParams>> pools;
    for (const std::size_t ways : {1u, 2u, 4u}) {
        std::vector<program::ExtractedParams> pool;
        for (const auto& p : program::synthetic_suite()) {
            pool.push_back(
                program::extract_parameters(p, {256, 32, ways}));
            const auto& e = pool.back();
            extraction.add_row({std::to_string(ways), e.name,
                                util::to_string(e.md),
                                util::to_string(e.md_residual),
                                std::to_string(e.pcb.popcount()),
                                std::to_string(e.ecb.popcount())});
        }
        pools.push_back(std::move(pool));
    }
    extraction.print(std::cout);
    bench::maybe_write_csv("extension-associativity-extraction", extraction);

    // Schedulability: 2 cores x 3 tasks drawn from the extracted suite,
    // random rotation placement, T = D = 3..8x the isolated demand.
    std::cout << "\n== Extension: schedulable sets vs associativity "
                 "(FP bus, 2 cores x 3 tasks) ==\n(task sets per point: "
              << task_sets << ")\n";
    util::TextTable table({"ways", "FP-CP", "FP-NoCP"});

    analysis::PlatformConfig small = platform;
    small.num_cores = 2;

    for (std::size_t w = 0; w < pools.size(); ++w) {
        const auto& pool = pools[w];
        std::size_t with = 0;
        std::size_t without = 0;
        util::Rng rng(606);
        for (std::size_t n = 0; n < task_sets; ++n) {
            tasks::TaskSet ts(2, 256);
            for (std::size_t core = 0; core < 2; ++core) {
                for (int k = 0; k < 3; ++k) {
                    const auto& params =
                        pool[rng.uniform_index(pool.size())];
                    const auto offset = rng.uniform_index(256);
                    tasks::Task task = program::to_task(
                        params, core,
                        (params.pd + params.md * small.d_mem) *
                            rng.uniform_int(3, 8));
                    task.ecb = params.ecb.rotated(offset);
                    task.ucb = params.ucb.rotated(offset);
                    task.pcb = params.pcb.rotated(offset);
                    ts.add_task(std::move(task));
                }
            }
            ts.assign_priorities_deadline_monotonic();
            ts.validate();

            const analysis::InterferenceTables tables(
                ts, analysis::CrpdMethod::kEcbUnion);
            analysis::AnalysisConfig cp;
            cp.policy = analysis::BusPolicy::kFixedPriority;
            cp.persistence_aware = true;
            analysis::AnalysisConfig nocp = cp;
            nocp.persistence_aware = false;
            with += analysis::is_schedulable(ts, small, cp, tables) ? 1u : 0u;
            without +=
                analysis::is_schedulable(ts, small, nocp, tables) ? 1u : 0u;
        }
        const std::size_t ways = w == 0 ? 1 : (w == 1 ? 2 : 4);
        table.add_row({std::to_string(ways), std::to_string(with),
                       std::to_string(without)});
    }
    table.print(std::cout);
    bench::maybe_write_csv("extension-associativity-schedulability", table);
    return 0;
}
