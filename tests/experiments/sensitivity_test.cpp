#include "experiments/sensitivity.hpp"

#include "analysis/schedulability.hpp"
#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::experiments {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;

analysis::PlatformConfig small_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    return platform;
}

TEST(CriticalDmem, FindsExactThreshold)
{
    // Single task: PD=40, MD=6, T=D=100 -> schedulable iff 40 + 6*d <= 100,
    // i.e., d <= 10.
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 40, 6, 6, 100, 0, {}, {}, {}}});
    analysis::AnalysisConfig config;
    const util::Cycles critical =
        critical_d_mem(ts, small_platform(), config, util::Cycles{1000});
    EXPECT_EQ(critical, util::Cycles{10});
}

TEST(CriticalDmem, ZeroWhenNeverSchedulable)
{
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 200, 6, 6, 100, 0, {}, {}, {}}});
    analysis::AnalysisConfig config;
    EXPECT_EQ(critical_d_mem(ts, small_platform(), config, util::Cycles{1000}),
              util::Cycles{0});
}

TEST(CriticalDmem, SaturatesAtUpperBound)
{
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 1, 1, 1, 1000000, 0, {}, {}, {}}});
    analysis::AnalysisConfig config;
    EXPECT_EQ(critical_d_mem(ts, small_platform(), config, util::Cycles{50}),
              util::Cycles{50});
}

TEST(CriticalDmem, RejectsBadUpperBound)
{
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 1, 1, 1, 100, 0, {}, {}, {}}});
    analysis::AnalysisConfig config;
    EXPECT_THROW((void)critical_d_mem(ts, small_platform(), config,
                                      util::Cycles{0}),
                 std::invalid_argument);
}

TEST(CriticalDmem, SchedulabilityAntitoneInDmemAroundThreshold)
{
    // Empirical check of the monotonicity assumption behind the binary
    // search, on a random multi-core set.
    util::Rng rng(77);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.3;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    const tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);
    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kRoundRobin;

    const util::Cycles critical =
        critical_d_mem(ts, small_platform(), config, util::Cycles{200});
    const analysis::InterferenceTables tables(ts, config.crpd);
    for (util::Cycles d{1}; d <= util::Cycles{60}; d += util::Cycles{1}) {
        analysis::PlatformConfig platform = small_platform();
        platform.d_mem = d;
        EXPECT_EQ(analysis::is_schedulable(ts, platform, config, tables),
                  d <= critical)
            << "d_mem=" << d;
    }
}

TEST(BreakdownUtilization, HigherForPerfectBusThanTdma)
{
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 4;
    gen.cache_sets = 64;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    analysis::AnalysisConfig perfect;
    perfect.policy = analysis::BusPolicy::kPerfect;
    analysis::AnalysisConfig tdma;
    tdma.policy = analysis::BusPolicy::kTdma;

    const double u_perfect = breakdown_utilization(gen, pool,
                                                   small_platform(), perfect,
                                                   /*seed=*/3);
    const double u_tdma =
        breakdown_utilization(gen, pool, small_platform(), tdma, /*seed=*/3);
    EXPECT_GE(u_perfect, u_tdma);
    EXPECT_GT(u_perfect, 0.0);
}

TEST(BreakdownUtilization, PersistenceExtendsBreakdown)
{
    benchdata::GenerationConfig gen;
    gen.num_cores = 4;
    gen.tasks_per_core = 8;
    gen.cache_sets = 256;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);
    analysis::PlatformConfig platform;

    analysis::AnalysisConfig with;
    with.policy = analysis::BusPolicy::kFixedPriority;
    with.persistence_aware = true;
    analysis::AnalysisConfig without = with;
    without.persistence_aware = false;

    const double u_with =
        breakdown_utilization(gen, pool, platform, with, /*seed=*/9);
    const double u_without =
        breakdown_utilization(gen, pool, platform, without, /*seed=*/9);
    EXPECT_GE(u_with, u_without);
}

TEST(BreakdownUtilization, RejectsBadStep)
{
    benchdata::GenerationConfig gen;
    gen.cache_sets = 64;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    analysis::AnalysisConfig config;
    EXPECT_THROW((void)breakdown_utilization(gen, pool, small_platform(),
                                             config, 1, 0.0),
                 std::invalid_argument);
}

} // namespace
} // namespace cpa::experiments
