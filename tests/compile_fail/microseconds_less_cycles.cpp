// MUST NOT COMPILE: microseconds and cycles are different dimensions; a
// comparison requires an explicit conversion (util::cycles_from_microseconds)
// so the 2-cycles-per-microsecond platform constant is never applied
// implicitly.
#include "util/units.hpp"

bool bad()
{
    return cpa::util::Microseconds{5} < cpa::util::Cycles{5};
}
