// Synthetic stand-ins for the Mälardalen benchmarks.
//
// We cannot ship the original binaries or the Heptane toolchain, so these
// programs reproduce the *structural* features that drive the paper's
// parameters: code footprint relative to the cache, loop-dominated reuse,
// and self-conflicting layouts (code larger than the cache or functions that
// alias in the cache). Running extract_parameters() on them regenerates a
// Table-I-shaped parameter table from first principles, at any cache size —
// which is exactly the role the Heptane extraction plays in the paper.
#pragma once

#include "program/program.hpp"

#include <vector>

namespace cpa::program {

// Small LCD-digit decoder: tiny straight-line code with a short loop;
// everything fits in the cache (all blocks persistent).
[[nodiscard]] Program synthetic_lcdnum();

// Bubble sort: tiny code footprint, dominated by a large nested loop (high
// reuse, fully persistent footprint).
[[nodiscard]] Program synthetic_bsort100();

// LU decomposition: medium footprint, triangular nested loops.
[[nodiscard]] Program synthetic_ludcmp();

// Forward DCT: two code regions that alias in a 256-set cache, so part of
// the footprint self-conflicts (persistent share < footprint).
[[nodiscard]] Program synthetic_fdct();

// Petri-net simulator: code far larger than a 256-set cache; every set is
// multiply occupied, so nothing is persistent at 256 sets and every
// iteration refetches.
[[nodiscard]] Program synthetic_nsichneu();

// Statechart code generator output: footprint roughly twice a 256-set cache
// with a small persistent tail.
[[nodiscard]] Program synthetic_statemate();

// --- Calibrated stand-ins for extended-table rows ------------------------

// Binary search over a small array: tiny, fully persistent footprint.
[[nodiscard]] Program synthetic_bs();

// CRC over a buffer: small table-driven loop, moderate reuse.
[[nodiscard]] Program synthetic_crc();

// Matrix multiply: triple loop over a compact kernel, extreme reuse.
[[nodiscard]] Program synthetic_matmult();

// Integer JPEG DCT: two passes that alias in a 256-set cache (like fdct,
// with a persistent prologue of 28 sets).
[[nodiscard]] Program synthetic_jfdctint();

// Matrix inversion: main kernel plus a helper region aliasing its tail.
[[nodiscard]] Program synthetic_minver();

// Square-root/quartic solver: small kernel with a helper that aliases its
// last 12 sets.
[[nodiscard]] Program synthetic_qurt();

// The six Table I programs, in Table I order.
[[nodiscard]] std::vector<Program> synthetic_suite();

// Table I programs plus the extended-row stand-ins.
[[nodiscard]] std::vector<Program> synthetic_suite_extended();

} // namespace cpa::program
