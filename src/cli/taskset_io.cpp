#include "cli/taskset_io.hpp"

#include "util/set_mask.hpp"
#include "util/units.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cpa::cli {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message)
{
    throw std::runtime_error("task-set file, line " + std::to_string(line) +
                             ": " + message);
}

std::int64_t parse_int(const std::string& text, std::size_t line,
                       const std::string& field)
{
    try {
        std::size_t consumed = 0;
        const long long value = std::stoll(text, &consumed);
        if (consumed != text.size()) {
            fail(line, "trailing characters in " + field + ": '" + text +
                           "'");
        }
        return value;
    } catch (const std::invalid_argument&) {
        fail(line, "expected an integer for " + field + ", got '" + text +
                       "'");
    } catch (const std::out_of_range&) {
        fail(line, field + " out of range: '" + text + "'");
    }
}

// "0-19,42,100-103" -> indices.
std::vector<std::size_t> parse_ranges(const std::string& text,
                                      std::size_t line,
                                      const std::string& field)
{
    std::vector<std::size_t> indices;
    if (text.empty()) {
        return indices;
    }
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ',')) {
        const std::size_t dash = part.find('-');
        if (dash == std::string::npos) {
            indices.push_back(static_cast<std::size_t>(
                parse_int(part, line, field)));
        } else {
            const auto lo = static_cast<std::size_t>(
                parse_int(part.substr(0, dash), line, field));
            const auto hi = static_cast<std::size_t>(
                parse_int(part.substr(dash + 1), line, field));
            if (hi < lo) {
                fail(line, "descending range in " + field + ": '" + part +
                               "'");
            }
            for (std::size_t i = lo; i <= hi; ++i) {
                indices.push_back(i);
            }
        }
    }
    return indices;
}

// Splits "key=value" tokens; the first token without '=' is returned as the
// positional name (used for the task name).
struct Fields {
    std::string positional;
    std::map<std::string, std::string> values;
};

Fields split_fields(std::istringstream& stream, std::size_t line)
{
    Fields fields;
    std::string token;
    while (stream >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (!fields.positional.empty()) {
                fail(line, "unexpected token '" + token + "'");
            }
            fields.positional = token;
        } else {
            fields.values[token.substr(0, eq)] = token.substr(eq + 1);
        }
    }
    return fields;
}

std::string take(Fields& fields, const std::string& key, std::size_t line,
                 bool required, const std::string& fallback = "")
{
    const auto it = fields.values.find(key);
    if (it == fields.values.end()) {
        if (required) {
            fail(line, "missing required field '" + key + "'");
        }
        return fallback;
    }
    std::string value = it->second;
    fields.values.erase(it);
    return value;
}

} // namespace

ParsedSystem parse_task_set(std::istream& in)
{
    analysis::PlatformConfig platform;
    std::optional<analysis::L2Config> l2;
    bool have_platform = false;
    std::string priority_mode = "file";

    struct PendingTask {
        tasks::Task task;
        std::vector<std::size_t> ecb;
        std::vector<std::size_t> ucb;
        std::vector<std::size_t> pcb;
        std::vector<std::size_t> ecb2;
        std::vector<std::size_t> pcb2;
        std::int64_t mdr2 = -1; // -1 = default to mdr
        std::size_t line = 0;
    };
    std::vector<PendingTask> pending;

    std::string raw;
    std::size_t line_number = 0;
    while (std::getline(in, raw)) {
        ++line_number;
        const std::size_t comment = raw.find('#');
        if (comment != std::string::npos) {
            raw.resize(comment);
        }
        std::istringstream stream(raw);
        std::string directive;
        if (!(stream >> directive)) {
            continue; // blank
        }

        if (directive == "platform") {
            if (have_platform) {
                fail(line_number, "duplicate platform line");
            }
            have_platform = true;
            Fields fields = split_fields(stream, line_number);
            platform.num_cores = static_cast<std::size_t>(parse_int(
                take(fields, "cores", line_number, true), line_number,
                "cores"));
            platform.cache_sets = static_cast<std::size_t>(parse_int(
                take(fields, "cache_sets", line_number, true), line_number,
                "cache_sets"));
            const std::string d_mem_us =
                take(fields, "d_mem_us", line_number, false);
            const std::string d_mem_cycles =
                take(fields, "d_mem_cycles", line_number, false);
            if (!d_mem_us.empty() && !d_mem_cycles.empty()) {
                fail(line_number, "give d_mem_us or d_mem_cycles, not both");
            }
            if (!d_mem_us.empty()) {
                platform.d_mem = util::cycles_from_microseconds(
                    util::Microseconds{
                        parse_int(d_mem_us, line_number, "d_mem_us")});
            } else if (!d_mem_cycles.empty()) {
                platform.d_mem = util::Cycles{
                    parse_int(d_mem_cycles, line_number, "d_mem_cycles")};
            }
            const std::string slot =
                take(fields, "slot_size", line_number, false);
            if (!slot.empty()) {
                platform.slot_size = parse_int(slot, line_number,
                                               "slot_size");
            }
            const std::string l2_sets =
                take(fields, "l2_sets", line_number, false);
            if (!l2_sets.empty()) {
                analysis::L2Config l2_config;
                l2_config.sets = static_cast<std::size_t>(
                    parse_int(l2_sets, line_number, "l2_sets"));
                if (l2_config.sets == 0) {
                    fail(line_number, "l2_sets must be > 0");
                }
                const std::string d_l2_us =
                    take(fields, "d_l2_us", line_number, false);
                const std::string d_l2_cycles =
                    take(fields, "d_l2_cycles", line_number, false);
                if (!d_l2_us.empty() && !d_l2_cycles.empty()) {
                    fail(line_number, "give d_l2_us or d_l2_cycles, not both");
                }
                if (!d_l2_us.empty()) {
                    l2_config.d_l2 = util::cycles_from_microseconds(
                        util::Microseconds{
                            parse_int(d_l2_us, line_number, "d_l2_us")});
                } else if (!d_l2_cycles.empty()) {
                    l2_config.d_l2 = util::Cycles{
                        parse_int(d_l2_cycles, line_number, "d_l2_cycles")};
                }
                l2 = l2_config;
            }
            priority_mode =
                take(fields, "priority", line_number, false, "file");
            if (priority_mode != "file" && priority_mode != "dm" &&
                priority_mode != "rm") {
                fail(line_number, "priority must be file, dm or rm");
            }
            if (!fields.values.empty()) {
                fail(line_number, "unknown platform field '" +
                                      fields.values.begin()->first + "'");
            }
        } else if (directive == "task") {
            if (!have_platform) {
                fail(line_number, "task before platform line");
            }
            Fields fields = split_fields(stream, line_number);
            PendingTask entry;
            entry.line = line_number;
            entry.task.name = fields.positional.empty() ? "task" +
                                      std::to_string(pending.size() + 1)
                                                        : fields.positional;
            entry.task.core = static_cast<std::size_t>(parse_int(
                take(fields, "core", line_number, true), line_number,
                "core"));
            entry.task.pd = util::Cycles{
                parse_int(take(fields, "pd", line_number, true),
                          line_number, "pd")};
            entry.task.md = util::AccessCount{
                parse_int(take(fields, "md", line_number, true),
                          line_number, "md")};
            entry.task.md_residual = util::AccessCount{
                parse_int(take(fields, "mdr", line_number, true),
                          line_number, "mdr")};
            entry.task.period = util::Cycles{
                parse_int(take(fields, "period", line_number, true),
                          line_number, "period")};
            const std::string deadline =
                take(fields, "deadline", line_number, false);
            entry.task.deadline =
                deadline.empty() ? entry.task.period
                                 : util::Cycles{parse_int(deadline,
                                                          line_number,
                                                          "deadline")};
            const std::string jitter =
                take(fields, "jitter", line_number, false);
            entry.task.jitter =
                jitter.empty()
                    ? util::Cycles{0}
                    : util::Cycles{parse_int(jitter, line_number, "jitter")};
            entry.ecb = parse_ranges(take(fields, "ecb", line_number, false),
                                     line_number, "ecb");
            entry.ucb = parse_ranges(take(fields, "ucb", line_number, false),
                                     line_number, "ucb");
            entry.pcb = parse_ranges(take(fields, "pcb", line_number, false),
                                     line_number, "pcb");
            entry.ecb2 = parse_ranges(
                take(fields, "ecb2", line_number, false), line_number,
                "ecb2");
            entry.pcb2 = parse_ranges(
                take(fields, "pcb2", line_number, false), line_number,
                "pcb2");
            const std::string mdr2 =
                take(fields, "mdr2", line_number, false);
            if (!mdr2.empty()) {
                entry.mdr2 = parse_int(mdr2, line_number, "mdr2");
            }
            if (!l2.has_value() &&
                (!entry.ecb2.empty() || !entry.pcb2.empty() ||
                 entry.mdr2 >= 0)) {
                fail(line_number,
                     "l2 task fields require l2_sets on the platform line");
            }
            if (!fields.values.empty()) {
                fail(line_number, "unknown task field '" +
                                      fields.values.begin()->first + "'");
            }
            pending.push_back(std::move(entry));
        } else {
            fail(line_number, "unknown directive '" + directive + "'");
        }
    }

    if (!have_platform) {
        throw std::runtime_error("task-set file: missing platform line");
    }

    if (l2.has_value() && priority_mode != "file") {
        throw std::runtime_error(
            "task-set file: l2 footprints are positional; use priority=file");
    }

    ParsedSystem parsed;
    parsed.platform = platform;
    parsed.l2 = l2;
    parsed.ts = tasks::TaskSet(platform.num_cores, platform.cache_sets);
    for (PendingTask& entry : pending) {
        try {
            entry.task.ecb = util::SetMask::from_indices(platform.cache_sets,
                                                         entry.ecb);
            entry.task.ucb = util::SetMask::from_indices(platform.cache_sets,
                                                         entry.ucb);
            entry.task.pcb = util::SetMask::from_indices(platform.cache_sets,
                                                         entry.pcb);
            if (l2.has_value()) {
                analysis::L2Footprint footprint;
                footprint.ecb2 = util::SetMask::from_indices(l2->sets,
                                                             entry.ecb2);
                footprint.pcb2 = util::SetMask::from_indices(l2->sets,
                                                             entry.pcb2);
                if (!footprint.pcb2.is_subset_of(footprint.ecb2)) {
                    throw std::invalid_argument("pcb2 not a subset of ecb2");
                }
                footprint.md_residual_l2 =
                    entry.mdr2 >= 0 ? util::AccessCount{entry.mdr2}
                                    : entry.task.md_residual;
                if (footprint.md_residual_l2 > entry.task.md_residual) {
                    throw std::invalid_argument("mdr2 exceeds mdr");
                }
                parsed.l2_footprints.push_back(std::move(footprint));
            }
            parsed.ts.add_task(std::move(entry.task));
        } catch (const std::exception& error) {
            fail(entry.line, error.what());
        }
    }
    if (priority_mode == "dm") {
        parsed.ts.assign_priorities_deadline_monotonic();
    } else if (priority_mode == "rm") {
        parsed.ts.assign_priorities_rate_monotonic();
    }
    try {
        parsed.ts.validate();
    } catch (const std::exception& error) {
        throw std::runtime_error(std::string("task-set file: ") +
                                 error.what());
    }
    return parsed;
}

ParsedSystem parse_task_set_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open task-set file: " + path);
    }
    return parse_task_set(in);
}

namespace {

std::string format_ranges(const util::SetMask& mask)
{
    const std::vector<std::size_t> indices = mask.to_indices();
    std::string out;
    std::size_t i = 0;
    while (i < indices.size()) {
        std::size_t j = i;
        while (j + 1 < indices.size() && indices[j + 1] == indices[j] + 1) {
            ++j;
        }
        if (!out.empty()) {
            out += ',';
        }
        out += std::to_string(indices[i]);
        if (j > i) {
            out += '-' + std::to_string(indices[j]);
        }
        i = j + 1;
    }
    return out;
}

} // namespace

void write_task_set(std::ostream& out,
                    const analysis::PlatformConfig& platform,
                    const tasks::TaskSet& ts)
{
    out << "platform cores=" << platform.num_cores
        << " cache_sets=" << platform.cache_sets
        << " d_mem_cycles=" << platform.d_mem
        << " slot_size=" << platform.slot_size << " priority=file\n";
    for (const tasks::Task& task : ts.tasks()) {
        out << "task " << task.name << " core=" << task.core
            << " pd=" << task.pd << " md=" << task.md
            << " mdr=" << task.md_residual << " period=" << task.period;
        if (task.deadline != task.period) {
            out << " deadline=" << task.deadline;
        }
        if (task.jitter != util::Cycles{0}) {
            out << " jitter=" << task.jitter;
        }
        if (!task.ecb.empty()) {
            out << " ecb=" << format_ranges(task.ecb);
        }
        if (!task.ucb.empty()) {
            out << " ucb=" << format_ranges(task.ucb);
        }
        if (!task.pcb.empty()) {
            out << " pcb=" << format_ranges(task.pcb);
        }
        out << '\n';
    }
}

} // namespace cpa::cli
