// Sporadic task model of the paper (Section II).
//
// Each task τ_i is the quadruple (PD_i, MD_i, D_i, T_i) extended with the
// cache footprint information the persistence-aware analysis needs:
//   PD_i  — worst-case execution demand assuming every access hits (cycles),
//   MD_i  — worst-case number of main-memory (bus) accesses in isolation,
//   MDʳ_i — residual demand: accesses when all PCBs are already cached,
//   ECB_i — evicting cache blocks: every cache set the task touches,
//   UCB_i — useful cache blocks (for CRPD, Eq. (2)),
//   PCB_i — persistent cache blocks (for CPRO/M̂D, Eq. (10) and (14)).
// Tasks are partitioned: each is statically assigned to one core, and
// priorities are unique across the whole system (global priority order).
#pragma once

#include "util/set_mask.hpp"
#include "util/units.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpa::tasks {

using util::AccessCount;
using util::Cycles;
using util::SetMask;

struct Task {
    std::string name;       // benchmark the parameters were drawn from
    std::size_t core = 0;   // index of the core the task is assigned to
    Cycles pd;              // PD_i: pure processing demand, cycles
    AccessCount md;         // MD_i: worst-case #bus accesses in isolation
    AccessCount md_residual; // MDʳ_i: accesses with PCBs pre-loaded
    Cycles deadline;        // D_i, cycles (constrained: D_i <= T_i)
    Cycles period;          // T_i: minimum inter-arrival time, cycles
    // Release jitter J_i: a job arriving at time a is released (made ready)
    // anywhere in [a, a + J_i]. The paper's model has J = 0; the jitter
    // extension widens every job-count window by J and checks
    // J_i + R_i <= D_i. Constrained to J_i + D_i <= T_i so at most one job
    // is active at a time.
    Cycles jitter;
    SetMask ecb;            // ECB_i
    SetMask ucb;            // UCB_i ⊆ ECB_i
    SetMask pcb;            // PCB_i ⊆ ECB_i
    double utilization = 0; // generation-time utilization (bookkeeping)

    // Total worst-case demand in isolation for a memory latency d_mem.
    [[nodiscard]] Cycles isolated_demand(Cycles d_mem) const
    {
        return pd + md * d_mem;
    }

    // Deadline measured from the RELEASE (the WCRT reference point): a job
    // arriving at a and released up to J later must still finish by a + D,
    // so its response time may be at most D - J.
    [[nodiscard]] Cycles effective_deadline() const
    {
        return deadline - jitter;
    }
};

// A partitioned task set. Tasks are stored in priority order: index 0 is the
// highest-priority task, matching the paper's convention that τ_1 has the
// highest priority; hp(i) is therefore exactly the index range [0, i).
class TaskSet {
public:
    TaskSet(std::size_t num_cores, std::size_t cache_sets);

    // Appends a task with the next (lowest) priority. The task's footprint
    // masks must range over `cache_sets()` and its core must be valid.
    void add_task(Task task);

    [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
    [[nodiscard]] std::size_t num_cores() const noexcept { return num_cores_; }
    [[nodiscard]] std::size_t cache_sets() const noexcept { return cache_sets_; }

    [[nodiscard]] const Task& operator[](std::size_t i) const
    {
        return tasks_[i];
    }
    [[nodiscard]] Task& operator[](std::size_t i) { return tasks_[i]; }

    [[nodiscard]] const std::vector<Task>& tasks() const noexcept
    {
        return tasks_;
    }

    // Indices of the tasks assigned to `core`, in priority order.
    [[nodiscard]] const std::vector<std::size_t>&
    tasks_on_core(std::size_t core) const;

    // Total processor utilization of `core`: Σ (PD_i + MD_i·d_mem)/T_i.
    [[nodiscard]] double core_utilization(std::size_t core,
                                          Cycles d_mem) const;

    // Total bus utilization: Σ over all tasks of MD_i·d_mem / T_i. The
    // "perfect bus" baseline of Fig. 2 deems a set unschedulable when this
    // exceeds 1.
    [[nodiscard]] double bus_utilization(Cycles d_mem) const;

    // Re-sorts tasks by ascending deadline (Deadline Monotonic) or period
    // (Rate Monotonic), re-establishing the priority-order invariant.
    void assign_priorities_deadline_monotonic();
    void assign_priorities_rate_monotonic();

    // Throws std::invalid_argument if any task violates the model invariants
    // (MDʳ <= MD, UCB/PCB ⊆ ECB, 0 < D <= T, valid core, mask universes).
    void validate() const;

private:
    std::size_t num_cores_;
    std::size_t cache_sets_;
    std::vector<Task> tasks_;
    std::vector<std::vector<std::size_t>> per_core_;

    void rebuild_core_index();
};

} // namespace cpa::tasks
