#include "experiments/sweep.hpp"

#include "analysis/request.hpp"
#include "analysis/session.hpp"
#include "benchdata/benchmark.hpp"
#include "check/tolerance.hpp"
#include "obs/obs.hpp"
#include "obs/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>

namespace cpa::experiments {

using analysis::AnalysisConfig;
using analysis::BusPolicy;

std::vector<AnalysisVariant> standard_variants(bool include_perfect)
{
    std::vector<AnalysisVariant> variants;
    const auto add = [&](const std::string& label, BusPolicy policy,
                         bool persistence) {
        AnalysisConfig config;
        config.policy = policy;
        config.persistence_aware = persistence;
        variants.push_back({label, config});
    };
    add("FP-CP", BusPolicy::kFixedPriority, true);
    add("FP-NoCP", BusPolicy::kFixedPriority, false);
    add("RR-CP", BusPolicy::kRoundRobin, true);
    add("RR-NoCP", BusPolicy::kRoundRobin, false);
    add("TDMA-CP", BusPolicy::kTdma, true);
    add("TDMA-NoCP", BusPolicy::kTdma, false);
    if (include_perfect) {
        add("PerfectBus", BusPolicy::kPerfect, true);
    }
    return variants;
}

std::vector<AnalysisVariant> slotted_variants()
{
    std::vector<AnalysisVariant> variants = standard_variants(false);
    std::erase_if(variants, [](const AnalysisVariant& v) {
        return v.config.policy == BusPolicy::kFixedPriority;
    });
    return variants;
}

UtilizationSweep
run_utilization_sweep(const benchdata::GenerationConfig& generation,
                      const analysis::PlatformConfig& platform,
                      const std::vector<AnalysisVariant>& variants,
                      const SweepConfig& sweep)
{
    if (variants.empty()) {
        throw std::invalid_argument("run_utilization_sweep: no variants");
    }
    if (sweep.u_step <= 0.0 || sweep.u_min <= 0.0 ||
        sweep.u_max < sweep.u_min) {
        throw std::invalid_argument("run_utilization_sweep: bad grid");
    }

    const std::vector<benchdata::BenchmarkParams> pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);

    UtilizationSweep result;
    result.variants = variants;
    result.task_sets_per_point = sweep.task_sets_per_point;

    util::ThreadPool threads(util::resolve_jobs(sweep.jobs));

    // Progress bookkeeping for the "sweep" trace channel: grid size is known
    // up front, so each finished point can report a progress fraction and a
    // wall-clock ETA extrapolated from the mean point duration so far.
    // Points run sequentially (trials within a point are the parallel axis),
    // which keeps these per-point progress events meaningful.
    const auto total_points = static_cast<std::size_t>(
        std::floor((sweep.u_max - sweep.u_min) / sweep.u_step +
                   check::kUtilizationTolerance)) + 1;
    const auto sweep_started = std::chrono::steady_clock::now();
    std::size_t points_done = 0;

    for (double u = sweep.u_min; check::utilization_within(u, sweep.u_max);
         u += sweep.u_step) {
        CPA_SCOPED_TIMER("sweep.point");
        CPA_PROFILE_SPAN_ARG("sweep.point", "index", points_done);
        const auto point_started = std::chrono::steady_clock::now();
        const std::size_t point_index = points_done;
        SweepPoint point;
        point.utilization = u;
        point.schedulable.assign(variants.size(), 0);

        benchdata::GenerationConfig gen = generation;
        gen.per_core_utilization = u;

        // verdicts[set * V + v] = 1 iff variant v schedules task set `set`.
        // Each trial owns its slot range and seeds from its global trial
        // index, so the fill order cannot affect the result.
        const std::size_t trials = sweep.task_sets_per_point;
        std::vector<std::uint8_t> verdicts(trials * variants.size(), 0);
        obs::run_indexed_trials(threads, trials, [&](std::size_t set_index) {
            util::Rng rng(util::seed_for(sweep.seed,
                                         point_index * trials + set_index));
            tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);

            // One warm Session per task set: interference tables are built
            // once per CRPD method and shared by every variant (tables are
            // policy-independent), with reuse surfaced as the
            // session.tables.* counters.
            analysis::Session session(std::move(ts), platform);
            for (std::size_t v = 0; v < variants.size(); ++v) {
                analysis::AnalysisRequest request;
                request.config = variants[v].config;
                request.config.wcrt_engine = sweep.engine;
                if (session.analyze(request).schedulable) {
                    verdicts[set_index * variants.size() + v] = 1;
                }
            }
        });
        for (std::size_t set_index = 0; set_index < trials; ++set_index) {
            for (std::size_t v = 0; v < variants.size(); ++v) {
                point.schedulable[v] +=
                    verdicts[set_index * variants.size() + v];
            }
        }

        points_done += 1;
        if (sweep.progress) {
            sweep.progress(points_done, total_points);
        }
        CPA_COUNT("sweep.points");
        CPA_COUNT_ADD("sweep.task_sets",
                      static_cast<std::int64_t>(sweep.task_sets_per_point));
        if (CPA_TRACE_ENABLED("sweep")) {
            using std::chrono::duration_cast;
            using std::chrono::milliseconds;
            const auto now = std::chrono::steady_clock::now();
            const auto point_ms =
                duration_cast<milliseconds>(now - point_started).count();
            const auto elapsed_ms =
                duration_cast<milliseconds>(now - sweep_started).count();
            const double progress =
                static_cast<double>(points_done) /
                static_cast<double>(total_points);
            const double eta_ms =
                progress > 0.0
                    ? static_cast<double>(elapsed_ms) * (1.0 - progress) /
                          progress
                    : 0.0;
            std::int64_t schedulable_total = 0;
            for (const std::size_t count : point.schedulable) {
                schedulable_total += static_cast<std::int64_t>(count);
            }
            obs::Tracer::global().emit(
                obs::TraceEvent("sweep", obs::Severity::kInfo, "point_done")
                    .field("utilization", point.utilization)
                    .field("point_ms", point_ms)
                    .field("schedulable_total", schedulable_total)
                    .field("points_done", points_done)
                    .field("points_total", total_points)
                    .field("progress", progress)
                    .field("eta_ms", eta_ms));
        }
        result.points.push_back(std::move(point));
    }
    return result;
}

double weighted_schedulability(const UtilizationSweep& sweep,
                               std::size_t variant_index)
{
    if (variant_index >= sweep.variants.size()) {
        throw std::out_of_range("weighted_schedulability: bad variant index");
    }
    double numerator = 0.0;
    double denominator = 0.0;
    for (const SweepPoint& point : sweep.points) {
        const double fraction =
            sweep.task_sets_per_point == 0
                ? 0.0
                : static_cast<double>(point.schedulable[variant_index]) /
                      static_cast<double>(sweep.task_sets_per_point);
        numerator += point.utilization * fraction;
        denominator += point.utilization;
    }
    return denominator == 0.0 ? 0.0 : numerator / denominator;
}

std::size_t task_sets_from_env(std::size_t fallback)
{
    const char* raw = std::getenv("CPA_TASKSETS");
    if (raw == nullptr) {
        return fallback;
    }
    const long value = std::strtol(raw, nullptr, 10);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

} // namespace cpa::experiments
