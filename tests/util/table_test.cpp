#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cpa::util {
namespace {

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
    // header separator present
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows)
{
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapesSpecialCharacters)
{
    TextTable table({"name", "note"});
    table.add_row({"a,b", "say \"hi\""});
    std::ostringstream out;
    table.print_csv(out);
    EXPECT_EQ(out.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TextTable::num(1.0 / 3.0, 3), "0.333");
    EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
}

TEST(TextTable, RowCountTracksRows)
{
    TextTable table({"x"});
    EXPECT_EQ(table.row_count(), 0u);
    table.add_row({"1"});
    table.add_row({"2"});
    EXPECT_EQ(table.row_count(), 2u);
}

} // namespace
} // namespace cpa::util
