// Reproduces Fig. 3d: weighted schedulability vs. RR/TDMA slot size s
// (1..6). Only the slotted policies are affected by s, so the FP curves are
// omitted as in the paper's figure. Expected shape: schedulability decreases
// with s (Eq. (8)-(9) scale with s), and the persistence gap is largest at
// s = 1.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("fig3d_slot_size");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::slotted_variants();

    std::vector<experiments::UtilizationSweep> sweeps;
    std::vector<std::string> labels;
    for (std::int64_t s = 1; s <= 6; ++s) {
        auto platform = bench::default_platform();
        platform.slot_size = s;
        sweeps.push_back(experiments::run_utilization_sweep(
            bench::default_generation(), platform, variants,
            bench::weighted_sweep(task_sets)));
        labels.push_back(std::to_string(s));
    }

    bench::print_weighted(
        "Fig. 3d: weighted schedulability vs RR/TDMA slot size s",
        "slot size", labels, sweeps);
    return 0;
}
