#include "obs/trace.hpp"

#include "obs/json.hpp"

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <string>

namespace cpa::obs {
namespace {

// Clears the global tracer sink after each test.
class TraceTest : public ::testing::Test {
protected:
    void TearDown() override { Tracer::global().set_sink(nullptr); }
};

TEST_F(TraceTest, NdjsonFormatsHeaderAndFieldsInOrder)
{
    const std::string line =
        TraceEvent("wcrt", Severity::kInfo, "outer_iteration")
            .field("iter", std::int64_t{3})
            .field("changed", true)
            .field("ratio", 0.5)
            .field("label", "abc")
            .to_ndjson();
    EXPECT_EQ(line,
              R"({"subsys":"wcrt","sev":"info","event":"outer_iteration",)"
              R"("iter":3,"changed":true,"ratio":0.5,"label":"abc"})");
}

TEST_F(TraceTest, NdjsonEscapesStrings)
{
    const std::string line =
        TraceEvent("sim", Severity::kWarn, "deadline_miss")
            .field("task_name", "a\"b\\c\nd")
            .to_ndjson();
    EXPECT_NE(line.find(R"("task_name":"a\"b\\c\nd")"), std::string::npos);
}

TEST_F(TraceTest, InactiveTracerIsDisabledForEverySubsystem)
{
    EXPECT_FALSE(Tracer::global().enabled("wcrt"));
    EXPECT_FALSE(Tracer::global().active());
}

TEST_F(TraceTest, SubsystemFilterSelectsStreams)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out),
                              {"wcrt"});
    EXPECT_TRUE(Tracer::global().enabled("wcrt"));
    EXPECT_FALSE(Tracer::global().enabled("sweep"));

    Tracer::global().emit(TraceEvent("wcrt", Severity::kInfo, "kept"));
    Tracer::global().emit(TraceEvent("sweep", Severity::kInfo, "dropped"));

    const std::string text = out.str();
    EXPECT_NE(text.find("\"event\":\"kept\""), std::string::npos);
    EXPECT_EQ(text.find("\"event\":\"dropped\""), std::string::npos);
}

TEST_F(TraceTest, AllKeywordDisablesFiltering)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out),
                              {"all"});
    EXPECT_TRUE(Tracer::global().enabled("wcrt"));
    EXPECT_TRUE(Tracer::global().enabled("anything"));
}

TEST_F(TraceTest, SeverityFloorDropsLowerEvents)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out), {},
                              Severity::kWarn);
    Tracer::global().emit(TraceEvent("wcrt", Severity::kInfo, "quiet"));
    Tracer::global().emit(TraceEvent("wcrt", Severity::kError, "loud"));
    const std::string text = out.str();
    EXPECT_EQ(text.find("quiet"), std::string::npos);
    EXPECT_NE(text.find("loud"), std::string::npos);
}

TEST_F(TraceTest, EveryEmittedLineIsOneJsonObject)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out));
    Tracer::global().emit(
        TraceEvent("bus", Severity::kDebug, "a").field("x", std::int64_t{1}));
    Tracer::global().emit(
        TraceEvent("bus", Severity::kDebug, "b").field("y", 2.0));

    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(count, 2);
}

TEST_F(TraceTest, NdjsonEscapesControlCharactersAsUnicode)
{
    // Bytes below 0x20 without a shorthand escape must become \u00XX, or
    // the NDJSON line stops being parseable JSON.
    std::string raw = "a";
    raw += '\x01';
    raw += 'b';
    raw += '\x1f';
    raw += 'c';
    raw += '\x7f';
    const std::string line = TraceEvent("sim", Severity::kInfo, "weird")
                                 .field("raw", raw)
                                 .to_ndjson();
    EXPECT_NE(line.find("\\u0001"), std::string::npos);
    EXPECT_NE(line.find("\\u001f"), std::string::npos);
    // 0x7f (DEL) is not a control char below 0x20; it passes through.
    EXPECT_EQ(line.find("\\u007f"), std::string::npos);
}

TEST_F(TraceTest, NdjsonEscapesTabAndCarriageReturnShorthand)
{
    const std::string line = TraceEvent("sim", Severity::kInfo, "ws")
                                 .field("v", "a\tb\rc")
                                 .to_ndjson();
    EXPECT_NE(line.find(R"("v":"a\tb\rc")"), std::string::npos);
}

TEST_F(TraceTest, EscapingAppliesToKeysAndEventNames)
{
    const std::string line =
        TraceEvent("wcrt", Severity::kInfo, "quote\"name")
            .field("key\\slash", std::int64_t{1})
            .to_ndjson();
    EXPECT_NE(line.find(R"("event":"quote\"name")"), std::string::npos);
    EXPECT_NE(line.find(R"("key\\slash":1)"), std::string::npos);
}

TEST_F(TraceTest, SubsystemAndSeverityFiltersCompose)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out),
                              {"wcrt"}, Severity::kWarn);

    // Only the (matching subsystem, >= floor severity) combination lands.
    Tracer::global().emit(TraceEvent("wcrt", Severity::kInfo, "w_info"));
    Tracer::global().emit(TraceEvent("wcrt", Severity::kWarn, "w_warn"));
    Tracer::global().emit(TraceEvent("sweep", Severity::kError, "s_error"));
    Tracer::global().emit(TraceEvent("sweep", Severity::kInfo, "s_info"));

    const std::string text = out.str();
    EXPECT_EQ(text.find("w_info"), std::string::npos);
    EXPECT_NE(text.find("w_warn"), std::string::npos);
    EXPECT_EQ(text.find("s_error"), std::string::npos);
    EXPECT_EQ(text.find("s_info"), std::string::npos);
}

TEST_F(TraceTest, SeverityFloorAppliesUnderAllKeyword)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out),
                              {"all"}, Severity::kError);
    Tracer::global().emit(TraceEvent("bus", Severity::kWarn, "below"));
    Tracer::global().emit(TraceEvent("bus", Severity::kError, "at_floor"));
    const std::string text = out.str();
    EXPECT_EQ(text.find("below"), std::string::npos);
    EXPECT_NE(text.find("at_floor"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmitKeepsLinesIntact)
{
    std::ostringstream out;
    Tracer::global().set_sink(std::make_shared<StreamTraceSink>(out));

    constexpr std::size_t kEvents = 200;
    {
        util::ThreadPool pool(4);
        pool.parallel_for_indexed(kEvents, [&](std::size_t index) {
            Tracer::global().emit(
                TraceEvent("bus", Severity::kDebug, "concurrent")
                    .field("index", index));
        });
    }

    // The sink serializes whole lines, so every line must still be one
    // complete JSON object — interleaving torn halves would break here.
    std::istringstream lines(out.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"event\":\"concurrent\""), std::string::npos);
    }
    EXPECT_EQ(count, kEvents);
}

TEST_F(TraceTest, JsonNumberClampsNonFinite)
{
    EXPECT_EQ(json_number(0.25), "0.25");
    EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

} // namespace
} // namespace cpa::obs
