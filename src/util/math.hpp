// Small integer helpers shared by the response-time equations. All of the
// paper's bounds are integer expressions over cycle counts and access counts;
// keeping them in exact integer arithmetic avoids the rounding hazards of
// evaluating ceil()/floor() on doubles.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace cpa::util {

// ⌈a / b⌉ for a >= 0, b > 0.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b)
{
    if (b <= 0) {
        throw std::invalid_argument("ceil_div: divisor must be positive");
    }
    if (a < 0) {
        throw std::invalid_argument("ceil_div: dividend must be non-negative");
    }
    return (a + b - 1) / b;
}

// ⌊a / b⌋ for b > 0, allowing negative a (Eq. (6) can have a negative
// numerator early in the fixed-point iteration).
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b)
{
    if (b <= 0) {
        throw std::invalid_argument("floor_div: divisor must be positive");
    }
    const std::int64_t quotient = a / b;
    return (a % b != 0 && a < 0) ? quotient - 1 : quotient;
}

// ⌈a / b⌉ for b > 0, allowing negative a (Eq. (5)'s numerator can be
// negative; the result is then clamped by the caller).
[[nodiscard]] constexpr std::int64_t ceil_div_signed(std::int64_t a,
                                                     std::int64_t b)
{
    if (b <= 0) {
        throw std::invalid_argument("ceil_div_signed: divisor must be positive");
    }
    return -floor_div(-a, b);
}

[[nodiscard]] constexpr std::int64_t clamp_non_negative(std::int64_t value)
{
    return value < 0 ? 0 : value;
}

[[nodiscard]] constexpr std::int64_t gcd_int(std::int64_t a, std::int64_t b)
{
    while (b != 0) {
        const std::int64_t r = a % b;
        a = b;
        b = r;
    }
    return a;
}

// lcm of `a` and `b` saturated at `cap` (task-set hyperperiods explode
// combinatorially; a saturated result means "longer than you want to
// simulate"). Requires a, b > 0 and cap > 0.
[[nodiscard]] constexpr std::int64_t
saturating_lcm(std::int64_t a, std::int64_t b, std::int64_t cap)
{
    if (a <= 0 || b <= 0 || cap <= 0) {
        throw std::invalid_argument("saturating_lcm: inputs must be > 0");
    }
    const std::int64_t step = a / gcd_int(a, b);
    if (step > cap / b) {
        return cap; // step * b would overflow / exceed the cap
    }
    const std::int64_t result = step * b;
    return result > cap ? cap : result;
}

} // namespace cpa::util
