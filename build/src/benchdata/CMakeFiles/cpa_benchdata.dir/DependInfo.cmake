
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchdata/benchmark.cpp" "src/benchdata/CMakeFiles/cpa_benchdata.dir/benchmark.cpp.o" "gcc" "src/benchdata/CMakeFiles/cpa_benchdata.dir/benchmark.cpp.o.d"
  "/root/repo/src/benchdata/generator.cpp" "src/benchdata/CMakeFiles/cpa_benchdata.dir/generator.cpp.o" "gcc" "src/benchdata/CMakeFiles/cpa_benchdata.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cpa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/cpa_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
