// Breakpoint-driven solver for the Eq. (19) inner fixed point
// (WcrtEngine::kIncremental).
//
// The reference loop in wcrt.cpp re-evaluates every ⌈·/T⌉ job count and the
// full BAT sum (Eq. (1)-(9), Lemmas 1-2) from scratch on each iteration.
// But within one inner solve the iterate r is non-decreasing, and each job
// count is a step function of the window length t:
//
//   ⌈t/T_j⌉           steps exactly at the multiples of T_j,
//   ⌈(t+J_j)/T_j⌉     steps at the multiples of T_j shifted left by J_j,
//   ⌊(t+c_l)/T_l⌋     steps at the multiples of T_l shifted left by c_l,
//
// so the solver keeps a per-count "valid-until" cursor and only re-derives
// the terms (PD, M̂D, γ, ρ̂ contributions) whose count actually changed when
// r crossed a breakpoint. The Lemma-2 carry-out W_cout is the one term that
// varies at d_mem granularity (and can even dip, see bus_bounds_test.cpp
// Lemma2CarryOutDipIsPossible), so it is recomputed every iteration — it is
// a handful of arithmetic ops per other-core task, with no table lookups.
//
// The engine computes the exact same rhs(r) as the reference at every
// iterate, so the recurrence visits the same sequence of r values, returns
// bit-identical responses and iteration counts, and emits the same metric
// profile (bas.calls, tables.gamma_lookups, bat.*). The differential suite
// in tests/analysis/wcrt_differential_test.cpp enforces this.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "tasks/task.hpp"
#include "util/math.hpp"
#include "util/units.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpa::analysis {

using util::AccessCount;
using util::Cycles;

// Inner-iteration budget shared by both engines (the reference loop in
// wcrt.cpp and the incremental solver); exhaustion is reported through
// WcrtResult::inner_budget_exhausted plus the wcrt.budget_exhausted counter.
inline constexpr std::size_t kMaxInnerIterations = 100000;

// --- Breakpoint-cursor primitives -----------------------------------------
//
// Pure helpers shared by the solver and property-tested in
// tests/analysis/wcrt_stress_test.cpp: each *_valid_until(count, ...) is the
// largest window length t for which the paired count function still returns
// `count`, so the count is stale exactly when t crosses the next (shifted)
// multiple of the period.

// E_j(t) = ⌈(t + J_j)/T_j⌉: interfering jobs with release jitter (Eq. (1)).
[[nodiscard]] inline std::int64_t jitter_job_count(Cycles t, Cycles jitter,
                                                   Cycles period)
{
    return util::ceil_div(t + jitter, period);
}

[[nodiscard]] inline Cycles jitter_job_count_valid_until(std::int64_t count,
                                                         Cycles jitter,
                                                         Cycles period)
{
    return count * period - jitter;
}

// ⌈t/T_j⌉: the CPU-preemption job count of Eq. (19) (no jitter term).
[[nodiscard]] inline std::int64_t cpu_job_count(Cycles t, Cycles period)
{
    return util::ceil_div(t, period);
}

[[nodiscard]] inline Cycles cpu_job_count_valid_until(std::int64_t count,
                                                      Cycles period)
{
    return count * period;
}

// N_l(t) = max(0, ⌊(t + c_l)/T_l⌋) with the per-solve constant
// c_l = R_l + J_l - (MD_l + γ)·d_mem: fully-executed other-core jobs
// (Eq. (6)). `count` is the already-clamped value.
[[nodiscard]] inline std::int64_t full_job_count(Cycles t, Cycles offset,
                                                 Cycles period)
{
    return util::clamp_non_negative(util::floor_div(t + offset, period));
}

[[nodiscard]] inline Cycles full_job_count_valid_until(std::int64_t count,
                                                       Cycles offset,
                                                       Cycles period)
{
    return (count + 1) * period - offset - Cycles{1};
}

// --- The solver -----------------------------------------------------------

class IncrementalWcrtSolver {
public:
    // All referenced objects must outlive the solver. The scratch arenas are
    // sized once here and reused across solve() calls (one solver instance
    // serves a whole compute_wcrt outer loop).
    IncrementalWcrtSolver(const tasks::TaskSet& ts,
                          const PlatformConfig& platform,
                          const AnalysisConfig& config,
                          const InterferenceTables& tables);

    // Solves the per-task recurrence of Eq. (19) for τ_i with the other
    // tasks' estimates frozen in `response` — the same contract, iterate
    // sequence, return value, and metric emission as the reference loop in
    // wcrt.cpp. Sets `budget_exhausted` when kMaxInnerIterations was hit.
    [[nodiscard]] Cycles solve(std::size_t i,
                               const std::vector<Cycles>& response,
                               std::size_t& iterations_used,
                               bool& budget_exhausted);

private:
    // One ⌈r/T_j⌉·PD_j CPU-interference term (higher-priority, same core).
    struct CpuTerm {
        std::size_t task;
        std::int64_t count;
        Cycles valid_until;
    };

    // One Eq. (16) same-core demand term: capped demand + E_j·γ_{i,j}.
    struct BasTerm {
        std::size_t task;
        std::int64_t jobs;  // the E_j the cached value was derived at
        AccessCount gamma;  // γ_{i,j}, constant per solve
        AccessCount value;
        bool coupled; // kJobBound ρ̂ depends on other same-core counts
    };

    // One other-core task's Lemma-2 state (Eq. (4)-(6)/(17)-(18)).
    struct BaoTerm {
        std::size_t task;
        std::size_t core;
        AccessCount gamma;   // γ_{level,l}, constant per solve
        AccessCount per_job; // MD_l + γ_{level,l}
        Cycles offset;       // R_l + J_l - per_job·d_mem (constant per solve)
        Cycles period;
        std::int64_t n_full;
        Cycles n_full_valid_until;
        AccessCount w_full;
        bool coupled; // kJobBound ρ̂ depends on core-local jitter counts
        bool lower;   // τ_l ∈ lp(i) (FP bus bound splits hep/lp)
    };

    void init_solve(std::size_t i, Cycles t,
                    const std::vector<Cycles>& response);
    void refresh(std::size_t i, Cycles t);

    [[nodiscard]] AccessCount cpro_reload(std::size_t j, std::size_t level,
                                          std::int64_t n_jobs) const;
    [[nodiscard]] AccessCount bas_term_value(std::size_t i,
                                             const BasTerm& term) const;
    [[nodiscard]] AccessCount w_full_value(const BaoTerm& term) const;

    const tasks::TaskSet& ts_;
    PlatformConfig platform_; // by value: callers often pass temporaries
    AnalysisConfig config_;
    const InterferenceTables& tables_;

    // Loop-invariant per-task data, computed once per solver.
    std::vector<AccessCount> pcb_loads_; // |PCB_j| access loads for M̂D
    std::vector<bool> has_lower_on_core_;

    // Per-solve state. Backing arenas keep their capacity across solves.
    std::size_t bao_level_ = 0; // γ/ρ̂ analysis level of the BAO terms
    std::vector<CpuTerm> cpu_terms_;
    std::vector<BasTerm> bas_terms_;
    std::vector<BaoTerm> bao_terms_;
    Cycles cpu_sum_{0};
    AccessCount bas_sum_{0};
    AccessCount w_full_hep_sum_{0};
    AccessCount w_full_lp_sum_{0};
    std::vector<AccessCount> w_full_core_sum_; // per core (RR bound)

    // ⌈(t+J_s)/T_s⌉ cursors for every task the solve references as a demand
    // source or kJobBound evictor, indexed by task id; `tracked_counts_`
    // lists the live ids, `core_count_changed_` flags per-core staleness for
    // the coupled-term invalidation.
    std::vector<std::int64_t> count_;
    std::vector<Cycles> count_valid_until_;
    std::vector<std::size_t> tracked_counts_;
    std::vector<bool> core_count_changed_;

    // Per-iteration scratch for the carry-out accumulation (RR).
    std::vector<AccessCount> w_cout_core_sum_;
};

} // namespace cpa::analysis
