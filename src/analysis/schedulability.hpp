// Task-set level schedulability tests used by the experimental evaluation.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "analysis/wcrt.hpp"
#include "tasks/task.hpp"

namespace cpa::analysis {

// True when every task meets its deadline under `config`. For
// BusPolicy::kPerfect the test additionally requires the total bus
// utilization to be at most 1, per the paper's "perfect bus" definition.
[[nodiscard]] bool is_schedulable(const tasks::TaskSet& ts,
                                  const PlatformConfig& platform,
                                  const AnalysisConfig& config,
                                  const InterferenceTables& tables);

[[nodiscard]] bool is_schedulable(const tasks::TaskSet& ts,
                                  const PlatformConfig& platform,
                                  const AnalysisConfig& config);

} // namespace cpa::analysis
