// Reproduces Fig. 3c: weighted schedulability vs. L1 cache size (32..1024
// sets). Benchmark parameters are rescaled to each geometry via the region
// layout model (DESIGN.md §3.2). Expected shape: persistence-aware curves
// improve with cache size, and faster than the persistence-oblivious ones
// (more cache -> more PCBs).
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("fig3c_cache_size");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::standard_variants();

    std::vector<experiments::UtilizationSweep> sweeps;
    std::vector<std::string> labels;
    for (std::size_t sets = 32; sets <= 1024; sets *= 2) {
        auto generation = bench::default_generation();
        generation.cache_sets = sets;
        auto platform = bench::default_platform();
        platform.cache_sets = sets;
        sweeps.push_back(experiments::run_utilization_sweep(
            generation, platform, variants, bench::weighted_sweep(task_sets)));
        labels.push_back(std::to_string(sets));
    }

    bench::print_weighted(
        "Fig. 3c: weighted schedulability vs cache size (sets)",
        "cache sets", labels, sweeps);
    return 0;
}
