#include "util/units.hpp"

#include "analysis/config.hpp"

#include <gtest/gtest.h>

namespace cpa::util {
namespace {

TEST(Units, MicrosecondRoundTrip)
{
    EXPECT_EQ(cycles_from_microseconds(5), 10);
    EXPECT_EQ(cycles_from_microseconds(0), 0);
    EXPECT_DOUBLE_EQ(microseconds_from_cycles(10), 5.0);
    EXPECT_DOUBLE_EQ(microseconds_from_cycles(1), 0.5);
}

TEST(Units, DefaultDmemEqualsExtractionLatency)
{
    // The convention of DESIGN.md §3.3: the default d_mem (5 us) equals the
    // latency at which the table's MD cycles convert to access counts, so
    // generation utilization equals platform utilization at defaults.
    const analysis::PlatformConfig platform;
    EXPECT_EQ(platform.d_mem, kExtractionLatencyCycles);
    EXPECT_EQ(cycles_from_microseconds(5), kExtractionLatencyCycles);
}

TEST(Units, PolicyNames)
{
    using analysis::BusPolicy;
    EXPECT_EQ(analysis::to_string(BusPolicy::kFixedPriority), "FP");
    EXPECT_EQ(analysis::to_string(BusPolicy::kRoundRobin), "RR");
    EXPECT_EQ(analysis::to_string(BusPolicy::kTdma), "TDMA");
    EXPECT_EQ(analysis::to_string(BusPolicy::kPerfect), "PerfectBus");
}

TEST(Units, CrpdAndCproNames)
{
    using analysis::CproMethod;
    using analysis::CrpdMethod;
    EXPECT_EQ(analysis::to_string(CrpdMethod::kEcbUnion), "ECB-union");
    EXPECT_EQ(analysis::to_string(CrpdMethod::kUcbOnly), "UCB-only");
    EXPECT_EQ(analysis::to_string(CrpdMethod::kEcbOnly), "ECB-only");
    EXPECT_EQ(analysis::to_string(CproMethod::kUnion), "CPRO-union");
    EXPECT_EQ(analysis::to_string(CproMethod::kJobBound), "CPRO-job-bound");
}

} // namespace
} // namespace cpa::util
