file(REMOVE_RECURSE
  "libcpa_analysis.a"
)
