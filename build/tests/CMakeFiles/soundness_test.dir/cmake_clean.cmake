file(REMOVE_RECURSE
  "CMakeFiles/soundness_test.dir/sim/soundness_test.cpp.o"
  "CMakeFiles/soundness_test.dir/sim/soundness_test.cpp.o.d"
  "soundness_test"
  "soundness_test.pdb"
  "soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
