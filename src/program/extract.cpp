#include "program/extract.hpp"

#include "cache/lru.hpp"

#include <map>
#include <vector>

namespace cpa::program {

using cache::CacheGeometry;
using cache::LruCache;
using util::SetMask;

ExtractedParams extract_parameters(const Program& program,
                                   const CacheGeometry& geometry)
{
    const std::vector<std::size_t> trace = program.reference_trace();
    const std::vector<std::size_t> blocks = program.distinct_blocks();

    ExtractedParams params;
    params.name = program.name();
    params.pd = static_cast<std::int64_t>(trace.size()) *
                program.cycles_per_fetch();
    params.ecb = SetMask(geometry.sets);
    params.ucb = SetMask(geometry.sets);
    params.pcb = SetMask(geometry.sets);

    // PCBs: a block can never be evicted by the task itself iff its set
    // holds at most `ways` distinct program blocks in total (then the set
    // never overflows). Exact for direct-mapped caches; for LRU a safe
    // under-approximation (fewer PCBs -> less claimed persistence).
    std::map<std::size_t, std::size_t> distinct_per_set;
    for (const std::size_t block : blocks) {
        distinct_per_set[geometry.set_of(block)] += 1;
    }
    for (const std::size_t block : blocks) {
        const std::size_t set = geometry.set_of(block);
        params.ecb.insert(set);
        if (distinct_per_set[set] <= geometry.ways) {
            params.pcb.insert(set);
        }
    }

    // MD: cold-cache misses (exact: LRU replacement is deterministic).
    // UCB: a hit at position p means the block stayed cached since its
    // previous access at q — it is useful throughout (q, p]. The +1/-1
    // event sweep over those intervals yields the per-point maximum.
    {
        LruCache cold(geometry);
        std::map<std::size_t, std::size_t> last_access;
        std::vector<std::int64_t> delta(trace.size() + 2, 0);
        for (std::size_t pos = 0; pos < trace.size(); ++pos) {
            const std::size_t block = trace[pos];
            if (cold.access(block)) {
                params.ucb.insert(geometry.set_of(block));
                delta[last_access[block] + 1] += 1;
                delta[pos + 1] -= 1;
            } else {
                params.md += util::AccessCount{1};
            }
            last_access[block] = pos;
        }
        std::int64_t current = 0;
        for (const std::int64_t d : delta) {
            current += d;
            params.ucb_max_point = std::max(
                params.ucb_max_point, static_cast<std::size_t>(current));
        }
    }

    // MDʳ: misses with every PCB resident. PCB sets never overflow, so the
    // preload order (hence LRU age) is irrelevant.
    {
        LruCache warm(geometry);
        for (const std::size_t block : blocks) {
            if (distinct_per_set[geometry.set_of(block)] <= geometry.ways) {
                warm.preload(block);
            }
        }
        for (const std::size_t block : trace) {
            if (!warm.access(block)) {
                params.md_residual += util::AccessCount{1};
            }
        }
    }

    return params;
}

tasks::Task to_task(const ExtractedParams& params, std::size_t core,
                    util::Cycles period, util::Cycles deadline)
{
    tasks::Task task;
    task.name = params.name;
    task.core = core;
    task.pd = params.pd;
    task.md = params.md;
    task.md_residual = params.md_residual;
    task.period = period;
    task.deadline = deadline > util::Cycles{0} ? deadline : period;
    task.ecb = params.ecb;
    task.ucb = params.ucb;
    task.pcb = params.pcb;
    return task;
}

} // namespace cpa::program
