file(REMOVE_RECURSE
  "CMakeFiles/commands_test.dir/cli/commands_test.cpp.o"
  "CMakeFiles/commands_test.dir/cli/commands_test.cpp.o.d"
  "commands_test"
  "commands_test.pdb"
  "commands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
