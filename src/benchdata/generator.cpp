#include "benchdata/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cpa::benchdata {

namespace {

// Builds one task from a random pool entry at utilization `u`; the core is
// left for the caller to assign.
tasks::Task draw_task(util::Rng& rng, const GenerationConfig& config,
                      const std::vector<BenchmarkParams>& pool, double u)
{
    const BenchmarkParams& params = pool[rng.uniform_index(pool.size())];

    tasks::Task task;
    task.name = params.name;
    task.pd = params.pd;
    task.md = params.md;
    task.md_residual = params.md_residual;
    task.utilization = u;

    // T = D = (PD + MD)/U in the table's cycle units.
    const double cost = util::to_double(params.generation_cost());
    util::Cycles period{1'000'000'000'000'000}; // cap for near-zero u
    if (u > 0.0) {
        period = util::Cycles{
            std::llround(std::min(cost / u, util::to_double(period)))};
    }
    period = std::max(period, params.generation_cost());
    task.period = period;
    task.deadline = std::max(
        util::Cycles{1}, util::Cycles{std::llround(config.deadline_ratio *
                                                   util::to_double(period))});
    task.jitter = std::min(
        util::Cycles{std::llround(config.jitter_fraction *
                                  util::to_double(period))},
        period - task.deadline);

    const auto offset =
        static_cast<std::size_t>(rng.uniform_index(config.cache_sets));
    FootprintMasks masks = place_footprint(params, config.cache_sets, offset);
    task.ecb = std::move(masks.ecb);
    task.ucb = std::move(masks.ucb);
    task.pcb = std::move(masks.pcb);
    return task;
}

void check_generation_inputs(const GenerationConfig& config,
                             const std::vector<BenchmarkParams>& pool)
{
    if (pool.empty()) {
        throw std::invalid_argument("generate_task_set: empty benchmark pool");
    }
    if (config.tasks_per_core == 0) {
        throw std::invalid_argument(
            "generate_task_set: tasks_per_core must be > 0");
    }
    if (config.deadline_ratio <= 0.0 || config.deadline_ratio > 1.0) {
        throw std::invalid_argument(
            "generate_task_set: deadline_ratio must be in (0, 1]");
    }
    if (config.jitter_fraction < 0.0 || config.jitter_fraction >= 1.0) {
        throw std::invalid_argument(
            "generate_task_set: jitter_fraction must be in [0, 1)");
    }
    for (const BenchmarkParams& params : pool) {
        if (params.occupancy.size() != config.cache_sets) {
            throw std::invalid_argument(
                "generate_task_set: pool derived for a different cache size");
        }
    }
}

void finalize(tasks::TaskSet& ts, const GenerationConfig& config)
{
    switch (config.priority) {
    case PriorityAssignment::kDeadlineMonotonic:
        ts.assign_priorities_deadline_monotonic();
        break;
    case PriorityAssignment::kRateMonotonic:
        ts.assign_priorities_rate_monotonic();
        break;
    }
    ts.validate();
}

} // namespace

std::vector<BenchmarkParams>
derive_all(const std::vector<BenchmarkSpec>& table, std::size_t cache_sets)
{
    std::vector<BenchmarkParams> pool;
    pool.reserve(table.size());
    for (const BenchmarkSpec& spec : table) {
        pool.push_back(derive_params(spec, cache_sets));
    }
    return pool;
}

tasks::TaskSet generate_task_set(util::Rng& rng,
                                 const GenerationConfig& config,
                                 const std::vector<BenchmarkParams>& pool)
{
    check_generation_inputs(config, pool);

    tasks::TaskSet ts(config.num_cores, config.cache_sets);
    for (std::size_t core = 0; core < config.num_cores; ++core) {
        const std::vector<double> utilizations = util::uunifast(
            rng, config.tasks_per_core, config.per_core_utilization);
        for (const double u : utilizations) {
            tasks::Task task = draw_task(rng, config, pool, u);
            task.core = core;
            ts.add_task(std::move(task));
        }
    }
    finalize(ts, config);
    return ts;
}

tasks::TaskSet
generate_task_set_partitioned(util::Rng& rng, const GenerationConfig& config,
                              const std::vector<BenchmarkParams>& pool,
                              tasks::PartitionHeuristic heuristic)
{
    check_generation_inputs(config, pool);

    const std::size_t n = config.num_cores * config.tasks_per_core;
    const double total =
        config.per_core_utilization * static_cast<double>(config.num_cores);

    // UUnifast-discard: redraw until no single task exceeds utilization 1
    // (only relevant when the total exceeds 1).
    std::vector<double> utilizations;
    for (int attempt = 0; attempt < 1000; ++attempt) {
        utilizations = util::uunifast(rng, n, total);
        if (std::all_of(utilizations.begin(), utilizations.end(),
                        [](double u) { return u <= 1.0; })) {
            break;
        }
        utilizations.clear();
    }
    if (utilizations.empty()) {
        throw std::runtime_error(
            "generate_task_set_partitioned: UUnifast-discard failed (total "
            "utilization too high for the task count)");
    }

    std::vector<tasks::Task> drawn;
    drawn.reserve(n);
    for (const double u : utilizations) {
        drawn.push_back(draw_task(rng, config, pool, u));
    }
    tasks::partition_tasks(drawn, config.num_cores, heuristic,
                           util::kExtractionLatencyCycles);

    tasks::TaskSet ts(config.num_cores, config.cache_sets);
    for (tasks::Task& task : drawn) {
        ts.add_task(std::move(task));
    }
    finalize(ts, config);
    return ts;
}

std::vector<analysis::L2Footprint>
attach_l2_footprints(util::Rng& rng, const tasks::TaskSet& ts,
                     const std::vector<BenchmarkSpec>& table,
                     std::size_t l2_sets)
{
    if (l2_sets == 0) {
        throw std::invalid_argument("attach_l2_footprints: l2_sets == 0");
    }
    // Derive each distinct benchmark once at the L2 geometry.
    std::vector<analysis::L2Footprint> footprints;
    footprints.reserve(ts.size());
    for (const tasks::Task& task : ts.tasks()) {
        const BenchmarkSpec* spec = nullptr;
        for (const BenchmarkSpec& candidate : table) {
            if (candidate.name == task.name) {
                spec = &candidate;
                break;
            }
        }
        if (spec == nullptr) {
            throw std::invalid_argument(
                "attach_l2_footprints: unknown benchmark '" + task.name +
                "'");
        }
        const BenchmarkParams at_l2 = derive_params(*spec, l2_sets);
        FootprintMasks masks = place_footprint(
            at_l2, l2_sets, rng.uniform_index(l2_sets));

        analysis::L2Footprint footprint;
        footprint.ecb2 = std::move(masks.ecb);
        footprint.pcb2 = std::move(masks.pcb);
        // Both levels warm can never cost more than one level warm.
        footprint.md_residual_l2 =
            std::min(task.md_residual, at_l2.md_residual);
        footprints.push_back(std::move(footprint));
    }
    return footprints;
}

} // namespace cpa::benchdata
