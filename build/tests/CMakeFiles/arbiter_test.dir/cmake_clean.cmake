file(REMOVE_RECURSE
  "CMakeFiles/arbiter_test.dir/sim/arbiter_test.cpp.o"
  "CMakeFiles/arbiter_test.dir/sim/arbiter_test.cpp.o.d"
  "arbiter_test"
  "arbiter_test.pdb"
  "arbiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
