// Property test: the real analysis satisfies the whole invariant catalog on
// a large population of seeded random task sets (the Section V generator),
// including jittered and constrained-deadline draws. This is the repo's
// broadest differential self-test — any unsound refinement in Lemma 1/2,
// Eq. (10) demand capping, or the Eq. (19) solver shows up here as a named
// violation with a reproducing seed.
#include "check/random_check.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace cpa::check {
namespace {

std::string failure_dump(const RandomCheckResult& result)
{
    std::ostringstream out;
    for (const TrialFailure& failure : result.failures) {
        out << "trial " << failure.trial << " seed " << failure.seed
            << " U " << failure.utilization << ":\n";
        for (const Violation& violation : failure.violations) {
            out << "  " << violation.invariant << ": " << violation.detail
                << "\n";
        }
    }
    return out.str();
}

TEST(CheckProperty, HundredRandomTaskSetsSatisfyTheCatalog)
{
    RandomCheckConfig config;
    config.seed = 20200309; // the paper's conference date, as elsewhere
    config.trials = 100;
    config.num_cores = 3;
    config.tasks_per_core = 3;
    config.cache_sets = 64;
    config.options.check_simulation = false; // covered by the test below
    config.options.max_demand_jobs = 8;
    const RandomCheckResult result = run_random_checks(config);
    EXPECT_EQ(result.trials_run, 100u);
    EXPECT_TRUE(result.ok()) << failure_dump(result);
    EXPECT_GT(result.checks_run, 10000u);
}

TEST(CheckProperty, SimulationCrossCheckHoldsOnSampledSets)
{
    // The simulator probe is the expensive invariant; a smaller sample is
    // enough to keep exercising the analytical-vs-observed comparison.
    RandomCheckConfig config;
    config.seed = 7;
    config.trials = 8;
    config.num_cores = 2;
    config.tasks_per_core = 3;
    config.cache_sets = 32;
    config.options.sim_horizon_periods = 3;
    const RandomCheckResult result = run_random_checks(config);
    EXPECT_EQ(result.trials_run, 8u);
    EXPECT_TRUE(result.ok()) << failure_dump(result);
}

TEST(CheckProperty, DriverIsDeterministic)
{
    RandomCheckConfig config;
    config.trials = 5;
    config.num_cores = 2;
    config.tasks_per_core = 2;
    config.cache_sets = 32;
    config.options.check_simulation = false;
    const RandomCheckResult first = run_random_checks(config);
    const RandomCheckResult second = run_random_checks(config);
    EXPECT_EQ(first.trials_run, second.trials_run);
    EXPECT_EQ(first.checks_run, second.checks_run);
    EXPECT_EQ(first.failures.size(), second.failures.size());
}

TEST(CheckProperty, InjectedViolationIsReportedPerTrial)
{
    RandomCheckConfig config;
    config.trials = 3;
    config.num_cores = 2;
    config.tasks_per_core = 2;
    config.cache_sets = 32;
    config.inject_violation = true;
    config.options.check_simulation = false;
    const RandomCheckResult result = run_random_checks(config);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.failures.size(), 3u);
    EXPECT_EQ(result.violations_by_invariant.at("selftest.injected"), 3u);
}

TEST(CheckProperty, RejectsUnsatisfiableConfig)
{
    RandomCheckConfig config;
    config.min_utilization = 0.5;
    config.max_utilization = 0.2;
    EXPECT_THROW((void)run_random_checks(config), std::invalid_argument);
    RandomCheckConfig zero_cores;
    zero_cores.num_cores = 0;
    EXPECT_THROW((void)run_random_checks(zero_cores), std::invalid_argument);
}

} // namespace
} // namespace cpa::check
