// Exercises the observability wiring of compute_wcrt: the traced
// "outer_iteration" events must agree with the reported iteration counts,
// and the metrics registry must pick up the same numbers.
#include "analysis/wcrt.hpp"

#include "helpers.hpp"
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

namespace cpa::analysis {
namespace {

using namespace util::literals;

using cpa::testing::make_task_set;

PlatformConfig small_platform(std::size_t cores, Cycles d_mem)
{
    PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = 16;
    platform.d_mem = d_mem;
    platform.slot_size = 2;
    return platform;
}

AnalysisConfig fp_config()
{
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    config.persistence_aware = true;
    return config;
}

// Two cores with cross-core interference so the outer loop needs more than
// one round to reach the global fixed point.
tasks::TaskSet cross_core_set()
{
    return make_task_set(2, 16,
                         {
                             {0, 10, 4, 4, 100, 0, {}, {}, {}},
                             {0, 20, 6, 6, 200, 0, {}, {}, {}},
                             {1, 15, 5, 5, 150, 0, {}, {}, {}},
                             {1, 25, 3, 3, 300, 0, {}, {}, {}},
                         });
}

std::size_t count_events(const std::string& ndjson, std::string_view event)
{
    const std::string needle =
        "\"event\":\"" + std::string(event) + "\"";
    std::size_t count = 0;
    for (std::size_t pos = ndjson.find(needle); pos != std::string::npos;
         pos = ndjson.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

class WcrtObsTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
        sink_ = std::make_shared<obs::StreamTraceSink>(captured_);
        obs::Tracer::global().set_sink(sink_, {"wcrt"});
    }
    void TearDown() override
    {
        obs::Tracer::global().set_sink(nullptr);
        obs::set_metrics_enabled(false);
        obs::MetricsRegistry::global().reset();
    }

    std::ostringstream captured_;
    std::shared_ptr<obs::StreamTraceSink> sink_;
};

TEST_F(WcrtObsTest, OuterIterationsMatchTracedEvents)
{
    const tasks::TaskSet ts = cross_core_set();
    const WcrtResult result =
        compute_wcrt(ts, small_platform(2, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);
    EXPECT_STREQ(to_string(result.stop_reason), "converged");
    EXPECT_GE(result.outer_iterations, 2u);

#if CPA_OBS_ENABLED
    EXPECT_EQ(count_events(captured_.str(), "outer_iteration"),
              result.outer_iterations);
#else
    EXPECT_TRUE(captured_.str().empty());
#endif
}

TEST_F(WcrtObsTest, MetricsMirrorIterationCounts)
{
    const tasks::TaskSet ts = cross_core_set();
    const WcrtResult result =
        compute_wcrt(ts, small_platform(2, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);

#if CPA_OBS_ENABLED
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.at("wcrt.calls"), 1);
    EXPECT_EQ(snap.counters.at("wcrt.outer_iterations"),
              static_cast<std::int64_t>(result.outer_iterations));
    EXPECT_EQ(snap.counters.at("wcrt.inner_iterations"),
              static_cast<std::int64_t>(result.inner_iterations));
    ASSERT_TRUE(snap.timers.contains("wcrt.compute"));
    EXPECT_EQ(snap.timers.at("wcrt.compute").count, 1);
#endif
}

TEST_F(WcrtObsTest, DeadlineMissEmitsWarnEventAndStopReason)
{
    // τ2 cannot meet its 70-cycle deadline (see Wcrt.ReportsFirstFailingTask).
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 50, 5, 5, 100, 65, {}, {}, {}},
            {0, 50, 5, 5, 100, 70, {}, {}, {}},
        });
    const WcrtResult result =
        compute_wcrt(ts, small_platform(1, 2_cy), fp_config());
    ASSERT_FALSE(result.schedulable);
    EXPECT_STREQ(to_string(result.stop_reason), "deadline_miss");
    EXPECT_EQ(result.failed_task, util::TaskId{1});

#if CPA_OBS_ENABLED
    const std::string text = captured_.str();
    EXPECT_EQ(count_events(text, "deadline_miss"), 1u);
    // The aborting outer round is traced too, keeping the invariant.
    EXPECT_EQ(count_events(text, "outer_iteration"),
              result.outer_iterations);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("wcrt.unschedulable")
                  .value(),
              1);
#endif
}

TEST_F(WcrtObsTest, InnerIterationsAccumulateAcrossOuterRounds)
{
    const tasks::TaskSet ts = cross_core_set();
    const WcrtResult result =
        compute_wcrt(ts, small_platform(2, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);
    // Every task runs its inner fixed point at least once per outer round.
    EXPECT_GE(result.inner_iterations,
              result.outer_iterations * ts.size());
}

} // namespace
} // namespace cpa::analysis
