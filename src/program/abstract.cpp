#include "program/abstract.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

namespace cpa::program {

namespace {

using cache::CacheGeometry;
using util::SetMask;

// Must-cache state: state[s] holds the block that is *definitely* resident
// in set s, or nullopt when nothing is known about s.
using MustState = std::vector<std::optional<std::size_t>>;

// Per-set meet: knowledge survives only where both states agree.
MustState meet(const MustState& a, const MustState& b)
{
    MustState result(a.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].has_value() && a[s] == b[s]) {
            result[s] = a[s];
        }
    }
    return result;
}

bool equal(const MustState& a, const MustState& b)
{
    return a == b;
}

class MustAnalysis {
public:
    MustAnalysis(const CacheGeometry& geometry,
                 const std::map<std::string, std::vector<Segment>>& procedures)
        : geometry_(geometry), procedures_(procedures)
    {
    }

    // Returns an upper bound on the misses of one execution of `segments`
    // starting from `state`; `state` is advanced to a sound outgoing state.
    std::int64_t run(const std::vector<Segment>& segments, MustState& state)
    {
        std::int64_t misses = 0;
        for (const Segment& segment : segments) {
            misses += run_segment(segment, state);
        }
        return misses;
    }

private:
    std::int64_t run_segment(const Segment& segment, MustState& state)
    {
        std::int64_t misses = 0;
        for (const std::size_t block : segment.blocks) {
            const std::size_t set = geometry_.set_of(block);
            if (state[set] != block) {
                ++misses;
                state[set] = block;
            }
        }
        if (!segment.body.empty() && segment.iterations > 0) {
            misses += run_loop(segment, state);
        }
        if (!segment.branches.empty()) {
            misses += run_alternative(segment, state);
        }
        if (!segment.call.empty()) {
            misses += run(procedures_.at(segment.call), state);
        }
        return misses;
    }

    std::int64_t run_loop(const Segment& segment, MustState& state)
    {
        // First iteration from the incoming state.
        std::int64_t misses = run(segment.body, state);
        if (segment.iterations == 1) {
            return misses;
        }

        // Loop-invariant entry state for iterations 2..n: meet-iterate the
        // body transfer function from the state after iteration 1 until it
        // stabilizes. Knowledge only shrinks, so this terminates within
        // |sets| + 1 passes.
        MustState invariant = state;
        for (std::size_t pass = 0; pass <= geometry_.sets; ++pass) {
            MustState next = invariant;
            (void)run(segment.body, next);
            MustState met = meet(invariant, next);
            if (equal(met, invariant)) {
                break;
            }
            invariant = std::move(met);
        }

        // One body pass from the invariant state bounds EVERY later
        // iteration (least knowledge -> maximal misses), and its outgoing
        // state under-approximates the knowledge after the real last
        // iteration.
        MustState exit_state = invariant;
        const std::int64_t per_iteration = run(segment.body, exit_state);
        misses += static_cast<std::int64_t>(segment.iterations - 1) *
                  per_iteration;
        state = std::move(exit_state);
        return misses;
    }

    std::int64_t run_alternative(const Segment& segment, MustState& state)
    {
        std::int64_t worst = 0;
        std::optional<MustState> joined;
        for (const auto& branch : segment.branches) {
            MustState branch_state = state;
            worst = std::max(worst, run(branch, branch_state));
            joined = joined.has_value() ? meet(*joined, branch_state)
                                        : std::move(branch_state);
        }
        state = std::move(*joined);
        return worst;
    }

    const CacheGeometry& geometry_;
    const std::map<std::string, std::vector<Segment>>& procedures_;
};

// Longest-path fetch count (for PD) and a per-block upper bound on the
// dynamic reference count (for the conservative UCB classification).
struct PathStats {
    std::int64_t max_fetches = 0;
    std::map<std::size_t, std::int64_t> max_count;
};

void accumulate(const std::vector<Segment>& segments, std::int64_t multiplier,
                const std::map<std::string, std::vector<Segment>>& procedures,
                PathStats& stats)
{
    for (const Segment& segment : segments) {
        stats.max_fetches +=
            multiplier * static_cast<std::int64_t>(segment.blocks.size());
        for (const std::size_t block : segment.blocks) {
            stats.max_count[block] += multiplier;
        }
        if (!segment.body.empty() && segment.iterations > 0) {
            accumulate(segment.body,
                       multiplier *
                           static_cast<std::int64_t>(segment.iterations),
                       procedures, stats);
        }
        if (!segment.call.empty()) {
            accumulate(procedures.at(segment.call), multiplier, procedures,
                       stats);
        }
        if (!segment.branches.empty()) {
            // Longest path takes the worst branch; for reuse counts we sum
            // all branches (a sound over-approximation of any resolution —
            // across loop iterations different branches may execute).
            std::int64_t worst_branch = 0;
            for (const auto& branch : segment.branches) {
                PathStats branch_stats;
                accumulate(branch, multiplier, procedures, branch_stats);
                worst_branch =
                    std::max(worst_branch, branch_stats.max_fetches);
                for (const auto& [block, count] : branch_stats.max_count) {
                    stats.max_count[block] += count;
                }
            }
            stats.max_fetches += worst_branch;
        }
    }
}

} // namespace

AbstractExtraction analyze_program(const Program& program,
                                   const CacheGeometry& geometry)
{
    if (geometry.ways != 1) {
        throw std::invalid_argument(
            "analyze_program: must analysis supports direct-mapped only");
    }

    AbstractExtraction result;
    result.name = program.name();
    result.ecb = SetMask(geometry.sets);
    result.ucb = SetMask(geometry.sets);
    result.pcb = SetMask(geometry.sets);

    // Path-independent layout facts: ECB, PCB.
    const std::vector<std::size_t> blocks = program.distinct_blocks();
    std::map<std::size_t, std::size_t> distinct_per_set;
    for (const std::size_t block : blocks) {
        distinct_per_set[geometry.set_of(block)] += 1;
    }
    for (const std::size_t block : blocks) {
        const std::size_t set = geometry.set_of(block);
        result.ecb.insert(set);
        if (distinct_per_set[set] == 1) {
            result.pcb.insert(set);
        }
    }

    // PD and UCB from the path statistics.
    PathStats stats;
    accumulate(program.body(), 1, program.procedures(), stats);
    result.pd = stats.max_fetches * program.cycles_per_fetch();
    for (const auto& [block, count] : stats.max_count) {
        if (count >= 2) {
            result.ucb.insert(geometry.set_of(block));
        }
    }

    // Miss bounds via must analysis.
    MustAnalysis analysis(geometry, program.procedures());
    {
        MustState cold(geometry.sets);
        result.md = util::AccessCount{analysis.run(program.body(), cold)};
    }
    {
        MustState warm(geometry.sets);
        for (const std::size_t block : blocks) {
            if (distinct_per_set[geometry.set_of(block)] == 1) {
                warm[geometry.set_of(block)] = block;
            }
        }
        result.md_residual = util::AccessCount{analysis.run(program.body(), warm)};
    }
    return result;
}

} // namespace cpa::program
