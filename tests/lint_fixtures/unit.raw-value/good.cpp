// Fixture: to_index is the named conversion for Id subscripts.
#include "util/units.hpp"

#include <cstddef>

std::size_t index_of(cpa::util::TaskId id)
{
    return cpa::util::to_index(id);
}
