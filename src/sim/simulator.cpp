#include "sim/simulator.hpp"

#include "obs/obs.hpp"
#include "sim/arbiter.hpp"
#include "util/set_mask.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <random>
#include <stdexcept>
#include <vector>

namespace cpa::sim {

namespace {

using util::AccessCount;
using util::CoreId;
using util::SetMask;
using util::to_index;
using util::to_metric;
using util::to_payload;
using util::to_scalar;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

enum class EventType : std::uint8_t {
    kRelease, // a = task index
    kCpuDone, // a = core, b = generation (stale-event filter)
    kBusDone, // a = core
};

struct Event {
    Cycles time;
    std::uint64_t seq = 0; // FIFO tie-break for simultaneous events
    EventType type = EventType::kRelease;
    std::size_t a = 0;
    std::uint64_t b = 0;

    // Completions at time t happen before releases at time t: a job that
    // finishes exactly when the next one arrives has finished, not been
    // preempted (standard discrete-event convention; also what the analysis
    // assumes).
    [[nodiscard]] int rank() const
    {
        return type == EventType::kRelease ? 1 : 0;
    }

    bool operator>(const Event& other) const
    {
        if (time != other.time) {
            return time > other.time;
        }
        if (rank() != other.rank()) {
            return rank() > other.rank();
        }
        return seq > other.seq;
    }
};

struct Job {
    std::size_t task = kNone;
    Cycles arrival; // deadline reference point
    Cycles release; // arrival + jitter draw
    Cycles cpu_left;
    AccessCount accesses_left;
    bool started = false;   // accesses computed at first dispatch
    bool finished = false;
    Cycles chunk_started; // when the current compute chunk was scheduled
    Cycles chunk_len;
    SetMask evicted; // ECBs of tasks that ran while this job was suspended
};

struct Core {
    std::vector<std::size_t> ready; // job ids, any order (picked by priority)
    std::size_t running = kNone;    // job currently holding the CPU
    bool stalled = false;           // running job has an outstanding access
    std::uint64_t cpu_generation = 0;
    std::vector<std::int32_t> cache_owner; // task id per cache set, -1 empty
    std::size_t pending_request = kNone;   // job waiting for / using the bus
    Cycles request_issued_at;              // when pending_request stalled
};

class Simulation {
public:
    Simulation(const tasks::TaskSet& ts, const PlatformConfig& platform,
               const SimConfig& config)
        : ts_(ts), platform_(platform), config_(config),
          cores_(ts.num_cores()),
          arbiter_(config.policy, ts.num_cores(), platform.d_mem,
                   platform.slot_size),
          jitter_rng_(config.jitter_seed)
    {
        if (config.horizon <= Cycles{0}) {
            throw std::invalid_argument("simulate: horizon must be > 0");
        }
        if (config.l2_footprints != nullptr) {
            if (config.l2_footprints->size() != ts.size()) {
                throw std::invalid_argument(
                    "simulate: l2_footprints size mismatch");
            }
            l2_owner_.assign(config.l2.sets, -1);
        }
        for (Core& core : cores_) {
            core.cache_owner.assign(ts.cache_sets(), -1);
        }
        result_.max_response.assign(ts.size(), Cycles{0});
        result_.jobs_completed.assign(ts.size(), 0);
        result_.bus_accesses.assign(ts.size(), AccessCount{0});
        current_job_of_task_.assign(ts.size(), kNone);
    }

    SimResult run()
    {
        if (!config_.release_offsets.empty() &&
            config_.release_offsets.size() != ts_.size()) {
            throw std::invalid_argument(
                "simulate: release_offsets size mismatch");
        }
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const Cycles offset = config_.release_offsets.empty()
                                      ? Cycles{0}
                                      : config_.release_offsets[i];
            if (offset < Cycles{0}) {
                throw std::invalid_argument(
                    "simulate: negative release offset");
            }
            if (offset < config_.horizon) {
                push(offset + draw_jitter(i), EventType::kRelease, i,
                     to_payload(offset));
            }
        }
        while (!queue_.empty()) {
            const Event event = queue_.top();
            queue_.pop();
            now_ = event.time;
            if (stopped_) {
                break;
            }
            switch (event.type) {
            case EventType::kRelease:
                on_release(event.a, util::cycles_from_payload(event.b));
                break;
            case EventType::kCpuDone:
                on_cpu_done(event.a, event.b);
                break;
            case EventType::kBusDone:
                on_bus_done(event.a);
                break;
            }
        }
        return result_;
    }

private:
    void push(Cycles time, EventType type, std::size_t a, std::uint64_t b)
    {
        queue_.push(Event{time, seq_++, type, a, b});
    }

    void record_miss(std::size_t task)
    {
        CPA_COUNT("sim.deadline_misses");
        if (CPA_TRACE_ENABLED("sim")) {
            obs::Tracer::global().emit(
                obs::TraceEvent("sim", obs::Severity::kWarn, "deadline_miss")
                    .field("task", task)
                    .field("task_name", ts_[task].name)
                    .field("time", to_metric(now_)));
        }
        if (!result_.deadline_missed) {
            result_.deadline_missed = true;
            result_.missed_task = TaskId{task};
        }
        if (config_.stop_on_deadline_miss) {
            stopped_ = true;
        }
    }

    [[nodiscard]] Cycles draw_jitter(std::size_t task_index)
    {
        const Cycles jitter = ts_[task_index].jitter;
        if (jitter <= Cycles{0}) {
            return Cycles{0};
        }
        // cpa-lint: allow(unit.raw-count): RNG distribution bound; the
        // draw is re-wrapped into Cycles on the next line.
        std::uniform_int_distribution<std::int64_t> dist(0, jitter.count());
        return Cycles{dist(jitter_rng_)};
    }

    void on_release(std::size_t task_index, Cycles arrival)
    {
        const tasks::Task& task = ts_[task_index];
        // Implicit deadlines (D = T) in the generated sets mean an
        // unfinished predecessor at the next release is a deadline miss; for
        // constrained deadlines the miss is detected at completion instead.
        if (current_job_of_task_[task_index] != kNone &&
            !jobs_[current_job_of_task_[task_index]].finished) {
            record_miss(task_index);
            if (stopped_) {
                return;
            }
        }

        Job job;
        job.task = task_index;
        job.arrival = arrival;
        job.release = now_;
        job.cpu_left = task.pd;
        job.evicted = SetMask(ts_.cache_sets());
        const std::size_t job_id = jobs_.size();
        jobs_.push_back(std::move(job));
        current_job_of_task_[task_index] = job_id;

        cores_[task.core].ready.push_back(job_id);
        dispatch(task.core);

        const Cycles next_arrival = arrival + task.period;
        if (next_arrival < config_.horizon) {
            push(next_arrival + draw_jitter(task_index), EventType::kRelease,
                 task_index, to_payload(next_arrival));
        }
    }

    // Picks the highest-priority ready job; preempts the current one if it is
    // merely computing (an outstanding bus access is non-preemptive and
    // defers the switch to on_bus_done).
    void dispatch(std::size_t core_index)
    {
        Core& core = cores_[core_index];

        // Ties (two live jobs of one task after a deadline miss) go to the
        // older job: jobs of a task execute in release order. Breaking ties
        // by ready-queue position instead would interleave the two jobs on
        // every bus access, each switch charging a full CRPD reload — the
        // reloads then refill accesses_left faster than the bus drains it
        // and the simulation never terminates.
        std::size_t best = kNone;
        for (const std::size_t job_id : core.ready) {
            if (best == kNone || jobs_[job_id].task < jobs_[best].task ||
                (jobs_[job_id].task == jobs_[best].task && job_id < best)) {
                best = job_id;
            }
        }

        if (core.running != kNone && core.stalled) {
            // The switch happens when the access completes. A queued request
            // meanwhile inherits the priority of the best waiting job, or
            // the whole core would suffer a priority inversion behind every
            // intermediate-priority access of the other cores — a delay the
            // Eq. (7) analysis correctly does not charge to the preempter.
            if (best != kNone &&
                jobs_[best].task < jobs_[core.running].task) {
                arbiter_.promote(CoreId{core_index},
                                 TaskId{jobs_[best].task});
            }
            return;
        }

        if (best == kNone) {
            return; // nothing ready; the running job (if any) continues
        }
        if (core.running != kNone &&
            jobs_[core.running].task <= jobs_[best].task) {
            return; // current job has higher (or equal) priority
        }

        if (core.running != kNone) {
            preempt(core_index);
        }
        start_job(core_index, best);
    }

    void preempt(std::size_t core_index)
    {
        CPA_COUNT("sim.preemptions");
        Core& core = cores_[core_index];
        Job& job = jobs_[core.running];
        const Cycles elapsed = now_ - job.chunk_started;
        job.cpu_left -= std::min(elapsed, job.chunk_len);
        core.cpu_generation++; // invalidates the scheduled kCpuDone
        core.ready.push_back(core.running);
        core.running = kNone;
    }

    void start_job(std::size_t core_index, std::size_t job_id)
    {
        Core& core = cores_[core_index];
        std::erase(core.ready, job_id);
        core.running = job_id;
        Job& job = jobs_[job_id];
        const tasks::Task& task = ts_[job.task];

        if (!job.started) {
            job.started = true;
            AccessCount missing_pcbs{0};
            for (const std::size_t set : task.pcb.to_indices()) {
                if (core.cache_owner[set] !=
                    static_cast<std::int32_t>(job.task)) {
                    missing_pcbs += AccessCount{1};
                }
            }
            const AccessCount requests =
                std::min(task.md, task.md_residual + missing_pcbs);
            job.accesses_left = requests;
            if (config_.l2_footprints != nullptr) {
                // Shared-L2 persistence: blocks the task still owns in the
                // L2 are served there; only the rest reach the bus. Every
                // L1 miss additionally stalls the core for d_l2.
                const analysis::L2Footprint& fp =
                    (*config_.l2_footprints)[job.task];
                AccessCount missing_l2{0};
                for (const std::size_t set : fp.pcb2.to_indices()) {
                    if (l2_owner_[set] !=
                        static_cast<std::int32_t>(job.task)) {
                        missing_l2 += AccessCount{1};
                    }
                }
                job.accesses_left = std::min(
                    requests,
                    fp.md_residual_l2 + missing_pcbs + missing_l2);
                job.cpu_left += requests * config_.l2.d_l2;
            }
        } else {
            // CRPD reloads: useful blocks evicted while suspended.
            const AccessCount reloads = util::accesses_from_blocks(
                task.ucb.intersection_count(job.evicted));
            job.accesses_left += reloads;
            if (config_.l2_footprints != nullptr) {
                job.cpu_left += reloads * config_.l2.d_l2;
            }
            job.evicted.clear();
        }

        // Everything this job executes evicts aliased content used by the
        // other (suspended) jobs of this core.
        for (const std::size_t other_id : core.ready) {
            Job& other = jobs_[other_id];
            if (other.started) {
                other.evicted |= task.ecb;
            }
        }

        schedule_chunk(core_index);
    }

    void schedule_chunk(std::size_t core_index)
    {
        Core& core = cores_[core_index];
        Job& job = jobs_[core.running];
        const Cycles chunk =
            job.accesses_left > AccessCount{0}
                ? job.cpu_left / (to_scalar(job.accesses_left) + 1)
                : job.cpu_left;
        job.chunk_started = now_;
        job.chunk_len = chunk;
        push(now_ + chunk, EventType::kCpuDone, core_index,
             core.cpu_generation);
    }

    void on_cpu_done(std::size_t core_index, std::uint64_t generation)
    {
        Core& core = cores_[core_index];
        if (generation != core.cpu_generation || core.running == kNone) {
            return; // stale (the job was preempted mid-chunk)
        }
        Job& job = jobs_[core.running];
        job.cpu_left -= job.chunk_len;
        if (job.accesses_left > AccessCount{0}) {
            issue_request(core_index);
        } else {
            complete_job(core_index);
        }
    }

    void issue_request(std::size_t core_index)
    {
        CPA_COUNT("sim.bus_requests");
        Core& core = cores_[core_index];
        core.stalled = true;
        core.pending_request = core.running;
        core.request_issued_at = now_;
        const auto completion = arbiter_.request(
            CoreId{core_index}, TaskId{jobs_[core.running].task}, now_);
        if (completion.has_value()) {
            push(*completion, EventType::kBusDone, core_index, 0);
        }
    }

    void on_bus_done(std::size_t core_index)
    {
        Core& core = cores_[core_index];
        const std::size_t job_id = core.pending_request;
        core.pending_request = kNone;
        core.stalled = false;
        // The bus granted and served one access for this core; the core
        // stalled from issue to completion (queueing + the d_mem service).
        CPA_COUNT("sim.bus_grants");
        CPA_COUNT_ADD("sim.stall_cycles",
                      to_metric(now_ - core.request_issued_at));
        CPA_COUNT_ADD("sim.contention_cycles",
                      to_metric(now_ - core.request_issued_at -
                                platform_.d_mem));

        Job& job = jobs_[job_id];
        job.accesses_left -= AccessCount{1};
        result_.bus_accesses[job.task] += AccessCount{1};

        // Give the scheduler a chance to switch to a job released during the
        // access; otherwise continue with the next compute chunk.
        core.ready.push_back(job_id);
        core.running = kNone;
        core.cpu_generation++;
        dispatch(core_index);

        if (const auto next = arbiter_.complete(CoreId{core_index}, now_);
            next.has_value()) {
            push(next->second, EventType::kBusDone, to_index(next->first), 0);
        }
    }

    void complete_job(std::size_t core_index)
    {
        Core& core = cores_[core_index];
        const std::size_t job_id = core.running;
        Job& job = jobs_[job_id];
        const tasks::Task& task = ts_[job.task];

        job.finished = true;
        core.running = kNone;
        core.cpu_generation++;
        CPA_COUNT("sim.jobs_completed");

        const Cycles response = now_ - job.arrival;
        result_.max_response[job.task] =
            std::max(result_.max_response[job.task], response);
        result_.jobs_completed[job.task] += 1;
        if (response > task.deadline) {
            record_miss(job.task);
        }

        // Install the task's footprint: its blocks now own their sets.
        for (const std::size_t set : task.ecb.to_indices()) {
            core.cache_owner[set] = static_cast<std::int32_t>(job.task);
        }
        if (config_.l2_footprints != nullptr) {
            for (const std::size_t set :
                 (*config_.l2_footprints)[job.task].ecb2.to_indices()) {
                l2_owner_[set] = static_cast<std::int32_t>(job.task);
            }
        }

        dispatch(core_index);
    }

    const tasks::TaskSet& ts_;
    const PlatformConfig& platform_;
    const SimConfig& config_;

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::uint64_t seq_ = 0;
    Cycles now_;
    bool stopped_ = false;

    std::vector<Job> jobs_;
    std::vector<Core> cores_;
    std::vector<std::size_t> current_job_of_task_;

    BusArbiter arbiter_;
    std::mt19937_64 jitter_rng_;
    std::vector<std::int32_t> l2_owner_; // shared; empty when no L2

    SimResult result_;
};

} // namespace

SimResult simulate(const tasks::TaskSet& ts, const PlatformConfig& platform,
                   const SimConfig& config)
{
    if (ts.empty()) {
        return SimResult{};
    }
    CPA_PROFILE_SPAN("sim.run");
    Simulation simulation(ts, platform, config);
    return simulation.run();
}

} // namespace cpa::sim
