// The provable invariant catalog: one Property per entry of
// check::invariant_catalog(), pairing the invariant name with an interval
// margin rule over the abstract scenario.
//
// Margin semantics: the rule returns an enclosure of a certified lower
// bound on the invariant's minimum slack over the sub-box.
//   * lo >= 0  — the model satisfies the invariant everywhere in the box;
//   * hi < 0   — the model violates it everywhere (the prover then hunts a
//                concrete witness);
//   * straddle — inconclusive: bisect along `used` dimensions.
// A nullopt margin means the property has no interval rule (the event
// simulator is outside the abstract domain); the prover only samples it and
// reports UNDECIDED rather than silently dropping it.
#pragma once

#include "verify/abstract.hpp"

#include <optional>
#include <string_view>
#include <vector>

namespace cpa::verify {

using MarginFn = std::optional<ICount> (*)(const AbstractScenario&);

struct Property {
    std::string_view name; // matches check::invariant_catalog() exactly
    bool bisectable = true;
    std::vector<Dim> used; // dimensions the margin rule reads
    MarginFn margin = nullptr;
    std::string_view note; // proof caveat surfaced in reports
};

[[nodiscard]] const std::vector<Property>& property_catalog();

[[nodiscard]] const Property* find_property(std::string_view name);

} // namespace cpa::verify
