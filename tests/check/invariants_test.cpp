// Positive-path tests for the invariant checker: the real analysis must
// satisfy the whole catalog on the paper's Fig. 1 example and on structured
// hand-built sets, and the catalog metadata must stay consistent with what
// check_task_set() can actually report.
#include "check/invariants.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace cpa::check {
namespace {

analysis::PlatformConfig small_platform(std::size_t cores,
                                        std::size_t cache_sets)
{
    analysis::PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = cache_sets;
    return platform;
}

std::string violation_dump(const CheckResult& result)
{
    std::string out;
    for (const Violation& violation : result.violations) {
        out += violation.invariant + ": " + violation.detail + "\n";
    }
    return out;
}

TEST(CheckInvariants, Fig1PassesTheFullCatalog)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    const CheckResult result =
        check_task_set(ts, small_platform(2, 16), CheckOptions{});
    EXPECT_TRUE(result.ok()) << violation_dump(result);
    EXPECT_GT(result.checks_run, 100u);
}

TEST(CheckInvariants, Fig1PassesUnderEveryCrpdAndCproVariant)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    for (const auto crpd :
         {analysis::CrpdMethod::kEcbUnion, analysis::CrpdMethod::kUcbOnly,
          analysis::CrpdMethod::kEcbOnly}) {
        for (const auto cpro :
             {analysis::CproMethod::kUnion, analysis::CproMethod::kJobBound}) {
            CheckOptions options;
            options.crpd = crpd;
            options.cpro = cpro;
            options.check_simulation = false;
            const AnalysisOracle oracle(ts, small_platform(2, 16), crpd);
            const CheckResult result = check_task_set(oracle, options);
            EXPECT_TRUE(result.ok()) << violation_dump(result);
        }
    }
}

TEST(CheckInvariants, JitteredConstrainedDeadlineSetPasses)
{
    // Constrained deadlines + release jitter exercise the E_j(t) jitter
    // terms and the D < T window logic of the catalog.
    tasks::TaskSet ts = testing::make_task_set(
        2, 16,
        {
            {.core = 0, .pd = 2, .md = 3, .md_residual = 1, .period = 20,
             .deadline = 15, .ecb = {0, 1, 2, 3}, .ucb = {1, 2},
             .pcb = {0, 3}},
            {.core = 1, .pd = 3, .md = 4, .md_residual = 2, .period = 25,
             .deadline = 20, .ecb = {2, 3, 4, 5}, .ucb = {3}, .pcb = {4, 5}},
            {.core = 0, .pd = 5, .md = 5, .md_residual = 5, .period = 60,
             .deadline = 50, .ecb = {0, 1, 4}, .ucb = {0, 1}, .pcb = {}},
        });
    // make_task_set builds jitter-free tasks; re-add jitter within T - D.
    tasks::TaskSet jittered(2, 16);
    for (const tasks::Task& original : ts.tasks()) {
        tasks::Task task = original;
        task.jitter = util::Cycles{2};
        jittered.add_task(std::move(task));
    }
    jittered.validate();
    const CheckResult result =
        check_task_set(jittered, small_platform(2, 16), CheckOptions{});
    EXPECT_TRUE(result.ok()) << violation_dump(result);
}

TEST(CheckInvariants, EmptyTaskSetRunsNoChecks)
{
    const tasks::TaskSet ts(2, 16);
    const CheckResult result =
        check_task_set(ts, small_platform(2, 16), CheckOptions{});
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.checks_run, 0u);
}

TEST(CheckInvariants, CatalogNamesAreUniqueAndNonEmpty)
{
    std::set<std::string_view> names;
    for (const InvariantInfo& info : invariant_catalog()) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_FALSE(info.summary.empty());
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate catalog entry " << info.name;
    }
    EXPECT_GE(names.size(), 15u);
}

TEST(CheckInvariants, OracleAccessorsExposeTheAnalyzedSystem)
{
    const tasks::TaskSet ts = testing::fig1_task_set();
    const AnalysisOracle oracle(ts, small_platform(2, 16));
    EXPECT_EQ(&oracle.task_set(), &ts);
    EXPECT_EQ(oracle.platform().num_cores, 2u);
    EXPECT_EQ(oracle.tables().size(), ts.size());
}

} // namespace
} // namespace cpa::check
