// Fixture: a literal-seeded engine ignores the experiment seed; every
// stream must derive from (base_seed, trial_index) via util::seed_for.
#include <cstdint>
#include <random>

std::uint64_t draw()
{
    std::mt19937_64 gen(12345);
    return gen();
}
