#include "cache/lru.hpp"

#include "cache/direct_mapped.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpa::cache {
namespace {

TEST(LruCache, RejectsDegenerateGeometry)
{
    EXPECT_THROW(LruCache({0, 32, 1}), std::invalid_argument);
    EXPECT_THROW(LruCache({8, 32, 0}), std::invalid_argument);
}

TEST(LruCache, ColdMissThenHit)
{
    LruCache cache({4, 32, 2});
    EXPECT_FALSE(cache.access(1));
    EXPECT_TRUE(cache.access(1));
}

TEST(LruCache, TwoWaysHoldTwoConflictingBlocks)
{
    LruCache cache({4, 32, 2});
    EXPECT_FALSE(cache.access(1));
    EXPECT_FALSE(cache.access(5)); // same set, second way
    EXPECT_TRUE(cache.access(1));
    EXPECT_TRUE(cache.access(5));
    EXPECT_EQ(cache.occupied(), 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache cache({4, 32, 2});
    (void)cache.access(1); // set 1: [1]
    (void)cache.access(5); // set 1: [5, 1]
    (void)cache.access(1); // set 1: [1, 5]
    (void)cache.access(9); // evicts 5 (LRU), set 1: [9, 1]
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(5));
    EXPECT_TRUE(cache.contains(9));
}

TEST(LruCache, PreloadInstallsWithoutEvictionWhenRoom)
{
    LruCache cache({4, 32, 2});
    cache.preload(2);
    cache.preload(6);
    EXPECT_TRUE(cache.access(2));
    EXPECT_TRUE(cache.access(6));
}

TEST(LruCache, FlushClearsEverything)
{
    LruCache cache({4, 32, 2});
    (void)cache.access(0);
    (void)cache.access(1);
    cache.flush();
    EXPECT_EQ(cache.occupied(), 0u);
}

TEST(LruCache, OneWayMatchesDirectMappedOnRandomishTrace)
{
    const CacheGeometry geometry{8, 32, 1};
    LruCache lru(geometry);
    DirectMappedCache dm({geometry.sets, geometry.block_bytes});
    const std::vector<std::size_t> trace = {0, 8,  1, 9, 0,  8, 2, 3,
                                            2, 10, 2, 0, 16, 8, 0, 5};
    for (const std::size_t block : trace) {
        EXPECT_EQ(lru.access(block), dm.access(block)) << block;
    }
}

// LRU (same set count, growing ways) satisfies the inclusion property:
// miss counts are non-increasing in associativity.
class LruInclusion : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LruInclusion, MissesDecreaseWithWays)
{
    const std::size_t sets = GetParam();
    std::vector<std::size_t> trace;
    for (int round = 0; round < 6; ++round) {
        for (std::size_t b = 0; b < 3 * sets; b += (round % 2) ? 3 : 1) {
            trace.push_back(b);
        }
    }
    std::size_t previous = trace.size() + 1;
    for (const std::size_t ways : {1u, 2u, 4u, 8u}) {
        LruCache cache({sets, 32, ways});
        std::size_t misses = 0;
        for (const std::size_t block : trace) {
            if (!cache.access(block)) {
                ++misses;
            }
        }
        EXPECT_LE(misses, previous) << "ways=" << ways;
        previous = misses;
    }
}

INSTANTIATE_TEST_SUITE_P(Sets, LruInclusion, ::testing::Values(4, 8, 16, 64));

TEST(LruCache, PingPongResolvedByTwoWays)
{
    // The classic direct-mapped pathology disappears with 2 ways.
    LruCache one_way({8, 32, 1});
    LruCache two_way({8, 32, 2});
    std::size_t misses_1 = 0;
    std::size_t misses_2 = 0;
    for (int i = 0; i < 10; ++i) {
        for (const std::size_t block : {0u, 8u}) {
            misses_1 += one_way.access(block) ? 0u : 1u;
            misses_2 += two_way.access(block) ? 0u : 1u;
        }
    }
    EXPECT_EQ(misses_1, 20u);
    EXPECT_EQ(misses_2, 2u);
}

} // namespace
} // namespace cpa::cache
