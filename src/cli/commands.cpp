#include "cli/commands.hpp"

#include "analysis/multilevel.hpp"
#include "analysis/report.hpp"
#include "analysis/request.hpp"
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "check/assert.hpp"
#include "check/random_check.hpp"
#include "check/tolerance.hpp"
#include "experiments/sweep.hpp"
#include "cli/batch.hpp"
#include "cli/options.hpp"
#include "cli/taskset_io.hpp"
#include "verify/box.hpp"
#include "verify/properties.hpp"
#include "verify/prover.hpp"
#include "obs/build_info.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cpa::cli {

namespace {

using analysis::AnalysisConfig;
using analysis::AnalysisRequest;
using analysis::BusPolicy;

ExitCode cmd_analyze(Flags flags, const std::string& path, std::ostream& out,
                     std::ostream& err)
{
    std::string policy_name;
    const AnalysisRequest request =
        take_analysis_request(flags, opt::kPolicyAll, &policy_name);
    const bool report = flags.take_switch(opt::kReport);
    const bool csv = flags.take_switch(opt::kCsv);
    const bool sim_check = flags.take_switch(opt::kSimCheck);
    const ObsOptions obs_options = ObsOptions::take(flags);
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);

    const ParsedSystem parsed = parse_task_set_file(path);
    if (report && parsed.l2.has_value()) {
        throw std::runtime_error(
            "--report is not supported with an L2 (no decomposition for the "
            "multilevel analysis)");
    }

    AnalysisConfig config = request.config;
    const bool persistence = config.persistence_aware;

    std::vector<BusPolicy> policies;
    if (policy_name == "all") {
        policies = {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
                    BusPolicy::kTdma, BusPolicy::kPerfect};
    } else {
        policies = {config.policy};
    }

    const analysis::InterferenceTables tables(parsed.ts, config.crpd);
    bool all_schedulable = true;
    std::vector<std::pair<std::string, bool>> policy_verdicts;

    // With an L2 declared, run the multilevel analysis instead (no
    // decomposition support there; synthesize the per-task verdict rows
    // from the WCRT result).
    std::optional<analysis::L2InterferenceTables> l2_tables;
    if (parsed.l2.has_value()) {
        l2_tables.emplace(parsed.ts, parsed.l2_footprints);
    }
    const auto multilevel_breakdowns =
        [&](const analysis::AnalysisConfig& ml_config) {
            const analysis::WcrtResult wcrt =
                analysis::compute_wcrt_multilevel(
                    parsed.ts, parsed.platform, ml_config, *parsed.l2,
                    parsed.l2_footprints, tables, *l2_tables);
            std::vector<analysis::ResponseBreakdown> rows(parsed.ts.size());
            const std::size_t analyzable = wcrt.schedulable
                                               ? parsed.ts.size()
                                               : util::to_index(wcrt.failed_task) + 1;
            for (std::size_t i = 0; i < analyzable && i < rows.size(); ++i) {
                rows[i].analyzed = true;
                rows[i].response = wcrt.response[i];
                rows[i].meets_deadline =
                    wcrt.response[i] <= parsed.ts[i].effective_deadline();
            }
            return rows;
        };

    for (const BusPolicy policy : policies) {
        config.policy = policy;
        const auto breakdowns =
            parsed.l2.has_value()
                ? multilevel_breakdowns(config)
                : analysis::explain_responses(parsed.ts, parsed.platform,
                                              config, tables);
        const bool bus_ok =
            policy != BusPolicy::kPerfect ||
            check::utilization_within(
                parsed.ts.bus_utilization(parsed.platform.d_mem), 1.0);
        bool schedulable = bus_ok;
        for (const auto& b : breakdowns) {
            schedulable = schedulable && b.analyzed && b.meets_deadline;
        }
        all_schedulable = all_schedulable && schedulable;
        policy_verdicts.emplace_back(analysis::to_string(policy),
                                     schedulable);

        out << "== " << analysis::to_string(policy) << " bus, persistence "
            << (persistence ? "on" : "off")
            << (parsed.l2.has_value() ? ", shared L2" : "") << ": "
            << (schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE") << " ==\n";

        util::TextTable table(
            report ? std::vector<std::string>{"task", "core", "R", "D",
                                              "verdict", "cpu", "preempt",
                                              "bus-same", "bus-cross"}
                   : std::vector<std::string>{"task", "core", "R", "D",
                                              "verdict"});
        for (std::size_t i = 0; i < parsed.ts.size(); ++i) {
            const auto& b = breakdowns[i];
            const auto& task = parsed.ts[i];
            std::vector<std::string> row{
                task.name, std::to_string(task.core),
                b.analyzed ? util::to_string(b.response) : "-",
                util::to_string(task.deadline),
                !b.analyzed ? "not analyzed"
                            : (b.meets_deadline ? "ok" : "MISS")};
            if (report) {
                row.push_back(util::to_string(b.cpu_self));
                row.push_back(util::to_string(b.cpu_preemption));
                row.push_back(util::to_string(b.bus_same_core));
                row.push_back(util::to_string(b.bus_cross_core));
            }
            table.add_row(std::move(row));
        }
        if (csv) {
            table.print_csv(out);
        } else {
            table.print(out);
        }

        // Optional cross-check: run the discrete-event simulator and verify
        // the bounds cover the observed responses (skipped for the perfect
        // bus and for multilevel systems — the simulator then needs the L2
        // footprints wired via the library API).
        if (sim_check && schedulable && policy != BusPolicy::kPerfect) {
            util::Cycles max_period{0};
            for (const auto& task : parsed.ts.tasks()) {
                max_period = std::max(max_period, task.period);
            }
            sim::SimConfig sim_config;
            sim_config.policy = policy;
            sim_config.horizon = 4 * max_period;
            sim_config.stop_on_deadline_miss = false;
            if (parsed.l2.has_value()) {
                sim_config.l2 = *parsed.l2;
                sim_config.l2_footprints = &parsed.l2_footprints;
            }
            const sim::SimResult observed =
                sim::simulate(parsed.ts, parsed.platform, sim_config);
            bool sound = true;
            double worst_margin = 0.0;
            for (std::size_t i = 0; i < parsed.ts.size(); ++i) {
                const auto bound =
                    breakdowns[i].response + parsed.ts[i].jitter;
                if (observed.max_response[i] > bound) {
                    sound = false;
                    out << "  SIM-CHECK VIOLATION: " << parsed.ts[i].name
                        << " observed " << observed.max_response[i]
                        << " > bound " << bound << "\n";
                }
                if (bound > util::Cycles{0}) {
                    worst_margin = std::max(
                        worst_margin,
                        util::to_double(observed.max_response[i]) /
                            util::to_double(bound));
                }
            }
            out << "sim-check: "
                << (sound ? "bounds hold over a 4-hyperperiod window"
                          : "BOUNDS VIOLATED")
                << "; worst observed/bound = "
                << util::TextTable::num(worst_margin, 3) << "\n";
            if (!sound) {
                all_schedulable = false;
            }
        }
        out << '\n';
    }

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa analyze");
        run_report.set("file", obs::JsonValue(path));
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("persistence_aware", obs::JsonValue(persistence));
        cfg.set("crpd", obs::JsonValue(analysis::spelling(config.crpd)));
        cfg.set("cpro", obs::JsonValue(analysis::spelling(config.cpro)));
        cfg.set("tasks", obs::JsonValue(parsed.ts.size()));
        cfg.set("cores", obs::JsonValue(parsed.ts.num_cores()));
        obs::JsonValue& verdicts = run_report.list("policies");
        for (const auto& [name, schedulable] : policy_verdicts) {
            obs::JsonValue entry = obs::JsonValue::object();
            entry.set("policy", obs::JsonValue(name));
            entry.set("schedulable", obs::JsonValue(schedulable));
            verdicts.push(std::move(entry));
        }
        run_report.set("all_schedulable", obs::JsonValue(all_schedulable));
        write_run_report(run_report, obs_options.metrics_out, out);
    }
    return all_schedulable ? ExitCode::kOk : ExitCode::kUnschedulable;
}

ExitCode cmd_simulate(Flags flags, const std::string& path, std::ostream& out,
                      std::ostream& err)
{
    const BusPolicy policy = parse_policy(flags.take(opt::kPolicy));
    const std::int64_t horizon_periods =
        std::stoll(flags.take(opt::kHorizonPeriods));
    const bool hyperperiod = flags.take_switch(opt::kHyperperiod);
    const ObsOptions obs_options = ObsOptions::take(flags);
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);
    if (horizon_periods <= 0) {
        throw std::runtime_error("--horizon-periods must be positive");
    }

    const ParsedSystem parsed = parse_task_set_file(path);
    util::Cycles max_period{0};
    util::Cycles lcm{1};
    constexpr util::Cycles kHyperperiodCap{1'000'000'000'000}; // 1e12
    for (const auto& task : parsed.ts.tasks()) {
        max_period = std::max(max_period, task.period);
        lcm = util::saturating_lcm(lcm, task.period, kHyperperiodCap);
    }
    if (hyperperiod && lcm >= kHyperperiodCap) {
        throw std::runtime_error(
            "hyperperiod exceeds 1e12 cycles; use --horizon-periods");
    }

    sim::SimConfig sim_config;
    sim_config.policy = policy;
    sim_config.horizon =
        hyperperiod ? lcm : horizon_periods * max_period;
    sim_config.stop_on_deadline_miss = false;
    const sim::SimResult result =
        sim::simulate(parsed.ts, parsed.platform, sim_config);

    out << "== simulation, " << analysis::to_string(policy) << " bus, "
        << sim_config.horizon << " cycles ==\n";
    util::TextTable table(
        {"task", "core", "jobs", "max R", "D", "bus accesses", "verdict"});
    for (std::size_t i = 0; i < parsed.ts.size(); ++i) {
        const auto& task = parsed.ts[i];
        table.add_row({task.name, std::to_string(task.core),
                       std::to_string(result.jobs_completed[i]),
                       util::to_string(result.max_response[i]),
                       util::to_string(task.deadline),
                       util::to_string(result.bus_accesses[i]),
                       result.max_response[i] <= task.deadline ? "ok"
                                                               : "MISS"});
    }
    table.print(out);

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa simulate");
        run_report.set("file", obs::JsonValue(path));
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("policy", obs::JsonValue(analysis::to_string(policy)));
        cfg.set("horizon",
                obs::JsonValue(util::to_metric(sim_config.horizon)));
        run_report.set("deadline_missed",
                       obs::JsonValue(result.deadline_missed));
        write_run_report(run_report, obs_options.metrics_out, out);
    }
    return result.deadline_missed ? ExitCode::kUnschedulable : ExitCode::kOk;
}

ExitCode cmd_generate(Flags flags, std::ostream& out)
{
    benchdata::GenerationConfig generation;
    generation.num_cores = static_cast<std::size_t>(
        std::stoll(flags.take("--cores", "4")));
    generation.tasks_per_core = static_cast<std::size_t>(
        std::stoll(flags.take("--tasks-per-core", "8")));
    generation.cache_sets = static_cast<std::size_t>(
        std::stoll(flags.take("--cache-sets", "256")));
    generation.per_core_utilization =
        std::stod(flags.take(opt::kUtilization));
    const auto seed = static_cast<std::uint64_t>(
        std::stoll(flags.take(opt::kSeedGenerate)));
    flags.expect_empty();

    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);
    util::Rng rng(seed);
    const tasks::TaskSet ts =
        benchdata::generate_task_set(rng, generation, pool);

    analysis::PlatformConfig platform;
    platform.num_cores = generation.num_cores;
    platform.cache_sets = generation.cache_sets;

    out << "# generated by `cpa generate`: " << generation.num_cores
        << " cores, " << generation.tasks_per_core
        << " tasks/core, U/core=" << generation.per_core_utilization
        << ", seed=" << seed << '\n';
    write_task_set(out, platform, ts);
    return ExitCode::kOk;
}

ExitCode cmd_sweep(Flags flags, std::ostream& out, std::ostream& err)
{
    benchdata::GenerationConfig generation;
    generation.num_cores = static_cast<std::size_t>(
        std::stoll(flags.take("--cores", "4")));
    generation.tasks_per_core = static_cast<std::size_t>(
        std::stoll(flags.take("--tasks-per-core", "8")));
    generation.cache_sets = static_cast<std::size_t>(
        std::stoll(flags.take("--cache-sets", "256")));
    experiments::SweepConfig sweep_config;
    sweep_config.task_sets_per_point = static_cast<std::size_t>(
        std::stoll(flags.take(opt::kTaskSets)));
    sweep_config.seed = static_cast<std::uint64_t>(
        std::stoll(flags.take(opt::kSeedSweep)));
    const EngineOptions engine_options = EngineOptions::take(flags);
    sweep_config.jobs = engine_options.jobs;
    sweep_config.engine = engine_options.engine;
    const bool csv = flags.take_switch(opt::kCsv);
    const ObsOptions obs_options =
        ObsOptions::take(flags, /*with_progress=*/true);
    if (obs_options.progress) {
        sweep_config.progress = make_progress_printer(err, "points");
    }
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);

    analysis::PlatformConfig platform;
    platform.num_cores = generation.num_cores;
    platform.cache_sets = generation.cache_sets;

    const auto sweep = experiments::run_utilization_sweep(
        generation, platform, experiments::standard_variants(),
        sweep_config);

    if (!csv) {
        out << "== schedulable task sets vs per-core utilization ("
            << generation.num_cores << " cores, "
            << generation.tasks_per_core << " tasks/core, "
            << generation.cache_sets << " sets, "
            << sweep.task_sets_per_point << " sets/point) ==\n";
    }
    std::vector<std::string> header{"U/core"};
    for (const auto& variant : sweep.variants) {
        header.push_back(variant.label);
    }
    util::TextTable table(header);
    for (const auto& point : sweep.points) {
        std::vector<std::string> row{
            util::TextTable::num(point.utilization, 2)};
        for (const std::size_t count : point.schedulable) {
            row.push_back(std::to_string(count));
        }
        table.add_row(std::move(row));
    }
    if (csv) {
        table.print_csv(out);
    } else {
        table.print(out);
    }

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa sweep");
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("cores", obs::JsonValue(generation.num_cores));
        cfg.set("tasks_per_core", obs::JsonValue(generation.tasks_per_core));
        cfg.set("cache_sets", obs::JsonValue(generation.cache_sets));
        cfg.set("task_sets_per_point",
                obs::JsonValue(sweep_config.task_sets_per_point));
        cfg.set("seed",
                obs::JsonValue(static_cast<std::int64_t>(sweep_config.seed)));
        write_run_report(run_report, obs_options.metrics_out, out);
    }
    return ExitCode::kOk;
}

ExitCode cmd_batch(Flags flags, std::ostream& out, std::ostream& err)
{
    BatchOptions batch_options;
    const std::string input = flags.take(opt::kInput);
    batch_options.default_taskset = flags.take(opt::kTaskset);
    batch_options.jobs = static_cast<std::size_t>(
        std::stoll(flags.take(opt::kJobs)));
    const ObsOptions obs_options = ObsOptions::take(flags);
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);

    std::ifstream file;
    if (input != "-") {
        file.open(input);
        if (!file) {
            throw std::runtime_error("cannot open batch input '" + input +
                                     "'");
        }
        // Request-local "taskset" references resolve against the request
        // file's directory, so committed request files stay relocatable.
        const std::size_t slash = input.rfind('/');
        batch_options.base_dir =
            slash == std::string::npos ? "" : input.substr(0, slash);
    }
    std::istream& in = input == "-" ? std::cin : file;

    const ExitCode code = run_batch(batch_options, in, out);

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa batch");
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("input", obs::JsonValue(input));
        cfg.set("jobs", obs::JsonValue(util::resolve_jobs(
                            batch_options.jobs)));
        run_report.set("exit_code", obs::JsonValue(to_exit_status(code)));
        write_run_report(run_report, obs_options.metrics_out, out);
    }
    return code;
}

ExitCode cmd_version(Flags flags, std::ostream& out)
{
    const bool json = flags.take_switch(opt::kJson);
    flags.expect_empty();
    const obs::BuildInfo& info = obs::build_info();
    if (json) {
        // The same provenance block every run report embeds, so tooling can
        // key bench history off `cpa version --json` output directly.
        obs::provenance_json().write(out);
        out << '\n';
        return ExitCode::kOk;
    }
    out << "cpa " << info.version << " (" << info.git_sha << ", "
        << info.git_dirty << ")\n"
        << "compiler: " << info.compiler << '\n'
        << "build type: " << info.build_type << '\n'
        << "features: obs=" << (info.obs ? "on" : "off")
        << " check=" << (info.check ? "on" : "off") << " sanitize="
        << (info.sanitize[0] == '\0' ? "off" : info.sanitize) << '\n';
    return ExitCode::kOk;
}

// Scoped activation of the analysis-core runtime assertions: `cpa check`
// always runs with the CPA_CHECK_ASSERT tripwires armed so a hot-path
// violation surfaces even where the catalog has no explicit relation.
class AssertionSession {
public:
    AssertionSession() : previous_(check::assertions_enabled())
    {
        check::set_assertions_enabled(true);
    }
    ~AssertionSession() { check::set_assertions_enabled(previous_); }
    AssertionSession(const AssertionSession&) = delete;
    AssertionSession& operator=(const AssertionSession&) = delete;

private:
    bool previous_;
};

ExitCode cmd_check(Flags flags, std::ostream& out, std::ostream& err)
{
    if (flags.take_switch(opt::kList)) {
        flags.expect_empty();
        util::TextTable table({"invariant", "checks"});
        for (const check::InvariantInfo& info : check::invariant_catalog()) {
            table.add_row({std::string(info.name),
                           std::string(info.summary)});
        }
        table.print(out);
        return ExitCode::kOk;
    }

    check::RandomCheckConfig config;
    config.seed = static_cast<std::uint64_t>(
        std::stoll(flags.take(opt::kSeedCheck)));
    config.trials = static_cast<std::size_t>(
        std::stoll(flags.take(opt::kTrials)));
    config.num_cores = static_cast<std::size_t>(
        std::stoll(flags.take("--cores", "4")));
    config.tasks_per_core = static_cast<std::size_t>(
        std::stoll(flags.take("--tasks-per-core", "4")));
    config.cache_sets = static_cast<std::size_t>(
        std::stoll(flags.take("--cache-sets", "64")));
    config.min_utilization = std::stod(flags.take(opt::kMinUtilization));
    config.max_utilization = std::stod(flags.take(opt::kMaxUtilization));
    config.options.check_simulation = !flags.take_switch(opt::kSkipSim);
    const EngineOptions engine_options = EngineOptions::take(flags);
    config.jobs = engine_options.jobs;
    config.options.engine = engine_options.engine;
    // Undocumented self-test hook: forces a synthetic violation per trial so
    // the reporting/exit-code path itself can be tested (the real analysis
    // is sound, so nothing else makes `cpa check` fail on purpose).
    config.inject_violation = flags.take_switch("--inject-violation");
    const bool fail_on_violation = flags.take_switch(opt::kFailOnViolation);
    const ObsOptions obs_options =
        ObsOptions::take(flags, /*with_progress=*/true);
    if (obs_options.progress) {
        config.progress = make_progress_printer(err, "trials");
    }
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);
    AssertionSession assertion_session;

    const check::RandomCheckResult result = check::run_random_checks(config);

    out << "== invariant check: " << result.trials_run
        << " random task sets, " << result.checks_run << " relations, "
        << result.violation_count() << " violations ==\n";
    if (!result.ok()) {
        util::TextTable table({"invariant", "violations"});
        for (const auto& [name, count] : result.violations_by_invariant) {
            table.add_row({name, std::to_string(count)});
        }
        table.print(out);
        for (const check::TrialFailure& failure : result.failures) {
            out << "trial " << failure.trial << " (seed " << failure.seed
                << ", U/core " << util::TextTable::num(failure.utilization, 2)
                << "):\n";
            for (const check::Violation& violation : failure.violations) {
                out << "  " << violation.invariant << ": " << violation.detail
                    << '\n';
            }
        }
    }

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa check");
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("seed", obs::JsonValue(static_cast<std::int64_t>(config.seed)));
        cfg.set("trials", obs::JsonValue(config.trials));
        cfg.set("cores", obs::JsonValue(config.num_cores));
        cfg.set("tasks_per_core", obs::JsonValue(config.tasks_per_core));
        cfg.set("cache_sets", obs::JsonValue(config.cache_sets));
        cfg.set("simulation", obs::JsonValue(config.options.check_simulation));
        run_report.set("trials_run", obs::JsonValue(result.trials_run));
        run_report.set("checks_run", obs::JsonValue(result.checks_run));
        run_report.set("violations",
                       obs::JsonValue(result.violation_count()));
        obs::JsonValue& by_invariant = run_report.list("violations_by_invariant");
        for (const auto& [name, count] : result.violations_by_invariant) {
            obs::JsonValue entry = obs::JsonValue::object();
            entry.set("invariant", obs::JsonValue(name));
            entry.set("count", obs::JsonValue(count));
            by_invariant.push(std::move(entry));
        }
        write_run_report(run_report, obs_options.metrics_out, out);
    }

    if (!result.ok() && fail_on_violation) {
        err << "cpa check: " << result.violation_count()
            << " invariant violation(s) across " << result.failures.size()
            << " of " << result.trials_run << " trials\n";
        return ExitCode::kViolation;
    }
    return ExitCode::kOk;
}

ExitCode cmd_verify(Flags flags, std::ostream& out, std::ostream& err)
{
    if (flags.take_switch(opt::kList)) {
        flags.expect_empty();
        util::TextTable table({"invariant", "rule", "note"});
        for (const verify::Property& property : verify::property_catalog()) {
            table.add_row({std::string(property.name),
                           property.bisectable ? "interval" : "sampled",
                           std::string(property.note)});
        }
        table.print(out);
        return ExitCode::kOk;
    }

    const std::string profile = flags.take(opt::kProfile);
    const std::string box_file = flags.take(opt::kBox);
    verify::ProverOptions options;
    std::string box_label;
    if (!box_file.empty()) {
        std::ifstream box_in(box_file);
        if (!box_in) {
            throw std::runtime_error("cannot read box file '" + box_file +
                                     "'");
        }
        options.box = verify::parse_box(box_in);
        box_label = "file " + box_file;
    } else if (profile == "fast") {
        options.box = verify::fast_box();
        box_label = "profile fast";
    } else if (profile == "full") {
        options.box = verify::full_box();
        box_label = "profile full";
    } else {
        throw std::runtime_error("unknown profile '" + profile +
                                 "' (expected fast or full)");
    }
    options.max_depth = static_cast<std::size_t>(
        std::stoll(flags.take(opt::kMaxDepth)));
    options.max_nodes = static_cast<std::size_t>(
        std::stoll(flags.take(opt::kMaxNodes)));
    const EngineOptions engine_options = EngineOptions::take(flags);
    options.jobs = util::resolve_jobs(engine_options.jobs);
    options.engine = engine_options.engine;
    const std::string fail_on = flags.take(opt::kFailOn);
    if (!fail_on.empty() && fail_on != "refuted" && fail_on != "undecided") {
        throw std::runtime_error("unknown --fail-on '" + fail_on +
                                 "' (expected refuted or undecided)");
    }
    const ObsOptions obs_options = ObsOptions::take(flags);
    flags.expect_empty();
    ObsScope obs_scope(obs_options, err);
    AssertionSession assertion_session;

    const verify::VerifyReport report = verify::run_prover(options);

    out << "== interval verification: " << report.properties.size()
        << " invariants over " << box_label << " ==\n";
    out << "box: " << options.box.describe({}) << '\n';
    util::TextTable table(
        {"invariant", "verdict", "proved", "open", "nodes", "samples",
         "depth"});
    for (const verify::PropertyReport& entry : report.properties) {
        table.add_row({entry.name, verify::to_string(entry.verdict),
                       std::to_string(entry.proved_boxes),
                       std::to_string(entry.undecided_boxes),
                       std::to_string(entry.nodes),
                       std::to_string(entry.samples),
                       std::to_string(entry.max_depth)});
    }
    table.print(out);
    out << "summary: " << report.proved() << " proved, " << report.refuted()
        << " refuted, " << report.undecided() << " undecided\n";
    // Open obligations are part of the result, never silently dropped.
    for (const verify::PropertyReport& entry : report.properties) {
        if (entry.verdict != verify::Verdict::kUndecided) {
            continue;
        }
        out << "undecided: " << entry.name;
        if (!entry.note.empty()) {
            out << " (" << entry.note << ')';
        }
        out << '\n';
    }
    for (const verify::PropertyReport& entry : report.properties) {
        for (const verify::Witness& witness : entry.witnesses) {
            out << "witness: " << witness.property << ": " << witness.detail
                << '\n';
            out << "  at " << witness.describe() << '\n';
        }
    }

    if (obs_scope.metrics_requested()) {
        obs::RunReport run_report("cpa verify");
        obs::JsonValue& cfg = run_report.section("config");
        cfg.set("box", obs::JsonValue(options.box.describe({})));
        cfg.set("max_depth", obs::JsonValue(options.max_depth));
        cfg.set("max_nodes", obs::JsonValue(options.max_nodes));
        run_report.set("proved", obs::JsonValue(report.proved()));
        run_report.set("refuted", obs::JsonValue(report.refuted()));
        run_report.set("undecided", obs::JsonValue(report.undecided()));
        obs::JsonValue& by_property = run_report.list("properties");
        for (const verify::PropertyReport& entry : report.properties) {
            obs::JsonValue row = obs::JsonValue::object();
            row.set("invariant", obs::JsonValue(entry.name));
            row.set("verdict",
                    obs::JsonValue(std::string(
                        verify::to_string(entry.verdict))));
            row.set("proved_boxes", obs::JsonValue(entry.proved_boxes));
            row.set("undecided_boxes",
                    obs::JsonValue(entry.undecided_boxes));
            row.set("nodes", obs::JsonValue(entry.nodes));
            row.set("samples", obs::JsonValue(entry.samples));
            by_property.push(std::move(row));
        }
        write_run_report(run_report, obs_options.metrics_out, out);
    }

    const bool fail_refuted = report.refuted() > 0;
    const bool fail_undecided = report.undecided() > 0;
    if ((fail_on == "refuted" && fail_refuted) ||
        (fail_on == "undecided" && (fail_refuted || fail_undecided))) {
        err << "cpa verify: " << report.refuted() << " refuted, "
            << report.undecided() << " undecided invariant(s)\n";
        return ExitCode::kViolation;
    }
    return ExitCode::kOk;
}

ExitCode cmd_help(const std::vector<std::string>& args, std::ostream& out)
{
    if (args.empty()) {
        print_usage(out);
        return ExitCode::kOk;
    }
    if (args.size() > 1 || !print_command_help(args[0], out)) {
        throw std::runtime_error("unknown command '" +
                                 (args.empty() ? "" : args[0]) +
                                 "' (try `cpa help`)");
    }
    return ExitCode::kOk;
}

} // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err)
{
    try {
        if (args.empty()) {
            print_usage(out);
            return to_exit_status(ExitCode::kUsage);
        }
        if (args[0] == "help" || args[0] == "--help") {
            return to_exit_status(
                cmd_help({args.begin() + 1, args.end()}, out));
        }
        const std::string command = args[0];
        ExitCode code = ExitCode::kUsage;
        if (command == "generate") {
            code = cmd_generate(Flags({args.begin() + 1, args.end()}), out);
        } else if (command == "sweep") {
            code = cmd_sweep(Flags({args.begin() + 1, args.end()}), out,
                             err);
        } else if (command == "batch") {
            code = cmd_batch(Flags({args.begin() + 1, args.end()}), out,
                             err);
        } else if (command == "check") {
            code = cmd_check(Flags({args.begin() + 1, args.end()}), out,
                             err);
        } else if (command == "verify") {
            code = cmd_verify(Flags({args.begin() + 1, args.end()}), out,
                              err);
        } else if (command == "version" || command == "--version") {
            code = cmd_version(Flags({args.begin() + 1, args.end()}), out);
        } else if (command == "analyze" || command == "simulate") {
            if (args.size() < 2 || args[1].rfind("--", 0) == 0) {
                throw std::runtime_error(command +
                                         " requires a task-set file");
            }
            Flags flags({args.begin() + 2, args.end()});
            code = command == "analyze"
                       ? cmd_analyze(std::move(flags), args[1], out, err)
                       : cmd_simulate(std::move(flags), args[1], out, err);
        } else {
            throw std::runtime_error("unknown command '" + command + "'");
        }
        return to_exit_status(code);
    } catch (const std::exception& error) {
        err << "cpa: " << error.what() << '\n';
        return to_exit_status(ExitCode::kUsage);
    }
}

} // namespace cpa::cli
