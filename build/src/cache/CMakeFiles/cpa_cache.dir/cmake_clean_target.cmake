file(REMOVE_RECURSE
  "libcpa_cache.a"
)
