#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

namespace cpa::util {
namespace {

// The splitmix64 / seed_for values are part of the reproduction contract:
// every experiment seeds trial i from seed_for(base, i), so changing these
// constants silently regenerates every random task set and invalidates the
// golden CLI fixtures. The pins below fail loudly instead.
TEST(SplitMix64, PinnedConstants)
{
    EXPECT_EQ(splitmix64(0), 16294208416658607535ULL);
    EXPECT_EQ(splitmix64(1), 10451216379200822465ULL);
    EXPECT_EQ(splitmix64(20200309), 16695925801020291643ULL);
}

TEST(SplitMix64, IsConstexpr)
{
    static_assert(splitmix64(0) == 16294208416658607535ULL);
    static_assert(seed_for(1, 0) == 10451216379200822465ULL);
}

TEST(SeedFor, PinnedConstants)
{
    EXPECT_EQ(seed_for(1, 0), 10451216379200822465ULL);
    EXPECT_EQ(seed_for(1, 1), 13757245211066428519ULL);
    EXPECT_EQ(seed_for(1, 2), 17911839290282890590ULL);
    EXPECT_EQ(seed_for(20200309, 0), 16695925801020291643ULL);
    EXPECT_EQ(seed_for(20200309, 99), 15950365405351706166ULL);
    EXPECT_EQ(seed_for(2020, 7), 13189597172345202700ULL);
}

TEST(SeedFor, MatchesSplitMix64Sequence)
{
    // seed_for(base, i) is the (i+1)-th output of a splitmix64 sequence
    // started at base — i.e. trial streams are a strided walk of one
    // well-studied generator, not an ad-hoc hash.
    const std::uint64_t base = 987654321;
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(seed_for(base, i),
                  splitmix64(base + i * 0x9E3779B97F4A7C15ULL));
    }
}

TEST(SeedFor, NoCollisionsAcross100kTrials)
{
    // Bijectivity of the splitmix64 mix makes collisions impossible for a
    // fixed base; this exercises the property at experiment scale.
    for (const std::uint64_t base : {1ULL, 2020ULL, 20200309ULL}) {
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(100'000);
        for (std::uint64_t trial = 0; trial < 100'000; ++trial) {
            EXPECT_TRUE(seen.insert(seed_for(base, trial)).second)
                << "collision at base " << base << ", trial " << trial;
        }
    }
}

TEST(SeedFor, AdjacentBasesDoNotShareStreams)
{
    // Nearby experiment seeds (1, 2, 3, ...) must not produce overlapping
    // trial streams in their first few thousand trials.
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t base = 1; base <= 8; ++base) {
        for (std::uint64_t trial = 0; trial < 4'000; ++trial) {
            EXPECT_TRUE(seen.insert(seed_for(base, trial)).second)
                << "overlap at base " << base << ", trial " << trial;
        }
    }
}

TEST(SeedFor, DerivedStreamsLookIndependent)
{
    // Trials seeded from adjacent indices must not produce correlated
    // draws; a crude check on the first moment of each stream.
    Rng a(seed_for(42, 0));
    Rng b(seed_for(42, 1));
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.uniform_int(0, 9) == b.uniform_int(0, 9)) {
            ++equal;
        }
    }
    // ~100 expected for independent streams of 10 symbols; 1000 would mean
    // the streams coincide.
    EXPECT_GT(equal, 20);
    EXPECT_LT(equal, 300);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIndexStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.uniform_index(17), 17u);
    }
}

TEST(Rng, UniformRealStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform_real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RejectsEmptyRanges)
{
    Rng rng(7);
    EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_real(2.0, 2.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(42);
    Rng child = parent.fork();
    // The child must not replay the parent's stream.
    Rng reference(42);
    (void)reference.engine()(); // parent consumed one draw for the fork
    bool any_difference = false;
    for (int i = 0; i < 16; ++i) {
        if (child.uniform_int(0, 1'000'000) !=
            parent.uniform_int(0, 1'000'000)) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

class UUnifastTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(UUnifastTest, SumsToTotalAndAllNonNegative)
{
    const auto [n, total] = GetParam();
    Rng rng(1234);
    for (int repeat = 0; repeat < 50; ++repeat) {
        const std::vector<double> u = uunifast(rng, n, total);
        ASSERT_EQ(u.size(), n);
        const double sum = std::accumulate(u.begin(), u.end(), 0.0);
        EXPECT_NEAR(sum, total, 1e-9);
        for (const double value : u) {
            EXPECT_GE(value, 0.0);
            EXPECT_LE(value, total + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, UUnifastTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 32),
                       ::testing::Values(0.05, 0.5, 1.0)));

TEST(UUnifast, SingleTaskGetsEverything)
{
    Rng rng(5);
    const std::vector<double> u = uunifast(rng, 1, 0.7);
    ASSERT_EQ(u.size(), 1u);
    EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUnifast, RejectsZeroTasks)
{
    Rng rng(5);
    EXPECT_THROW((void)uunifast(rng, 0, 0.5), std::invalid_argument);
}

TEST(UUnifast, ZeroUtilizationGivesAllZeros)
{
    Rng rng(5);
    for (const double value : uunifast(rng, 4, 0.0)) {
        EXPECT_DOUBLE_EQ(value, 0.0);
    }
}

} // namespace
} // namespace cpa::util
