// RED: with CPA_CHECKED_ARITH, an overflowing constexpr cross-dimension
// product (accesses x cycles-per-access, the Eq. 19 shape) must not
// compile.
#include "util/units.hpp"

#include <limits>

using cpa::util::AccessCount;
using cpa::util::Cycles;

constexpr AccessCount huge{std::numeric_limits<std::int64_t>::max() / 2};
constexpr Cycles demand = huge * Cycles{3};

int main()
{
    return static_cast<int>(cpa::util::to_metric(demand) & 1);
}
