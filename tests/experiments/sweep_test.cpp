#include "experiments/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cpa::experiments {
namespace {

SweepConfig tiny_sweep()
{
    SweepConfig sweep;
    sweep.u_min = 0.1;
    sweep.u_max = 0.5;
    sweep.u_step = 0.2;
    sweep.task_sets_per_point = 5;
    sweep.seed = 1;
    return sweep;
}

benchdata::GenerationConfig small_generation()
{
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    return gen;
}

analysis::PlatformConfig small_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    return platform;
}

TEST(Variants, StandardListHasSevenCurves)
{
    const auto variants = standard_variants();
    ASSERT_EQ(variants.size(), 7u);
    EXPECT_EQ(variants.front().label, "FP-CP");
    EXPECT_EQ(variants.back().label, "PerfectBus");
}

TEST(Variants, PerfectBusCanBeExcluded)
{
    EXPECT_EQ(standard_variants(false).size(), 6u);
}

TEST(Variants, SlottedVariantsDropFixedPriority)
{
    const auto variants = slotted_variants();
    EXPECT_EQ(variants.size(), 4u);
    for (const AnalysisVariant& v : variants) {
        EXPECT_NE(v.config.policy, analysis::BusPolicy::kFixedPriority)
            << v.label;
    }
}

TEST(Sweep, ProducesOnePointPerUtilizationLevel)
{
    const UtilizationSweep sweep = run_utilization_sweep(
        small_generation(), small_platform(), standard_variants(),
        tiny_sweep());
    EXPECT_EQ(sweep.points.size(), 3u); // 0.1, 0.3, 0.5
    EXPECT_EQ(sweep.task_sets_per_point, 5u);
    for (const SweepPoint& point : sweep.points) {
        ASSERT_EQ(point.schedulable.size(), 7u);
        for (const std::size_t count : point.schedulable) {
            EXPECT_LE(count, 5u);
        }
    }
}

TEST(Sweep, PersistenceVariantsDominateCounterparts)
{
    const auto variants = standard_variants(false);
    const UtilizationSweep sweep = run_utilization_sweep(
        small_generation(), small_platform(), variants, tiny_sweep());
    // Variant layout: pairs (CP, NoCP) per policy.
    for (const SweepPoint& point : sweep.points) {
        for (std::size_t pair = 0; pair < 3; ++pair) {
            EXPECT_GE(point.schedulable[2 * pair],
                      point.schedulable[2 * pair + 1])
                << variants[2 * pair].label << " vs "
                << variants[2 * pair + 1].label << " at u="
                << point.utilization;
        }
    }
}

TEST(Sweep, SchedulabilityDecreasesWithUtilization)
{
    SweepConfig sweep_config = tiny_sweep();
    sweep_config.u_min = 0.1;
    sweep_config.u_max = 0.9;
    sweep_config.u_step = 0.4;
    sweep_config.task_sets_per_point = 8;
    const UtilizationSweep sweep = run_utilization_sweep(
        small_generation(), small_platform(), standard_variants(),
        sweep_config);
    ASSERT_GE(sweep.points.size(), 2u);
    for (std::size_t v = 0; v < sweep.variants.size(); ++v) {
        EXPECT_GE(sweep.points.front().schedulable[v],
                  sweep.points.back().schedulable[v])
            << sweep.variants[v].label;
    }
}

TEST(Sweep, DeterministicForSameSeed)
{
    const UtilizationSweep a = run_utilization_sweep(
        small_generation(), small_platform(), standard_variants(),
        tiny_sweep());
    const UtilizationSweep b = run_utilization_sweep(
        small_generation(), small_platform(), standard_variants(),
        tiny_sweep());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t p = 0; p < a.points.size(); ++p) {
        EXPECT_EQ(a.points[p].schedulable, b.points[p].schedulable);
    }
}

TEST(Sweep, RejectsBadGridAndEmptyVariants)
{
    SweepConfig bad = tiny_sweep();
    bad.u_step = 0.0;
    EXPECT_THROW((void)run_utilization_sweep(small_generation(),
                                             small_platform(),
                                             standard_variants(), bad),
                 std::invalid_argument);
    EXPECT_THROW((void)run_utilization_sweep(small_generation(),
                                             small_platform(), {},
                                             tiny_sweep()),
                 std::invalid_argument);
}

TEST(WeightedSchedulability, AllSchedulableGivesOne)
{
    UtilizationSweep sweep;
    sweep.variants = standard_variants();
    sweep.task_sets_per_point = 10;
    for (const double u : {0.2, 0.4}) {
        SweepPoint point;
        point.utilization = u;
        point.schedulable.assign(sweep.variants.size(), 10);
        sweep.points.push_back(point);
    }
    EXPECT_DOUBLE_EQ(weighted_schedulability(sweep, 0), 1.0);
}

TEST(WeightedSchedulability, WeightsByUtilization)
{
    UtilizationSweep sweep;
    sweep.variants = standard_variants();
    sweep.task_sets_per_point = 10;
    SweepPoint low;
    low.utilization = 0.25;
    low.schedulable.assign(sweep.variants.size(), 10); // fraction 1
    SweepPoint high;
    high.utilization = 0.75;
    high.schedulable.assign(sweep.variants.size(), 0); // fraction 0
    sweep.points = {low, high};
    // (0.25*1 + 0.75*0) / (0.25 + 0.75) = 0.25.
    EXPECT_DOUBLE_EQ(weighted_schedulability(sweep, 0), 0.25);
}

TEST(WeightedSchedulability, RejectsBadVariantIndex)
{
    UtilizationSweep sweep;
    sweep.variants = standard_variants();
    EXPECT_THROW((void)weighted_schedulability(sweep, 99), std::out_of_range);
}

TEST(TaskSetsFromEnv, FallsBackWhenUnsetAndParsesWhenSet)
{
    ::unsetenv("CPA_TASKSETS");
    EXPECT_EQ(task_sets_from_env(42), 42u);
    ::setenv("CPA_TASKSETS", "17", 1);
    EXPECT_EQ(task_sets_from_env(42), 17u);
    ::setenv("CPA_TASKSETS", "bogus", 1);
    EXPECT_EQ(task_sets_from_env(42), 42u);
    ::unsetenv("CPA_TASKSETS");
}

} // namespace
} // namespace cpa::experiments
