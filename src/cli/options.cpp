#include "cli/options.hpp"

#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

namespace cpa::cli {

Flags::Flags(std::vector<std::string> args)
{
    for (std::string& arg : args) {
        const std::size_t eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            args_.push_back(arg.substr(0, eq));
            args_.push_back(arg.substr(eq + 1));
        } else {
            args_.push_back(std::move(arg));
        }
    }
}

std::string Flags::take(const std::string& key, const std::string& fallback)
{
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
        if (args_[i] == key) {
            const std::string value = args_[i + 1];
            args_.erase(args_.begin() + static_cast<std::ptrdiff_t>(i),
                        args_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    return fallback;
}

bool Flags::take_switch(const std::string& key)
{
    const auto it = std::find(args_.begin(), args_.end(), key);
    if (it == args_.end()) {
        return false;
    }
    args_.erase(it);
    return true;
}

void Flags::expect_empty() const
{
    if (!args_.empty()) {
        throw std::runtime_error("unknown argument '" + args_.front() + "'");
    }
}

namespace opt {
const OptionSpec kMetricsOut{
    "--metrics-out", "FILE", "",
    "write a JSON run report (iteration counts, timers, latency "
    "histograms); FILE '-' = stdout"};
const OptionSpec kTrace{
    "--trace", "SUBSYS[,..]", "",
    "stream NDJSON trace events to stderr (wcrt, bus, sweep, sim, batch, "
    "or 'all')"};
const OptionSpec kProfileOut{
    "--profile-out", "FILE", "",
    "write hierarchical phase spans as a Chrome Trace Event JSON file "
    "(open in Perfetto or chrome://tracing)"};
const OptionSpec kProgress{
    "--progress", "", "",
    "print unit-count + ETA lines to stderr; stdout stays byte-identical"};
const OptionSpec kEngine{
    "--engine", "reference|incremental", "incremental",
    "Eq. (19) WCRT solver: the breakpoint-driven hot path or the "
    "paper-shaped differential oracle (byte-identical results)"};
const OptionSpec kJobs{
    "--jobs", "N", "0",
    "trial-loop worker count (default: CPA_JOBS env, then hardware "
    "concurrency); every value produces byte-identical output"};
const OptionSpec kPolicy{"--policy", "fp|rr|tdma|perfect", "fp",
                         "bus arbitration policy"};
const OptionSpec kPolicyAll{"--policy", "fp|rr|tdma|perfect|all", "all",
                            "bus arbitration policy ('all' = one verdict "
                            "block per policy)"};
const OptionSpec kNoPersistence{"--no-persistence", "", "",
                                "disable the cache-persistence refinement "
                                "(analyze with CRPD only)"};
const OptionSpec kCrpd{"--crpd", "ecb-union|ucb-only|ecb-only", "ecb-union",
                       "cache-related preemption delay method (Eq. (2))"};
const OptionSpec kCpro{"--cpro", "union|job-bound", "union",
                       "cache persistence reload overhead method (Eq. (14))"};
const OptionSpec kReport{"--report", "", "",
                         "add per-task response-time breakdown columns "
                         "(cpu, preemption, bus-same, bus-cross)"};
const OptionSpec kCsv{"--csv", "", "", "emit CSV instead of an ASCII table"};
const OptionSpec kSimCheck{
    "--sim-check", "", "",
    "cross-check the bounds against the discrete-event simulator over a "
    "4-hyperperiod window"};
const OptionSpec kHorizonPeriods{"--horizon-periods", "N", "4",
                                 "simulate N times the largest period"};
const OptionSpec kHyperperiod{"--hyperperiod", "", "",
                              "simulate exactly one hyperperiod (rejected "
                              "above 1e12 cycles)"};
const OptionSpec kCores{"--cores", "N", "", "number of cores"};
const OptionSpec kTasksPerCore{"--tasks-per-core", "N", "",
                               "tasks generated per core"};
const OptionSpec kCacheSets{"--cache-sets", "N", "", "cache sets per core"};
const OptionSpec kUtilization{"--utilization", "U", "0.3",
                              "per-core utilization of the generated set"};
const OptionSpec kSeedGenerate{"--seed", "S", "1", "generator seed"};
const OptionSpec kSeedSweep{"--seed", "S", "20200309",
                            "sweep seed (trials derive per-index seeds)"};
const OptionSpec kSeedCheck{"--seed", "S", "1",
                            "check seed (trials derive per-index seeds)"};
const OptionSpec kTaskSets{"--task-sets", "N", "100",
                           "task sets drawn per utilization point"};
const OptionSpec kTrials{"--trials", "N", "50", "random task sets to draw"};
const OptionSpec kMinUtilization{"--min-utilization", "U", "0.1",
                                 "lower end of the sampled per-core "
                                 "utilization range"};
const OptionSpec kMaxUtilization{"--max-utilization", "U", "0.7",
                                 "upper end of the sampled per-core "
                                 "utilization range"};
const OptionSpec kSkipSim{"--skip-sim", "", "",
                          "skip the simulator soundness relations"};
const OptionSpec kFailOnViolation{"--fail-on-violation", "", "",
                                  "exit 3 when any invariant is violated "
                                  "(CI mode)"};
const OptionSpec kList{"--list", "", "", "print the catalog and exit"};
const OptionSpec kProfile{"--profile", "fast|full", "fast",
                          "parameter box the prover explores"};
const OptionSpec kBox{"--box", "FILE", "",
                      "override the profile box ('name lo hi' lines; see "
                      "docs/static-analysis.md)"};
const OptionSpec kMaxDepth{"--max-depth", "N", "12",
                           "branch-and-bound bisection depth limit"};
const OptionSpec kMaxNodes{"--max-nodes", "N", "2048",
                           "branch-and-bound node budget per invariant"};
const OptionSpec kFailOn{"--fail-on", "refuted|undecided", "",
                         "exit 3 on refuted invariants (or on any open "
                         "obligation)"};
const OptionSpec kJson{"--json", "", "",
                       "emit the build-provenance JSON block"};
const OptionSpec kInput{"--input", "FILE", "-",
                        "NDJSON request file; '-' = stdin"};
const OptionSpec kTaskset{"--taskset", "FILE", "",
                          "default task-set file for requests without a "
                          "\"taskset\" field"};
} // namespace opt

ObsOptions ObsOptions::take(Flags& flags, bool with_progress)
{
    ObsOptions options;
    options.metrics_out = flags.take(opt::kMetricsOut);
    options.trace_spec = flags.take(opt::kTrace);
    options.profile_out = flags.take(opt::kProfileOut);
    if (with_progress) {
        options.progress = flags.take_switch(opt::kProgress);
    }
    return options;
}

EngineOptions EngineOptions::take(Flags& flags, bool with_jobs)
{
    EngineOptions options;
    options.engine = parse_engine(flags.take(opt::kEngine));
    if (with_jobs) {
        options.jobs = static_cast<std::size_t>(
            std::stoll(flags.take(opt::kJobs)));
    }
    return options;
}

ObsScope::ObsScope(const ObsOptions& options, std::ostream& err)
    : metrics_requested_(!options.metrics_out.empty())
{
    if (!options.profile_out.empty()) {
        // Open up front so a bad path fails before hours of sweep work; the
        // trace itself is written in the destructor, once the command (and
        // its thread pools) are done and the rings are quiescent.
        profile_file_.open(options.profile_out);
        if (!profile_file_) {
            throw std::runtime_error("cannot write profile file '" +
                                     options.profile_out + "'");
        }
        obs::Profiler::global().reset();
        obs::Profiler::global().start();
        profiling_ = true;
    }
    if (!options.trace_spec.empty()) {
        std::set<std::string> subsystems;
        std::string current;
        for (const char ch : options.trace_spec + ",") {
            if (ch == ',') {
                if (!current.empty()) {
                    subsystems.insert(current);
                    current.clear();
                }
            } else {
                current += ch;
            }
        }
        obs::Tracer::global().set_sink(
            std::make_shared<obs::StreamTraceSink>(err),
            std::move(subsystems));
        trace_installed_ = true;
    }
    if (metrics_requested_) {
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
    }
}

ObsScope::~ObsScope()
{
    if (profiling_) {
        obs::Profiler::global().stop();
        obs::Profiler::global().write_chrome_trace(profile_file_);
    }
    if (metrics_requested_) {
        obs::set_metrics_enabled(false);
    }
    if (trace_installed_) {
        obs::Tracer::global().set_sink(nullptr);
    }
}

std::function<void(std::size_t, std::size_t)>
make_progress_printer(std::ostream& err, const char* unit)
{
    const auto started = std::chrono::steady_clock::now();
    return [&err, unit, started](std::size_t done, std::size_t total) {
        const auto elapsed_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        const double fraction =
            total == 0 ? 1.0
                       : static_cast<double>(done) /
                             static_cast<double>(total);
        const double eta_s =
            fraction > 0.0 ? static_cast<double>(elapsed_ms) / 1000.0 *
                                 (1.0 - fraction) / fraction
                           : 0.0;
        err << "progress: " << done << '/' << total << ' ' << unit << " ("
            << static_cast<int>(fraction * 100.0) << "%), eta "
            << util::TextTable::num(eta_s, 1) << "s\n";
    };
}

void write_run_report(obs::RunReport& report, const std::string& path,
                      std::ostream& out)
{
    report.set_metrics(obs::MetricsRegistry::global().snapshot());
    if (path == "-") {
        report.write_json(out);
        return;
    }
    std::ofstream file(path);
    if (!file) {
        throw std::runtime_error("cannot write metrics file '" + path + "'");
    }
    report.write_json(file);
}

analysis::BusPolicy parse_policy(const std::string& name)
{
    if (const auto policy = analysis::bus_policy_from_string(name)) {
        return *policy;
    }
    throw std::runtime_error("unknown policy '" + name +
                             "' (fp, rr, tdma, perfect)");
}

analysis::CrpdMethod parse_crpd(const std::string& name)
{
    if (const auto method = analysis::crpd_method_from_string(name)) {
        return *method;
    }
    throw std::runtime_error("unknown CRPD method '" + name + "'");
}

analysis::CproMethod parse_cpro(const std::string& name)
{
    if (const auto method = analysis::cpro_method_from_string(name)) {
        return *method;
    }
    throw std::runtime_error("unknown CPRO method '" + name + "'");
}

analysis::WcrtEngine parse_engine(const std::string& name)
{
    if (const auto engine = analysis::wcrt_engine_from_string(name)) {
        return *engine;
    }
    throw std::runtime_error("unknown engine '" + name +
                             "' (reference, incremental)");
}

analysis::AnalysisRequest take_analysis_request(Flags& flags,
                                                const OptionSpec& policy_spec,
                                                std::string* policy_name)
{
    analysis::AnalysisRequest request;
    const std::string name = flags.take(policy_spec);
    if (policy_name != nullptr) {
        *policy_name = name;
    }
    if (name != "all") {
        request.config.policy = parse_policy(name);
    } else if (policy_name == nullptr) {
        // Single-policy commands never pass 'all' through.
        throw std::runtime_error("unknown policy 'all'");
    }
    request.config.persistence_aware =
        !flags.take_switch(opt::kNoPersistence);
    request.config.crpd = parse_crpd(flags.take(opt::kCrpd));
    request.config.cpro = parse_cpro(flags.take(opt::kCpro));
    request.config.wcrt_engine = parse_engine(flags.take(opt::kEngine));
    return request;
}

const std::vector<CommandSpec>& command_registry()
{
    static const std::vector<CommandSpec> registry = {
        {"analyze", "<file>",
         "schedulability analysis of a task-set file (docs/file-format.md)",
         {&opt::kPolicyAll, &opt::kNoPersistence, &opt::kCrpd, &opt::kCpro,
          &opt::kReport, &opt::kCsv, &opt::kSimCheck, &opt::kEngine,
          &opt::kMetricsOut, &opt::kTrace, &opt::kProfileOut}},
        {"simulate", "<file>",
         "discrete-event bus/CPU simulation of a task-set file",
         {&opt::kPolicy, &opt::kHorizonPeriods, &opt::kHyperperiod,
          &opt::kMetricsOut, &opt::kTrace, &opt::kProfileOut}},
        {"generate", "",
         "emit a random task-set file drawn from the benchmark table",
         {&opt::kCores, &opt::kTasksPerCore, &opt::kCacheSets,
          &opt::kUtilization, &opt::kSeedGenerate}},
        {"sweep", "",
         "schedulability-vs-utilization sweep over random task sets",
         {&opt::kCores, &opt::kTasksPerCore, &opt::kCacheSets,
          &opt::kTaskSets, &opt::kSeedSweep, &opt::kJobs, &opt::kCsv,
          &opt::kEngine, &opt::kMetricsOut, &opt::kTrace, &opt::kProfileOut,
          &opt::kProgress}},
        {"batch", "",
         "serve a stream of NDJSON analysis requests from a warm "
         "analysis::Session (docs/batch.md)",
         {&opt::kInput, &opt::kTaskset, &opt::kJobs, &opt::kMetricsOut,
          &opt::kTrace, &opt::kProfileOut}},
        {"check", "",
         "verify the analytical invariant catalog on seeded random task "
         "sets (docs/static-analysis.md)",
         {&opt::kSeedCheck, &opt::kTrials, &opt::kCores, &opt::kTasksPerCore,
          &opt::kCacheSets, &opt::kMinUtilization, &opt::kMaxUtilization,
          &opt::kJobs, &opt::kSkipSim, &opt::kFailOnViolation, &opt::kList,
          &opt::kEngine, &opt::kMetricsOut, &opt::kTrace, &opt::kProfileOut,
          &opt::kProgress}},
        {"verify", "",
         "prove the invariant catalog over a parameter box (interval "
         "abstract interpretation + branch and bound)",
         {&opt::kProfile, &opt::kBox, &opt::kJobs, &opt::kMaxDepth,
          &opt::kMaxNodes, &opt::kFailOn, &opt::kList, &opt::kEngine,
          &opt::kMetricsOut, &opt::kTrace, &opt::kProfileOut}},
        {"version", "", "print build provenance", {&opt::kJson}},
        {"help", "[command]", "this overview, or one command's option table",
         {}},
    };
    return registry;
}

void print_usage(std::ostream& out)
{
    out << "cpa - cache persistence-aware memory bus contention analysis\n"
           "\n"
           "usage:\n";
    for (const CommandSpec& command : command_registry()) {
        out << "  cpa " << command.name;
        if (command.positional[0] != '\0') {
            out << ' ' << command.positional;
        }
        if (!command.options.empty()) {
            out << " [options]";
        }
        out << "\n      " << command.summary << '\n';
    }
    out << R"(
`cpa help <command>` lists that command's options with defaults. Flags
accept both '--key value' and '--key=value'.

exit codes (see commands.hpp):
  0  success; for analysis commands: schedulable
  1  usage error or failure to run
  2  analysis completed: not schedulable (batch: >=1 unschedulable request)
  3  violation found under --fail-on-violation / --fail-on (batch: >=1
     structured error record)

`--jobs N` sets the trial-loop worker count (default: the CPA_JOBS
environment variable, then hardware concurrency). Every job count produces
byte-identical output — trials are seeded from their index, not from a
shared stream.

The task-set file format is documented in docs/file-format.md, the batch
NDJSON request schema in docs/batch.md, observability flags in
docs/observability.md.
)";
}

bool print_command_help(const std::string& name, std::ostream& out)
{
    for (const CommandSpec& command : command_registry()) {
        if (name != command.name) {
            continue;
        }
        out << "usage: cpa " << command.name;
        if (command.positional[0] != '\0') {
            out << ' ' << command.positional;
        }
        if (!command.options.empty()) {
            out << " [options]";
        }
        out << "\n\n" << command.summary << "\n\n";
        if (command.options.empty()) {
            return true;
        }
        util::TextTable table({"option", "default", "description"});
        for (const OptionSpec* spec : command.options) {
            std::string flag = spec->flag;
            if (!spec->is_switch()) {
                flag += ' ';
                flag += spec->value;
            }
            table.add_row({std::move(flag),
                           spec->fallback[0] == '\0' ? "-" : spec->fallback,
                           spec->help});
        }
        table.print(out);
        return true;
    }
    return false;
}

} // namespace cpa::cli
