file(REMOVE_RECURSE
  "../bench/fig3d_slot_size"
  "../bench/fig3d_slot_size.pdb"
  "CMakeFiles/fig3d_slot_size.dir/fig3d_slot_size.cpp.o"
  "CMakeFiles/fig3d_slot_size.dir/fig3d_slot_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_slot_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
