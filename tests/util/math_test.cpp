#include "util/math.hpp"

#include <gtest/gtest.h>

namespace cpa::util {
namespace {

TEST(CeilDiv, ExactAndInexact)
{
    EXPECT_EQ(ceil_div(0, 5), 0);
    EXPECT_EQ(ceil_div(10, 5), 2);
    EXPECT_EQ(ceil_div(11, 5), 3);
    EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(CeilDiv, RejectsBadArguments)
{
    EXPECT_THROW((void)ceil_div(1, 0), std::invalid_argument);
    EXPECT_THROW((void)ceil_div(1, -2), std::invalid_argument);
    EXPECT_THROW((void)ceil_div(-1, 2), std::invalid_argument);
}

TEST(FloorDiv, HandlesNegativeDividend)
{
    EXPECT_EQ(floor_div(10, 3), 3);
    EXPECT_EQ(floor_div(9, 3), 3);
    EXPECT_EQ(floor_div(-1, 3), -1);
    EXPECT_EQ(floor_div(-3, 3), -1);
    EXPECT_EQ(floor_div(-4, 3), -2);
}

TEST(CeilDivSigned, HandlesNegativeDividend)
{
    EXPECT_EQ(ceil_div_signed(10, 3), 4);
    EXPECT_EQ(ceil_div_signed(9, 3), 3);
    EXPECT_EQ(ceil_div_signed(-1, 3), 0);
    EXPECT_EQ(ceil_div_signed(-3, 3), -1);
    EXPECT_EQ(ceil_div_signed(-4, 3), -1);
}

TEST(CeilFloorDuality, CeilEqualsNegFloorNeg)
{
    for (std::int64_t a = -50; a <= 50; ++a) {
        for (std::int64_t b = 1; b <= 7; ++b) {
            EXPECT_EQ(ceil_div_signed(a, b), -floor_div(-a, b))
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(SaturatingLcm, ComputesSmallLcms)
{
    EXPECT_EQ(saturating_lcm(4, 6, 1000), 12);
    EXPECT_EQ(saturating_lcm(7, 7, 1000), 7);
    EXPECT_EQ(saturating_lcm(1, 9, 1000), 9);
    EXPECT_EQ(saturating_lcm(10, 15, 1000), 30);
}

TEST(SaturatingLcm, SaturatesAtCap)
{
    EXPECT_EQ(saturating_lcm(999983, 999979, 1000000), 1000000);
    // Overflow-scale inputs must saturate, not wrap.
    const std::int64_t big = 3'000'000'019;
    EXPECT_EQ(saturating_lcm(big, big - 2, 5'000'000'000), 5'000'000'000);
}

TEST(SaturatingLcm, RejectsNonPositive)
{
    EXPECT_THROW((void)saturating_lcm(0, 3, 10), std::invalid_argument);
    EXPECT_THROW((void)saturating_lcm(3, -1, 10), std::invalid_argument);
    EXPECT_THROW((void)saturating_lcm(3, 1, 0), std::invalid_argument);
}

TEST(ClampNonNegative, Clamps)
{
    EXPECT_EQ(clamp_non_negative(-5), 0);
    EXPECT_EQ(clamp_non_negative(0), 0);
    EXPECT_EQ(clamp_non_negative(5), 5);
}

} // namespace
} // namespace cpa::util
