// Ranged-for over an unordered container: the fold below visits entries in
// hash-table order, so the first-negative-wins result is unspecified.
#include <unordered_map>

int first_negative()
{
    std::unordered_map<int, int> deltas;
    deltas[3] = -1;
    deltas[7] = -2;
    for (const auto& [key, delta] : deltas) {
        if (delta < 0) {
            return key;
        }
    }
    return 0;
}
