// Memory-bus access bounds of the paper:
//   BAS  (Eq. (1))  / B̂AS (Lemma 1, Eq. (16)) — same-core accesses,
//   BAO  (Eq. (3)-(6)) / B̂AO (Lemma 2, Eq. (17)-(18)) — other-core accesses,
//   BAT  (Eq. (7)-(9)) — total contention per bus arbitration policy.
//
// All bounds count bus accesses (not cycles); the WCRT recurrence (Eq. (19))
// multiplies BAT by d_mem. Whether the persistence-aware variants are used is
// selected by AnalysisConfig::persistence_aware.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "tasks/task.hpp"

#include <cstdint>
#include <vector>

namespace cpa::analysis {

// Records one BAT evaluation in the per-policy metric breakdown
// (bat.<policy>.{calls,same_core,cross_core,blocking}). Shared by the
// reference BAT below and the incremental WCRT engine so both emit the
// exact same counter profile (the bench-trajectory gate pins it); no-op
// when the observability layer is compiled out or metrics are disabled.
void record_bat_breakdown(BusPolicy policy, AccessCount same_core,
                          AccessCount cross_core, AccessCount blocking);

class BusContentionAnalysis {
public:
    // All referenced objects must outlive the analysis.
    BusContentionAnalysis(const tasks::TaskSet& ts,
                          const PlatformConfig& platform,
                          const AnalysisConfig& config,
                          const InterferenceTables& tables);

    // Bus accesses generated on τ_i's own core during a window of length t:
    // one job of τ_i plus all jobs of Γ_x ∩ hp(i), including CRPD reloads
    // (Eq. (1)); with persistence the per-task term is capped by
    // M̂D + ρ̂ (Eq. (16)).
    [[nodiscard]] AccessCount bas(std::size_t i, Cycles t) const;

    // Bus accesses generated on core `core` (≠ τ_i's core) by tasks of
    // priority k or higher during a window of length t (Eq. (3) / Lemma 2).
    // `response` holds the current WCRT estimates R_l used by Eq. (5)-(6).
    [[nodiscard]] AccessCount bao(std::size_t core, std::size_t k, Cycles t,
                                  const std::vector<Cycles>& response) const;

    // Same as bao() but summed over Γ_core ∩ lp(i): the lower-priority
    // other-core accesses of the FP bus bound (Eq. (7)).
    [[nodiscard]] AccessCount
    bao_lower(std::size_t core, std::size_t i, Cycles t,
              const std::vector<Cycles>& response) const;

    // Total number of bus accesses that may delay τ_i in a window of length
    // t, per the configured arbitration policy (Eq. (7), (8) or (9); for
    // BusPolicy::kPerfect just the same-core demand). The +1 blocking term of
    // Eq. (7)-(9) is only added when a lower-priority task exists on τ_i's
    // core (the refinement the paper applies in its Fig. 1 example).
    [[nodiscard]] AccessCount bat(std::size_t i, Cycles t,
                                  const std::vector<Cycles>& response) const;

private:
    // CPRO reload bound ρ̂ for n_jobs jobs of τ_j inside a priority-`level`
    // window of length t: Eq. (14), optionally refined by the per-evictor
    // job-count cap (CproMethod::kJobBound).
    [[nodiscard]] AccessCount cpro_reload_bound(std::size_t j,
                                                std::size_t level,
                                                std::int64_t n_jobs,
                                                Cycles t) const;

    // Contribution of one other-core task τ_l at analysis level k:
    // W_{k,l}(t) (Eq. (4) / Eq. (18)) + W_cout (Eq. (5)).
    [[nodiscard]] AccessCount
    other_core_task_accesses(std::size_t k, std::size_t l, Cycles t,
                             const std::vector<Cycles>& response) const;

    [[nodiscard]] bool has_lower_priority_on_core(std::size_t i) const;

    const tasks::TaskSet& ts_;
    PlatformConfig platform_; // by value: callers often pass temporaries
    AnalysisConfig config_;
    const InterferenceTables& tables_;
};

} // namespace cpa::analysis
