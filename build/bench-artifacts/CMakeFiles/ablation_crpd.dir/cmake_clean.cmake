file(REMOVE_RECURSE
  "../bench/ablation_crpd"
  "../bench/ablation_crpd.pdb"
  "CMakeFiles/ablation_crpd.dir/ablation_crpd.cpp.o"
  "CMakeFiles/ablation_crpd.dir/ablation_crpd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
