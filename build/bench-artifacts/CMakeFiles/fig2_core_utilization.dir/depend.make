# Empty dependencies file for fig2_core_utilization.
# This may be replaced when dependencies are built.
