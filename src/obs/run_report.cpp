#include "obs/run_report.hpp"

#include "obs/build_info.hpp"

#include <ostream>
#include <sstream>

namespace cpa::obs {

RunReport::RunReport(std::string_view tool) : root_(JsonValue::object())
{
    root_.set("schema_version", JsonValue(kRunReportSchemaVersion));
    root_.set("tool", JsonValue(tool));
    root_.set("provenance", provenance_json());
}

void RunReport::set(std::string_view key, JsonValue value)
{
    root_.set(key, std::move(value));
}

JsonValue& RunReport::section(std::string_view key)
{
    return root_.set(key, JsonValue::object());
}

JsonValue& RunReport::list(std::string_view key)
{
    return root_.set(key, JsonValue::array());
}

void RunReport::set_metrics(const MetricsSnapshot& snapshot)
{
    root_.set("metrics", metrics_to_json(snapshot));
}

void RunReport::write_json(std::ostream& out) const
{
    root_.write(out);
    out << '\n';
}

std::string RunReport::to_json() const
{
    std::ostringstream out;
    write_json(out);
    return out.str();
}

JsonValue metrics_to_json(const MetricsSnapshot& snapshot)
{
    JsonValue metrics = JsonValue::object();
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : snapshot.counters) {
        counters.set(name, JsonValue(value));
    }
    metrics.set("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto& [name, value] : snapshot.gauges) {
        gauges.set(name, JsonValue(value));
    }
    metrics.set("gauges", std::move(gauges));

    JsonValue timers = JsonValue::object();
    for (const auto& [name, stat] : snapshot.timers) {
        JsonValue entry = JsonValue::object();
        entry.set("total_ns", JsonValue(stat.total_ns));
        entry.set("count", JsonValue(stat.count));
        timers.set(name, std::move(entry));
    }
    metrics.set("timers", std::move(timers));

    JsonValue histograms = JsonValue::object();
    for (const auto& [name, stat] : snapshot.histograms) {
        histograms.set(name, histogram_to_json(stat));
    }
    metrics.set("histograms", std::move(histograms));
    return metrics;
}

JsonValue histogram_to_json(const HistogramStat& stat)
{
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(stat.count));
    entry.set("sum", JsonValue(stat.sum));
    entry.set("min", JsonValue(stat.min));
    entry.set("max", JsonValue(stat.max));
    entry.set("p50", JsonValue(stat.p50));
    entry.set("p90", JsonValue(stat.p90));
    entry.set("p99", JsonValue(stat.p99));
    return entry;
}

JsonValue provenance_json()
{
    const BuildInfo& info = build_info();
    JsonValue block = JsonValue::object();
    block.set("version", JsonValue(info.version));
    block.set("git_sha", JsonValue(info.git_sha));
    block.set("git_dirty", JsonValue(info.git_dirty));
    block.set("compiler", JsonValue(info.compiler));
    block.set("build_type", JsonValue(info.build_type));
    block.set("obs", JsonValue(info.obs));
    block.set("check", JsonValue(info.check));
    block.set("sanitize", JsonValue(info.sanitize));
    return block;
}

} // namespace cpa::obs
