file(REMOVE_RECURSE
  "CMakeFiles/direct_mapped_test.dir/cache/direct_mapped_test.cpp.o"
  "CMakeFiles/direct_mapped_test.dir/cache/direct_mapped_test.cpp.o.d"
  "direct_mapped_test"
  "direct_mapped_test.pdb"
  "direct_mapped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_mapped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
