// Shared memory-bus arbiter used by both simulators (the parameter-level
// simulator in simulator.cpp and the program-level one in program_sim.cpp).
//
// Semantics per policy (matching the analysis assumptions, see
// simulator.hpp):
//  * kFixedPriority: non-preemptive service; when the bus frees, the
//    pending request with the smallest priority value wins.
//  * kRoundRobin: work-conserving rotation over cores, up to `slot_size`
//    consecutive grants per turn, skipping cores with nothing pending.
//  * kTdma: token rotation — core c may start an access at any instant
//    while holding its `slot_size * d_mem`-cycle token; idle token time is
//    never reassigned (non-work-conserving). Tokens of different cores are
//    disjoint, so TDMA needs no shared busy state.
//  * kPerfect: immediate service, no contention.
//
// Each core may have at most one outstanding request (the cores stall on
// fetches), which both simulators guarantee.
//
// Thread safety: the arbitration state (pending_/busy_/RR turn) is guarded
// by an internal mutex and checked with Clang's thread-safety analysis, so
// independent simulations can share nothing but still drive one arbiter each
// from a parallel sweep without data races.
#pragma once

#include "analysis/config.hpp"
#include "util/thread_safety.hpp"
#include "util/units.hpp"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace cpa::sim {

using util::CoreId;
using util::TaskId;

class BusArbiter {
public:
    BusArbiter(analysis::BusPolicy policy, std::size_t num_cores,
               util::Cycles d_mem, std::int64_t slot_size);

    // Core `core` requests one access at time `now`; `priority` is the
    // issuing task's priority index (lower = more urgent; only FP uses it).
    // Returns the service completion time when service is scheduled
    // immediately (always for TDMA/Perfect; for FP/RR only when the bus is
    // idle); otherwise the request is queued and its completion is returned
    // by a later complete() call.
    [[nodiscard]] std::optional<util::Cycles>
    request(CoreId core, TaskId priority, util::Cycles now)
        CPA_EXCLUDES(mutex_);

    // Notifies that the access of `core` finished at `now` (FP/RR only; a
    // no-op for TDMA/Perfect). Returns the next grant {core, completion
    // time}, if any request is pending.
    [[nodiscard]] std::optional<std::pair<CoreId, util::Cycles>>
    complete(CoreId core, util::Cycles now) CPA_EXCLUDES(mutex_);

    // Priority inheritance: raises `core`'s queued request to `priority` if
    // that is more urgent. Called when a higher-priority job becomes ready
    // on a core stalled behind a lower-priority request — without it, the
    // queued request (and with it the whole core) waits behind every
    // intermediate-priority access of the other cores, a priority inversion
    // the Eq. (7) analysis does not (and need not) charge to the preempting
    // task. No-op when no request of `core` is queued (TDMA/Perfect never
    // queue; an already-granted access is non-preemptive and bounded by
    // d_mem, which the analysis covers as the +1 blocking term).
    void promote(CoreId core, TaskId priority) CPA_EXCLUDES(mutex_);

private:
    [[nodiscard]] util::Cycles tdma_start(CoreId core,
                                          util::Cycles from) const;
    [[nodiscard]] std::optional<CoreId> pick_next() CPA_REQUIRES(mutex_);

    analysis::BusPolicy policy_;
    std::size_t num_cores_;
    util::Cycles d_mem_;
    std::int64_t slot_size_;

    mutable util::Mutex mutex_;
    // pending_[core]: priority of the queued request, or nullopt.
    std::vector<std::optional<TaskId>> pending_ CPA_GUARDED_BY(mutex_);
    bool busy_ CPA_GUARDED_BY(mutex_) = false;
    std::size_t rr_core_ CPA_GUARDED_BY(mutex_) = 0;
    std::int64_t rr_used_ CPA_GUARDED_BY(mutex_) = 0;
};

} // namespace cpa::sim
