#include "cli/json_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace cpa::cli {

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    [[nodiscard]] JsonReader run()
    {
        JsonReader value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing content after JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_whitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] char peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char ch)
    {
        if (peek() != ch) {
            fail(std::string("expected '") + ch + "'");
        }
        ++pos_;
    }

    void expect_literal(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            fail("invalid literal");
        }
        pos_ += literal.size();
    }

    JsonReader parse_value()
    {
        skip_whitespace();
        switch (peek()) {
        case '{':
            return parse_object();
        case '[':
            return parse_array();
        case '"':
            return make_string(parse_string());
        case 't':
            expect_literal("true");
            return make_bool(true);
        case 'f':
            expect_literal("false");
            return make_bool(false);
        case 'n':
            expect_literal("null");
            return JsonReader{};
        default:
            return parse_number();
        }
    }

    JsonReader parse_object()
    {
        JsonReader value;
        value.kind_ = JsonReader::Kind::kObject;
        expect('{');
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            value.keys_.push_back(std::move(key));
            value.members_.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonReader parse_array()
    {
        JsonReader value;
        value.kind_ = JsonReader::Kind::kArray;
        expect('[');
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.elements_.push_back(parse_value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string result;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char ch = text_[pos_];
            if (static_cast<unsigned char>(ch) < 0x20) {
                fail("unescaped control character in string");
            }
            ++pos_;
            if (ch == '"') {
                return result;
            }
            if (ch != '\\') {
                result += ch;
                continue;
            }
            switch (peek()) {
            case '"':
            case '\\':
            case '/':
                result += text_[pos_++];
                break;
            case 'b':
                result += '\b';
                ++pos_;
                break;
            case 'f':
                result += '\f';
                ++pos_;
                break;
            case 'n':
                result += '\n';
                ++pos_;
                break;
            case 'r':
                result += '\r';
                ++pos_;
                break;
            case 't':
                result += '\t';
                ++pos_;
                break;
            case 'u':
                ++pos_;
                append_utf8(result, parse_codepoint());
                break;
            default:
                fail("invalid escape");
            }
        }
    }

    [[nodiscard]] std::uint32_t parse_hex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = peek();
            ++pos_;
            value <<= 4U;
            if (ch >= '0' && ch <= '9') {
                value |= static_cast<std::uint32_t>(ch - '0');
            } else if (ch >= 'a' && ch <= 'f') {
                value |= static_cast<std::uint32_t>(ch - 'a' + 10);
            } else if (ch >= 'A' && ch <= 'F') {
                value |= static_cast<std::uint32_t>(ch - 'A' + 10);
            } else {
                fail("invalid \\u escape");
            }
        }
        return value;
    }

    [[nodiscard]] std::uint32_t parse_codepoint()
    {
        const std::uint32_t unit = parse_hex4();
        if (unit < 0xD800 || unit > 0xDFFF) {
            return unit;
        }
        // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
        if (unit > 0xDBFF) {
            fail("unpaired low surrogate");
        }
        if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
            text_[pos_ + 1] != 'u') {
            fail("unpaired high surrogate");
        }
        pos_ += 2;
        const std::uint32_t low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) {
            fail("invalid surrogate pair");
        }
        return 0x10000 + ((unit - 0xD800) << 10U) + (low - 0xDC00);
    }

    static void append_utf8(std::string& out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6U));
            out += static_cast<char>(0x80 | (cp & 0x3FU));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12U));
            out += static_cast<char>(0x80 | ((cp >> 6U) & 0x3FU));
            out += static_cast<char>(0x80 | (cp & 0x3FU));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18U));
            out += static_cast<char>(0x80 | ((cp >> 12U) & 0x3FU));
            out += static_cast<char>(0x80 | ((cp >> 6U) & 0x3FU));
            out += static_cast<char>(0x80 | (cp & 0x3FU));
        }
    }

    JsonReader parse_number()
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (peek() == '-') {
            ++pos_;
        }
        if (peek() == '0') {
            ++pos_;
        } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0) {
                ++pos_;
            }
        } else {
            fail("invalid value");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                fail("digit expected after decimal point");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
                fail("digit expected in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])) !=
                       0) {
                ++pos_;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            char* end = nullptr;
            const long long parsed = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                JsonReader value;
                value.kind_ = JsonReader::Kind::kInt;
                value.int_ = parsed;
                return value;
            }
            // Out of std::int64_t range: fall through to double.
        }
        const double parsed = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(parsed)) {
            fail("number out of range");
        }
        JsonReader value;
        value.kind_ = JsonReader::Kind::kDouble;
        value.double_ = parsed;
        return value;
    }

    static JsonReader make_bool(bool value)
    {
        JsonReader reader;
        reader.kind_ = JsonReader::Kind::kBool;
        reader.bool_ = value;
        return reader;
    }

    static JsonReader make_string(std::string value)
    {
        JsonReader reader;
        reader.kind_ = JsonReader::Kind::kString;
        reader.string_ = std::move(value);
        return reader;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

std::optional<bool> JsonReader::as_bool() const
{
    if (kind_ != Kind::kBool) {
        return std::nullopt;
    }
    return bool_;
}

std::optional<std::int64_t> JsonReader::as_int() const
{
    if (kind_ != Kind::kInt) {
        return std::nullopt;
    }
    return int_;
}

std::optional<double> JsonReader::as_double() const
{
    if (kind_ == Kind::kDouble) {
        return double_;
    }
    if (kind_ == Kind::kInt) {
        return static_cast<double>(int_);
    }
    return std::nullopt;
}

const std::string* JsonReader::as_string() const
{
    if (kind_ != Kind::kString) {
        return nullptr;
    }
    return &string_;
}

const JsonReader* JsonReader::find(std::string_view key) const
{
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) {
            return &members_[i];
        }
    }
    return nullptr;
}

JsonReader JsonReader::parse(std::string_view text)
{
    return JsonParser(text).run();
}

} // namespace cpa::cli

