// Perf trajectory of the interval prover (`cpa verify`): runs the fast and
// full profile boxes and reports the proof-tree shape. The interesting
// trajectory counters are verify.nodes (bisection tree size), verify.samples
// (concrete cross-checks), and the verify.proof_depth histogram — all
// deterministic for a fixed box, so BENCH_verify.json is hard-gated by the
// bench-trajectory test; only wall clock is advisory.
#include "common.hpp"

#include "verify/box.hpp"
#include "verify/prover.hpp"

#include <iostream>
#include <utility>

int main()
{
    using namespace cpa;
    using util::TextTable;
    bench::BenchReport bench_report("verify");

    const auto run_profile = [&](const std::string& name,
                                 verify::ParamBox box) {
        bench_report.section(name);
        verify::ProverOptions options;
        options.box = std::move(box);
        options.jobs = bench_report.jobs();
        const verify::VerifyReport report = verify::run_prover(options);

        std::cout << "== verify --profile " << name << ": "
                  << report.proved() << " proved, " << report.refuted()
                  << " refuted, " << report.undecided()
                  << " undecided ==\n";
        TextTable table({"invariant", "verdict", "nodes", "samples",
                         "depth"});
        for (const verify::PropertyReport& entry : report.properties) {
            table.add_row({entry.name, verify::to_string(entry.verdict),
                           std::to_string(entry.nodes),
                           std::to_string(entry.samples),
                           std::to_string(entry.max_depth)});
        }
        table.print(std::cout);
        std::cout << '\n';
    };

    run_profile("fast", verify::fast_box());
    run_profile("full", verify::full_box());
    return 0;
}
