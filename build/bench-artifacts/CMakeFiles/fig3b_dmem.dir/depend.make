# Empty dependencies file for fig3b_dmem.
# This may be replaced when dependencies are built.
