// Fixture: std::map iterates in key order — reproducible reports.
#include <map>

int lookup()
{
    std::map<int, int> cache;
    cache[3] = 4;
    return cache[3];
}
