file(REMOVE_RECURSE
  "CMakeFiles/bus_bounds_test.dir/analysis/bus_bounds_test.cpp.o"
  "CMakeFiles/bus_bounds_test.dir/analysis/bus_bounds_test.cpp.o.d"
  "bus_bounds_test"
  "bus_bounds_test.pdb"
  "bus_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
