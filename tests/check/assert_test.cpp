// Tests for the runtime assertion layer (check/assert.hpp): the two-gate
// enable logic, the AssertionError payload, and the obs-layer reporting of
// a failed assertion.
#include "check/assert.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

namespace cpa::check {
namespace {

// Restores the runtime flag after each test so cases don't leak state.
class AssertTest : public ::testing::Test {
protected:
    void SetUp() override { previous_ = assertions_enabled(); }
    void TearDown() override
    {
        set_assertions_enabled(previous_);
        ::unsetenv("CPA_CHECK_ASSERT");
    }

private:
    bool previous_ = false;
};

TEST_F(AssertTest, DisabledByDefaultAndMacroIsInert)
{
    set_assertions_enabled(false);
    EXPECT_FALSE(assertions_enabled());
    // A false condition must not throw while the runtime gate is off.
    EXPECT_NO_THROW(CPA_CHECK_ASSERT(1 == 2, "test.always_false", "detail"));
}

TEST_F(AssertTest, EnabledMacroThrowsWithInvariantName)
{
    set_assertions_enabled(true);
    try {
        CPA_CHECK_ASSERT(1 == 2, "test.always_false", "the detail text");
        FAIL() << "CPA_CHECK_ASSERT did not throw";
    } catch (const AssertionError& error) {
        EXPECT_EQ(error.invariant(), "test.always_false");
        const std::string what = error.what();
        EXPECT_NE(what.find("test.always_false"), std::string::npos);
        EXPECT_NE(what.find("the detail text"), std::string::npos);
    }
}

TEST_F(AssertTest, EnabledMacroPassesOnTrueCondition)
{
    set_assertions_enabled(true);
    EXPECT_NO_THROW(CPA_CHECK_ASSERT(2 == 2, "test.always_true", "detail"));
}

TEST_F(AssertTest, DetailExpressionOnlyEvaluatedOnFailure)
{
    set_assertions_enabled(true);
    int evaluations = 0;
    const auto detail = [&] {
        ++evaluations;
        return std::string("expensive");
    };
    CPA_CHECK_ASSERT(true, "test.always_true", detail());
    EXPECT_EQ(evaluations, 0);
    EXPECT_THROW(CPA_CHECK_ASSERT(false, "test.always_false", detail()),
                 AssertionError);
    EXPECT_EQ(evaluations, 1);
}

TEST_F(AssertTest, EnvironmentVariableArmsTheGate)
{
    set_assertions_enabled(false);
    ::setenv("CPA_CHECK_ASSERT", "1", 1);
    apply_assertion_env();
    EXPECT_TRUE(assertions_enabled());

    ::setenv("CPA_CHECK_ASSERT", "0", 1);
    apply_assertion_env();
    EXPECT_FALSE(assertions_enabled());

    ::setenv("CPA_CHECK_ASSERT", "on", 1);
    apply_assertion_env();
    EXPECT_TRUE(assertions_enabled());

    // Unset leaves the current state untouched.
    ::unsetenv("CPA_CHECK_ASSERT");
    apply_assertion_env();
    EXPECT_TRUE(assertions_enabled());
}

TEST_F(AssertTest, FailureReportsThroughMetricsAndTrace)
{
    set_assertions_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::set_metrics_enabled(true);
    std::ostringstream trace_out;
    obs::Tracer::global().set_sink(
        std::make_shared<obs::StreamTraceSink>(trace_out), {"check"});

    EXPECT_THROW(assertion_failure("test.reported", "detail text"),
                 AssertionError);

    obs::Tracer::global().set_sink(nullptr);
    obs::set_metrics_enabled(false);

    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    const auto it = snapshot.counters.find("check.assert_failures");
    ASSERT_NE(it, snapshot.counters.end());
    EXPECT_GE(it->second, 1);
    const std::string trace = trace_out.str();
    EXPECT_NE(trace.find("assertion_failure"), std::string::npos);
    EXPECT_NE(trace.find("test.reported"), std::string::npos);
}

} // namespace
} // namespace cpa::check
