// Ablation (not in the paper): how the CRPD bounding method interacts with
// the persistence-aware bus analysis. The paper fixes ECB-union (Eq. (2));
// here we compare it against the cruder UCB-only and ECB-only bounds under
// the FP bus, with and without persistence.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("ablation_crpd");
    using analysis::BusPolicy;
    using analysis::CrpdMethod;

    const std::size_t task_sets = experiments::task_sets_from_env(80);

    std::vector<experiments::AnalysisVariant> variants;
    for (const auto& [label, method] :
         {std::pair{"ECB-union", CrpdMethod::kEcbUnion},
          std::pair{"UCB-only", CrpdMethod::kUcbOnly},
          std::pair{"ECB-only", CrpdMethod::kEcbOnly}}) {
        for (const bool persistence : {true, false}) {
            analysis::AnalysisConfig config;
            config.policy = BusPolicy::kFixedPriority;
            config.persistence_aware = persistence;
            config.crpd = method;
            variants.push_back(
                {std::string(label) + (persistence ? "-CP" : "-NoCP"),
                 config});
        }
    }

    const auto sweep = experiments::run_utilization_sweep(
        bench::default_generation(), bench::default_platform(), variants,
        bench::fig2_sweep(task_sets));
    bench::print_sweep(
        "Ablation: CRPD method x persistence (FP bus, paper defaults)",
        sweep);
    return 0;
}
