// Fixture: draws go through util::Rng, seeded by the caller.
#include "util/rng.hpp"

#include <cstdint>

std::int64_t draw(cpa::util::Rng& rng)
{
    return rng.uniform_int(0, 10);
}
