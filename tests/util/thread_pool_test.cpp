#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cpa::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    const std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for_indexed(count, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, SingleJobPoolRunsSeriallyInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for_indexed(10, [&](std::size_t i) {
        order.push_back(i); // safe: no workers, caller runs everything
    });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroJobsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.jobs(), 1u);
}

TEST(ThreadPool, CountZeroIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallel_for_indexed(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, CountSmallerThanJobsCompletes)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallel_for_indexed(3, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(hits[i].load(), 1);
    }
}

TEST(ThreadPool, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for_indexed(100, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 4950u) << "round " << round;
    }
}

TEST(ThreadPool, RethrowsLowestIndexException)
{
    ThreadPool pool(4);
    // Indices 3 and 7 both throw; the lowest index must win regardless of
    // which thread hit its exception first.
    for (int round = 0; round < 10; ++round) {
        try {
            pool.parallel_for_indexed(16, [&](std::size_t i) {
                if (i == 3 || i == 7) {
                    throw std::runtime_error("boom " + std::to_string(i));
                }
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& error) {
            EXPECT_STREQ(error.what(), "boom 3");
        }
    }
}

TEST(ThreadPool, ExceptionDoesNotAbandonRemainingIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(pool.parallel_for_indexed(64,
                                           [&](std::size_t i) {
                                               hits[i].fetch_add(1);
                                               if (i == 0) {
                                                   throw std::runtime_error(
                                                       "first");
                                               }
                                           }),
                 std::runtime_error);
    // The batch drains fully before rethrow: every index still ran once.
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ResolveJobs, ExplicitRequestPassesThrough)
{
    EXPECT_EQ(resolve_jobs(1), 1u);
    EXPECT_EQ(resolve_jobs(8), 8u);
}

TEST(ResolveJobs, EnvOverrideAppliesWhenAuto)
{
    ASSERT_EQ(setenv("CPA_JOBS", "5", 1), 0);
    EXPECT_EQ(resolve_jobs(0), 5u);
    EXPECT_EQ(resolve_jobs(2), 2u); // explicit beats env
    ASSERT_EQ(setenv("CPA_JOBS", "0", 1), 0);
    EXPECT_GE(resolve_jobs(0), 1u); // invalid env falls back to hardware
    ASSERT_EQ(unsetenv("CPA_JOBS"), 0);
    EXPECT_GE(resolve_jobs(0), 1u);
}

} // namespace
} // namespace cpa::util
