// Fixture: std::rand() is global-state RNG; breaks per-trial determinism.
#include <cstdlib>

int draw()
{
    return std::rand();
}
