file(REMOVE_RECURSE
  "../bench/extension_multilevel"
  "../bench/extension_multilevel.pdb"
  "CMakeFiles/extension_multilevel.dir/extension_multilevel.cpp.o"
  "CMakeFiles/extension_multilevel.dir/extension_multilevel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
