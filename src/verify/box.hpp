// Parameter boxes: the domain a proof quantifies over. Each dimension is a
// closed integer interval; a Point is one corner/interior assignment. The
// prover bisects boxes along their widest *used* dimension until every
// sub-box is proved, refuted, or the depth budget runs out.
#pragma once

#include "verify/interval.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cpa::verify {

// The scenario family's free parameters. All values are non-negative
// integers; footprint dimensions (pcb/ucb/ecb) count cache blocks, demand
// dimensions count bus accesses, timing dimensions count cycles.
enum class Dim : std::size_t {
    kMd,         // per-job memory demand MD (accesses)
    kMdResidual, // residual demand MDʳ (accesses; clamped to MD)
    kPcb,        // persistent cache blocks |PCB|
    kUcb,        // useful cache blocks |UCB|
    kEcb,        // evicting cache blocks |ECB|
    kPd,         // processing demand PD (cycles)
    kPeriod,     // period == deadline T (cycles)
    kDmem,       // bus access latency d_mem (cycles)
    kCores,      // core count (each concrete value gets its own sub-tree)
    kNJobs,      // job-count quantifier n for the M̂D invariants
    kWindow,     // window quantifier t for the bus-bound invariants (cycles)
    kDt,         // window increment for the monotonicity invariant (cycles)
};

inline constexpr std::size_t kDimCount = 12;

using Point = std::array<std::int64_t, kDimCount>;

[[nodiscard]] constexpr std::size_t index_of(Dim d)
{
    return static_cast<std::size_t>(d);
}

struct ParamBox {
    std::array<ICount, kDimCount> dims{};

    [[nodiscard]] ICount& operator[](Dim d) { return dims[index_of(d)]; }
    [[nodiscard]] const ICount& operator[](Dim d) const
    {
        return dims[index_of(d)];
    }

    [[nodiscard]] static std::string_view name(Dim d);
    [[nodiscard]] static std::optional<Dim> find(std::string_view name);

    // Rejects boxes the scenario family cannot realize: every dimension
    // must be non-negative, period and d_mem at least 1, cores in [1, 8].
    void validate() const;

    // "md=[2,8] pd=[40,120]" over the given dims (all dims when empty).
    [[nodiscard]] std::string describe(const std::vector<Dim>& used) const;

    // Lowest / highest corner and midpoint of the box.
    [[nodiscard]] Point lo_corner() const;
    [[nodiscard]] Point hi_corner() const;
    [[nodiscard]] Point midpoint() const;

    // Splits along the widest dimension in `used` (ties: lowest enum
    // order). Returns nullopt when every used dimension is a point.
    [[nodiscard]] std::optional<std::pair<ParamBox, ParamBox>>
    bisect(const std::vector<Dim>& used) const;
};

// The seed parameter box behind `cpa verify --profile fast`: comfortably
// schedulable scenarios so the Eq. 19 enclosure converges near the root.
[[nodiscard]] ParamBox fast_box();

// The wider `--profile full` box; wcrt invariants may legitimately end
// UNDECIDED near the schedulability boundary here.
[[nodiscard]] ParamBox full_box();

// Box file format: one `name lo hi` triple per line, '#' comments.
// Unlisted dimensions keep the fast-profile range.
[[nodiscard]] ParamBox parse_box(std::istream& in);

} // namespace cpa::verify
