file(REMOVE_RECURSE
  "libcpa_tasks.a"
)
