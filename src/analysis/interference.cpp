#include "analysis/interference.hpp"

#include "check/assert.hpp"
#include "obs/obs.hpp"
#include "util/set_mask.hpp"

#include <algorithm>
#include <string>

namespace cpa::analysis {

using util::SetMask;
using util::accesses_from_blocks;
using util::to_string;

InterferenceTables::InterferenceTables(const tasks::TaskSet& ts,
                                       CrpdMethod method)
{
    CPA_SCOPED_TIMER("tables.build");
    CPA_PROFILE_SPAN("tables.build");
    CPA_COUNT("tables.builds");
    const std::size_t n = ts.size();
    n_ = n;
    gamma_.assign(n * n, AccessCount{0});
    cpro_.assign(n * n, AccessCount{0});

    // γ table. For a fixed preempting task τ_j (on core y), the evicting
    // union ∪_{h ∈ Γ_y ∩ hep(j)} ECB_h is fixed, and as the analysis level i
    // grows the max over g ∈ Γ_y ∩ aff(i, j) only gains candidates — so one
    // ascending sweep with a running max fills a whole row.
    for (std::size_t core = 0; core < ts.num_cores(); ++core) {
        SetMask prefix_ecb(ts.cache_sets());
        for (const std::size_t j : ts.tasks_on_core(core)) {
            prefix_ecb |= ts[j].ecb;

            AccessCount running_max{0};
            bool any_affected = false;
            for (std::size_t i = j + 1; i < n; ++i) {
                if (ts[i].core == core) {
                    any_affected = true;
                    AccessCount candidate{0};
                    switch (method) {
                    case CrpdMethod::kEcbUnion:
                        candidate = accesses_from_blocks(
                            ts[i].ucb.intersection_count(prefix_ecb));
                        break;
                    case CrpdMethod::kUcbOnly:
                        candidate = accesses_from_blocks(ts[i].ucb.popcount());
                        break;
                    case CrpdMethod::kEcbOnly:
                        candidate = accesses_from_blocks(prefix_ecb.popcount());
                        break;
                    }
                    running_max = std::max(running_max, candidate);
                }
                if (any_affected) {
                    gamma_[i * n + j] = running_max;
                }
            }
        }
    }

    // Pairwise eviction potentials for the job-bounded CPRO refinement.
    pair_overlap_.assign(n * n, AccessCount{0});
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t s = 0; s < n; ++s) {
            if (s != j && ts[s].core == ts[j].core) {
                pair_overlap_[j * n + s] = accesses_from_blocks(
                    ts[j].pcb.intersection_count(ts[s].ecb));
            }
        }
    }

    // CPRO overlap table. For fixed τ_j the union over hep(i) \ {j} grows
    // with i, so again one ascending sweep per row.
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t core = ts[j].core;
        SetMask evictors(ts.cache_sets());
        for (std::size_t i = 0; i < n; ++i) {
            if (i != j && ts[i].core == core) {
                evictors |= ts[i].ecb;
            }
            cpro_[j * n + i] = accesses_from_blocks(
                ts[j].pcb.intersection_count(evictors));
        }
    }

#if CPA_CHECK_ENABLED
    if (check::assertions_enabled()) {
        // Post-build shape tripwires (one O(n²) walk per table build, only
        // with assertions on): γ lives strictly below the diagonal within
        // the cache bound, CPRO rows are capped by |PCB_j| and non-
        // decreasing in the analysis level (the evictor union only grows).
        const AccessCount cache_limit = accesses_from_blocks(ts.cache_sets());
        for (std::size_t i = 0; i < n; ++i) {
            const AccessCount pcb_i = accesses_from_blocks(ts[i].pcb.popcount());
            AccessCount previous_cpro{0};
            for (std::size_t j = 0; j < n; ++j) {
                CPA_CHECK_ASSERT(
                    gamma_[i * n + j] >= AccessCount{0} &&
                        gamma_[i * n + j] <= cache_limit &&
                        (j < i || gamma_[i * n + j] == AccessCount{0}),
                    "tables.gamma_shape",
                    "gamma(" + std::to_string(i) + "," + std::to_string(j) +
                        ")=" + to_string(gamma_[i * n + j]));
                CPA_CHECK_ASSERT(
                    cpro_[i * n + j] >= AccessCount{0} &&
                        cpro_[i * n + j] <= pcb_i &&
                        cpro_[i * n + j] >= previous_cpro,
                    "tables.cpro_shape",
                    "cpro(" + std::to_string(i) + "," + std::to_string(j) +
                        ")=" + to_string(cpro_[i * n + j]));
                previous_cpro = cpro_[i * n + j];
            }
        }
    }
#endif

#if CPA_OBS_ENABLED
    if (obs::metrics_enabled()) {
        // Table shape stats: how dense the interference actually is. The
        // O(n²) walk only runs with metrics on (cold path: one build per
        // task set, shared by every analysis variant).
        std::int64_t gamma_nonzero = 0;
        std::int64_t cpro_nonzero = 0;
        for (std::size_t e = 0; e < n * n; ++e) {
            gamma_nonzero += gamma_[e] != AccessCount{0} ? 1 : 0;
            cpro_nonzero += cpro_[e] != AccessCount{0} ? 1 : 0;
        }
        CPA_GAUGE_SET("tables.tasks", static_cast<std::int64_t>(n));
        CPA_GAUGE_SET("tables.gamma_nonzero", gamma_nonzero);
        CPA_GAUGE_SET("tables.cpro_nonzero", cpro_nonzero);
    }
#endif
}

} // namespace cpa::analysis
