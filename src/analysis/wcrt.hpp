// Worst-case response time computation (Eq. (19)).
//
// R_i = PD_i + Σ_{τ_j ∈ Γ_x ∩ hp(i)} ⌈R_i/T_j⌉ · PD_j + BAT_i(R_i) · d_mem
//
// Because the other-core bound BAO depends on the response times R_l of the
// tasks on other cores, the paper wraps the per-task fixed point in an outer
// loop over the whole task set; response times grow monotonically across
// outer iterations and the loops stop at a global fixed point or as soon as
// some R_i exceeds D_i.
#pragma once

#include "analysis/bus_bounds.hpp"
#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "tasks/task.hpp"

#include <cstddef>
#include <vector>

namespace cpa::analysis {

using util::TaskId;

// Why the WCRT analysis stopped.
enum class StopReason {
    kConverged,          // global fixed point reached; bounds are valid
    kDeadlineMiss,       // some R_i exceeded D_i; set is unschedulable
    kNoOuterConvergence, // outer-iteration budget exhausted (conservative)
};

[[nodiscard]] const char* to_string(StopReason reason);

// `failed_task` when no task missed its deadline.
inline constexpr TaskId kNoFailedTask = TaskId::invalid();

struct WcrtResult {
    bool schedulable = false;
    // Response time per task (cycles); only meaningful when schedulable,
    // except response[failed_task] which holds the first value found to
    // exceed its deadline.
    std::vector<Cycles> response;
    std::size_t outer_iterations = 0;
    // Total Eq. (19) inner fixed-point iterations across all tasks and all
    // outer rounds (the analysis' dominant cost driver).
    std::size_t inner_iterations = 0;
    // The first task whose response exceeded its deadline, or kNoFailedTask
    // when schedulable.
    TaskId failed_task = kNoFailedTask;
    StopReason stop_reason = StopReason::kConverged;
    // True when some inner solve hit its iteration budget and fell back to
    // the conservative deadline+1 answer — a kDeadlineMiss verdict with this
    // flag set is a solver capitulation, not a proven miss (also surfaced as
    // the wcrt.budget_exhausted counter and an "inner_budget_exhausted"
    // trace event).
    bool inner_budget_exhausted = false;
};

// Computes WCRTs for every task of `ts`, sharing pre-computed interference
// tables (so several AnalysisConfigs can reuse one table pair per task set).
[[nodiscard]] WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                                      const PlatformConfig& platform,
                                      const AnalysisConfig& config,
                                      const InterferenceTables& tables);

// Convenience overload that builds the tables itself.
[[nodiscard]] WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                                      const PlatformConfig& platform,
                                      const AnalysisConfig& config);

} // namespace cpa::analysis
