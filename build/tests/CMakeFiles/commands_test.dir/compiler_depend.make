# Empty compiler generated dependencies file for commands_test.
# This may be replaced when dependencies are built.
