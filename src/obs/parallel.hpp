// Deterministic parallel trial driver: util::ThreadPool fan-out plus the
// per-trial metrics staging that keeps observability output byte-identical
// between serial and parallel runs.
//
// Layering: obs may depend on util only (see scripts/check_layers.py), so
// the pool lives in util and this header is the one place the two meet.
// Experiment/bench/check code calls run_indexed_trials instead of touching
// MetricsBuffer directly.
#pragma once

#include "util/thread_pool.hpp"

#include <cstddef>
#include <functional>

namespace cpa::obs {

// Runs body(i) for every i in [0, count) on the pool. When metrics are
// enabled, each trial records into its own MetricsBuffer (installed on the
// executing thread for the duration of that trial) and the buffers are
// flushed into the global registry in trial-index order after the batch
// drains. That ordering makes every metric kind — including last-writer-wins
// gauges — land exactly as a serial 0..count-1 loop would have written it,
// regardless of how the pool scheduled the trials.
//
// The body must follow the pool's determinism contract: seed from the trial
// index (util::seed_for) and write results only into its own pre-sized slot.
void run_indexed_trials(util::ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body);

} // namespace cpa::obs
