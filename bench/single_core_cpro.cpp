// Companion reproduction (paper ref [3], ECRTS'16): the single-core case.
// With m = 1 the bus degenerates to the private memory path (BAT = BAS plus
// at most one blocking access), so the comparison isolates exactly what
// ref [3] measured: CRPD-only response-time analysis vs. the
// cache-persistence-aware analysis (M̂D + CPRO). The DATE paper under
// reproduction is the multicore generalization of this experiment.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("single_core_cpro");

    const std::size_t task_sets = experiments::task_sets_from_env(400);

    auto generation = bench::default_generation();
    generation.num_cores = 1;
    generation.tasks_per_core = 10; // ref [3] used larger per-core sets
    auto platform = bench::default_platform();
    platform.num_cores = 1;

    std::vector<experiments::AnalysisVariant> variants;
    for (const bool persistence : {true, false}) {
        analysis::AnalysisConfig config;
        config.policy = analysis::BusPolicy::kFixedPriority;
        config.persistence_aware = persistence;
        variants.push_back(
            {persistence ? "CRPD+CPRO (persistence)" : "CRPD-only", config});
    }

    const auto sweep = experiments::run_utilization_sweep(
        generation, platform, variants, bench::fig2_sweep(task_sets));
    bench::print_sweep(
        "Single core (ref [3] setting): persistence-aware vs CRPD-only "
        "response-time analysis (10 tasks, 256 sets, d_mem=5us)",
        sweep);

    double best_gap = 0.0;
    for (const auto& point : sweep.points) {
        best_gap = std::max(
            best_gap, 100.0 *
                          (static_cast<double>(point.schedulable[0]) -
                           static_cast<double>(point.schedulable[1])) /
                          static_cast<double>(sweep.task_sets_per_point));
    }
    std::cout << "Peak persistence gain on a single core: "
              << util::TextTable::num(best_gap, 1)
              << " percentage points\n";
    return 0;
}
