# Empty dependencies file for interference_test.
# This may be replaced when dependencies are built.
