# Empty dependencies file for cpa_sim.
# This may be replaced when dependencies are built.
