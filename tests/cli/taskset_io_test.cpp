#include "cli/taskset_io.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

namespace cpa::cli {
namespace {

constexpr const char* kDemo = R"(# demo system
platform cores=2 cache_sets=64 d_mem_us=5 slot_size=2

task ctrl core=0 pd=1000 md=20 mdr=4 period=100000 ecb=0-19 ucb=0-15 pcb=0-19
task log  core=1 pd=500  md=10 mdr=2 period=200000 deadline=150000 ecb=30-39,42 pcb=30-39
)";

TEST(TasksetIo, ParsesDemoFile)
{
    std::istringstream in(kDemo);
    const ParsedSystem parsed = parse_task_set(in);
    EXPECT_EQ(parsed.platform.num_cores, 2u);
    EXPECT_EQ(parsed.platform.cache_sets, 64u);
    EXPECT_EQ(parsed.platform.d_mem, util::Cycles{10}); // 5 us
    EXPECT_EQ(parsed.platform.slot_size, 2);
    ASSERT_EQ(parsed.ts.size(), 2u);

    const tasks::Task& ctrl = parsed.ts[0];
    EXPECT_EQ(ctrl.name, "ctrl");
    EXPECT_EQ(ctrl.core, 0u);
    EXPECT_EQ(ctrl.pd, util::Cycles{1000});
    EXPECT_EQ(ctrl.md, util::AccessCount{20});
    EXPECT_EQ(ctrl.md_residual, util::AccessCount{4});
    EXPECT_EQ(ctrl.period, util::Cycles{100000});
    EXPECT_EQ(ctrl.deadline, util::Cycles{100000}); // implicit
    EXPECT_EQ(ctrl.ecb.popcount(), 20u);
    EXPECT_EQ(ctrl.ucb.popcount(), 16u);

    const tasks::Task& log = parsed.ts[1];
    EXPECT_EQ(log.deadline, util::Cycles{150000});
    EXPECT_EQ(log.ecb.popcount(), 11u); // 30-39 plus 42
    EXPECT_TRUE(log.ecb.contains(42));
    EXPECT_TRUE(log.ucb.empty());
}

TEST(TasksetIo, FileOrderIsPriorityOrderByDefault)
{
    std::istringstream in(R"(platform cores=1 cache_sets=8
task slow core=0 pd=1 md=0 mdr=0 period=1000
task fast core=0 pd=1 md=0 mdr=0 period=10
)");
    const ParsedSystem parsed = parse_task_set(in);
    EXPECT_EQ(parsed.ts[0].name, "slow"); // kept first despite longer period
}

TEST(TasksetIo, DmPriorityModeSorts)
{
    std::istringstream in(R"(platform cores=1 cache_sets=8 priority=dm
task slow core=0 pd=1 md=0 mdr=0 period=1000
task fast core=0 pd=1 md=0 mdr=0 period=10
)");
    const ParsedSystem parsed = parse_task_set(in);
    EXPECT_EQ(parsed.ts[0].name, "fast");
}

TEST(TasksetIo, ErrorsCarryLineNumbers)
{
    const auto expect_error = [](const char* text, const char* needle) {
        std::istringstream in(text);
        try {
            (void)parse_task_set(in);
            FAIL() << "expected failure for: " << text;
        } catch (const std::runtime_error& error) {
            EXPECT_NE(std::string(error.what()).find(needle),
                      std::string::npos)
                << error.what();
        }
    };
    expect_error("task t core=0\n", "task before platform");
    expect_error("platform cores=1 cache_sets=8\nbogus x=1\n",
                 "line 2: unknown directive");
    expect_error("platform cores=1\n", "missing required field 'cache_sets'");
    expect_error("platform cores=1 cache_sets=8\n"
                 "task t core=0 pd=1 md=0 mdr=0\n",
                 "line 2: missing required field 'period'");
    expect_error("platform cores=1 cache_sets=8\n"
                 "task t core=0 pd=x md=0 mdr=0 period=10\n",
                 "expected an integer");
    expect_error("platform cores=1 cache_sets=8\n"
                 "task t core=0 pd=1 md=0 mdr=0 period=10 ecb=9-3\n",
                 "descending range");
    expect_error("platform cores=1 cache_sets=8 wibble=2\n",
                 "unknown platform field");
    expect_error("platform cores=1 cache_sets=8 d_mem_us=5 d_mem_cycles=10\n",
                 "not both");
    expect_error("platform cores=1 cache_sets=8\n"
                 "platform cores=2 cache_sets=8\n",
                 "duplicate platform");
    expect_error("", "missing platform");
    // Model violations surface through validate() with the task's line.
    expect_error("platform cores=1 cache_sets=8\n"
                 "task t core=0 pd=1 md=2 mdr=5 period=10\n",
                 "MDr exceeds MD");
}

TEST(TasksetIo, RoundTripsThroughWriter)
{
    std::istringstream in(kDemo);
    const ParsedSystem parsed = parse_task_set(in);

    std::ostringstream written;
    write_task_set(written, parsed.platform, parsed.ts);

    std::istringstream again(written.str());
    const ParsedSystem reparsed = parse_task_set(again);
    EXPECT_EQ(reparsed.platform.num_cores, parsed.platform.num_cores);
    EXPECT_EQ(reparsed.platform.d_mem, parsed.platform.d_mem);
    ASSERT_EQ(reparsed.ts.size(), parsed.ts.size());
    for (std::size_t i = 0; i < parsed.ts.size(); ++i) {
        EXPECT_EQ(reparsed.ts[i].name, parsed.ts[i].name);
        EXPECT_EQ(reparsed.ts[i].period, parsed.ts[i].period);
        EXPECT_EQ(reparsed.ts[i].deadline, parsed.ts[i].deadline);
        EXPECT_TRUE(reparsed.ts[i].ecb == parsed.ts[i].ecb);
        EXPECT_TRUE(reparsed.ts[i].ucb == parsed.ts[i].ucb);
        EXPECT_TRUE(reparsed.ts[i].pcb == parsed.ts[i].pcb);
    }
}

TEST(TasksetIo, JitterFieldRoundTrips)
{
    std::istringstream in(R"(platform cores=1 cache_sets=8
task t core=0 pd=1 md=0 mdr=0 period=100 deadline=80 jitter=15
)");
    const ParsedSystem parsed = parse_task_set(in);
    EXPECT_EQ(parsed.ts[0].jitter, util::Cycles{15});

    std::ostringstream written;
    write_task_set(written, parsed.platform, parsed.ts);
    EXPECT_NE(written.str().find("jitter=15"), std::string::npos);
    std::istringstream again(written.str());
    EXPECT_EQ(parse_task_set(again).ts[0].jitter, util::Cycles{15});
}

TEST(TasksetIo, JitterBeyondSlackRejected)
{
    std::istringstream in(R"(platform cores=1 cache_sets=8
task t core=0 pd=1 md=0 mdr=0 period=100 deadline=90 jitter=15
)");
    EXPECT_THROW((void)parse_task_set(in), std::runtime_error);
}

TEST(TasksetIo, ParsesL2Extension)
{
    std::istringstream in(R"(platform cores=2 cache_sets=64 l2_sets=256 d_l2_us=1
task a core=0 pd=100 md=20 mdr=8 period=10000 ecb=0-19 ecb2=0-19 pcb2=0-19 mdr2=2
task b core=1 pd=100 md=10 mdr=10 period=10000 ecb=5-14
)");
    const ParsedSystem parsed = parse_task_set(in);
    ASSERT_TRUE(parsed.l2.has_value());
    EXPECT_EQ(parsed.l2->sets, 256u);
    EXPECT_EQ(parsed.l2->d_l2, util::Cycles{2}); // 1 us
    ASSERT_EQ(parsed.l2_footprints.size(), 2u);
    EXPECT_EQ(parsed.l2_footprints[0].ecb2.popcount(), 20u);
    EXPECT_EQ(parsed.l2_footprints[0].md_residual_l2, util::AccessCount{2});
    // Task b: default footprint, mdr2 defaults to mdr.
    EXPECT_TRUE(parsed.l2_footprints[1].ecb2.empty());
    EXPECT_EQ(parsed.l2_footprints[1].md_residual_l2, util::AccessCount{10});
}

TEST(TasksetIo, L2FieldErrors)
{
    const auto expect_error = [](const char* text, const char* needle) {
        std::istringstream in(text);
        try {
            (void)parse_task_set(in);
            FAIL() << text;
        } catch (const std::runtime_error& error) {
            EXPECT_NE(std::string(error.what()).find(needle),
                      std::string::npos)
                << error.what();
        }
    };
    // L2 task fields without an L2 platform declaration.
    expect_error("platform cores=1 cache_sets=8\n"
                 "task t core=0 pd=1 md=2 mdr=1 period=10 ecb2=0-3\n",
                 "require l2_sets");
    // mdr2 above mdr.
    expect_error("platform cores=1 cache_sets=8 l2_sets=16\n"
                 "task t core=0 pd=1 md=2 mdr=1 period=10 mdr2=2\n",
                 "mdr2 exceeds mdr");
    // pcb2 outside ecb2.
    expect_error("platform cores=1 cache_sets=8 l2_sets=16\n"
                 "task t core=0 pd=1 md=2 mdr=1 period=10 ecb2=0-3 pcb2=5\n",
                 "pcb2 not a subset");
    // positional footprints forbid re-sorting.
    expect_error("platform cores=1 cache_sets=8 l2_sets=16 priority=dm\n"
                 "task t core=0 pd=1 md=2 mdr=1 period=10\n",
                 "priority=file");
}

TEST(TasksetIo, FuzzedGarbageNeverCrashes)
{
    // Random line soup must produce clean runtime_errors (or parse), never
    // crash or throw anything else.
    std::mt19937_64 rng(777);
    const std::vector<std::string> fragments = {
        "platform", "task", "cores=", "cache_sets=", "pd=", "md=", "mdr=",
        "period=", "ecb=", "0-19", "-5", "99999999999999999999", "t1",
        "#", "=", "core=", "d_mem_us=", "priority=", "dm", "bogus", ",",
        "4", "0.5", "jitter=",
    };
    for (int round = 0; round < 200; ++round) {
        std::string text;
        const std::size_t lines = rng() % 6;
        for (std::size_t l = 0; l < lines; ++l) {
            const std::size_t tokens = rng() % 8;
            for (std::size_t t = 0; t < tokens; ++t) {
                text += fragments[rng() % fragments.size()];
                if (rng() % 2 == 0) {
                    text += ' ';
                }
            }
            text += '\n';
        }
        std::istringstream in(text);
        try {
            (void)parse_task_set(in);
        } catch (const std::runtime_error&) {
            // expected for malformed input
        }
    }
}

TEST(TasksetIo, MissingFileReportsPath)
{
    try {
        (void)parse_task_set_file("/nonexistent/path.taskset");
        FAIL();
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find("/nonexistent/path"),
                  std::string::npos);
    }
}

} // namespace
} // namespace cpa::cli
