#include "verify/properties.hpp"

#include "analysis/config.hpp"

#include <array>

namespace cpa::verify {

using util::AccessCount;
using util::Cycles;

namespace {

using analysis::AnalysisConfig;
using analysis::BusPolicy;

// Margins are sign-only diagnostics, so the boundary escape to_metric is
// the right conversion: the strong types have done their job by here.
[[nodiscard]] ICount icount(const IAccess& a)
{
    return {util::to_metric(a.lo), util::to_metric(a.hi)};
}

[[nodiscard]] ICount icount(const ICycles& a)
{
    return {util::to_metric(a.lo), util::to_metric(a.hi)};
}

[[nodiscard]] AnalysisConfig make_config(BusPolicy policy, bool persistence)
{
    AnalysisConfig config;
    config.policy = policy;
    config.persistence_aware = persistence;
    return config;
}

constexpr std::array<BusPolicy, 3> kPolicies = {
    BusPolicy::kFixedPriority, BusPolicy::kRoundRobin, BusPolicy::kTdma};

// Response enclosures the window-level rules feed into BAO: the checker
// probes the bounds at the isolated responses, so that is what we enclose.
[[nodiscard]] std::vector<ICycles> iso_responses(const AbstractScenario& s)
{
    return std::vector<ICycles>(s.task_count(), isolated_demand(s));
}

// structure.footprints: make_scenario clamps UCB/PCB with min(raw, ECB), so
// the subset slack is max(0, ECB - raw) pointwise — non-negative by the
// clamp rewrite a - min(b, a) = max(0, a - b).
std::optional<ICount> m_footprints(const AbstractScenario& s)
{
    const ICount ucb_slack = clamp_non_negative(s.ecb_blocks - s.ucb_raw);
    const ICount pcb_slack = clamp_non_negative(s.ecb_blocks - s.pcb_raw);
    return min(ucb_slack, pcb_slack);
}

// structure.demand: PD, MD, MDʳ >= 0 come from box validation; MDʳ <= MD
// from the min clamp (same rewrite as above).
std::optional<ICount> m_demand(const AbstractScenario& s)
{
    const ICount md = icount(s.md);
    const ICount order_slack = clamp_non_negative(md - s.mdr_raw);
    return min(min(md, icount(s.md_residual)),
               min(icount(s.pd), order_slack));
}

// structure.windows: D = T, J = 0, so every window relation has slack 0 and
// T > 0 has slack T - 1 (box validation pins T >= 1).
std::optional<ICount> m_windows(const AbstractScenario& s)
{
    return min(icount(s.period) - ICount::point(1), ICount::point(0));
}

// demand.md_hat_dominance: n·MD - M̂D(n) = max(0, n·MD - (n·MDʳ + |PCB|))
// by the min rewrite, hence non-negative for every n >= 0.
std::optional<ICount> m_md_hat_dominance(const AbstractScenario& s)
{
    const IAccess isolation = mul(s.n_jobs, s.md);
    const IAccess capped = mul(s.n_jobs, s.md_residual) + s.pcb;
    return icount(clamp_non_negative(isolation - capped));
}

// demand.md_hat_monotone: min-difference rule
//   min(a2,b2) - min(a1,b1) >= min(a2-a1, b2-b1),
// with a = n·MD and b = n·MDʳ + |PCB|, gives a step of min(MD, MDʳ) >= 0.
std::optional<ICount> m_md_hat_monotone(const AbstractScenario& s)
{
    return min(icount(s.md), icount(s.md_residual));
}

// demand.md_hat_subadditive: M̂D(m)+M̂D(n) is a min over four branch sums;
// each sum exceeds M̂D(m+n) by one of the certified non-negative gaps below
// (aa/bb by the min rewrite, the mixed branches by m·(MD - MDʳ) >= 0).
std::optional<ICount> m_md_hat_subadditive(const AbstractScenario& s)
{
    const ICount total_jobs = s.n_jobs + s.n_jobs;
    const IAccess x = mul(total_jobs, s.md);
    const IAccess y = mul(total_jobs, s.md_residual) + s.pcb;
    const IAccess aa = clamp_non_negative(x - y);
    const IAccess bb = s.pcb + clamp_non_negative(y - x);
    const IAccess mixed =
        mul(s.n_jobs, clamp_non_negative(s.md - s.md_residual));
    return icount(min(min(aa, bb), mixed));
}

// tables.gamma_shape: entries are |UCB_eff|·indicator with the indicator
// monotone in the level, so shape reduces to 0 <= |UCB_eff| <= cache size —
// guaranteed by the footprint clamps.
std::optional<ICount> m_gamma_shape(const AbstractScenario& s)
{
    const ICount ucb = icount(s.ucb);
    const ICount limit =
        ICount::point(static_cast<std::int64_t>(kScenarioCacheSets));
    return min(ucb, limit - ucb);
}

// tables.cpro_shape: overlaps are |PCB_eff|·indicator (level-monotone, only
// the same-core partner pairs), so 0 <= overlap <= |PCB| holds with slack 0
// at the |PCB| cap.
std::optional<ICount> m_cpro_shape(const AbstractScenario& s)
{
    return min(icount(s.pcb), ICount::point(0));
}

// lemma1.bas_dominance: per higher-priority task the aware demand is
// min(isolation, cap), so BAS - BAS-hat = max(0, isolation - cap) >= 0.
std::optional<ICount> m_bas_dominance(const AbstractScenario& s)
{
    const AbstractBounds bounds(s, make_config(BusPolicy::kFixedPriority,
                                               true));
    ICount worst{0, 0};
    bool first = true;
    for (std::size_t i = s.cores; i < s.task_count(); ++i) {
        const ICount slack =
            icount(bounds.bas_persistence_slack(i, s.window));
        worst = first ? slack : min(worst, slack);
        first = false;
    }
    return worst;
}

// bounds.bas_monotone: E_j(t) = ceil(t/T_j) is non-decreasing in t, and both
// the baseline demand E·MD and the aware cap min(E·MD, M̂D(E) + ρ̂(E)) are
// non-decreasing in E (min of monotone maps), so BAS is a composition of
// monotone maps of t. The margin is the composition certificate, not an
// interval evaluation; sampled points cross-check the implementation.
std::optional<ICount> m_bas_monotone(const AbstractScenario&)
{
    return ICount::point(0);
}

// lemma2.bao_dominance: per other-core task only the w_full cap differs, so
// the per-task gap is max(0, n_full·MD - cap) — the same rewrite as Lemma 1
// applied inside the Eq. (4)-(6) window decomposition.
std::optional<ICount> m_bao_dominance(const AbstractScenario& s)
{
    const AbstractBounds bounds(s, make_config(BusPolicy::kFixedPriority,
                                               true));
    const std::vector<ICycles> response = iso_responses(s);
    ICount worst{0, 0};
    bool first = true;
    for (std::size_t i = 0; i < s.task_count(); ++i) {
        const std::size_t my_core = i % s.cores;
        for (std::size_t core = 0; core < s.cores; ++core) {
            if (core == my_core) {
                continue;
            }
            const ICount slack = icount(
                bounds.bao_persistence_slack(core, i, s.window, response));
            worst = first ? slack : min(worst, slack);
            first = false;
        }
    }
    return worst;
}

// bat.dominates_bas: BAT - BAS is exactly the cross-core-plus-blocking
// addend of Eq. (7)-(9); evaluate it abstractly (every component is built
// from clamped non-negative enclosures) and check the perfect bus adds
// nothing by construction.
std::optional<ICount> m_bat_dominates(const AbstractScenario& s)
{
    const std::vector<ICycles> response = iso_responses(s);
    const ICount slot = ICount::point(s.slot_size);
    ICount worst{0, 0};
    bool first = true;
    for (const BusPolicy policy : kPolicies) {
        const AbstractBounds bounds(s, make_config(policy, true));
        for (std::size_t i = 0; i < s.task_count(); ++i) {
            const std::size_t my_core = i % s.cores;
            const IAccess same = bounds.bas(i, s.window);
            const IAccess blocking = i < s.cores
                                         ? IAccess::point(AccessCount{1})
                                         : IAccess::point(AccessCount{0});
            IAccess cross = IAccess::point(AccessCount{0});
            switch (policy) {
            case BusPolicy::kFixedPriority: {
                IAccess lower = IAccess::point(AccessCount{0});
                for (std::size_t core = 0; core < s.cores; ++core) {
                    if (core == my_core) {
                        continue;
                    }
                    cross = cross + bounds.bao(core, i, s.window, response);
                    lower = lower +
                            bounds.bao_lower(core, i, s.window, response);
                }
                cross = cross + min(same, lower);
                break;
            }
            case BusPolicy::kRoundRobin: {
                const std::size_t lowest = s.task_count() - 1;
                for (std::size_t core = 0; core < s.cores; ++core) {
                    if (core == my_core) {
                        continue;
                    }
                    cross = cross +
                            min(bounds.bao(core, lowest, s.window, response),
                                mul(slot, same));
                }
                break;
            }
            case BusPolicy::kTdma: {
                const ICount factor = ICount::point(
                    (static_cast<std::int64_t>(s.cores) - 1) * s.slot_size);
                cross = mul(factor, same);
                break;
            }
            case BusPolicy::kPerfect:
                break;
            }
            const ICount margin = icount(cross + blocking);
            worst = first ? margin : min(worst, margin);
            first = false;
        }
    }
    return worst;
}

// bat.persistence_dominance: compose the Lemma 1/2 gaps through each
// arbiter. Sums of non-negative gaps stay non-negative; the min terms of
// Eq. (7)/(8) obey the min-difference rule
//   min(a2,b2) - min(a1,b1) >= min(a2-a1, b2-b1),
// so each policy's baseline-minus-aware BAT is bounded below by the
// composition evaluated here.
std::optional<ICount> m_bat_persistence(const AbstractScenario& s)
{
    const AbstractBounds bounds(s, make_config(BusPolicy::kFixedPriority,
                                               true));
    const std::vector<ICycles> response = iso_responses(s);
    const ICount slot = ICount::point(s.slot_size);
    ICount worst{0, 0};
    bool first = true;
    for (const BusPolicy policy : kPolicies) {
        for (std::size_t i = 0; i < s.task_count(); ++i) {
            const std::size_t my_core = i % s.cores;
            const IAccess same_gap =
                bounds.bas_persistence_slack(i, s.window);
            IAccess total = same_gap;
            switch (policy) {
            case BusPolicy::kFixedPriority: {
                IAccess lower_gap = IAccess::point(AccessCount{0});
                for (std::size_t core = 0; core < s.cores; ++core) {
                    if (core == my_core) {
                        continue;
                    }
                    total = total + bounds.bao_persistence_slack(
                                        core, i, s.window, response);
                    lower_gap =
                        lower_gap + bounds.bao_lower_persistence_slack(
                                        core, i, s.window, response);
                }
                total = total + min(same_gap, lower_gap);
                break;
            }
            case BusPolicy::kRoundRobin: {
                const std::size_t lowest = s.task_count() - 1;
                for (std::size_t core = 0; core < s.cores; ++core) {
                    if (core == my_core) {
                        continue;
                    }
                    total = total +
                            min(bounds.bao_persistence_slack(
                                    core, lowest, s.window, response),
                                mul(slot, same_gap));
                }
                break;
            }
            case BusPolicy::kTdma: {
                const ICount factor = ICount::point(
                    (static_cast<std::int64_t>(s.cores) - 1) * s.slot_size);
                total = total + mul(factor, same_gap);
                break;
            }
            case BusPolicy::kPerfect:
                break;
            }
            const ICount margin = icount(total);
            worst = first ? margin : min(worst, margin);
            first = false;
        }
    }
    return worst;
}

// Shared resolver for the wcrt.* properties: run the abstract Eq. 19
// enclosure for every policy × persistence combination the checker probes.
// When every combination resolves (all-schedulable or all-unschedulable)
// the checked relations hold by the solver's construction — rhs(R) <= R is
// its return condition, R >= PD + MD·d_mem is its starting point, and the
// aware iterate chain is dominated by the baseline chain (baseline rhs is
// monotone; the aware rhs is pointwise below it by the Lemma 1/2 gaps).
// A box straddling the schedulability boundary stays inconclusive.
std::optional<ICount> m_wcrt(const AbstractScenario& s)
{
    for (const BusPolicy policy : kPolicies) {
        for (const bool aware : {true, false}) {
            const AbstractWcrt result =
                abstract_wcrt(s, make_config(policy, aware));
            if (result.verdict == AbstractSchedulability::kUnknown) {
                return ICount{-1, 1}; // straddles: bisect
            }
        }
    }
    return ICount::point(0);
}

// sim.response_soundness: the discrete-event simulator is outside the
// interval domain — no rule; the prover samples it and reports UNDECIDED.
std::optional<ICount> m_sim(const AbstractScenario&) { return std::nullopt; }

const std::vector<Dim> kFootprintDims = {Dim::kUcb, Dim::kPcb, Dim::kEcb};
const std::vector<Dim> kDemandDims = {Dim::kMd, Dim::kMdResidual, Dim::kPd};
const std::vector<Dim> kMdHatDims = {Dim::kMd, Dim::kMdResidual, Dim::kPcb,
                                     Dim::kEcb, Dim::kNJobs};
const std::vector<Dim> kBasDims = {Dim::kMd,  Dim::kMdResidual, Dim::kPcb,
                                   Dim::kEcb, Dim::kWindow,     Dim::kPeriod};
const std::vector<Dim> kBatDims = {Dim::kMd,     Dim::kMdResidual,
                                   Dim::kPcb,    Dim::kUcb,
                                   Dim::kEcb,    Dim::kWindow,
                                   Dim::kPeriod, Dim::kPd,
                                   Dim::kDmem};
const std::vector<Dim> kWcrtDims = {Dim::kMd,  Dim::kMdResidual, Dim::kPcb,
                                    Dim::kUcb, Dim::kEcb,        Dim::kPd,
                                    Dim::kPeriod, Dim::kDmem};

} // namespace

const std::vector<Property>& property_catalog()
{
    static const std::vector<Property> catalog = {
        {"structure.footprints", true, kFootprintDims, m_footprints, ""},
        {"structure.demand", true, kDemandDims, m_demand, ""},
        {"structure.windows", true, {Dim::kPeriod}, m_windows, ""},
        {"demand.md_hat_dominance", true, kMdHatDims, m_md_hat_dominance,
         ""},
        {"demand.md_hat_monotone", true, {Dim::kMd, Dim::kMdResidual},
         m_md_hat_monotone, ""},
        {"demand.md_hat_subadditive", true, kMdHatDims, m_md_hat_subadditive,
         ""},
        {"tables.gamma_shape", true, {Dim::kUcb, Dim::kEcb}, m_gamma_shape,
         ""},
        {"tables.cpro_shape", true, {Dim::kPcb, Dim::kEcb}, m_cpro_shape,
         ""},
        {"lemma1.bas_dominance", true, kBasDims, m_bas_dominance, ""},
        {"bounds.bas_monotone", true,
         {Dim::kMd, Dim::kMdResidual, Dim::kWindow, Dim::kDt, Dim::kPeriod},
         m_bas_monotone,
         "margin certifies monotone composition, not a pointwise interval"},
        {"lemma2.bao_dominance", true, kBatDims, m_bao_dominance, ""},
        {"bat.dominates_bas", true, kBatDims, m_bat_dominates, ""},
        {"bat.persistence_dominance", true, kBatDims, m_bat_persistence, ""},
        {"wcrt.fixed_point", true, kWcrtDims, m_wcrt,
         "proved via abstract Eq. 19 resolution; solver iteration caps are "
         "covered by sampling"},
        {"wcrt.response_bounds", true, kWcrtDims, m_wcrt,
         "proved via abstract Eq. 19 resolution; solver iteration caps are "
         "covered by sampling"},
        {"wcrt.persistence_dominance", true, kWcrtDims, m_wcrt,
         "aware iterates dominated by the monotone baseline chain; solver "
         "iteration caps are covered by sampling"},
        {"sim.response_soundness", false, {}, m_sim,
         "event simulation has no interval rule; sampled only"},
    };
    return catalog;
}

const Property* find_property(std::string_view name)
{
    for (const Property& property : property_catalog()) {
        if (property.name == name) {
            return &property;
        }
    }
    return nullptr;
}

} // namespace cpa::verify
