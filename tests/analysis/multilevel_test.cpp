#include "analysis/multilevel.hpp"

#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "sim/simulator.hpp"
#include "helpers.hpp"

#include <gtest/gtest.h>

namespace sim = cpa::sim;

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;

PlatformConfig small_platform()
{
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    return platform;
}

// Builds L2 footprints by hand: ECB2/PCB2 over `l2_sets`, residual given.
std::vector<L2Footprint>
make_footprints(std::size_t l2_sets,
                const std::vector<std::tuple<std::vector<std::size_t>,
                                             std::vector<std::size_t>,
                                             std::int64_t>>& specs)
{
    std::vector<L2Footprint> footprints;
    for (const auto& [ecb2, pcb2, mdr2] : specs) {
        L2Footprint fp;
        fp.ecb2 = util::SetMask::from_indices(l2_sets, ecb2);
        fp.pcb2 = util::SetMask::from_indices(l2_sets, pcb2);
        fp.md_residual_l2 = util::AccessCount{mdr2};
        footprints.push_back(std::move(fp));
    }
    return footprints;
}

TEST(L2Interference, OverlapSpansAllCores)
{
    // τ1 on core 0, τ2 on core 1 — private L1s never interact, but the
    // shared L2 does: τ2's ECB2 must evict τ1's PCB2.
    const tasks::TaskSet ts = make_task_set(
        2, 64,
        {
            {0, 10, 4, 1, 100, 0, {1, 2}, {}, {1, 2}},
            {1, 10, 4, 1, 100, 0, {3, 4}, {}, {3, 4}},
        });
    const auto footprints = make_footprints(
        128, {{{10, 11, 12}, {10, 11, 12}, 0}, {{11, 12, 13}, {13}, 0}});
    const L2InterferenceTables tables(ts, footprints);
    // At level 1 (hep = both tasks): τ1's PCB2 {10,11,12} ∩ τ2's ECB2
    // {11,12,13} = 2.
    EXPECT_EQ(tables.overlap(0, 1), util::AccessCount{2});
    EXPECT_EQ(tables.rho2_hat(0, 1, 4), util::AccessCount{6});
    // At level 0, hep(0)\{0} is empty -> no evictors.
    EXPECT_EQ(tables.overlap(0, 0), util::AccessCount{0});
    // τ2's PCB2 {13} ∩ τ1's ECB2 {10,11,12} = 0.
    EXPECT_EQ(tables.overlap(1, 1), util::AccessCount{0});
}

TEST(L2Interference, RejectsMismatchedFootprintCount)
{
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 10, 4, 1, 100, 0, {}, {}, {}}});
    EXPECT_THROW(L2InterferenceTables(ts, {}), std::invalid_argument);
}

TEST(Multilevel, LookupLatencyExtendsSingleTaskResponse)
{
    const tasks::TaskSet ts =
        make_task_set(2, 64, {{0, 10, 3, 3, 1000, 0, {}, {}, {}}});
    const auto footprints = make_footprints(128, {{{}, {}, 3}});
    AnalysisConfig config;
    L2Config l2;
    l2.d_l2 = util::Cycles{2};
    const InterferenceTables tables(ts, config.crpd);
    const L2InterferenceTables l2_tables(ts, footprints);
    const WcrtResult result = compute_wcrt_multilevel(
        ts, small_platform(), config, l2, footprints, tables, l2_tables);
    ASSERT_TRUE(result.schedulable);
    // 10 (PD) + 3 requests * 2 (L2 lookup) + 3 accesses * 10 (memory).
    EXPECT_EQ(result.response[0], util::Cycles{10 + 6 + 30});
}

TEST(Multilevel, SharedL2PersistenceCutsCrossCoreBusDemand)
{
    // τ2 (core 1, long deadline) suffers τ1's (core 0) repeated jobs. With
    // an ample L2, τ1's residual bus demand drops to 1, so τ2's response
    // shrinks versus the single-level analysis.
    const tasks::TaskSet ts = make_task_set(
        2, 64,
        {
            {0, 10, 6, 6, 150, 0, {1, 2, 3, 4, 5, 6}, {}, {}},
            {1, 100, 4, 4, 2000, 0, {8, 9}, {}, {}},
        });
    // τ1: everything L2-persistent (PCB2 = ECB2, disjoint from τ2's).
    const auto footprints = make_footprints(
        256, {{{1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}, 1},
              {{8, 9}, {8, 9}, 1}});
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    const InterferenceTables tables(ts, config.crpd);
    const L2InterferenceTables l2_tables(ts, footprints);

    L2Config l2;
    l2.d_l2 = util::Cycles{0}; // isolate the bus effect from the lookup latency
    const WcrtResult multilevel = compute_wcrt_multilevel(
        ts, small_platform(), config, l2, footprints, tables, l2_tables);
    const WcrtResult single =
        compute_wcrt(ts, small_platform(), config, tables);
    ASSERT_TRUE(multilevel.schedulable);
    ASSERT_TRUE(single.schedulable);
    EXPECT_LT(multilevel.response[1], single.response[1]);
}

TEST(Multilevel, DegeneratesToBaselineWithoutPersistence)
{
    // With persistence off and d_l2 = 0 the two analyses must agree
    // exactly (the L2 plays no role in the baseline bounds).
    util::Rng rng(808);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.25;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    const tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);
    const auto footprints = benchdata::attach_l2_footprints(
        rng, ts, benchdata::full_benchmark_table(), 512);

    AnalysisConfig config;
    config.policy = BusPolicy::kRoundRobin;
    config.persistence_aware = false;
    const InterferenceTables tables(ts, config.crpd);
    const L2InterferenceTables l2_tables(ts, footprints);
    L2Config l2;
    l2.d_l2 = util::Cycles{0};

    const WcrtResult multilevel = compute_wcrt_multilevel(
        ts, small_platform(), config, l2, footprints, tables, l2_tables);
    const WcrtResult single =
        compute_wcrt(ts, small_platform(), config, tables);
    ASSERT_EQ(multilevel.schedulable, single.schedulable);
    if (single.schedulable) {
        for (std::size_t i = 0; i < ts.size(); ++i) {
            EXPECT_EQ(multilevel.response[i], single.response[i]) << i;
        }
    }
}

TEST(Multilevel, AttachedFootprintsRespectInvariants)
{
    util::Rng rng(4);
    benchdata::GenerationConfig gen;
    gen.num_cores = 4;
    gen.tasks_per_core = 8;
    gen.cache_sets = 256;
    gen.per_core_utilization = 0.3;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);
    const tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);
    const auto footprints = benchdata::attach_l2_footprints(
        rng, ts, benchdata::full_benchmark_table(), 1024);
    ASSERT_EQ(footprints.size(), ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_TRUE(footprints[i].pcb2.is_subset_of(footprints[i].ecb2));
        EXPECT_LE(footprints[i].md_residual_l2, ts[i].md_residual) << i;
        EXPECT_GE(footprints[i].md_residual_l2, util::AccessCount{0}) << i;
        EXPECT_EQ(footprints[i].ecb2.universe(), 1024u);
    }
}

TEST(Multilevel, LargerL2ImprovesSchedulability)
{
    benchdata::GenerationConfig gen;
    gen.num_cores = 4;
    gen.tasks_per_core = 8;
    gen.cache_sets = 256;
    gen.per_core_utilization = 0.4;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);

    PlatformConfig platform;
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    L2Config l2;
    l2.d_l2 = util::Cycles{1};

    int small_l2 = 0;
    int big_l2 = 0;
    util::Rng rng(5150);
    for (int repeat = 0; repeat < 12; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        for (const std::size_t sets : {512u, 4096u}) {
            util::Rng placement(static_cast<std::uint64_t>(repeat));
            const auto footprints = benchdata::attach_l2_footprints(
                placement, ts, benchdata::full_benchmark_table(), sets);
            const bool ok = is_schedulable_multilevel(ts, platform, config,
                                                      l2, footprints);
            (sets == 512u ? small_l2 : big_l2) += ok ? 1 : 0;
        }
    }
    EXPECT_GE(big_l2, small_l2);
}

TEST(Multilevel, SimulatorHonorsL2Persistence)
{
    // Single task, everything L2-persistent but nothing L1-persistent:
    // first job pays MD bus accesses, later jobs only MDʳ² — plus every
    // request stalls d_l2 on the core.
    const tasks::TaskSet ts =
        make_task_set(1, 64, {{0, 100, 8, 8, 2000, 0, {1, 2}, {}, {}}});
    const auto footprints =
        make_footprints(256, {{{0, 1, 2, 3, 4, 5, 6, 7},
                               {0, 1, 2, 3, 4, 5, 6, 7},
                               2}});
    sim::SimConfig config;
    config.policy = BusPolicy::kPerfect;
    config.horizon = util::Cycles{10000};
    config.l2_footprints = &footprints;
    config.l2.sets = 256;
    config.l2.d_l2 = util::Cycles{3};

    const sim::SimResult result =
        sim::simulate(ts, small_platform(), config);
    ASSERT_EQ(result.jobs_completed[0], 5);
    // Bus: 8 (cold) + 4 * 2 (warm L2) = 16.
    EXPECT_EQ(result.bus_accesses[0], util::AccessCount{16});
    // First job response: 100 PD + 8 requests * 3 (lookups) + 8 * 10 (bus).
    EXPECT_EQ(result.max_response[0], util::Cycles{100 + 24 + 80});
}

TEST(Multilevel, SimulatorCrossCoreL2Eviction)
{
    // Two tasks on DIFFERENT cores with overlapping L2 footprints: each job
    // of one evicts the other's L2-persistent blocks, so neither ever runs
    // at MDʳ² (interleaved execution; same-period synchronous releases).
    const tasks::TaskSet ts = make_task_set(
        2, 64,
        {
            {0, 100, 8, 8, 4000, 0, {1, 2}, {}, {}},
            {1, 100, 8, 8, 4000, 0, {3, 4}, {}, {}},
        });
    const auto footprints = make_footprints(
        256, {{{0, 1, 2, 3}, {0, 1, 2, 3}, 1},
              {{0, 1, 2, 3}, {0, 1, 2, 3}, 1}});
    sim::SimConfig config;
    config.policy = BusPolicy::kPerfect;
    config.horizon = util::Cycles{20000};
    config.l2_footprints = &footprints;
    config.l2.sets = 256;
    config.l2.d_l2 = util::Cycles{0};

    const sim::SimResult result =
        sim::simulate(ts, small_platform(), config);
    // With full L2 overlap the tasks ping-pong the shared sets: whoever
    // completed LAST owns them, so each task alternates between a 5-access
    // evicted round (min(8, 1 + 0 + 4 missing)) and a 1-access owning
    // round; the cold first round is also capped at 5. Per task:
    // 5+5+1+5+1 = 17 over five jobs — far above the 9 a private L2 would
    // give (5 cold + 4x1 warm).
    ASSERT_EQ(result.jobs_completed[0], 5);
    EXPECT_EQ(result.bus_accesses[0], util::AccessCount{17});
    EXPECT_EQ(result.bus_accesses[1], util::AccessCount{17});
}

TEST(Multilevel, AnalysisBoundsL2Simulation)
{
    // Soundness of the multilevel bounds against the multilevel simulator
    // on random task sets with attached L2 footprints.
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.25;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    PlatformConfig platform = small_platform();
    L2Config l2;
    l2.sets = 512;
    l2.d_l2 = util::Cycles{2};

    util::Rng rng(616);
    int checked = 0;
    for (int repeat = 0; repeat < 8; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        const auto footprints = benchdata::attach_l2_footprints(
            child, ts, benchdata::full_benchmark_table(), l2.sets);

        AnalysisConfig config;
        config.policy = BusPolicy::kRoundRobin;
        const InterferenceTables tables(ts, config.crpd);
        const L2InterferenceTables l2_tables(ts, footprints);
        const WcrtResult wcrt = compute_wcrt_multilevel(
            ts, platform, config, l2, footprints, tables, l2_tables);
        if (!wcrt.schedulable) {
            continue;
        }
        ++checked;

        Cycles max_period{0};
        for (const tasks::Task& task : ts.tasks()) {
            max_period = std::max(max_period, task.period);
        }
        sim::SimConfig sim_config;
        sim_config.policy = BusPolicy::kRoundRobin;
        sim_config.horizon = 4 * max_period;
        sim_config.l2_footprints = &footprints;
        sim_config.l2 = l2;
        const sim::SimResult observed =
            sim::simulate(ts, platform, sim_config);

        EXPECT_FALSE(observed.deadline_missed);
        for (std::size_t i = 0; i < ts.size(); ++i) {
            EXPECT_LE(observed.max_response[i], wcrt.response[i])
                << "task " << i << " repeat " << repeat;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(Multilevel, AttachRejectsUnknownBenchmark)
{
    tasks::TaskSet ts(1, 64);
    tasks::Task task;
    task.name = "not-a-benchmark";
    task.core = 0;
    task.pd = util::Cycles{1};
    task.period = util::Cycles{10};
    task.deadline = util::Cycles{10};
    task.ecb = util::SetMask(64);
    task.ucb = util::SetMask(64);
    task.pcb = util::SetMask(64);
    ts.add_task(std::move(task));
    util::Rng rng(1);
    EXPECT_THROW((void)benchdata::attach_l2_footprints(
                     rng, ts, benchdata::full_benchmark_table(), 512),
                 std::invalid_argument);
}

} // namespace
} // namespace cpa::analysis
