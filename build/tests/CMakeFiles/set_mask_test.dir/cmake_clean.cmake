file(REMOVE_RECURSE
  "CMakeFiles/set_mask_test.dir/util/set_mask_test.cpp.o"
  "CMakeFiles/set_mask_test.dir/util/set_mask_test.cpp.o.d"
  "set_mask_test"
  "set_mask_test.pdb"
  "set_mask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
