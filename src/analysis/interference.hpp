// Pre-computed cache-interference tables: CRPD (γ, Eq. (2)) and the CPRO
// eviction overlap used by Eq. (14).
//
// Both tables depend only on the task set's cache footprints and priority
// order — not on the bus policy, the window length or whether persistence is
// enabled — so one table pair is computed per task set and shared by all
// analyses, which is what makes the large schedulability sweeps affordable.
//
// Index conventions (see tasks::TaskSet): tasks are stored in priority order,
// index 0 = highest priority τ_1. Hence hp(i) = [0, i), hep(i) = [0, i],
// lp(j) = (j, n), and aff(i, j) = hep(i) ∩ lp(j) = (j, i].
#pragma once

#include "analysis/config.hpp"
#include "tasks/task.hpp"
#include "util/units.hpp"

#include <cstdint>
#include <vector>

namespace cpa::analysis {

using util::AccessCount;

class InterferenceTables {
public:
    // Builds the tables for `ts` with the requested CRPD method.
    InterferenceTables(const tasks::TaskSet& ts, CrpdMethod method);

    // γ_{i,j}: bound on the number of additional bus accesses (UCB reloads)
    // each job of preempting task τ_j causes, during the response time of a
    // priority-i window, on τ_j's own core (Eq. (2) for kEcbUnion).
    // Zero when j is not higher-priority than i (aff(i, j) empty) and when
    // i == j.
    [[nodiscard]] AccessCount gamma(std::size_t i, std::size_t j) const
    {
        return gamma_[i * n_ + j];
    }

    // |PCB_j ∩ ∪_{s ∈ Γ_core(j) ∩ hep(i) \ {j}} ECB_s|: the per-rerun CPRO
    // cost of τ_j inside a priority-i window (the multiplier of Eq. (14)).
    [[nodiscard]] AccessCount cpro_overlap(std::size_t j, std::size_t i) const
    {
        return cpro_[j * n_ + i];
    }

    // ρ̂_{j,i}(n): additional bus accesses caused by CPRO across n successive
    // jobs of τ_j inside a priority-i window (Eq. (14)); 0 for n <= 1.
    [[nodiscard]] AccessCount rho_hat(std::size_t j, std::size_t i,
                                      std::int64_t n_jobs) const
    {
        if (n_jobs <= 1) {
            return AccessCount{0};
        }
        return (n_jobs - 1) * cpro_[j * n_ + i];
    }

    // |PCB_j ∩ ECB_s| for two tasks on the SAME core (0 otherwise): the
    // per-job eviction potential of τ_s against τ_j's persistent blocks,
    // used by the job-bounded CPRO refinement (CproMethod::kJobBound).
    [[nodiscard]] AccessCount pair_overlap(std::size_t j,
                                           std::size_t s) const
    {
        return pair_overlap_[j * n_ + s];
    }

    // Contiguous row views for the hot loops of the incremental WCRT engine
    // (wcrt_incremental.cpp): γ indexed by the analysis level i, pair
    // overlaps indexed by the reloading task j. Rows are n() entries long.
    [[nodiscard]] const AccessCount* gamma_row(std::size_t i) const
    {
        return gamma_.data() + i * n_;
    }
    [[nodiscard]] const AccessCount* pair_overlap_row(std::size_t j) const
    {
        return pair_overlap_.data() + j * n_;
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

private:
    // All three tables are dense n×n matrices flattened into contiguous
    // row-major arenas: one allocation each, no per-row pointer chasing in
    // bus_bounds.cpp / wcrt_incremental.cpp.
    std::size_t n_ = 0;
    std::vector<AccessCount> gamma_;
    std::vector<AccessCount> cpro_;
    std::vector<AccessCount> pair_overlap_;
};

} // namespace cpa::analysis
