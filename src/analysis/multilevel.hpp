// Multilevel extension: cache persistence with a SHARED L2 behind the
// private L1s — the paper's stated future work ("we plan to extend the
// proposed analysis to multilevel shared caches").
//
// Model M2 (extends the paper's Section II):
//  * each core keeps its private direct-mapped L1 I-cache; all cores share
//    one direct-mapped L2; the memory bus sits behind the L2;
//  * a fetch either hits L1 (cost inside PD), misses L1 and hits L2 (cost
//    d_l2, no bus traffic), or misses both (one bus access of d_mem);
//  * every L1 miss performs an L2 lookup, so each *request* additionally
//    costs d_l2 on its own core regardless of where it is served.
//
// Per-task parameters on top of the paper's: the L2 footprint (ECB2/PCB2
// over the L2 sets) and MDʳ² — the residual BUS demand of a job when both
// the L1 and the L2 persistent blocks are warm (MDʳ² <= MDʳ <= MD).
//
// Bounds for n successive jobs of τ_j inside a priority-i window:
//  * requests (L1 misses):  R̂(n) = min(n·MD ; n·MDʳ + |PCB1|) + ρ̂1(n)
//    — exactly the paper's Lemma 1 ingredients (Eq. (10) + (14));
//  * bus accesses: B̂(n) = min(n·MD ;
//        n·MDʳ² + |PCB1| + |PCB2| + ρ̂1(n) + ρ̂2(n))
//    — warm jobs pay MDʳ², the two persistent footprints warm up once, an
//    evicted L1-PCB reload is conservatively charged as a bus access, and
//    ρ̂2 covers shared-L2 evictions. Because the L2 is SHARED, the eviction
//    union of ρ̂2 spans hep(i) tasks on EVERY core, not just τ_j's own:
//        ρ̂2_{j,i}(n) = (n-1) · |PCB2_j ∩ ∪_{s ∈ hep(i)\{j}} ECB2_s|.
//
// The WCRT recurrence gains the lookup term:
//    R_i = PD_i + Σ ⌈R/T_j⌉·PD_j + REQS_i(R)·d_l2 + BAT_i(R)·d_mem
// where REQS is BAS evaluated with R̂ and BAT is the paper's per-policy
// combination evaluated with B̂.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "analysis/wcrt.hpp"
#include "tasks/task.hpp"
#include "util/set_mask.hpp"

#include <cstdint>
#include <vector>

namespace cpa::analysis {

using util::AccessCount;

struct L2Config {
    std::size_t sets = 1024; // shared L2, direct-mapped, 32 B lines
    Cycles d_l2{2};          // L2 lookup/hit service time (1 us default)
};

// Per-task shared-cache footprint, parallel to tasks::TaskSet order.
struct L2Footprint {
    util::SetMask ecb2; // L2 sets the task can touch
    util::SetMask pcb2; // L2 sets persistent against the task itself
    AccessCount md_residual_l2; // bus demand with both levels warm
};

// Pre-computed shared-L2 interference: the ρ̂2 eviction overlaps.
class L2InterferenceTables {
public:
    L2InterferenceTables(const tasks::TaskSet& ts,
                         const std::vector<L2Footprint>& footprints);

    // |PCB2_j ∩ ∪_{s ∈ hep(i)\{j}} ECB2_s| over ALL cores.
    [[nodiscard]] AccessCount overlap(std::size_t j, std::size_t i) const
    {
        return overlap_[j][i];
    }

    [[nodiscard]] AccessCount rho2_hat(std::size_t j, std::size_t i,
                                       std::int64_t n_jobs) const
    {
        return n_jobs <= 1 ? AccessCount{0} : (n_jobs - 1) * overlap_[j][i];
    }

private:
    std::vector<std::vector<AccessCount>> overlap_;
};

// Two-level WCRT analysis. Reuses the paper's CRPD/CPRO tables for the L1
// and the per-policy BAT combinations; only the per-task demand bounds and
// the d_l2 lookup term differ from compute_wcrt().
[[nodiscard]] WcrtResult
compute_wcrt_multilevel(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config, const L2Config& l2,
                        const std::vector<L2Footprint>& footprints,
                        const InterferenceTables& tables,
                        const L2InterferenceTables& l2_tables);

[[nodiscard]] bool
is_schedulable_multilevel(const tasks::TaskSet& ts,
                          const PlatformConfig& platform,
                          const AnalysisConfig& config, const L2Config& l2,
                          const std::vector<L2Footprint>& footprints);

} // namespace cpa::analysis
