// `cpa batch` tests: the golden NDJSON transcript (every record kind the
// schema can produce, including malformed-request and budget-exhausted
// error records), the jobs=1-vs-jobs=8 byte-identity contract, per-request
// isolation, and the exit-code precedence (error > unschedulable > ok).
#include "cli/batch.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace cpa::cli {
namespace {

std::string golden_dir()
{
    return std::string(CPA_SOURCE_DIR) + "/tests/cli/golden/";
}

// Same normalization as golden_test.cpp, plus source-tree paths: bad-taskset
// error messages echo the resolved path, which differs per checkout.
std::string normalize(std::string text)
{
    static const std::regex total_ns("\"total_ns\":-?[0-9]+");
    text = std::regex_replace(text, total_ns, "\"total_ns\":0");
    static const std::regex ns_histogram(
        "(\"[^\"]*_ns\":\\{\"count\":-?[0-9]+,)\"sum\":-?[0-9]+,"
        "\"min\":-?[0-9]+,\"max\":-?[0-9]+,\"p50\":-?[0-9]+,"
        "\"p90\":-?[0-9]+,\"p99\":-?[0-9]+");
    text = std::regex_replace(
        text, ns_histogram,
        "$1\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0");
    static const std::regex provenance("\"provenance\":\\{[^}]*\\}");
    text = std::regex_replace(
        text, provenance,
        "\"provenance\":{\"version\":\"\",\"git_sha\":\"\","
        "\"git_dirty\":\"\",\"compiler\":\"\",\"build_type\":\"\","
        "\"obs\":true,\"check\":true,\"sanitize\":\"\"}");
    std::string::size_type pos = 0;
    while ((pos = text.find(golden_dir(), pos)) != std::string::npos) {
        text.erase(pos, golden_dir().size());
    }
    return text;
}

void expect_golden(const std::string& name,
                   const std::vector<std::string>& args, int expected_exit)
{
    std::ostringstream out;
    std::ostringstream err;
    const int exit_code = run_cli(args, out, err);
    EXPECT_EQ(exit_code, expected_exit) << err.str();
    const std::string actual = normalize(out.str());

    const std::string path = golden_dir() + name + ".txt";
    if (const char* update = std::getenv("CPA_UPDATE_GOLDEN");
        update != nullptr && update[0] == '1') {
        std::ofstream file(path, std::ios::binary);
        ASSERT_TRUE(file) << "cannot write " << path;
        file << actual;
        return;
    }

    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file) << "missing fixture " << path
                      << " — run with CPA_UPDATE_GOLDEN=1 to create it";
    std::ostringstream expected;
    expected << file.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "CLI output diverged from " << path
        << "\nIf the change is intended, refresh with:\n"
           "  CPA_UPDATE_GOLDEN=1 ctest --test-dir build -R CliGolden";
}

std::string requests_file()
{
    return golden_dir() + "batch_requests.ndjson";
}

std::string read_file(const std::string& path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file) << "cannot read " << path;
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

// Runs the batch engine directly over `ndjson` with the golden directory as
// the taskset base, returning (exit code, output bytes).
std::pair<ExitCode, std::string> run(const std::string& ndjson,
                                     std::size_t jobs)
{
    BatchOptions options;
    options.base_dir = std::string(CPA_SOURCE_DIR) + "/tests/cli/golden";
    options.jobs = jobs;
    std::istringstream in(ndjson);
    std::ostringstream out;
    const ExitCode code = run_batch(options, in, out);
    return {code, out.str()};
}

// The full fixture transcript: ok rows (schedulable, unschedulable with a
// failed task, perfect-bus rejection), result-memo repeats, and one of each
// error kind. Exit code 3: error records take precedence.
TEST(CliGolden, Batch)
{
    expect_golden("batch",
                  {"batch", "--input", requests_file(), "--jobs", "2"}, 3);
}

// Same batch with --metrics-out -: pins the deterministic batch.* and
// session.* counters (table hits > 0 on the matrix workload is an
// acceptance criterion, visible in the fixture).
TEST(CliGolden, BatchMetricsReport)
{
    expect_golden("batch_metrics",
                  {"batch", "--input", requests_file(), "--jobs", "2",
                   "--metrics-out", "-"},
                  3);
}

// The determinism contract: output bytes and exit code are identical for
// any worker count. (Name matters: the determinism-tsan CI job selects on
// "Determinism".)
TEST(BatchDeterminism, OutputBytesIndependentOfJobs)
{
    const std::string ndjson = read_file(requests_file());
    const auto [code1, out1] = run(ndjson, 1);
    const auto [code8, out8] = run(ndjson, 8);
    EXPECT_EQ(code1, code8);
    EXPECT_EQ(out1, out8);
    EXPECT_EQ(code1, ExitCode::kViolation);
}

TEST(BatchExitCode, AllSchedulableIsOk)
{
    const auto [code, out] = run(
        R"({"schema": 1, "taskset": "input.taskset"})"
        "\n"
        R"({"schema": 1, "taskset": "input.taskset", "policy": "rr"})"
        "\n",
        1);
    EXPECT_EQ(code, ExitCode::kOk);
    EXPECT_NE(out.find("\"schedulable\":true"), std::string::npos);
}

TEST(BatchExitCode, UnschedulableWinsOverOk)
{
    const auto [code, out] = run(
        R"({"schema": 1, "taskset": "input.taskset"})"
        "\n"
        R"({"schema": 1, "taskset": "input.taskset", "d_mem_cycles": 5000})"
        "\n",
        1);
    EXPECT_EQ(code, ExitCode::kUnschedulable);
    EXPECT_NE(out.find("\"schedulable\":false"), std::string::npos);
}

TEST(BatchExitCode, ErrorWinsOverUnschedulable)
{
    const auto [code, out] = run(
        R"({"schema": 1, "taskset": "input.taskset", "d_mem_cycles": 5000})"
        "\n"
        "not json\n",
        1);
    EXPECT_EQ(code, ExitCode::kViolation);
    EXPECT_NE(out.find("\"status\":\"error\""), std::string::npos);
}

// A malformed line must not take down the batch: every input line still
// produces exactly one output record, in order.
TEST(BatchIsolation, MalformedLineDoesNotKillBatch)
{
    const auto [code, out] = run(
        R"({"schema": 1, "id": "a", "taskset": "input.taskset"})"
        "\n"
        "{broken\n"
        R"({"schema": 1, "id": "b", "taskset": "input.taskset"})"
        "\n",
        1);
    EXPECT_EQ(code, ExitCode::kViolation);
    std::istringstream lines(out);
    std::string line;
    std::vector<std::string> records;
    while (std::getline(lines, line)) {
        records.push_back(line);
    }
    ASSERT_EQ(records.size(), 3u);
    EXPECT_NE(records[0].find("\"id\":\"a\""), std::string::npos);
    EXPECT_NE(records[1].find("\"kind\":\"bad-request\""),
              std::string::npos);
    EXPECT_NE(records[2].find("\"id\":\"b\""), std::string::npos);
}

// A budget-exhausted solve is an error record, not a fake unschedulable
// verdict.
TEST(BatchIsolation, BudgetExhaustionBecomesErrorRecord)
{
    const auto [code, out] = run(
        R"({"schema": 1, "id": "hog", "taskset": "exhaust.taskset"})"
        "\n",
        1);
    EXPECT_EQ(code, ExitCode::kViolation);
    EXPECT_NE(out.find("\"kind\":\"budget-exhausted\""), std::string::npos);
}

// Missing input file: usage error (exit 1) via the CLI wrapper.
TEST(BatchCli, MissingInputFileIsUsageError)
{
    std::ostringstream out;
    std::ostringstream err;
    const int exit_code =
        run_cli({"batch", "--input", "/nonexistent/x.ndjson"}, out, err);
    EXPECT_EQ(exit_code, to_exit_status(ExitCode::kUsage));
    EXPECT_NE(err.str().find("cpa:"), std::string::npos);
}

} // namespace
} // namespace cpa::cli
