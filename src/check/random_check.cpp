#include "check/random_check.hpp"

#include "benchdata/generator.hpp"
#include "check/assert.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include <stdexcept>
#include <utility>

namespace cpa::check {

RandomCheckResult run_random_checks(const RandomCheckConfig& config)
{
    if (config.num_cores == 0 || config.tasks_per_core == 0 ||
        config.cache_sets == 0) {
        throw std::invalid_argument(
            "random check: cores, tasks per core, and cache sets must be "
            "positive");
    }
    if (!(config.min_utilization > 0.0) ||
        config.max_utilization < config.min_utilization) {
        throw std::invalid_argument(
            "random check: need 0 < min utilization <= max utilization");
    }

    CPA_SCOPED_TIMER("check.random_driver");

    benchdata::GenerationConfig generation;
    generation.num_cores = config.num_cores;
    generation.tasks_per_core = config.tasks_per_core;
    generation.cache_sets = config.cache_sets;
    const auto pool = benchdata::derive_all(benchdata::full_benchmark_table(),
                                            config.cache_sets);

    analysis::PlatformConfig platform;
    platform.num_cores = config.num_cores;
    platform.cache_sets = config.cache_sets;

    RandomCheckResult result;
    util::Rng master(config.seed);
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
        util::Rng stream = master.fork();
        const auto trial_seed = stream.engine()();
        util::Rng rng(trial_seed);

        generation.per_core_utilization =
            rng.uniform_real(config.min_utilization, config.max_utilization);
        // Constrained deadlines + jitter on a subset of trials so the
        // J-dependent and D<T paths of the bounds are exercised too.
        if (config.jitter_period != 0 &&
            trial % config.jitter_period == config.jitter_period - 1) {
            generation.deadline_ratio = 0.9;
            generation.jitter_fraction = 0.05;
        } else {
            generation.deadline_ratio = 1.0;
            generation.jitter_fraction = 0.0;
        }

        const tasks::TaskSet ts =
            benchdata::generate_task_set(rng, generation, pool);
        CheckResult trial_result;
        try {
            trial_result = check_task_set(ts, platform, config.options);
        } catch (const AssertionError& error) {
            // With runtime assertions enabled (as `cpa check` does), a
            // violated hot-path tripwire surfaces here; fold it into the
            // trial report instead of aborting the whole sweep.
            trial_result.violations.push_back(
                Violation{error.invariant(), error.what()});
        }
        if (config.inject_violation) {
            trial_result.violations.push_back(Violation{
                "selftest.injected",
                "synthetic violation requested via inject_violation"});
        }

        ++result.trials_run;
        result.checks_run += trial_result.checks_run;
        CPA_COUNT("check.trials");
        if (!trial_result.ok()) {
            for (const Violation& violation : trial_result.violations) {
                ++result.violations_by_invariant[violation.invariant];
            }
            result.failures.push_back(
                TrialFailure{trial, trial_seed,
                             generation.per_core_utilization,
                             std::move(trial_result.violations)});
        }
    }
    return result;
}

} // namespace cpa::check
