#include "analysis/schedulability.hpp"

#include "check/tolerance.hpp"

namespace cpa::analysis {

bool is_schedulable(const tasks::TaskSet& ts, const PlatformConfig& platform,
                    const AnalysisConfig& config,
                    const InterferenceTables& tables)
{
    if (ts.empty()) {
        return true;
    }
    if (config.policy == BusPolicy::kPerfect &&
        check::utilization_exceeds(ts.bus_utilization(platform.d_mem), 1.0)) {
        return false;
    }
    return compute_wcrt(ts, platform, config, tables).schedulable;
}

bool is_schedulable(const tasks::TaskSet& ts, const PlatformConfig& platform,
                    const AnalysisConfig& config)
{
    const InterferenceTables tables(ts, config.crpd);
    return is_schedulable(ts, platform, config, tables);
}

} // namespace cpa::analysis
