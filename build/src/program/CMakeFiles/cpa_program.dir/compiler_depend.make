# Empty compiler generated dependencies file for cpa_program.
# This may be replaced when dependencies are built.
