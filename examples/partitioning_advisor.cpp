// Scenario: choosing a task-to-core placement for a fixed workload.
//
// Given 24 tasks for a 4-core platform, compares three partitioning
// heuristics — first-fit and worst-fit (load only) and the cache-aware
// placement that keeps overlapping footprints apart — under the
// persistence-aware FP-bus analysis. The punchline ties back to the paper:
// CPRO (Eq. 14) charges only SAME-core evictions of persistent blocks, so a
// placement with less same-core footprint overlap keeps more persistence
// and schedules at higher load.
//
//   $ ./build/examples/partitioning_advisor
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "tasks/partition.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpa;

int main()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 4;
    platform.cache_sets = 256;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;

    benchdata::GenerationConfig generation;
    generation.num_cores = 4;
    generation.tasks_per_core = 6;
    generation.cache_sets = 256;

    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);

    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kFixedPriority;
    config.persistence_aware = true;

    const std::vector<std::pair<std::string, tasks::PartitionHeuristic>>
        heuristics = {
            {"first-fit", tasks::PartitionHeuristic::kFirstFit},
            {"worst-fit", tasks::PartitionHeuristic::kWorstFit},
            {"cache-aware", tasks::PartitionHeuristic::kCacheAware},
        };

    std::cout << "24 tasks on 4 cores, FP bus, persistence-aware analysis.\n"
                 "For each heuristic: same-core footprint overlap and the\n"
                 "highest total utilization the placement sustains.\n\n";

    util::TextTable table({"heuristic", "overlap@U=1.6",
                           "breakdown U (total)", "schedulable at 1.6?"});
    for (const auto& [name, heuristic] : heuristics) {
        // Breakdown: scan total utilization; same seed for comparability.
        double breakdown = 0.0;
        bool at_16 = false;
        std::size_t overlap_at_16 = 0;
        for (double total_u = 0.4; total_u <= 3.2 + 1e-9; total_u += 0.2) {
            benchdata::GenerationConfig gen = generation;
            gen.per_core_utilization = total_u / 4.0;
            util::Rng rng(99);
            const tasks::TaskSet ts = benchdata::generate_task_set_partitioned(
                rng, gen, pool, heuristic);
            const bool ok = analysis::is_schedulable(ts, platform, config);
            if (ok) {
                breakdown = total_u;
            }
            if (std::abs(total_u - 1.6) < 1e-9) {
                at_16 = ok;
                overlap_at_16 =
                    tasks::same_core_overlap(ts.tasks(), 4);
            }
        }
        table.add_row({name, std::to_string(overlap_at_16),
                       util::TextTable::num(breakdown, 1),
                       at_16 ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nLower same-core overlap preserves persistent cache "
                 "blocks (smaller CPRO),\nwhich the persistence-aware bus "
                 "analysis converts into schedulability.\n";
    return 0;
}
