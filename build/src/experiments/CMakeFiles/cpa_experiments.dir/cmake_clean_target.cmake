file(REMOVE_RECURSE
  "libcpa_experiments.a"
)
