#include "cache/direct_mapped.hpp"

#include <gtest/gtest.h>

namespace cpa::cache {
namespace {

TEST(Geometry, SetMappingIsModulo)
{
    const CacheGeometry geometry{8, 32};
    EXPECT_EQ(geometry.set_of(0), 0u);
    EXPECT_EQ(geometry.set_of(7), 7u);
    EXPECT_EQ(geometry.set_of(8), 0u);
    EXPECT_EQ(geometry.set_of(19), 3u);
    EXPECT_EQ(geometry.size_bytes(), 256u);
}

TEST(DirectMappedCache, ColdMissThenHit)
{
    DirectMappedCache cache({8, 32});
    EXPECT_FALSE(cache.access(3));
    EXPECT_TRUE(cache.access(3));
    EXPECT_TRUE(cache.contains(3));
}

TEST(DirectMappedCache, ConflictingBlocksEvictEachOther)
{
    DirectMappedCache cache({8, 32});
    EXPECT_FALSE(cache.access(1));
    EXPECT_FALSE(cache.access(9));  // same set (1 mod 8)
    EXPECT_FALSE(cache.access(1));  // evicted by 9
    EXPECT_FALSE(cache.contains(9));
}

TEST(DirectMappedCache, PreloadAvoidsFirstMiss)
{
    DirectMappedCache cache({8, 32});
    cache.preload(5);
    EXPECT_TRUE(cache.access(5));
}

TEST(DirectMappedCache, FlushEmptiesEverything)
{
    DirectMappedCache cache({8, 32});
    cache.preload(1);
    cache.preload(2);
    EXPECT_EQ(cache.occupied(), 2u);
    cache.flush();
    EXPECT_EQ(cache.occupied(), 0u);
    EXPECT_FALSE(cache.access(1));
}

TEST(DirectMappedCache, InvalidateSetDropsOnlyThatLine)
{
    DirectMappedCache cache({8, 32});
    cache.preload(1);
    cache.preload(2);
    cache.invalidate_set(1);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_THROW(cache.invalidate_set(8), std::out_of_range);
}

TEST(DirectMappedCache, DeterministicMissCountOnLoopTrace)
{
    // 10 blocks looped 5 times in an 8-set cache: blocks 0..7 and 8,9 alias
    // with 0,1. Per iteration blocks 0,1,8,9 miss (ping-pong), 2..7 hit
    // after the first iteration.
    DirectMappedCache cache({8, 32});
    int misses = 0;
    for (int iteration = 0; iteration < 5; ++iteration) {
        for (std::size_t block = 0; block < 10; ++block) {
            if (!cache.access(block)) {
                ++misses;
            }
        }
    }
    // Iteration 1: all 10 miss. Iterations 2..5: 4 misses each.
    EXPECT_EQ(misses, 10 + 4 * 4);
}

TEST(DirectMappedCache, ZeroSetsRejected)
{
    EXPECT_THROW(DirectMappedCache({0, 32}), std::invalid_argument);
}

} // namespace
} // namespace cpa::cache
