// Release-jitter extension: every job-count window widens by J and the
// response budget shrinks to D - J. With J = 0 everything must reduce to
// the paper's equations (the rest of the suite covers that case).
#include "analysis/bus_bounds.hpp"
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "sim/simulator.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using namespace util::literals;

PlatformConfig one_core_platform()
{
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = 2_cy;
    platform.slot_size = 1;
    return platform;
}

TEST(Jitter, ValidateRejectsJitterBeyondSlack)
{
    tasks::TaskSet ts(1, 16);
    tasks::Task task;
    task.core = 0;
    task.pd = 1_cy;
    task.period = 100_cy;
    task.deadline = 90_cy;
    task.jitter = 11_cy; // J + D > T
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    ts.add_task(task);
    EXPECT_THROW(ts.validate(), std::invalid_argument);
    ts[0].jitter = 10_cy; // exactly J + D = T is fine
    EXPECT_NO_THROW(ts.validate());
}

TEST(Jitter, WidensPreemptionWindow)
{
    // τ1: T=20, J=5. At t=36: without jitter E=2, with jitter
    // ceil(41/20)=3 -> one more preempting job in BAS.
    tasks::TaskSet with_jitter = make_task_set(
        1, 16,
        {
            {0, 4, 2, 2, 20, 10, {}, {}, {}},
            {0, 5, 1, 1, 100, 0, {}, {}, {}},
        });
    with_jitter[0].jitter = 5_cy;
    with_jitter.validate();
    const tasks::TaskSet without = make_task_set(
        1, 16,
        {
            {0, 4, 2, 2, 20, 10, {}, {}, {}},
            {0, 5, 1, 1, 100, 0, {}, {}, {}},
        });

    AnalysisConfig config;
    const InterferenceTables tables_j(with_jitter, config.crpd);
    const InterferenceTables tables_n(without, config.crpd);
    const BusContentionAnalysis bounds_j(with_jitter, one_core_platform(),
                                         config, tables_j);
    const BusContentionAnalysis bounds_n(without, one_core_platform(),
                                         config, tables_n);
    EXPECT_EQ(bounds_n.bas(1, 36_cy), util::AccessCount{1 + 2 * 2});
    EXPECT_EQ(bounds_j.bas(1, 36_cy), util::AccessCount{1 + 3 * 2});
}

TEST(Jitter, ShrinksResponseBudget)
{
    // Task with R = pd + (md+0)*d = 10 + 4 = 14, D = 15: schedulable
    // without jitter, not with J = 2 (budget 13).
    tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 10, 2, 2, 100, 15, {}, {}, {}}});
    AnalysisConfig config;
    EXPECT_TRUE(
        compute_wcrt(ts, one_core_platform(), config).schedulable);
    ts[0].jitter = 2_cy;
    ts.validate();
    const WcrtResult result = compute_wcrt(ts, one_core_platform(), config);
    EXPECT_FALSE(result.schedulable);
    EXPECT_EQ(result.failed_task, util::TaskId{0});
}

TEST(Jitter, ZeroJitterLeavesFig1Untouched)
{
    // Regression guard: the golden Fig. 1 numbers with explicit J = 0.
    tasks::TaskSet ts = cpa::testing::fig1_task_set(10, 60, 6);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        ts[i].jitter = 0_cy;
    }
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 16;
    platform.d_mem = 1_cy;
    platform.slot_size = 1;
    AnalysisConfig config;
    config.policy = BusPolicy::kRoundRobin;
    config.persistence_aware = false;
    const InterferenceTables tables(ts, config.crpd);
    const BusContentionAnalysis bounds(ts, platform, config, tables);
    EXPECT_EQ(bounds.bas(1, 25_cy), 32_acc);
}

TEST(Jitter, GeneratorAppliesFraction)
{
    util::Rng rng(13);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.2;
    gen.deadline_ratio = 0.8;
    gen.jitter_fraction = 0.1;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    const tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);
    for (const tasks::Task& task : ts.tasks()) {
        EXPECT_GT(task.jitter, 0_cy) << task.name;
        EXPECT_LE(task.jitter + task.deadline, task.period) << task.name;
    }
    gen.jitter_fraction = 1.0;
    util::Rng rng2(13);
    EXPECT_THROW((void)benchdata::generate_task_set(rng2, gen, pool),
                 std::invalid_argument);
}

TEST(Jitter, SoundnessAgainstJitteredSimulation)
{
    // The simulator draws per-job release jitter; the jitter-aware WCRT
    // must still bound the ARRIVAL-relative response J + R.
    util::Rng rng(991);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.2;
    gen.deadline_ratio = 0.8;
    gen.jitter_fraction = 0.1;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = 10_cy;
    platform.slot_size = 2;

    int checked = 0;
    for (int repeat = 0; repeat < 10; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        AnalysisConfig config;
        config.policy = BusPolicy::kFixedPriority;
        const WcrtResult wcrt = compute_wcrt(ts, platform, config);
        if (!wcrt.schedulable) {
            continue;
        }
        ++checked;

        Cycles max_period{0};
        for (const tasks::Task& task : ts.tasks()) {
            max_period = std::max(max_period, task.period);
        }
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            sim::SimConfig sim_config;
            sim_config.policy = BusPolicy::kFixedPriority;
            sim_config.horizon = 4 * max_period;
            sim_config.jitter_seed = seed;
            const sim::SimResult observed =
                sim::simulate(ts, platform, sim_config);
            EXPECT_FALSE(observed.deadline_missed) << "seed " << seed;
            for (std::size_t i = 0; i < ts.size(); ++i) {
                // Arrival-relative observation vs J + R bound.
                EXPECT_LE(observed.max_response[i],
                          ts[i].jitter + wcrt.response[i])
                    << "task " << i << " seed " << seed;
            }
        }
    }
    EXPECT_GT(checked, 0);
}

} // namespace
} // namespace cpa::analysis
