// MUST NOT COMPILE: adding an access count to a cycle count mixes
// dimensions; the only legal combination is AccessCount * Cycles -> Cycles.
#include "util/units.hpp"

cpa::util::Cycles bad()
{
    return cpa::util::Cycles{1} + cpa::util::AccessCount{1};
}
