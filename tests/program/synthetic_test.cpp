// Checks that the synthetic Mälardalen stand-ins reproduce the structural
// signature of the paper's Table I when run through our extraction pipeline
// at the reference geometry (256 sets, 32 B blocks).
#include "program/extract.hpp"
#include "program/synthetic.hpp"

#include <gtest/gtest.h>

namespace cpa::program {
namespace {

const cache::CacheGeometry kReference{256, 32};

ExtractedParams extract(const Program& p)
{
    return extract_parameters(p, kReference);
}

TEST(Synthetic, LcdnumFullyPersistentSmallFootprint)
{
    const ExtractedParams params = extract(synthetic_lcdnum());
    EXPECT_EQ(params.ecb.popcount(), 20u);
    EXPECT_EQ(params.pcb.popcount(), 20u); // everything fits -> all persistent
    EXPECT_EQ(params.md, util::AccessCount{20});
    EXPECT_EQ(params.md_residual, util::AccessCount{0});
}

TEST(Synthetic, Bsort100TinyCodeHugeReuse)
{
    const ExtractedParams params = extract(synthetic_bsort100());
    EXPECT_EQ(params.ecb.popcount(), 20u);
    EXPECT_EQ(params.pcb.popcount(), 20u);
    // PD dwarfs MD: the paper's bsort100 row has PD/MD ratio ~8.
    EXPECT_GT(params.pd,
              params.md * util::Cycles{8 * 100}); // PD > 800 * MD accesses
}

TEST(Synthetic, LudcmpMediumFootprintFullyPersistent)
{
    const ExtractedParams params = extract(synthetic_ludcmp());
    EXPECT_EQ(params.ecb.popcount(), 98u);
    EXPECT_EQ(params.pcb.popcount(), 98u);
}

TEST(Synthetic, FdctSelfConflictingRegions)
{
    const ExtractedParams params = extract(synthetic_fdct());
    EXPECT_EQ(params.ecb.popcount(), 106u);
    EXPECT_EQ(params.pcb.popcount(), 22u); // Table I: |PCB| = 22
    // The aliasing halves re-miss every iteration: MDʳ stays large.
    EXPECT_GT(params.md_residual, util::AccessCount{8 * 84});
}

TEST(Synthetic, NsichneuNothingPersistsAt256Sets)
{
    const ExtractedParams params = extract(synthetic_nsichneu());
    EXPECT_EQ(params.ecb.popcount(), 256u);
    EXPECT_EQ(params.pcb.popcount(), 0u);
    EXPECT_EQ(params.md, params.md_residual); // Table I: MD == MDʳ
    EXPECT_EQ(params.md, util::AccessCount{2 * 1374}); // every fetch misses
}

TEST(Synthetic, StatematePersistentTailOf36Sets)
{
    const ExtractedParams params = extract(synthetic_statemate());
    EXPECT_EQ(params.ecb.popcount(), 256u);
    EXPECT_EQ(params.pcb.popcount(), 36u); // Table I: |PCB| = 36
}

TEST(Synthetic, LargerCachesIncreasePersistence)
{
    // The mechanism behind Fig. 3c, demonstrated on real (synthetic)
    // programs instead of the scaling model.
    for (const Program& p : synthetic_suite()) {
        std::size_t previous_pcb = 0;
        util::AccessCount previous_md{
            std::numeric_limits<std::int64_t>::max()};
        for (const std::size_t sets : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
            const ExtractedParams params =
                extract_parameters(p, {sets, 32});
            EXPECT_GE(params.pcb.popcount(), previous_pcb)
                << p.name() << " @" << sets;
            EXPECT_LE(params.md, previous_md) << p.name() << " @" << sets;
            previous_pcb = params.pcb.popcount();
            previous_md = params.md;
        }
    }
}

TEST(Synthetic, SuiteHasSixPrograms)
{
    EXPECT_EQ(synthetic_suite().size(), 6u);
    EXPECT_EQ(synthetic_suite_extended().size(), 12u);
}

// Extended stand-ins: the footprint signatures must match the calibrated
// table rows (benchdata) at the reference geometry.
struct ExtendedRow {
    const char* name;
    std::size_t ecb;
    std::size_t pcb;
};

class ExtendedSynthetic : public ::testing::TestWithParam<ExtendedRow> {};

TEST_P(ExtendedSynthetic, FootprintMatchesExtendedTableRow)
{
    const ExtendedRow row = GetParam();
    for (const Program& p : synthetic_suite_extended()) {
        if (p.name() != row.name) {
            continue;
        }
        const ExtractedParams params = extract_parameters(p, kReference);
        EXPECT_EQ(params.ecb.popcount(), row.ecb) << row.name;
        EXPECT_EQ(params.pcb.popcount(), row.pcb) << row.name;
        EXPECT_LE(params.md_residual, params.md);
        return;
    }
    FAIL() << "program not found: " << row.name;
}

INSTANTIATE_TEST_SUITE_P(Rows, ExtendedSynthetic,
                         ::testing::Values(ExtendedRow{"bs", 16, 16},
                                           ExtendedRow{"crc", 42, 42},
                                           ExtendedRow{"matmult", 48, 48},
                                           ExtendedRow{"jfdctint", 96, 28},
                                           ExtendedRow{"minver", 124, 86},
                                           ExtendedRow{"qurt", 52, 40}));

TEST(Synthetic, ExtendedSuiteInvariantsHoldAcrossGeometries)
{
    for (const Program& p : synthetic_suite_extended()) {
        for (const std::size_t sets : {64u, 256u, 1024u}) {
            const ExtractedParams params = extract_parameters(p, {sets, 32});
            EXPECT_EQ(params.md,
                      params.md_residual +
                          util::accesses_from_blocks(params.pcb.popcount()))
                << p.name() << " @" << sets;
            EXPECT_TRUE(params.pcb.is_subset_of(params.ecb)) << p.name();
            EXPECT_TRUE(params.ucb.is_subset_of(params.ecb)) << p.name();
        }
    }
}

} // namespace
} // namespace cpa::program
