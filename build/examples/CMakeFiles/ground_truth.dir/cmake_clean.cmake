file(REMOVE_RECURSE
  "CMakeFiles/ground_truth.dir/ground_truth.cpp.o"
  "CMakeFiles/ground_truth.dir/ground_truth.cpp.o.d"
  "ground_truth"
  "ground_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
