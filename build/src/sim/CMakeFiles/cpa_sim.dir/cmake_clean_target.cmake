file(REMOVE_RECURSE
  "libcpa_sim.a"
)
