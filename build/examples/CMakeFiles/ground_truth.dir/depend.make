# Empty dependencies file for ground_truth.
# This may be replaced when dependencies are built.
