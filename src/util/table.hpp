// Plain-text table and CSV emission for the benchmark harness. Every bench
// binary prints the rows/series of the paper artifact it regenerates, both
// as an aligned ASCII table (for the console) and optionally as CSV (for
// re-plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cpa::util {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    // Appends a data row; must have the same number of cells as the header.
    void add_row(std::vector<std::string> row);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    // Renders with column alignment and a header separator.
    void print(std::ostream& out) const;

    // Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
    // quoted, quotes doubled).
    void print_csv(std::ostream& out) const;

    // Formats a double with fixed precision; the shared formatter keeps all
    // benches consistent.
    [[nodiscard]] static std::string num(double value, int precision = 3);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cpa::util
