#include "experiments/sensitivity.hpp"

#include "analysis/schedulability.hpp"
#include "check/tolerance.hpp"
#include "obs/parallel.hpp"
#include "util/thread_pool.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cpa::experiments {

util::Cycles critical_d_mem(const tasks::TaskSet& ts,
                            const analysis::PlatformConfig& platform,
                            const analysis::AnalysisConfig& config,
                            util::Cycles hi)
{
    if (hi < util::Cycles{1}) {
        throw std::invalid_argument("critical_d_mem: hi must be >= 1");
    }
    const analysis::InterferenceTables tables(ts, config.crpd);
    const auto schedulable_at = [&](util::Cycles d_mem) {
        analysis::PlatformConfig scaled = platform;
        scaled.d_mem = d_mem;
        return analysis::is_schedulable(ts, scaled, config, tables);
    };

    if (!schedulable_at(util::Cycles{1})) {
        return util::Cycles{0};
    }
    // Binary search for the largest schedulable latency. Schedulability is
    // antitone in d_mem on these bounds (every memory term scales up with
    // it); the sensitivity tests verify this empirically.
    util::Cycles lo{1}; // schedulable
    util::Cycles too_high = hi + util::Cycles{1};
    if (schedulable_at(hi)) {
        return hi;
    }
    while (too_high - lo > util::Cycles{1}) {
        const util::Cycles mid = lo + (too_high - lo) / 2;
        if (schedulable_at(mid)) {
            lo = mid;
        } else {
            too_high = mid;
        }
    }
    return lo;
}

double breakdown_utilization(
    const benchdata::GenerationConfig& generation,
    const std::vector<benchdata::BenchmarkParams>& pool,
    const analysis::PlatformConfig& platform,
    const analysis::AnalysisConfig& config, std::uint64_t seed,
    double u_step, std::size_t jobs)
{
    if (u_step <= 0.0) {
        throw std::invalid_argument("breakdown_utilization: bad step");
    }
    // The grid is materialized with the same accumulated addition as the
    // original serial loop, so the exact double values (and thus the
    // generated task sets) are unchanged by the parallel evaluation.
    std::vector<double> grid;
    for (double u = u_step; check::utilization_within(u, 1.0); u += u_step) {
        grid.push_back(u);
    }
    std::vector<std::uint8_t> schedulable(grid.size(), 0);
    util::ThreadPool threads(util::resolve_jobs(jobs));
    obs::run_indexed_trials(threads, grid.size(), [&](std::size_t i) {
        benchdata::GenerationConfig scaled = generation;
        scaled.per_core_utilization = grid[i];
        util::Rng rng(seed);
        const tasks::TaskSet ts =
            benchdata::generate_task_set(rng, scaled, pool);
        if (analysis::is_schedulable(ts, platform, config)) {
            schedulable[i] = 1;
        }
    });
    double best = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (schedulable[i] != 0) {
            best = grid[i];
        }
    }
    return best;
}

} // namespace cpa::experiments
