#!/usr/bin/env python3
"""Append a bench run to the perf-trajectory history.

Usage:
    bench_history.py BENCH_JSON_DIR [--out-dir bench/history] [--out FILE]

Collects every BENCH_*.json in BENCH_JSON_DIR into one consolidated run
entry keyed by the git SHA from the reports' provenance block:

    {
      "schema_version": 1,
      "git_sha": "<sha>",
      "provenance": { ...first report's provenance... },
      "benches": { "<bench name>": <full BENCH report>, ... }
    }

and writes it to <out-dir>/run-<sha12>.json (pretty-printed, stable key
order, so history diffs review like code). Re-running at the same SHA
overwrites that SHA's entry — the history tracks one snapshot per commit,
not per invocation. With --out FILE the entry is written to FILE instead
(used to refresh the committed baseline, e.g.
bench/history/baseline-small.json).

Every report in the directory must carry the same git_sha; mixing runs from
different commits into one entry would make the trajectory meaningless.
Exit 0 on success, 1 on any error. Stdlib only.
"""

import argparse
import json
import sys
from pathlib import Path


def fail(message):
    print(f"bench_history: {message}", file=sys.stderr)
    return 1


def load_reports(bench_dir):
    reports = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        with open(path) as handle:
            report = json.load(handle)
        bench = report.get("bench")
        if not isinstance(bench, str) or not bench:
            raise ValueError(f"{path}: missing bench name")
        reports[bench] = report
    return reports


def build_entry(reports):
    shas = {report.get("provenance", {}).get("git_sha", "unknown")
            for report in reports.values()}
    if len(shas) > 1:
        raise ValueError(f"reports span multiple commits: {sorted(shas)}")
    sha = shas.pop()
    provenance = next(iter(reports.values())).get("provenance", {})
    return {
        "schema_version": 1,
        "git_sha": sha,
        "provenance": provenance,
        "benches": {name: reports[name] for name in sorted(reports)},
    }


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_history",
        description="Append a bench run to bench/history/.")
    parser.add_argument("bench_dir", type=Path,
                        help="directory containing BENCH_*.json reports")
    parser.add_argument("--out-dir", type=Path,
                        default=Path("bench/history"),
                        help="history directory (default: bench/history)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the entry to this exact file instead")
    args = parser.parse_args(argv[1:])

    if not args.bench_dir.is_dir():
        return fail(f"{args.bench_dir} is not a directory")
    try:
        reports = load_reports(args.bench_dir)
    except (OSError, ValueError) as error:
        return fail(str(error))
    if not reports:
        return fail(f"no BENCH_*.json in {args.bench_dir}")

    try:
        entry = build_entry(reports)
    except ValueError as error:
        return fail(str(error))

    if args.out is not None:
        target = args.out
    else:
        sha12 = entry["git_sha"][:12] or "unknown"
        target = args.out_dir / f"run-{sha12}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(f"bench_history: wrote {target} "
          f"({len(entry['benches'])} bench(es), sha {entry['git_sha'][:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
