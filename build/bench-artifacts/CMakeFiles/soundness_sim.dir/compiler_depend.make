# Empty compiler generated dependencies file for soundness_sim.
# This may be replaced when dependencies are built.
