// Reproduces Fig. 3a: weighted schedulability vs. number of cores
// (2..10 in steps of 2, 8 tasks per core, other parameters at defaults).
// Expected shape: all curves decrease with the core count; persistence-aware
// analyses dominate their counterparts throughout.
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("fig3a_cores");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::standard_variants();

    std::vector<experiments::UtilizationSweep> sweeps;
    std::vector<std::string> labels;
    for (std::size_t cores = 2; cores <= 10; cores += 2) {
        auto generation = bench::default_generation();
        generation.num_cores = cores;
        auto platform = bench::default_platform();
        platform.num_cores = cores;
        sweeps.push_back(experiments::run_utilization_sweep(
            generation, platform, variants, bench::weighted_sweep(task_sets)));
        labels.push_back(std::to_string(cores));
    }

    bench::print_weighted("Fig. 3a: weighted schedulability vs number of cores",
                          "cores", labels, sweeps);
    return 0;
}
