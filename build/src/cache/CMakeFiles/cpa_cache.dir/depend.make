# Empty dependencies file for cpa_cache.
# This may be replaced when dependencies are built.
