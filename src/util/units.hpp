// Dimensional type system of the reproduction.
//
// The analysis juggles three physical dimensions that must never be mixed
// silently (this is exactly what Eq. (19) combines):
//   * processor cycles   — PD, response times, window lengths, d_mem;
//   * microseconds       — how Table I quotes d_mem (wall-clock time);
//   * bus access counts  — MD, MDʳ, the γ/CPRO tables, BAS/BAO/BAT.
// Each dimension is a distinct Quantity instantiation: addition, subtraction
// and comparison are only defined within one dimension, scaling by a plain
// integer (job counts, slot counts) is always allowed, and the one physically
// meaningful product — access count × time-per-access → time — is the only
// cross-dimension operator. Everything else is a compile error (see
// tests/compile_fail/), so forgetting a `· d_mem` on a BAT term no longer
// compiles.
//
// Unit convention (Table I gives PD/MD/MDʳ in cycles, d_mem in µs; the clock
// frequency is never stated). Two facts pin the convention down
// (DESIGN.md §3.3):
//
//  1. Every distinct block of a program cold-misses at least once, so the
//     extraction latency L must satisfy MD_cycles >= #blocks * L. The
//     statemate row (MD = 18257 cycles, 476 blocks) forces L <= 38; fdct
//     (6017 cycles, 190 blocks) forces L <= 31. We use L = 10 cycles — a
//     standard Heptane-style miss penalty — so access counts are
//     nMD = MD_cycles / 10.
//
//  2. The paper's generation recipe T = D = (PD + MD)/U is evaluated in the
//     table's cycle units, and at the default d_mem = 5 µs a task's actual
//     demand PD + nMD * d_mem must equal that generation cost (otherwise
//     the utilization axis of Fig. 2 is meaningless). Hence 5 µs = 10
//     cycles, i.e., 1 µs = 2 cycles.
//
// Only the ratio d_mem/extraction-latency matters anywhere; the implied
// absolute clock is a labeling convention.
#pragma once

#include "util/math.hpp"

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cpa::util {

// ---------------------------------------------------------------------------
// Checked representation arithmetic. With -DCPA_CHECKED_ARITH=ON (the
// asan-ubsan preset turns it on) every Quantity add/sub/mul goes through
// __builtin_*_overflow and traps on wrap-around — Eq. (19) multiplies access
// counts by d_mem at sweep scale, where a silent 64-bit wrap would fold into
// a schedulability verdict. In a constant expression an overflow is a
// compile error instead (the trap call is not constexpr; see
// tests/compile_fail/). Without the option these compile to plain operators.
namespace detail {

[[noreturn]] inline void overflow_trap() noexcept { __builtin_trap(); }

template <typename Rep>
[[nodiscard]] constexpr Rep checked_add(Rep a, Rep b)
{
#if defined(CPA_CHECKED_ARITH)
    Rep result{};
    if (__builtin_add_overflow(a, b, &result)) {
        overflow_trap();
    }
    return result;
#else
    return a + b;
#endif
}

template <typename Rep>
[[nodiscard]] constexpr Rep checked_sub(Rep a, Rep b)
{
#if defined(CPA_CHECKED_ARITH)
    Rep result{};
    if (__builtin_sub_overflow(a, b, &result)) {
        overflow_trap();
    }
    return result;
#else
    return a - b;
#endif
}

template <typename Rep>
[[nodiscard]] constexpr Rep checked_mul(Rep a, Rep b)
{
#if defined(CPA_CHECKED_ARITH)
    Rep result{};
    if (__builtin_mul_overflow(a, b, &result)) {
        overflow_trap();
    }
    return result;
#else
    return a * b;
#endif
}

} // namespace detail

// ---------------------------------------------------------------------------
// Quantity: a value tagged with its physical dimension.

struct CyclesDim {
    static constexpr const char* kName = "cycles";
};
struct MicrosecondsDim {
    static constexpr const char* kName = "us";
};
struct AccessCountDim {
    static constexpr const char* kName = "accesses";
};

template <typename Dim, typename Rep = std::int64_t>
class Quantity {
public:
    using dimension = Dim;
    using rep = Rep;

    constexpr Quantity() = default;
    explicit constexpr Quantity(Rep value) : value_(value) {}

    [[nodiscard]] constexpr Rep count() const noexcept { return value_; }

    // Same-dimension arithmetic. Cross-dimension operands are distinct types
    // with no implicit conversion, so they fail to compile.
    friend constexpr Quantity operator+(Quantity a, Quantity b)
    {
        return Quantity(detail::checked_add(a.value_, b.value_));
    }
    friend constexpr Quantity operator-(Quantity a, Quantity b)
    {
        return Quantity(detail::checked_sub(a.value_, b.value_));
    }
    constexpr Quantity operator-() const
    {
        return Quantity(detail::checked_sub(Rep{0}, value_));
    }
    constexpr Quantity& operator+=(Quantity other)
    {
        value_ = detail::checked_add(value_, other.value_);
        return *this;
    }
    constexpr Quantity& operator-=(Quantity other)
    {
        value_ = detail::checked_sub(value_, other.value_);
        return *this;
    }

    // Scaling by a dimensionless factor (job counts, slot counts, ...).
    friend constexpr Quantity operator*(Quantity q, Rep scale)
    {
        return Quantity(detail::checked_mul(q.value_, scale));
    }
    friend constexpr Quantity operator*(Rep scale, Quantity q)
    {
        return Quantity(detail::checked_mul(scale, q.value_));
    }
    friend constexpr Quantity operator/(Quantity q, Rep divisor)
    {
        return Quantity(q.value_ / divisor);
    }
    constexpr Quantity& operator*=(Rep scale)
    {
        value_ = detail::checked_mul(value_, scale);
        return *this;
    }

    // Ratio and remainder of same-dimension quantities.
    friend constexpr Rep operator/(Quantity a, Quantity b)
    {
        return a.value_ / b.value_;
    }
    friend constexpr Quantity operator%(Quantity a, Quantity b)
    {
        return Quantity(a.value_ % b.value_);
    }

    friend constexpr bool operator==(Quantity, Quantity) = default;
    friend constexpr auto operator<=>(Quantity, Quantity) = default;

private:
    Rep value_{0};
};

using Cycles = Quantity<CyclesDim>;
using Microseconds = Quantity<MicrosecondsDim>;
using AccessCount = Quantity<AccessCountDim>;

// The one legal cross-dimension product: a number of bus accesses times the
// time each access takes yields time (in the time unit of the second factor).
// This is the `BAT · d_mem` / `MD · d_mem` shape of Eq. (19).
[[nodiscard]] constexpr Cycles operator*(AccessCount n, Cycles per_access)
{
    return Cycles(detail::checked_mul(n.count(), per_access.count()));
}
[[nodiscard]] constexpr Cycles operator*(Cycles per_access, AccessCount n)
{
    return n * per_access;
}
[[nodiscard]] constexpr Microseconds operator*(AccessCount n,
                                               Microseconds per_access)
{
    return Microseconds(detail::checked_mul(n.count(), per_access.count()));
}
[[nodiscard]] constexpr Microseconds operator*(Microseconds per_access,
                                               AccessCount n)
{
    return n * per_access;
}

// Factories (the explicit constructor spelled as prose).
[[nodiscard]] constexpr Cycles cycles(std::int64_t n) { return Cycles(n); }
[[nodiscard]] constexpr Microseconds microseconds(std::int64_t n)
{
    return Microseconds(n);
}
[[nodiscard]] constexpr AccessCount accesses(std::int64_t n)
{
    return AccessCount(n);
}

inline namespace literals {
[[nodiscard]] constexpr Cycles operator""_cy(unsigned long long n)
{
    return Cycles(static_cast<std::int64_t>(n));
}
[[nodiscard]] constexpr Microseconds operator""_us(unsigned long long n)
{
    return Microseconds(static_cast<std::int64_t>(n));
}
[[nodiscard]] constexpr AccessCount operator""_acc(unsigned long long n)
{
    return AccessCount(static_cast<std::int64_t>(n));
}
} // namespace literals

template <typename Dim, typename Rep>
[[nodiscard]] std::string to_string(Quantity<Dim, Rep> q)
{
    return std::to_string(q.count());
}

template <typename Dim, typename Rep>
std::ostream& operator<<(std::ostream& out, Quantity<Dim, Rep> q)
{
    return out << q.count();
}

// Quantity-aware counterparts of the math.hpp integer helpers. The ratio of
// two same-dimension quantities is a dimensionless count (⌈t/T⌉ job counts).
template <typename Dim>
[[nodiscard]] constexpr std::int64_t ceil_div(Quantity<Dim> a, Quantity<Dim> b)
{
    return ceil_div(a.count(), b.count());
}
template <typename Dim>
[[nodiscard]] constexpr std::int64_t floor_div(Quantity<Dim> a,
                                               Quantity<Dim> b)
{
    return floor_div(a.count(), b.count());
}
template <typename Dim>
[[nodiscard]] constexpr std::int64_t ceil_div_signed(Quantity<Dim> a,
                                                     Quantity<Dim> b)
{
    return ceil_div_signed(a.count(), b.count());
}
template <typename Dim>
[[nodiscard]] constexpr Quantity<Dim> clamp_non_negative(Quantity<Dim> q)
{
    return Quantity<Dim>(clamp_non_negative(q.count()));
}
template <typename Dim>
[[nodiscard]] constexpr Quantity<Dim>
saturating_lcm(Quantity<Dim> a, Quantity<Dim> b, Quantity<Dim> cap)
{
    return Quantity<Dim>(saturating_lcm(a.count(), b.count(), cap.count()));
}
template <typename Dim>
[[nodiscard]] constexpr double to_double(Quantity<Dim> q)
{
    return static_cast<double>(q.count());
}

// ---------------------------------------------------------------------------
// Unit conversions. These are the ONLY places dimensions may change.

inline constexpr std::int64_t kCyclesPerMicrosecond = 2;

// Memory latency behind the benchmark table's MD cycle figures: one main
// memory access contributes 10 cycles, so nMD = MD_cycles / 10. Equal to the
// default d_mem (5 µs) by construction (see file comment).
inline constexpr Cycles kExtractionLatencyCycles{10};

[[nodiscard]] constexpr Cycles cycles_from_microseconds(Microseconds us)
{
    return Cycles(detail::checked_mul(us.count(), kCyclesPerMicrosecond));
}

[[nodiscard]] constexpr double microseconds_from_cycles(Cycles c)
{
    return static_cast<double>(c.count()) /
           static_cast<double>(kCyclesPerMicrosecond);
}

// Time n accesses spend on the bus at a per-access latency of d_mem: the
// `BAT · d_mem` term of Eq. (19) as a named conversion.
[[nodiscard]] constexpr Cycles cycles_from_accesses(AccessCount n,
                                                    Cycles d_mem)
{
    return n * d_mem;
}

// Largest access count whose bus time fits in `span` (⌊span/d_mem⌋), and the
// smallest access count whose bus time covers `span` (⌈span/d_mem⌉, signed —
// Eq. (5)'s carry-out numerator can be negative early in the fixed point).
[[nodiscard]] constexpr AccessCount accesses_fitting(Cycles span, Cycles d_mem)
{
    return AccessCount(floor_div(span.count(), d_mem.count()));
}
[[nodiscard]] constexpr AccessCount accesses_covering(Cycles span,
                                                      Cycles d_mem)
{
    return AccessCount(ceil_div_signed(span.count(), d_mem.count()));
}

// Access counts derived from Table I's MD/MDʳ cycle figures (see file
// comment: one access per kExtractionLatencyCycles, partial accesses
// rounded up so the bound stays safe).
[[nodiscard]] constexpr AccessCount accesses_from_md_cycles(Cycles md_cycles)
{
    return AccessCount(
        ceil_div(md_cycles.count(), kExtractionLatencyCycles.count()));
}

// A count of cache blocks costs one bus access per block to (re)load: the
// |PCB|/γ/CPRO terms of Eq. (2), (10) and (14). SetMask counts arrive as
// size_t; the cast lives here so call sites stay narrowing-free.
[[nodiscard]] constexpr AccessCount accesses_from_blocks(std::size_t blocks)
{
    return AccessCount(static_cast<std::int64_t>(blocks));
}

// ---------------------------------------------------------------------------
// Boundary escapes. The analysis proper never leaves the type system; the
// few places that must (metric counters, untyped event payloads, an access
// count used as a plain factor) go through the named functions below so
// every exit is grep-able and visible to `scripts/cpa_lint.py` (which flags
// any raw `.count()`/`.value()` outside this file).

// Raw value of a quantity for the observability / serialization boundary:
// metric counters, trace-event fields, JSON report values, progress lines.
// Never feed the result back into analysis arithmetic — convert, emit, drop.
template <typename Dim, typename Rep>
[[nodiscard]] constexpr Rep to_metric(Quantity<Dim, Rep> q) noexcept
{
    return q.count();
}

// An access count used as a dimensionless factor or divisor (chunk counts,
// event-budget estimates): the one sanctioned AccessCount -> scalar
// demotion. Time quantities have no such demotion on purpose.
[[nodiscard]] constexpr std::int64_t to_scalar(AccessCount n) noexcept
{
    return n.count();
}

// Round-trip of a time value through an untyped std::uint64_t payload slot
// (the simulator's Event::b carries either a generation counter or an
// arrival time). Pack and unpack must pair up; nothing else may touch the
// raw representation.
[[nodiscard]] constexpr std::uint64_t to_payload(Cycles c) noexcept
{
    return static_cast<std::uint64_t>(c.count());
}
[[nodiscard]] constexpr Cycles cycles_from_payload(std::uint64_t payload)
{
    return Cycles(static_cast<std::int64_t>(payload));
}

// ---------------------------------------------------------------------------
// Strong index types. TaskId doubles as the priority (tasks are stored in
// priority order; see tasks::TaskSet), CoreId indexes the platform's cores —
// two size_t roles that must not be swappable in an argument list.

template <typename Tag>
class Id {
public:
    constexpr Id() = default;
    explicit constexpr Id(std::size_t value) : value_(value) {}

    [[nodiscard]] constexpr std::size_t value() const noexcept
    {
        return value_;
    }

    [[nodiscard]] static constexpr Id invalid()
    {
        return Id(static_cast<std::size_t>(-1));
    }
    [[nodiscard]] constexpr bool is_valid() const noexcept
    {
        return value_ != static_cast<std::size_t>(-1);
    }

    friend constexpr bool operator==(Id, Id) = default;
    friend constexpr auto operator<=>(Id, Id) = default;

private:
    std::size_t value_{0};
};

using TaskId = Id<struct TaskIdTag>;
using CoreId = Id<struct CoreIdTag>;

// Ids are dense indices into per-task / per-core containers; subscripts and
// bounds checks go through this named escape (see the boundary-escape
// comment above). Requires a valid id — invalid() maps to SIZE_MAX, which
// any bounds check must reject anyway.
template <typename Tag>
[[nodiscard]] constexpr std::size_t to_index(Id<Tag> id) noexcept
{
    return id.value();
}

template <typename Tag>
[[nodiscard]] std::string to_string(Id<Tag> id)
{
    return id.is_valid() ? std::to_string(id.value()) : std::string("none");
}

template <typename Tag>
std::ostream& operator<<(std::ostream& out, Id<Tag> id)
{
    return out << to_string(id);
}

} // namespace cpa::util
