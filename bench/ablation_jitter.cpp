// Ablation (model extension, not in the paper): release jitter. Each task
// gets J = f * T (capped at T - D); the analysis widens every job-count
// window by J and shrinks the response budget to D - J. Expected: weighted
// schedulability decreases with the jitter fraction, persistence-aware
// analyses keep dominating, and the degradation is steeper for the
// persistence-oblivious analyses (their bounds were already at the cliff).
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("ablation_jitter");

    const std::size_t task_sets = experiments::task_sets_from_env(80);
    const auto variants = experiments::standard_variants(false);

    std::vector<experiments::UtilizationSweep> sweeps;
    std::vector<std::string> labels;
    for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        auto generation = bench::default_generation();
        generation.deadline_ratio = 0.6; // leave room for jitter up to 0.4T
        generation.jitter_fraction = fraction;
        sweeps.push_back(experiments::run_utilization_sweep(
            generation, bench::default_platform(), variants,
            bench::weighted_sweep(task_sets)));
        labels.push_back(util::TextTable::num(fraction, 2));
    }

    bench::print_weighted(
        "Ablation: weighted schedulability vs release-jitter fraction "
        "(D = 0.6T, J = f*T)",
        "J/T", labels, sweeps);
    return 0;
}
