#include "obs/metrics.hpp"

namespace cpa::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// Per-thread staging buffer; installed by ScopedMetricsBuffer for the
// duration of one parallel trial body.
thread_local MetricsBuffer* t_metrics_buffer = nullptr;

// Generic find-or-create over the heterogeneous maps; heap allocation keeps
// the handed-out references stable across rehashing/rebalancing. Callers
// hold the registry mutex (enforced at the call sites by util::MutexLock).
template <typename Map>
auto& find_or_create(Map& map, std::string_view name)
{
    auto it = map.find(name);
    if (it == map.end()) {
        using Value = typename Map::mapped_type::element_type;
        it = map.emplace(std::string(name), std::make_unique<Value>()).first;
    }
    return *it->second;
}

} // namespace

bool metrics_enabled() noexcept
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

MetricsBuffer* current_metrics_buffer() noexcept
{
    return t_metrics_buffer;
}

ScopedMetricsBuffer::ScopedMetricsBuffer(MetricsBuffer& buffer) noexcept
    : previous_(t_metrics_buffer)
{
    t_metrics_buffer = &buffer;
}

ScopedMetricsBuffer::~ScopedMetricsBuffer()
{
    t_metrics_buffer = previous_;
}

void MetricsBuffer::flush_to_global()
{
    MetricsRegistry& registry = MetricsRegistry::global();
    for (const auto& [name, delta] : counters_) {
        registry.counter(name).add(delta);
    }
    for (const auto& [name, value] : gauges_) {
        registry.gauge(name).set(value);
    }
    for (const auto& [name, stat] : timers_) {
        registry.timer(name).add(stat.total_ns, stat.count);
    }
    counters_.clear();
    gauges_.clear();
    timers_.clear();
}

MetricsRegistry& MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter& MetricsRegistry::counter(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(gauges_, name);
}

Timer& MetricsRegistry::timer(std::string_view name)
{
    util::MutexLock lock(mutex_);
    return find_or_create(timers_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    util::MutexLock lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, counter] : counters_) {
        snap.counters.emplace(name, counter->value());
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.gauges.emplace(name, gauge->value());
    }
    for (const auto& [name, timer] : timers_) {
        snap.timers.emplace(name,
                            TimerStat{timer->total_ns(), timer->count()});
    }
    return snap;
}

void MetricsRegistry::reset()
{
    util::MutexLock lock(mutex_);
    for (const auto& [name, counter] : counters_) {
        counter->reset();
    }
    for (const auto& [name, gauge] : gauges_) {
        gauge->reset();
    }
    for (const auto& [name, timer] : timers_) {
        timer->reset();
    }
}

} // namespace cpa::obs
