# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for taskset_io_test.
