
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_parameters.cpp" "bench-artifacts/CMakeFiles/table1_parameters.dir/table1_parameters.cpp.o" "gcc" "bench-artifacts/CMakeFiles/table1_parameters.dir/table1_parameters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/cpa_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cpa_program.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cpa_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/benchdata/CMakeFiles/cpa_benchdata.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cpa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/cpa_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
