# Empty dependencies file for extension_associativity.
# This may be replaced when dependencies are built.
