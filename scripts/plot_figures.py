#!/usr/bin/env python3
"""Plot the reproduction figures from the benches' CSV dumps.

Usage:
    CPA_CSV_DIR=results ./build/bench/fig2_core_utilization
    CPA_CSV_DIR=results ./build/bench/fig3a_cores   # ... etc.
    python3 scripts/plot_figures.py results plots/

Reads every CSV in the input directory (first column = x axis, remaining
columns = one line each) and writes a PNG per CSV. Requires matplotlib;
the C++ side has no plotting dependency by design.
"""

import csv
import pathlib
import sys


def plot_csv(csv_path: pathlib.Path, out_dir: pathlib.Path) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with csv_path.open() as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        print(f"skipping {csv_path.name}: no data rows")
        return
    header, data = rows[0], rows[1:]

    def as_number(text: str) -> float:
        try:
            return float(text.rstrip("us"))
        except ValueError:
            return float("nan")

    xs = [as_number(row[0]) for row in data]
    figure, axis = plt.subplots(figsize=(7, 4.5))
    for column in range(1, len(header)):
        ys = [as_number(row[column]) for row in data]
        style = "--" if "NoCP" in header[column] else "-"
        axis.plot(xs, ys, style, marker="o", markersize=3,
                  label=header[column])
    axis.set_xlabel(header[0])
    axis.set_ylabel("schedulable task sets / weighted schedulability")
    axis.set_title(csv_path.stem.replace("-", " "))
    axis.legend(fontsize=7)
    axis.grid(True, alpha=0.3)
    figure.tight_layout()
    out_path = out_dir / (csv_path.stem + ".png")
    figure.savefig(out_path, dpi=150)
    plt.close(figure)
    print(f"wrote {out_path}")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    in_dir = pathlib.Path(sys.argv[1])
    out_dir = pathlib.Path(sys.argv[2])
    out_dir.mkdir(parents=True, exist_ok=True)
    csvs = sorted(in_dir.glob("*.csv"))
    if not csvs:
        print(f"no CSV files in {in_dir}")
        return 1
    for csv_path in csvs:
        plot_csv(csv_path, out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
