#include "analysis/wcrt.hpp"

#include "util/math.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpa::analysis {

namespace {

constexpr std::size_t kMaxOuterIterations = 256;
constexpr std::size_t kMaxInnerIterations = 100000;

// Solves the per-task recurrence of Eq. (19) for τ_i with the other tasks'
// response-time estimates frozen in `response`. Returns the first r with
// rhs(r) <= r, or the first value exceeding D_i (the caller treats any
// value > D_i as a failure). rhs(t) upper-bounds the work that can delay
// τ_i in ANY window of length t, so rhs(r) <= r ends the busy window and r
// is a sound response-time bound even though the persistence-aware rhs is
// not perfectly monotone (Lemma 2's carry-out re-pricing; see
// bus_bounds_test.cpp, Lemma2CarryOutDipIsPossible).
Cycles inner_fixed_point(const tasks::TaskSet& ts,
                         const PlatformConfig& platform,
                         const BusContentionAnalysis& bounds, std::size_t i,
                         const std::vector<Cycles>& response)
{
    const tasks::Task& task = ts[i];
    const Cycles start = std::max(response[i], task.isolated_demand(platform.d_mem));
    Cycles r = std::max<Cycles>(start, 1);

    for (std::size_t iter = 0; iter < kMaxInnerIterations; ++iter) {
        Cycles rhs = task.pd;
        for (const std::size_t j : ts.tasks_on_core(task.core)) {
            if (j >= i) {
                break;
            }
            rhs += util::ceil_div(r, ts[j].period) * ts[j].pd;
        }
        rhs += bounds.bat(i, r, response) * platform.d_mem;

        if (rhs <= r) {
            return r; // busy window closed: all delaying work fits in r
        }
        r = rhs;
        if (r > task.effective_deadline()) {
            return r; // deadline already missed; no need to converge
        }
    }
    // Did not converge within the iteration budget: report a value that the
    // caller will classify as a deadline miss (conservative).
    return task.effective_deadline() + 1;
}

} // namespace

WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config,
                        const InterferenceTables& tables)
{
    if (ts.num_cores() > platform.num_cores) {
        throw std::invalid_argument(
            "compute_wcrt: task set uses more cores than the platform has");
    }
    WcrtResult result;
    const std::size_t n = ts.size();
    result.response.resize(n);

    // Initialization prescribed by the paper: R_i = PD_i + MD_i * d_mem.
    for (std::size_t i = 0; i < n; ++i) {
        result.response[i] = ts[i].isolated_demand(platform.d_mem);
    }

    const BusContentionAnalysis bounds(ts, platform, config, tables);

    for (std::size_t outer = 0; outer < kMaxOuterIterations; ++outer) {
        result.outer_iterations = outer + 1;
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            const Cycles updated =
                inner_fixed_point(ts, platform, bounds, i, result.response);
            if (updated > ts[i].effective_deadline()) {
                result.schedulable = false;
                result.failed_task = i;
                result.response[i] = updated;
                return result;
            }
            if (updated != result.response[i]) {
                result.response[i] = updated;
                changed = true;
            }
        }
        if (!changed) {
            result.schedulable = true;
            return result;
        }
    }

    // Outer loop failed to reach a global fixed point within the budget;
    // declare the set unschedulable (conservative).
    result.schedulable = false;
    return result;
}

WcrtResult compute_wcrt(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config)
{
    const InterferenceTables tables(ts, config.crpd);
    return compute_wcrt(ts, platform, config, tables);
}

} // namespace cpa::analysis
