# Empty dependencies file for jitter_test.
# This may be replaced when dependencies are built.
