# Empty compiler generated dependencies file for cpa_util.
# This may be replaced when dependencies are built.
