// Fixture: callers pick a solver through the WcrtEngine seam instead of
// constructing the reference loop themselves; both engines stay covered by
// the differential harness.
#include "analysis/wcrt.hpp"

cpa::analysis::WcrtResult
solve(const cpa::tasks::TaskSet& ts,
      const cpa::analysis::PlatformConfig& platform,
      const cpa::analysis::InterferenceTables& tables)
{
    cpa::analysis::AnalysisConfig config;
    config.wcrt_engine = cpa::analysis::WcrtEngine::kReference;
    return cpa::analysis::compute_wcrt(ts, platform, config, tables);
}
