# Empty dependencies file for arbiter_test.
# This may be replaced when dependencies are built.
