#include "benchdata/benchmark.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cpa::benchdata {
namespace {

const BenchmarkSpec& find(const std::string& name)
{
    for (const BenchmarkSpec& spec : full_benchmark_table()) {
        if (spec.name == name) {
            return spec;
        }
    }
    throw std::runtime_error("benchmark not found: " + name);
}

TEST(BenchmarkTable, HasSixPublishedRows)
{
    EXPECT_EQ(published_benchmarks().size(), 6u);
    for (const BenchmarkSpec& spec : published_benchmarks()) {
        EXPECT_TRUE(spec.published) << spec.name;
    }
}

TEST(BenchmarkTable, FullTableExtendsPublished)
{
    EXPECT_GE(full_benchmark_table().size(), 18u);
}

// Table I check: the region layouts must reproduce the printed |ECB| and
// |PCB| at the 256-set reference geometry.
struct TableRow {
    std::string name;
    std::size_t ecb;
    std::size_t pcb;
    std::size_t ucb;
};

class TableIRow : public ::testing::TestWithParam<TableRow> {};

TEST_P(TableIRow, FootprintCountsMatchPaperAtReferenceCache)
{
    const TableRow row = GetParam();
    const BenchmarkParams params =
        derive_params(find(row.name), kReferenceCacheSets);
    EXPECT_EQ(params.ecb_count, row.ecb) << row.name;
    EXPECT_EQ(params.pcb_count, row.pcb) << row.name;
    EXPECT_EQ(params.ucb_count, row.ucb) << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    PublishedRows, TableIRow,
    ::testing::Values(TableRow{"lcdnum", 20, 20, 20},
                      TableRow{"bsort100", 20, 20, 18},
                      TableRow{"ludcmp", 98, 98, 98},
                      TableRow{"fdct", 106, 22, 58},
                      TableRow{"nsichneu", 256, 0, 256},
                      TableRow{"statemate", 256, 36, 256}));

TEST(BenchmarkTable, ReferenceDemandsMatchTableI)
{
    // At the reference geometry MD/MDʳ convert at 10 cycles/access
    // (util::kExtractionLatencyCycles).
    const BenchmarkParams lcdnum =
        derive_params(find("lcdnum"), kReferenceCacheSets);
    EXPECT_EQ(lcdnum.pd, util::Cycles{984});
    EXPECT_EQ(lcdnum.md, util::AccessCount{144}); // ceil(1440/10)
    EXPECT_EQ(lcdnum.md_residual, util::AccessCount{20});

    const BenchmarkParams nsichneu =
        derive_params(find("nsichneu"), kReferenceCacheSets);
    EXPECT_EQ(nsichneu.md, util::AccessCount{14720});
    EXPECT_EQ(nsichneu.md_residual, util::AccessCount{14720}); // no persistence at 256 sets

    // Access counts must cover at least one cold miss per block; this is
    // what pins the 10-cycle extraction latency (DESIGN.md §3.3).
    for (const BenchmarkSpec& spec : published_benchmarks()) {
        std::size_t blocks = 0;
        for (const Region& region : spec.regions) {
            blocks += region.length;
        }
        const BenchmarkParams params =
            derive_params(spec, kReferenceCacheSets);
        EXPECT_GE(params.md, util::accesses_from_blocks(blocks)) << spec.name;
    }
}

TEST(BenchmarkTable, ResidualNeverExceedsDemand)
{
    for (const BenchmarkSpec& spec : full_benchmark_table()) {
        for (const std::size_t sets : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            const BenchmarkParams params = derive_params(spec, sets);
            EXPECT_LE(params.md_residual, params.md)
                << spec.name << " @" << sets;
            EXPECT_GE(params.md, util::AccessCount{1}) << spec.name << " @" << sets;
            EXPECT_LE(params.pcb_count, params.ecb_count)
                << spec.name << " @" << sets;
            EXPECT_LE(params.ucb_count, params.ecb_count)
                << spec.name << " @" << sets;
            EXPECT_LE(params.ecb_count, sets) << spec.name << " @" << sets;
        }
    }
}

TEST(BenchmarkTable, PersistentShareGrowsWithCacheSize)
{
    // The driver of Fig. 3c: larger caches -> more PCBs (weakly).
    for (const BenchmarkSpec& spec : full_benchmark_table()) {
        double previous_share = -1.0;
        for (const std::size_t sets : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            const BenchmarkParams params = derive_params(spec, sets);
            const double share =
                params.ecb_count == 0
                    ? 0.0
                    : static_cast<double>(params.pcb_count) /
                          static_cast<double>(params.ecb_count);
            EXPECT_GE(share + 1e-12, previous_share)
                << spec.name << " @" << sets;
            previous_share = share;
        }
    }
}

TEST(BenchmarkTable, DemandShrinksWithCacheSize)
{
    for (const BenchmarkSpec& spec : full_benchmark_table()) {
        util::AccessCount previous_md{
            std::numeric_limits<std::int64_t>::max()};
        for (const std::size_t sets : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            const BenchmarkParams params = derive_params(spec, sets);
            EXPECT_LE(params.md, previous_md) << spec.name << " @" << sets;
            previous_md = params.md;
        }
    }
}

TEST(BenchmarkTable, DeriveRejectsZeroSets)
{
    EXPECT_THROW((void)derive_params(find("lcdnum"), 0),
                 std::invalid_argument);
}

TEST(PlaceFootprint, MasksMatchCountsAndSubsetInvariants)
{
    const BenchmarkParams params = derive_params(find("fdct"), 256);
    for (const std::size_t offset : {0u, 1u, 100u, 255u}) {
        const FootprintMasks masks = place_footprint(params, 256, offset);
        EXPECT_EQ(masks.ecb.popcount(), params.ecb_count);
        EXPECT_EQ(masks.pcb.popcount(), params.pcb_count);
        EXPECT_EQ(masks.ucb.popcount(), params.ucb_count);
        EXPECT_TRUE(masks.pcb.is_subset_of(masks.ecb));
        EXPECT_TRUE(masks.ucb.is_subset_of(masks.ecb));
    }
}

TEST(PlaceFootprint, RotationShiftsSets)
{
    const BenchmarkParams params = derive_params(find("lcdnum"), 256);
    const FootprintMasks base = place_footprint(params, 256, 0);
    const FootprintMasks shifted = place_footprint(params, 256, 10);
    for (const std::size_t set : base.ecb.to_indices()) {
        EXPECT_TRUE(shifted.ecb.contains((set + 10) % 256));
    }
}

TEST(PlaceFootprint, RejectsGeometryMismatch)
{
    const BenchmarkParams params = derive_params(find("lcdnum"), 256);
    EXPECT_THROW((void)place_footprint(params, 128, 0),
                 std::invalid_argument);
}

TEST(BenchmarkTable, NamesAreUnique)
{
    std::map<std::string, int> seen;
    for (const BenchmarkSpec& spec : full_benchmark_table()) {
        EXPECT_EQ(seen[spec.name]++, 0) << spec.name;
    }
}

} // namespace
} // namespace cpa::benchdata
