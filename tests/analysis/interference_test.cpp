#include "analysis/interference.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::fig1_task_set;
using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using namespace util::literals;

TEST(Interference, GammaZeroOnDiagonalAndForLowerPriorityPreempter)
{
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(tables.gamma(i, i), 0_acc) << i;
        for (std::size_t j = i + 1; j < ts.size(); ++j) {
            EXPECT_EQ(tables.gamma(i, j), 0_acc)
                << "lower-priority task cannot preempt (" << i << "," << j
                << ")";
        }
    }
}

TEST(Interference, GammaMatchesFig1Example)
{
    // γ_{2,1,x} = |UCB_2 ∩ (ECB_1)| = |{5,6} ∩ {5..10}| = 2 (Eq. (2) with
    // hep(τ1) = {τ1}).
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    EXPECT_EQ(tables.gamma(1, 0), 2_acc);
}

TEST(Interference, GammaIgnoresTasksOnOtherCores)
{
    // τ3 lives on core 1; there is no task on core 1 that τ3 could preempt,
    // so γ_{i,3} = 0 for every i, and γ at level 2 w.r.t. core-0 preempters
    // only sees core-0 tasks.
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(tables.gamma(i, 2), 0_acc);
    }
}

TEST(Interference, GammaTakesMaxOverAffectedTasks)
{
    // Three tasks on one core. aff(2, 0) = {1, 2}: the max of
    // |UCB_1 ∩ ECB_0| = 3 and |UCB_2 ∩ ECB_0| = 1.
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 1, 0, 0, 10, 0, {0, 1, 2, 3}, {}, {}},
            {0, 1, 0, 0, 20, 0, {1, 2, 3}, {1, 2, 3}, {}},
            {0, 1, 0, 0, 40, 0, {3, 9}, {3, 9}, {}},
        });
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    EXPECT_EQ(tables.gamma(1, 0), 3_acc); // only τ1 affected
    EXPECT_EQ(tables.gamma(2, 0), 3_acc); // max(3, 1)
    // γ_{2,1}: evicting union = ECB_0 ∪ ECB_1 = {0,1,2,3}; aff = {τ2} ->
    // |{3,9} ∩ {0..3}| = 1.
    EXPECT_EQ(tables.gamma(2, 1), 1_acc);
}

TEST(Interference, UcbOnlyAndEcbOnlyBracketEcbUnion)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 1, 0, 0, 10, 0, {0, 1, 2, 3}, {0}, {}},
            {0, 1, 0, 0, 20, 0, {2, 3, 4, 5}, {2, 3}, {}},
            {0, 1, 0, 0, 40, 0, {4, 5, 6}, {4, 5, 6}, {}},
        });
    const InterferenceTables ecb_union(ts, CrpdMethod::kEcbUnion);
    const InterferenceTables ucb_only(ts, CrpdMethod::kUcbOnly);
    const InterferenceTables ecb_only(ts, CrpdMethod::kEcbOnly);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_LE(ecb_union.gamma(i, j), ucb_only.gamma(i, j));
            EXPECT_LE(ecb_union.gamma(i, j), ecb_only.gamma(i, j));
        }
    }
    EXPECT_EQ(ucb_only.gamma(2, 0), 3_acc);  // max(|UCB_1|, |UCB_2|)
    EXPECT_EQ(ecb_only.gamma(2, 0), 4_acc);  // |ECB_0|
    EXPECT_EQ(ecb_only.gamma(2, 1), 6_acc);  // |ECB_0 ∪ ECB_1|
}

TEST(Interference, CproOverlapMatchesFig1Example)
{
    // |PCB_1 ∩ ECB_2| = |{5,6,7,8,10} ∩ {1..6}| = 2, so
    // ρ̂_{1,2,x}(3) = (3-1)*2 = 4 as computed in the paper.
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    EXPECT_EQ(tables.cpro_overlap(0, 1), 2_acc);
    EXPECT_EQ(tables.rho_hat(0, 1, 3), 4_acc);
}

TEST(Interference, RhoHatZeroForAtMostOneJob)
{
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    EXPECT_EQ(tables.rho_hat(0, 1, 0), 0_acc);
    EXPECT_EQ(tables.rho_hat(0, 1, 1), 0_acc);
}

TEST(Interference, CproExcludesTheTaskItself)
{
    // A task alone on its core suffers no CPRO regardless of the level.
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(tables.cpro_overlap(2, i), 0_acc) << i;
    }
}

TEST(Interference, CproGrowsWithAnalysisLevel)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 1, 0, 0, 10, 0, {0, 1, 2, 3}, {}, {0, 1, 2, 3}},
            {0, 1, 0, 0, 20, 0, {2, 3}, {}, {}},
            {0, 1, 0, 0, 40, 0, {0, 9}, {}, {}},
        });
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
    // At level 0 only τ1 itself is in hep -> nothing evicts its PCBs.
    EXPECT_EQ(tables.cpro_overlap(0, 0), 0_acc);
    // At level 1, τ2's ECBs {2,3} overlap.
    EXPECT_EQ(tables.cpro_overlap(0, 1), 2_acc);
    // At level 2, τ3 adds {0}.
    EXPECT_EQ(tables.cpro_overlap(0, 2), 3_acc);
}

TEST(Interference, CproIndependentOfCrpdMethod)
{
    const tasks::TaskSet ts = fig1_task_set();
    const InterferenceTables a(ts, CrpdMethod::kEcbUnion);
    const InterferenceTables b(ts, CrpdMethod::kEcbOnly);
    for (std::size_t j = 0; j < ts.size(); ++j) {
        for (std::size_t i = 0; i < ts.size(); ++i) {
            EXPECT_EQ(a.cpro_overlap(j, i), b.cpro_overlap(j, i));
        }
    }
}

} // namespace
} // namespace cpa::analysis
