// Platform and analysis configuration shared by all bound computations.
#pragma once

#include "util/units.hpp"

#include <cstddef>
#include <string>

namespace cpa::analysis {

using util::Cycles;

// Memory-bus arbitration policies analyzed in the paper (Eq. (7)-(9)), plus
// the "perfect bus" upper-bound baseline from Fig. 2.
enum class BusPolicy {
    kFixedPriority, // Eq. (7): accesses inherit the priority of their task
    kRoundRobin,    // Eq. (8): work-conserving RR with s slots per core
    kTdma,          // Eq. (9): non-work-conserving TDMA, cycle length L*s
    kPerfect,       // no bus interference while bus utilization <= 1
};

// CRPD bounding method. The paper uses ECB-union (Eq. (2), from Altmeyer et
// al. RTSS'11); the other two are classic cruder bounds kept for the ablation
// bench.
enum class CrpdMethod {
    kEcbUnion, // Eq. (2): max over affected tasks of |UCB_g ∩ ∪ ECB|
    kUcbOnly,  // max over affected tasks of |UCB_g|
    kEcbOnly,  // |∪_{h ∈ hep(j)} ECB_h| (every evicted set reloads)
};

// CPRO bounding method. The paper states "CPRO can be calculated using any
// of the approaches presented in [3], [4]" and picks CPRO-union (Eq. (14)).
// kJobBound additionally caps the reload count by how often the evicting
// tasks can actually run in the window: a job of τ_s can evict
// |PCB_j ∩ ECB_s| persistent blocks at most once, so
//   ρ̂ <= Σ_s (⌈t/T_s⌉ + 1) · |PCB_j ∩ ECB_s|
// (the +1 covers a carry-in job). The minimum with Eq. (14) is taken, so
// kJobBound always dominates kUnion.
enum class CproMethod {
    kUnion,    // Eq. (14): (n_j - 1) · |PCB_j ∩ ∪ ECB|
    kJobBound, // min(Eq. (14), per-evictor job-count cap)
};

// Which implementation solves the Eq. (19) inner fixed point. Both compute
// the exact same recurrence sequence (proven by the differential suite in
// tests/analysis/wcrt_differential_test.cpp); they differ only in cost:
// kReference re-evaluates every term from scratch each iteration, while
// kIncremental only re-adds the terms whose ⌈t/T⌉-style job count changed
// since r is non-decreasing within a solve (see docs/performance.md).
enum class WcrtEngine {
    kReference,   // the paper-shaped loop, kept verbatim as the oracle
    kIncremental, // breakpoint-driven evaluator (default)
};

struct PlatformConfig {
    std::size_t num_cores = 4;
    std::size_t cache_sets = 256;
    Cycles d_mem{10};        // worst-case main-memory access time (cycles);
                             // default 5 us at 2 cycles/us (DESIGN.md §3.3)
    std::int64_t slot_size = 2; // s: bus slots per core for RR/TDMA
    // TDMA cycle length is L*s with L = num_cores (one slot group per core).
};

struct AnalysisConfig {
    BusPolicy policy = BusPolicy::kFixedPriority;
    bool persistence_aware = true; // use Lemmas 1-2 instead of Eq. (1)/(3)
    CrpdMethod crpd = CrpdMethod::kEcbUnion;
    CproMethod cpro = CproMethod::kUnion; // the paper's choice
    WcrtEngine wcrt_engine = WcrtEngine::kIncremental;
};

[[nodiscard]] std::string to_string(BusPolicy policy);
[[nodiscard]] std::string to_string(CrpdMethod method);
[[nodiscard]] std::string to_string(CproMethod method);
[[nodiscard]] std::string to_string(WcrtEngine engine);

} // namespace cpa::analysis
