// Discrete-event simulator of the modeled multicore platform.
//
// The paper's analysis bounds every legal execution of the system model:
// partitioned FPPS cores, private direct-mapped I-caches whose content
// persists across jobs, and a shared memory bus under FP / RR / TDMA
// arbitration. This simulator *generates* legal executions of that model so
// property tests can check soundness: for a task set the analysis deems
// schedulable, no simulated response time may exceed the analytical WCRT.
//
// Execution semantics (model level, cycle granular):
//  * Jobs are released synchronously and periodically (a legal sporadic
//    behavior). Each core dispatches preemptively by task priority.
//  * A job needs min(MD, MDʳ + #PCBs currently absent from its core's cache)
//    bus accesses; its PD cycles of computation are spread evenly between
//    accesses. The core stalls while an access is outstanding.
//  * When a preempted job resumes, it first reloads |UCB ∩ (ECBs of tasks
//    that ran on the core meanwhile)| blocks (the CRPD the analysis charges
//    via γ).
//  * A completed job installs its ECBs in the core's cache, evicting
//    whatever aliased there (this is what makes later jobs of other tasks
//    miss their PCBs — the CPRO effect).
//  * The bus serves one access in d_mem cycles. FP picks the pending request
//    of the highest-priority task (non-preemptive). RR rotates over cores,
//    up to `slot_size` consecutive accesses per turn, skipping cores with
//    nothing pending (work conserving). TDMA rotates a bus token through the
//    cores (`slot_size` slots of d_mem cycles each per core per cycle of
//    num_cores*slot_size slots); a core may start an access at any instant
//    while holding its token, and idle token time is never reassigned
//    (non-work conserving). See tdma_service_start() in the implementation
//    for why mid-token starts are the semantics Eq. (9) soundly bounds.
#pragma once

#include "analysis/config.hpp"
#include "analysis/multilevel.hpp"
#include "tasks/task.hpp"

#include <cstdint>
#include <vector>

namespace cpa::sim {

using analysis::BusPolicy;
using analysis::PlatformConfig;
using util::AccessCount;
using util::Cycles;
using util::TaskId;

struct SimConfig {
    BusPolicy policy = BusPolicy::kFixedPriority;
    Cycles horizon;                 // simulate releases in [0, horizon)
    bool stop_on_deadline_miss = true;
    // First-release offset per task (empty = synchronous release at 0).
    // Any offset assignment is a legal sporadic behavior, so the analytical
    // WCRT must bound the simulation for every choice — the soundness tests
    // exploit this to probe beyond the synchronous case.
    std::vector<Cycles> release_offsets;
    // Seed for per-job release-jitter draws (each job of a task with
    // jitter J is released uniformly within [arrival, arrival + J]).
    std::uint64_t jitter_seed = 42;
    // Optional shared-L2 (the multilevel extension). When `l2_footprints`
    // is set (one entry per task, task order), a job's bus accesses shrink
    // to min(requests, MDʳ² + missing PCB1 + missing PCB2) — the L2
    // persistent blocks it still owns are served by the L2 — and every L1
    // miss additionally stalls the core for l2.d_l2 cycles. A completed job
    // installs its ECB2s in the shared L2, evicting aliased content of
    // tasks on ALL cores (the cross-core effect ρ̂2 bounds).
    const std::vector<analysis::L2Footprint>* l2_footprints = nullptr;
    analysis::L2Config l2;
};

// `missed_task` when no deadline was missed.
inline constexpr TaskId kNoMissedTask = TaskId::invalid();

struct SimResult {
    // Worst observed response time per task (0 when no job completed).
    std::vector<Cycles> max_response;
    std::vector<std::int64_t> jobs_completed;
    // Total bus accesses issued per task (including CRPD/CPRO reloads).
    std::vector<AccessCount> bus_accesses;
    bool deadline_missed = false;
    // The first task observed to miss, or kNoMissedTask.
    TaskId missed_task = kNoMissedTask;
};

// Runs the simulation. `ts` must be validated and in priority order.
// BusPolicy::kPerfect serves every access immediately (latency d_mem, no
// contention) and is supported for completeness.
[[nodiscard]] SimResult simulate(const tasks::TaskSet& ts,
                                 const PlatformConfig& platform,
                                 const SimConfig& config);

} // namespace cpa::sim
