file(REMOVE_RECURSE
  "CMakeFiles/cpa_util.dir/rng.cpp.o"
  "CMakeFiles/cpa_util.dir/rng.cpp.o.d"
  "CMakeFiles/cpa_util.dir/set_mask.cpp.o"
  "CMakeFiles/cpa_util.dir/set_mask.cpp.o.d"
  "CMakeFiles/cpa_util.dir/table.cpp.o"
  "CMakeFiles/cpa_util.dir/table.cpp.o.d"
  "libcpa_util.a"
  "libcpa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
