#include "program/program.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cpa::program {

Segment Segment::straight(std::vector<std::size_t> blocks)
{
    Segment segment;
    segment.blocks = std::move(blocks);
    return segment;
}

Segment Segment::loop(std::size_t iterations, std::vector<Segment> body)
{
    Segment segment;
    segment.iterations = iterations;
    segment.body = std::move(body);
    return segment;
}

Segment Segment::alternative(std::vector<std::vector<Segment>> branches)
{
    Segment segment;
    segment.branches = std::move(branches);
    return segment;
}

Segment Segment::call_procedure(std::string name)
{
    Segment segment;
    segment.call = std::move(name);
    return segment;
}

namespace {

using ProcedureMap = std::map<std::string, std::vector<Segment>>;

const std::vector<Segment>& resolve_call(const ProcedureMap& procedures,
                                         const std::string& name)
{
    const auto it = procedures.find(name);
    if (it == procedures.end()) {
        throw std::invalid_argument("Program: call to undefined procedure '" +
                                    name + "'");
    }
    return it->second;
}

// Validates that every call resolves and call chains are acyclic.
void check_calls(const std::vector<Segment>& segments,
                 const ProcedureMap& procedures,
                 std::set<std::string>& stack)
{
    for (const Segment& segment : segments) {
        check_calls(segment.body, procedures, stack);
        for (const auto& branch : segment.branches) {
            check_calls(branch, procedures, stack);
        }
        if (!segment.call.empty()) {
            if (stack.count(segment.call) > 0) {
                throw std::invalid_argument(
                    "Program: recursive call chain through '" + segment.call +
                    "'");
            }
            stack.insert(segment.call);
            check_calls(resolve_call(procedures, segment.call), procedures,
                        stack);
            stack.erase(segment.call);
        }
    }
}

void flatten(const std::vector<Segment>& segments,
             const ProcedureMap& procedures, const BranchSelector& selector,
             std::vector<std::size_t>& trace)
{
    for (const Segment& segment : segments) {
        trace.insert(trace.end(), segment.blocks.begin(),
                     segment.blocks.end());
        for (std::size_t i = 0; i < segment.iterations; ++i) {
            flatten(segment.body, procedures, selector, trace);
        }
        if (!segment.branches.empty()) {
            const std::size_t pick =
                selector ? selector(segment.branches.size()) : 0;
            if (pick >= segment.branches.size()) {
                throw std::out_of_range(
                    "reference_trace: branch selector out of range");
            }
            flatten(segment.branches[pick], procedures, selector, trace);
        }
        if (!segment.call.empty()) {
            flatten(resolve_call(procedures, segment.call), procedures,
                    selector, trace);
        }
    }
}

void collect_blocks(const std::vector<Segment>& segments,
                    const ProcedureMap& procedures,
                    std::vector<std::size_t>& blocks)
{
    for (const Segment& segment : segments) {
        blocks.insert(blocks.end(), segment.blocks.begin(),
                      segment.blocks.end());
        collect_blocks(segment.body, procedures, blocks);
        for (const auto& branch : segment.branches) {
            collect_blocks(branch, procedures, blocks);
        }
        // Call targets are collected via the procedures map below (bodies
        // may be shared by many call sites).
    }
}

bool any_alternatives(const std::vector<Segment>& segments,
                      const ProcedureMap& procedures)
{
    for (const Segment& segment : segments) {
        if (!segment.branches.empty() ||
            any_alternatives(segment.body, procedures)) {
            return true;
        }
        if (!segment.call.empty() &&
            any_alternatives(resolve_call(procedures, segment.call),
                             procedures)) {
            return true;
        }
    }
    return false;
}

} // namespace

Program::Program(std::string name, std::vector<Segment> body,
                 Cycles cycles_per_fetch, ProcedureMap procedures)
    : name_(std::move(name)), body_(std::move(body)),
      cycles_per_fetch_(cycles_per_fetch),
      procedures_(std::move(procedures))
{
    if (cycles_per_fetch_ <= Cycles{0}) {
        throw std::invalid_argument("Program: cycles_per_fetch must be > 0");
    }
    std::set<std::string> stack;
    check_calls(body_, procedures_, stack);
    for (const auto& [proc_name, proc_body] : procedures_) {
        stack.insert(proc_name);
        check_calls(proc_body, procedures_, stack);
        stack.erase(proc_name);
    }
}

std::vector<std::size_t>
Program::reference_trace(const BranchSelector& selector) const
{
    std::vector<std::size_t> trace;
    flatten(body_, procedures_, selector, trace);
    return trace;
}

std::vector<std::size_t> Program::distinct_blocks() const
{
    std::vector<std::size_t> blocks;
    collect_blocks(body_, procedures_, blocks);
    for (const auto& [proc_name, proc_body] : procedures_) {
        (void)proc_name;
        collect_blocks(proc_body, procedures_, blocks);
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    return blocks;
}

bool Program::has_alternatives() const
{
    return any_alternatives(body_, procedures_);
}

ProgramBuilder::ProgramBuilder(std::string name, Cycles cycles_per_fetch)
    : name_(std::move(name)), cycles_per_fetch_(cycles_per_fetch)
{
    stack_.push_back(Frame{});
}

ProgramBuilder& ProgramBuilder::straight(std::size_t base, std::size_t count)
{
    std::vector<std::size_t> run(count);
    for (std::size_t i = 0; i < count; ++i) {
        run[i] = base + i;
    }
    return blocks(std::move(run));
}

ProgramBuilder& ProgramBuilder::blocks(std::vector<std::size_t> run)
{
    stack_.back().segments.push_back(Segment::straight(std::move(run)));
    return *this;
}

ProgramBuilder& ProgramBuilder::begin_loop(std::size_t iterations)
{
    Frame frame;
    frame.kind = Frame::Kind::kLoop;
    frame.iterations = iterations;
    stack_.push_back(std::move(frame));
    return *this;
}

ProgramBuilder& ProgramBuilder::end_loop()
{
    if (stack_.size() < 2 || stack_.back().kind != Frame::Kind::kLoop) {
        throw std::logic_error("ProgramBuilder::end_loop: no open loop");
    }
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    stack_.back().segments.push_back(
        Segment::loop(frame.iterations, std::move(frame.segments)));
    return *this;
}

ProgramBuilder& ProgramBuilder::begin_alternative()
{
    Frame frame;
    frame.kind = Frame::Kind::kBranch;
    stack_.push_back(std::move(frame));
    return *this;
}

ProgramBuilder& ProgramBuilder::next_branch()
{
    if (stack_.size() < 2 || stack_.back().kind != Frame::Kind::kBranch) {
        throw std::logic_error(
            "ProgramBuilder::next_branch: no open alternative");
    }
    Frame& frame = stack_.back();
    frame.finished_branches.push_back(std::move(frame.segments));
    frame.segments.clear();
    return *this;
}

ProgramBuilder& ProgramBuilder::end_alternative()
{
    if (stack_.size() < 2 || stack_.back().kind != Frame::Kind::kBranch) {
        throw std::logic_error(
            "ProgramBuilder::end_alternative: no open alternative");
    }
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    frame.finished_branches.push_back(std::move(frame.segments));
    stack_.back().segments.push_back(
        Segment::alternative(std::move(frame.finished_branches)));
    return *this;
}

ProgramBuilder& ProgramBuilder::begin_procedure(std::string name)
{
    if (stack_.size() != 1) {
        throw std::logic_error(
            "ProgramBuilder::begin_procedure: procedures cannot nest inside "
            "other constructs");
    }
    if (procedures_.count(name) > 0) {
        throw std::logic_error("ProgramBuilder::begin_procedure: duplicate "
                               "procedure '" + name + "'");
    }
    Frame frame;
    frame.kind = Frame::Kind::kProcedure;
    frame.procedure_name = std::move(name);
    stack_.push_back(std::move(frame));
    return *this;
}

ProgramBuilder& ProgramBuilder::end_procedure()
{
    if (stack_.size() < 2 || stack_.back().kind != Frame::Kind::kProcedure) {
        throw std::logic_error(
            "ProgramBuilder::end_procedure: no open procedure");
    }
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    procedures_[frame.procedure_name] = std::move(frame.segments);
    return *this;
}

ProgramBuilder& ProgramBuilder::call(std::string name)
{
    stack_.back().segments.push_back(
        Segment::call_procedure(std::move(name)));
    return *this;
}

Program ProgramBuilder::build() &&
{
    if (stack_.size() != 1) {
        throw std::logic_error(
            "ProgramBuilder::build: unclosed loop, alternative or procedure");
    }
    return Program(std::move(name_), std::move(stack_.front().segments),
                   cycles_per_fetch_, std::move(procedures_));
}

} // namespace cpa::program
