// Declarative CLI option layer.
//
// Every flag the `cpa` tool accepts is declared exactly once as an
// OptionSpec (name, value placeholder, default, help line); the per-command
// parsers consume specs through Flags::take/take_switch and the
// command registry renders `cpa help [command]` and the top-level usage from
// the same tables — so the parser and its documentation cannot drift.
//
// The cross-cutting flag groups every analysis command shares are bundled:
//   ObsOptions     --metrics-out / --trace / --profile-out [/ --progress]
//   EngineOptions  --engine [/ --jobs]
// parsed once here instead of copy-pasted per command, with ObsScope as the
// RAII activation of the observability layer for the command's duration.
#pragma once

#include "analysis/config.hpp"
#include "analysis/request.hpp"

#include <cstddef>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace cpa::obs {
class RunReport;
}

namespace cpa::cli {

// One command-line option, declared once and consumed by both the parser
// and the generated help.
struct OptionSpec {
    const char* flag;     // "--metrics-out"
    const char* value;    // value placeholder ("FILE", "N"); "" = switch
    const char* fallback; // default value; "" = none (or switch)
    const char* help;     // one-line description for `cpa help <command>`
    [[nodiscard]] bool is_switch() const { return value[0] == '\0'; }
};

// Simple flag cursor: --key value pairs after the positional arguments.
// `--key=value` spellings are normalized to the two-token form up front.
class Flags {
public:
    Flags(std::vector<std::string> args);

    // Spec-driven accessors — the preferred interface; the spec carries the
    // flag name and its default.
    [[nodiscard]] std::string take(const OptionSpec& spec)
    {
        return take(spec.flag, spec.fallback);
    }
    [[nodiscard]] bool take_switch(const OptionSpec& spec)
    {
        return take_switch(std::string(spec.flag));
    }

    [[nodiscard]] std::string take(const std::string& key,
                                   const std::string& fallback);
    [[nodiscard]] bool take_switch(const std::string& key);
    void expect_empty() const;

private:
    std::vector<std::string> args_;
};

// The option vocabulary. Grouped so a command's registry entry can list the
// exact specs its parser consumes.
namespace opt {
// Observability (shared by every analysis command; docs/observability.md).
extern const OptionSpec kMetricsOut;
extern const OptionSpec kTrace;
extern const OptionSpec kProfileOut;
extern const OptionSpec kProgress;
// Engine selection (shared; docs/performance.md).
extern const OptionSpec kEngine;
extern const OptionSpec kJobs;
// Analysis configuration.
extern const OptionSpec kPolicy;    // fp|rr|tdma|perfect (default fp)
extern const OptionSpec kPolicyAll; // analyze's variant with 'all'
extern const OptionSpec kNoPersistence;
extern const OptionSpec kCrpd;
extern const OptionSpec kCpro;
// analyze/simulate extras.
extern const OptionSpec kReport;
extern const OptionSpec kCsv;
extern const OptionSpec kSimCheck;
extern const OptionSpec kHorizonPeriods;
extern const OptionSpec kHyperperiod;
// Generation / sweep / check knobs.
extern const OptionSpec kCores;
extern const OptionSpec kTasksPerCore;
extern const OptionSpec kCacheSets;
extern const OptionSpec kUtilization;
extern const OptionSpec kSeedGenerate;
extern const OptionSpec kSeedSweep;
extern const OptionSpec kSeedCheck;
extern const OptionSpec kTaskSets;
extern const OptionSpec kTrials;
extern const OptionSpec kMinUtilization;
extern const OptionSpec kMaxUtilization;
extern const OptionSpec kSkipSim;
extern const OptionSpec kFailOnViolation;
extern const OptionSpec kList;
// verify.
extern const OptionSpec kProfile;
extern const OptionSpec kBox;
extern const OptionSpec kMaxDepth;
extern const OptionSpec kMaxNodes;
extern const OptionSpec kFailOn;
// version.
extern const OptionSpec kJson;
// batch.
extern const OptionSpec kInput;
extern const OptionSpec kTaskset;
} // namespace opt

// The observability flag bundle, parsed in one call so no command can
// accept a subset by accident.
struct ObsOptions {
    std::string metrics_out;
    std::string trace_spec;
    std::string profile_out;
    bool progress = false;

    // `with_progress`: only the long-running trial commands accept
    // --progress.
    [[nodiscard]] static ObsOptions take(Flags& flags,
                                         bool with_progress = false);
};

// The engine/parallelism bundle.
struct EngineOptions {
    analysis::WcrtEngine engine = analysis::WcrtEngine::kIncremental;
    std::size_t jobs = 0; // 0 = resolve via CPA_JOBS / hardware concurrency

    [[nodiscard]] static EngineOptions take(Flags& flags,
                                            bool with_jobs = true);
};

// Scoped activation of the observability layer for one CLI command: installs
// a trace sink on `err` when --trace was given, and enables + resets the
// metrics registry when --metrics-out was given. The destructor restores the
// inactive defaults so in-process callers (tests) don't leak state between
// invocations.
class ObsScope {
public:
    ObsScope(const ObsOptions& options, std::ostream& err);
    ~ObsScope();
    ObsScope(const ObsScope&) = delete;
    ObsScope& operator=(const ObsScope&) = delete;

    [[nodiscard]] bool metrics_requested() const { return metrics_requested_; }

private:
    bool metrics_requested_ = false;
    bool trace_installed_ = false;
    bool profiling_ = false;
    std::ofstream profile_file_;
};

// Progress reporter for the long-running commands: plain lines on stderr
// (never stdout — golden transcripts and determinism diffs compare stdout),
// with an ETA extrapolated from the mean time per completed unit.
[[nodiscard]] std::function<void(std::size_t, std::size_t)>
make_progress_printer(std::ostream& err, const char* unit);

// Writes the run report to `path` ('-' = the command's output stream). The
// metrics snapshot is taken here, after the command's work is done.
void write_run_report(obs::RunReport& report, const std::string& path,
                      std::ostream& out);

// Throwing wrappers over the analysis::*_from_string parsers, with the
// flag-appropriate error messages.
[[nodiscard]] analysis::BusPolicy parse_policy(const std::string& name);
[[nodiscard]] analysis::CrpdMethod parse_crpd(const std::string& name);
[[nodiscard]] analysis::CproMethod parse_cpro(const std::string& name);
[[nodiscard]] analysis::WcrtEngine parse_engine(const std::string& name);

// Parses the shared analysis-configuration flags (--policy/--no-persistence/
// --crpd/--cpro/--engine) into the library's request type; the CLI commands
// then carry one AnalysisRequest instead of loose config fields.
// `policy_spec` distinguishes commands whose --policy accepts 'all'
// (cmd_analyze; then request.config.policy is unset and *policy_name is
// "all") from single-policy commands.
[[nodiscard]] analysis::AnalysisRequest
take_analysis_request(Flags& flags, const OptionSpec& policy_spec,
                      std::string* policy_name = nullptr);

// One row of the command registry: everything `cpa help [command]` and the
// top-level usage render.
struct CommandSpec {
    const char* name;
    const char* positional; // "<file>" or ""
    const char* summary;    // one-line description
    std::vector<const OptionSpec*> options;
};

// All commands, in usage order. Single source for dispatch validation and
// help rendering.
[[nodiscard]] const std::vector<CommandSpec>& command_registry();

// Top-level usage text (command list generated from the registry).
void print_usage(std::ostream& out);

// `cpa help <command>`: the command's summary + generated option table.
// Returns false when `name` is not a registered command.
[[nodiscard]] bool print_command_help(const std::string& name,
                                      std::ostream& out);

} // namespace cpa::cli
