#include "analysis/bus_bounds.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::fig1_task_set;
using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using util::AccessCount;
using namespace util::literals;

PlatformConfig fig1_platform()
{
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 16;
    platform.d_mem = Cycles{1};
    platform.slot_size = 1;
    return platform;
}

AnalysisConfig config_with(bool persistence, BusPolicy policy)
{
    AnalysisConfig config;
    config.policy = policy;
    config.persistence_aware = persistence;
    return config;
}

struct Fig1Fixture {
    tasks::TaskSet ts = fig1_task_set(/*t1_period=*/10, /*t2_period=*/60,
                                      /*t3_period=*/6);
    PlatformConfig platform = fig1_platform();
    InterferenceTables tables{ts, CrpdMethod::kEcbUnion};
    // τ3's response-time estimate used by Eq. (5)-(6).
    std::vector<Cycles> response{10_cy, 60_cy, 6_cy};
};

TEST(BusBounds, BasWithoutPersistenceMatchesEq12)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    // E_1(25) = 3 jobs of τ1: 8 + 3*(6+2) = 32 (Eq. (12) of the paper).
    EXPECT_EQ(bounds.bas(1, 25_cy), 32_acc);
}

TEST(BusBounds, BasWithPersistenceMatchesEq15)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(true, BusPolicy::kRoundRobin),
        f.tables);
    // MD_2 + min(18, M̂D_1(3) + ρ̂_{1,2}(3)) + 3γ = 8 + (8+4) + 6 = 26
    // (Eq. (15) of the paper).
    EXPECT_EQ(bounds.bas(1, 25_cy), 26_acc);
}

TEST(BusBounds, BasOfHighestPriorityTaskIsItsOwnDemand)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(true, BusPolicy::kRoundRobin),
        f.tables);
    EXPECT_EQ(bounds.bas(0, 25_cy), 6_acc);
}

TEST(BusBounds, BaoWithoutPersistenceCountsFullJobsAndCarryOut)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    // N_{2,3}(25) = floor((25 + 6 - 6)/6) = 4 full jobs -> 24 accesses,
    // carry-out: ceil((25 + 6 - 6 - 24)/1) = 1.
    EXPECT_EQ(bounds.bao(1, 2, 25_cy, f.response), 25_acc);
}

TEST(BusBounds, BaoWithPersistenceMatchesPaperExample)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(true, BusPolicy::kRoundRobin),
        f.tables);
    // The paper: MD_3 + 3*MDr_3 = 9 accesses for the four jobs (M̂D_3(4)),
    // plus the unchanged carry-out of 1.
    EXPECT_EQ(bounds.bao(1, 2, 25_cy, f.response), 10_acc);
}

TEST(BusBounds, BaoSkipsLowerPriorityTasks)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    // At level k = 1 (τ2), core 1 hosts no task of priority 1 or higher.
    EXPECT_EQ(bounds.bao(1, 1, 25_cy, f.response), 0_acc);
    // bao_lower at level 1 captures exactly τ3.
    EXPECT_EQ(bounds.bao_lower(1, 1, 25_cy, f.response), 25_acc);
}

TEST(BusBounds, BaoZeroForZeroWindowWithZeroResponse)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    const std::vector<Cycles> response{0_cy, 0_cy, 0_cy};
    EXPECT_EQ(bounds.bao(1, 2, 0_cy, response), 0_acc);
}

TEST(BusBounds, BatFixedPriorityCombinesAllTerms)
{
    Fig1Fixture f;
    const BusContentionAnalysis baseline(
        f.ts, f.platform, config_with(false, BusPolicy::kFixedPriority),
        f.tables);
    // τ2 is the lowest-priority task of its core -> no +1 blocking term.
    // 32 (BAS) + 0 (BAO higher) + min(32, 25) (lower-priority accesses).
    EXPECT_EQ(baseline.bat(1, 25_cy, f.response), 57_acc);

    const BusContentionAnalysis persist(
        f.ts, f.platform, config_with(true, BusPolicy::kFixedPriority),
        f.tables);
    EXPECT_EQ(persist.bat(1, 25_cy, f.response), AccessCount{26 + 0 + 10});
}

TEST(BusBounds, BatFixedPriorityAddsBlockingForNonLowestTask)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kFixedPriority),
        f.tables);
    // τ1 has τ2 below it on core 0 -> +1. BAS_1(10) = 6.
    // BAO at level 0 on core 1: empty. bao_lower: τ3's accesses.
    const AccessCount bao_low = bounds.bao_lower(1, 0, 10_cy, f.response);
    EXPECT_EQ(bounds.bat(0, 10_cy, f.response),
              AccessCount{6 + 0 + 1} + std::min(6_acc, bao_low));
}

TEST(BusBounds, BatRoundRobinCapsOtherCoreBySlots)
{
    Fig1Fixture f;
    const BusContentionAnalysis baseline(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    // min(BAO_n = 25, s*BAS = 32) = 25 -> 57.
    EXPECT_EQ(baseline.bat(1, 25_cy, f.response), 57_acc);

    const BusContentionAnalysis persist(
        f.ts, f.platform, config_with(true, BusPolicy::kRoundRobin),
        f.tables);
    // min(10, 26) = 10 -> 36.
    EXPECT_EQ(persist.bat(1, 25_cy, f.response), 36_acc);
}

TEST(BusBounds, BatTdmaScalesOwnDemandByForeignSlots)
{
    Fig1Fixture f;
    const BusContentionAnalysis baseline(
        f.ts, f.platform, config_with(false, BusPolicy::kTdma), f.tables);
    // (L-1)*s = 1 foreign slot per own access: 32 + 32 = 64.
    EXPECT_EQ(baseline.bat(1, 25_cy, f.response), 64_acc);

    const BusContentionAnalysis persist(
        f.ts, f.platform, config_with(true, BusPolicy::kTdma), f.tables);
    EXPECT_EQ(persist.bat(1, 25_cy, f.response), 52_acc);
}

TEST(BusBounds, BatPerfectBusIsJustSameCoreDemand)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(true, BusPolicy::kPerfect), f.tables);
    EXPECT_EQ(bounds.bat(1, 25_cy, f.response), bounds.bas(1, 25_cy));
}

// --- Property tests -------------------------------------------------------

class BusBoundsProperty : public ::testing::TestWithParam<BusPolicy> {};

TEST_P(BusBoundsProperty, PersistenceAwareNeverExceedsBaseline)
{
    Fig1Fixture f;
    const BusContentionAnalysis baseline(
        f.ts, f.platform, config_with(false, GetParam()), f.tables);
    const BusContentionAnalysis persist(
        f.ts, f.platform, config_with(true, GetParam()), f.tables);
    for (Cycles t{0}; t <= Cycles{200}; t += Cycles{7}) {
        for (std::size_t i = 0; i < f.ts.size(); ++i) {
            EXPECT_LE(persist.bas(i, t), baseline.bas(i, t))
                << "i=" << i << " t=" << t;
            EXPECT_LE(persist.bat(i, t, f.response),
                      baseline.bat(i, t, f.response))
                << "i=" << i << " t=" << t;
        }
    }
}

TEST_P(BusBoundsProperty, BoundsAreMonotoneInWindowLength)
{
    // BAS (Eq. (1)/(16)) is monotone in t for both variants. BAT is monotone
    // whenever its BAO terms are — i.e., for the persistence-oblivious
    // analysis (any policy) and for TDMA/Perfect (which do not use BAO).
    // The literal persistence-aware BAO of Lemma 2 is NOT monotone (see the
    // Lemma2CarryOutDip test below), so FP/RR with persistence are excluded.
    Fig1Fixture f;
    for (const bool persistence : {false, true}) {
        const BusContentionAnalysis bounds(
            f.ts, f.platform, config_with(persistence, GetParam()), f.tables);
        const bool bat_monotone =
            !persistence || GetParam() == BusPolicy::kTdma ||
            GetParam() == BusPolicy::kPerfect;
        for (std::size_t i = 0; i < f.ts.size(); ++i) {
            AccessCount previous_bas{0};
            AccessCount previous_bat{0};
            for (Cycles t{0}; t <= Cycles{300}; t += Cycles{1}) {
                const AccessCount current_bas = bounds.bas(i, t);
                EXPECT_GE(current_bas, previous_bas) << "i=" << i << " t=" << t;
                previous_bas = current_bas;
                if (bat_monotone) {
                    const AccessCount current_bat =
                        bounds.bat(i, t, f.response);
                    EXPECT_GE(current_bat, previous_bat)
                        << "i=" << i << " t=" << t;
                    previous_bat = current_bat;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, BusBoundsProperty,
                         ::testing::Values(BusPolicy::kFixedPriority,
                                           BusPolicy::kRoundRobin,
                                           BusPolicy::kTdma,
                                           BusPolicy::kPerfect));

TEST(BusBounds, JobBoundedCproTightensRareEvictors)
{
    // τ1: high-frequency, fully persistent footprint. τ2: rare evictor
    // whose ECBs cover τ1's PCBs. CPRO-union charges an eviction between
    // every pair of τ1 jobs; the job-bounded refinement knows τ2 runs at
    // most twice in the window.
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 2, 4, 0, 10, 0, {1, 2, 3, 4}, {}, {1, 2, 3, 4}},
            {0, 5, 2, 2, 1000, 0, {1, 2, 3, 4, 5}, {}, {}},
        });
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = Cycles{1};
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);

    AnalysisConfig union_config;
    union_config.persistence_aware = true;
    union_config.cpro = CproMethod::kUnion;
    AnalysisConfig job_config = union_config;
    job_config.cpro = CproMethod::kJobBound;

    const BusContentionAnalysis by_union(ts, platform, union_config, tables);
    const BusContentionAnalysis by_jobs(ts, platform, job_config, tables);

    // Window t = 100: E_1 = 10 jobs of τ1.
    // Union: min(10*4, M̂D(10) + 9*4) = min(40, 4 + 36) = 40 -> no gain.
    // Job-bounded: τ2 has ⌈100/1000⌉ + 1 = 2 jobs * overlap 4 = 8 ->
    //              min(40, 4 + 8) = 12.
    EXPECT_EQ(by_union.bas(1, 100_cy), AccessCount{2 + 40});
    EXPECT_EQ(by_jobs.bas(1, 100_cy), AccessCount{2 + 12});
}

TEST(BusBounds, JobBoundedCproNeverLooserThanUnion)
{
    Fig1Fixture f;
    AnalysisConfig union_config = config_with(true, BusPolicy::kRoundRobin);
    AnalysisConfig job_config = union_config;
    job_config.cpro = CproMethod::kJobBound;
    const BusContentionAnalysis by_union(f.ts, f.platform, union_config,
                                         f.tables);
    const BusContentionAnalysis by_jobs(f.ts, f.platform, job_config,
                                        f.tables);
    for (Cycles t{0}; t <= Cycles{200}; t += Cycles{3}) {
        for (std::size_t i = 0; i < f.ts.size(); ++i) {
            EXPECT_LE(by_jobs.bas(i, t), by_union.bas(i, t));
            EXPECT_LE(by_jobs.bat(i, t, f.response),
                      by_union.bat(i, t, f.response));
        }
    }
}

TEST(BusBounds, PairOverlapTableMatchesDefinition)
{
    Fig1Fixture f;
    // |PCB_1 ∩ ECB_2| = |{5,6,7,8,10} ∩ {1..6}| = 2 on core 0; τ3 is on
    // another core, so all of its pairs are zero.
    EXPECT_EQ(f.tables.pair_overlap(0, 1), 2_acc);
    EXPECT_EQ(f.tables.pair_overlap(1, 0),
              0_acc); // τ2 has no PCBs
    EXPECT_EQ(f.tables.pair_overlap(0, 2), 0_acc);
    EXPECT_EQ(f.tables.pair_overlap(2, 0), 0_acc);
    EXPECT_EQ(f.tables.pair_overlap(0, 0),
              0_acc); // a task never evicts itself
}

// Documents a quirk of the published equations: when a carry-out job of
// Eq. (5) turns into a "full" job of Eq. (6), Lemma 2 re-prices it from its
// raw demand MD + γ down to the persistence-capped M̂D increment, so the
// persistence-aware BAO can *decrease* as the window grows. The WCRT
// iteration remains well-defined (it finds the smallest solution of
// Eq. (19) by Kleene iteration from below), but BAO monotonicity must not
// be assumed — this test pins the behavior so a refactor cannot silently
// "fix" the equations away from the paper.
TEST(BusBounds, Lemma2CarryOutDipIsPossible)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(true, BusPolicy::kRoundRobin),
        f.tables);
    // τ3: T=6, MD=6, MDr=1, R3=6, d_mem=1. At t=11 the carry-out job is
    // priced at ceil((11+6-6-6)/1)=5 raw accesses (total 6+5=11); at t=12 it
    // becomes the second full job and the pair is re-priced at
    // M̂D(2) = min(12, 2*1+5) = 7.
    const AccessCount at_11 = bounds.bao(1, 2, 11_cy, f.response);
    const AccessCount at_12 = bounds.bao(1, 2, 12_cy, f.response);
    EXPECT_EQ(at_11, 11_acc);
    EXPECT_EQ(at_12, 7_acc);
}

TEST(BusBounds, BaoMonotoneInResponseEstimates)
{
    Fig1Fixture f;
    const BusContentionAnalysis bounds(
        f.ts, f.platform, config_with(false, BusPolicy::kRoundRobin),
        f.tables);
    AccessCount previous{0};
    for (Cycles r3{0}; r3 <= Cycles{60}; r3 += Cycles{1}) {
        const std::vector<Cycles> response{10_cy, 60_cy, r3};
        const AccessCount value = bounds.bao(1, 2, 25_cy, response);
        EXPECT_GE(value, previous) << "r3=" << r3;
        previous = value;
    }
}

} // namespace
} // namespace cpa::analysis
