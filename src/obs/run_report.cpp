#include "obs/run_report.hpp"

#include <ostream>
#include <sstream>

namespace cpa::obs {

RunReport::RunReport(std::string_view tool) : root_(JsonValue::object())
{
    root_.set("schema_version", JsonValue(kRunReportSchemaVersion));
    root_.set("tool", JsonValue(tool));
}

void RunReport::set(std::string_view key, JsonValue value)
{
    root_.set(key, std::move(value));
}

JsonValue& RunReport::section(std::string_view key)
{
    return root_.set(key, JsonValue::object());
}

JsonValue& RunReport::list(std::string_view key)
{
    return root_.set(key, JsonValue::array());
}

void RunReport::set_metrics(const MetricsSnapshot& snapshot)
{
    root_.set("metrics", metrics_to_json(snapshot));
}

void RunReport::write_json(std::ostream& out) const
{
    root_.write(out);
    out << '\n';
}

std::string RunReport::to_json() const
{
    std::ostringstream out;
    write_json(out);
    return out.str();
}

JsonValue metrics_to_json(const MetricsSnapshot& snapshot)
{
    JsonValue metrics = JsonValue::object();
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : snapshot.counters) {
        counters.set(name, JsonValue(value));
    }
    metrics.set("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto& [name, value] : snapshot.gauges) {
        gauges.set(name, JsonValue(value));
    }
    metrics.set("gauges", std::move(gauges));

    JsonValue timers = JsonValue::object();
    for (const auto& [name, stat] : snapshot.timers) {
        JsonValue entry = JsonValue::object();
        entry.set("total_ns", JsonValue(stat.total_ns));
        entry.set("count", JsonValue(stat.count));
        timers.set(name, std::move(entry));
    }
    metrics.set("timers", std::move(timers));
    return metrics;
}

} // namespace cpa::obs
