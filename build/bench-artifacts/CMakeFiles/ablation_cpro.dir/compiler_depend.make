# Empty compiler generated dependencies file for ablation_cpro.
# This may be replaced when dependencies are built.
