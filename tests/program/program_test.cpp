#include "program/program.hpp"

#include <gtest/gtest.h>

namespace cpa::program {
namespace {

TEST(ProgramBuilder, StraightLineTrace)
{
    ProgramBuilder b("straight");
    b.straight(10, 3);
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(), (std::vector<std::size_t>{10, 11, 12}));
}

TEST(ProgramBuilder, LoopRepeatsBody)
{
    ProgramBuilder b("loop");
    b.begin_loop(3);
    b.straight(0, 2);
    b.end_loop();
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(),
              (std::vector<std::size_t>{0, 1, 0, 1, 0, 1}));
}

TEST(ProgramBuilder, NestedLoopsMultiply)
{
    ProgramBuilder b("nested");
    b.begin_loop(2);
    b.blocks({7});
    b.begin_loop(3);
    b.blocks({8});
    b.end_loop();
    b.end_loop();
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(),
              (std::vector<std::size_t>{7, 8, 8, 8, 7, 8, 8, 8}));
}

TEST(ProgramBuilder, ZeroIterationLoopContributesNothing)
{
    ProgramBuilder b("zero");
    b.blocks({1});
    b.begin_loop(0);
    b.blocks({2});
    b.end_loop();
    b.blocks({3});
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(), (std::vector<std::size_t>{1, 3}));
}

TEST(ProgramBuilder, UnclosedLoopThrows)
{
    ProgramBuilder b("bad");
    b.begin_loop(2);
    EXPECT_THROW((void)std::move(b).build(), std::logic_error);
}

TEST(ProgramBuilder, EndLoopWithoutBeginThrows)
{
    ProgramBuilder b("bad");
    EXPECT_THROW(b.end_loop(), std::logic_error);
}

TEST(ProgramBuilder, AlternativeSelectsBranchPerSelector)
{
    ProgramBuilder b("alt");
    b.blocks({1});
    b.begin_alternative();
    b.blocks({2});
    b.next_branch();
    b.blocks({3, 4});
    b.end_alternative();
    b.blocks({5});
    const Program p = std::move(b).build();

    EXPECT_TRUE(p.has_alternatives());
    // Default selector takes branch 0.
    EXPECT_EQ(p.reference_trace(), (std::vector<std::size_t>{1, 2, 5}));
    EXPECT_EQ(p.reference_trace([](std::size_t) { return 1u; }),
              (std::vector<std::size_t>{1, 3, 4, 5}));
}

TEST(ProgramBuilder, SelectorOutOfRangeThrows)
{
    ProgramBuilder b("alt");
    b.begin_alternative();
    b.blocks({1});
    b.end_alternative();
    const Program p = std::move(b).build();
    EXPECT_THROW((void)p.reference_trace([](std::size_t) { return 7u; }),
                 std::out_of_range);
}

TEST(ProgramBuilder, DistinctBlocksSpanAllBranches)
{
    ProgramBuilder b("alt");
    b.begin_alternative();
    b.blocks({2});
    b.next_branch();
    b.blocks({9});
    b.end_alternative();
    const Program p = std::move(b).build();
    EXPECT_EQ(p.distinct_blocks(), (std::vector<std::size_t>{2, 9}));
}

TEST(ProgramBuilder, AlternativeInsideLoopResolvedPerIteration)
{
    ProgramBuilder b("alt_loop");
    b.begin_loop(3);
    b.begin_alternative();
    b.blocks({1});
    b.next_branch();
    b.blocks({2});
    b.end_alternative();
    b.end_loop();
    const Program p = std::move(b).build();
    std::size_t call = 0;
    const auto trace =
        p.reference_trace([&call](std::size_t) { return call++ % 2; });
    EXPECT_EQ(trace, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(ProgramBuilder, MismatchedConstructsThrow)
{
    {
        ProgramBuilder b("bad");
        b.begin_alternative();
        EXPECT_THROW(b.end_loop(), std::logic_error);
    }
    {
        ProgramBuilder b("bad");
        b.begin_loop(2);
        EXPECT_THROW(b.end_alternative(), std::logic_error);
    }
    {
        ProgramBuilder b("bad");
        EXPECT_THROW(b.next_branch(), std::logic_error);
    }
    {
        ProgramBuilder b("bad");
        b.begin_alternative();
        EXPECT_THROW((void)std::move(b).build(), std::logic_error);
    }
}

TEST(ProgramBuilder, ProceduresShareCodeAcrossCallSites)
{
    ProgramBuilder b("proc");
    b.begin_procedure("helper");
    b.straight(20, 3);
    b.end_procedure();
    b.blocks({1});
    b.call("helper");
    b.blocks({2});
    b.call("helper");
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(),
              (std::vector<std::size_t>{1, 20, 21, 22, 2, 20, 21, 22}));
    // Distinct blocks include the procedure body exactly once.
    EXPECT_EQ(p.distinct_blocks(),
              (std::vector<std::size_t>{1, 2, 20, 21, 22}));
}

TEST(ProgramBuilder, ProceduresCanCallOtherProcedures)
{
    ProgramBuilder b("nested_call");
    b.begin_procedure("inner");
    b.blocks({9});
    b.end_procedure();
    b.begin_procedure("outer");
    b.blocks({5});
    b.call("inner");
    b.end_procedure();
    b.call("outer");
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(), (std::vector<std::size_t>{5, 9}));
}

TEST(ProgramBuilder, UndefinedCallRejectedAtBuild)
{
    ProgramBuilder b("bad");
    b.call("nowhere");
    EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(ProgramBuilder, RecursiveCallsRejected)
{
    ProgramBuilder b("recursive");
    b.begin_procedure("self");
    b.call("self");
    b.end_procedure();
    b.call("self");
    EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(ProgramBuilder, ProcedureConstructErrors)
{
    {
        ProgramBuilder b("bad");
        b.begin_loop(2);
        EXPECT_THROW(b.begin_procedure("p"), std::logic_error);
    }
    {
        ProgramBuilder b("bad");
        EXPECT_THROW(b.end_procedure(), std::logic_error);
    }
    {
        ProgramBuilder b("bad");
        b.begin_procedure("p");
        b.end_procedure();
        EXPECT_THROW(b.begin_procedure("p"), std::logic_error); // duplicate
    }
    {
        ProgramBuilder b("bad");
        b.begin_procedure("p");
        EXPECT_THROW((void)std::move(b).build(), std::logic_error);
    }
}

TEST(Program, CallInsideLoopRepeatsProcedureBody)
{
    ProgramBuilder b("loop_call");
    b.begin_procedure("work");
    b.blocks({7, 8});
    b.end_procedure();
    b.begin_loop(3);
    b.call("work");
    b.end_loop();
    const Program p = std::move(b).build();
    EXPECT_EQ(p.reference_trace(),
              (std::vector<std::size_t>{7, 8, 7, 8, 7, 8}));
}

TEST(Program, HasAlternativesFalseForStraightLineAndLoops)
{
    ProgramBuilder b("plain");
    b.begin_loop(2);
    b.straight(0, 2);
    b.end_loop();
    const Program p = std::move(b).build();
    EXPECT_FALSE(p.has_alternatives());
}

TEST(Program, DistinctBlocksSortedUnique)
{
    ProgramBuilder b("distinct");
    b.blocks({5, 3, 5, 1});
    const Program p = std::move(b).build();
    EXPECT_EQ(p.distinct_blocks(), (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Program, RejectsNonPositiveFetchCost)
{
    EXPECT_THROW(Program("bad", {}, util::Cycles{0}), std::invalid_argument);
}

} // namespace
} // namespace cpa::program
