// Scenario: end-to-end validation on a program WITH control flow.
//
// A branchy telemetry encoder is modeled with alternatives (if/else inside
// the encode loop). The trace-based extractor cannot cover both branches,
// so the abstract must-cache analysis provides sound parameters; those feed
// the persistence-aware WCRT analysis; and finally the PROGRAM-LEVEL
// simulator executes the real traces through real caches to confirm the
// bound covers ground truth for several branch behaviors.
//
//   $ ./build/examples/ground_truth
#include "analysis/wcrt.hpp"
#include "cache/direct_mapped.hpp"
#include "program/abstract.hpp"
#include "program/extract.hpp"
#include "sim/program_sim.hpp"
#include "util/table.hpp"

#include <iostream>

using namespace cpa;

namespace {

// Telemetry encoder: header, then 400 iterations of (sample; compress OR
// passthrough), then checksum. The compress branch aliases the sample code
// in a 64-set cache.
program::Program telemetry_encoder()
{
    program::ProgramBuilder b("telemetry");
    b.straight(0, 6); // header
    b.begin_loop(400);
    b.straight(6, 8); // sample (blocks 6..13)
    b.begin_alternative();
    b.straight(70, 8); // compress: sets 6..13 at 64 sets (aliases sample)
    b.next_branch();
    b.straight(14, 2); // passthrough
    b.end_alternative();
    b.end_loop();
    b.straight(16, 4); // checksum
    return std::move(b).build();
}

// Background housekeeping task sharing core 1's bus.
program::Program housekeeping()
{
    program::ProgramBuilder b("housekeeping");
    b.begin_loop(50);
    b.straight(100, 12);
    b.end_loop();
    return std::move(b).build();
}

} // namespace

int main()
{
    const cache::CacheGeometry geometry{64, 32};
    const program::Program encoder = telemetry_encoder();
    const program::Program hk = housekeeping();

    // --- Sound parameters from the abstract analysis ---------------------
    const program::AbstractExtraction bound =
        program::analyze_program(encoder, geometry);
    std::cout << "Abstract analysis of '" << encoder.name()
              << "' (64 sets): MD <= " << bound.md
              << ", MDr <= " << bound.md_residual << ", PD <= " << bound.pd
              << ", |PCB| = " << bound.pcb.popcount() << "\n";
    for (const auto& [label, selector] :
         {std::pair<const char*, program::BranchSelector>{
              "always compress", [](std::size_t) { return 0u; }},
          {"never compress", [](std::size_t) { return 1u; }}}) {
        std::size_t misses = 0;
        cache::DirectMappedCache cache(geometry);
        for (const std::size_t block : encoder.reference_trace(selector)) {
            misses += cache.access(block) ? 0u : 1u;
        }
        std::cout << "  concrete misses, " << label << ": " << misses
                  << "\n";
    }

    // --- Analysis on the two-core system ---------------------------------
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;

    const auto hk_params = program::extract_parameters(hk, geometry);
    const util::Cycles encoder_period =
        4 * (bound.pd + bound.md * platform.d_mem);
    const util::Cycles hk_period =
        3 * (hk_params.pd + hk_params.md * platform.d_mem);

    tasks::TaskSet ts(2, 64);
    {
        tasks::Task encoder_task;
        encoder_task.name = bound.name;
        encoder_task.core = 0;
        encoder_task.pd = bound.pd;
        encoder_task.md = bound.md;
        encoder_task.md_residual = bound.md_residual;
        encoder_task.period = encoder_period;
        encoder_task.deadline = encoder_period;
        encoder_task.ecb = bound.ecb;
        encoder_task.ucb = bound.ucb;
        encoder_task.pcb = bound.pcb;
        ts.add_task(std::move(encoder_task));
        ts.add_task(program::to_task(hk_params, 1, hk_period));
    }
    ts.validate();

    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kRoundRobin;
    const analysis::WcrtResult wcrt =
        analysis::compute_wcrt(ts, platform, config);
    std::cout << "\nWCRT bounds (RR bus): telemetry=" << wcrt.response[0]
              << " (D=" << encoder_period << "), housekeeping="
              << wcrt.response[1] << " (D=" << hk_period << ")\n";

    // --- Ground truth: program-level simulation --------------------------
    std::vector<sim::ProgramTask> workload(2);
    workload[0].program = &encoder;
    workload[0].core = 0;
    workload[0].period = encoder_period;
    workload[1].program = &hk;
    workload[1].core = 1;
    workload[1].period = hk_period;

    sim::ProgramSimConfig sim_config;
    sim_config.policy = analysis::BusPolicy::kRoundRobin;
    sim_config.horizon = 6 * encoder_period;
    const sim::ProgramSimResult observed =
        sim::simulate_programs(workload, platform, sim_config);

    std::cout << "Ground truth (program-level simulation, default branch):\n"
              << "  telemetry:    max R = " << observed.max_response[0]
              << ", misses = " << observed.bus_accesses[0]
              << ", hits = " << observed.cache_hits[0] << "\n"
              << "  housekeeping: max R = " << observed.max_response[1]
              << "\n"
              << (observed.max_response[0] <= wcrt.response[0] &&
                          observed.max_response[1] <= wcrt.response[1]
                      ? "  bound holds: observed <= WCRT for every task\n"
                      : "  BOUND VIOLATED — this would be an analysis bug\n");
    return 0;
}
