#include "analysis/multilevel.hpp"

#include "analysis/demand.hpp"
#include "util/math.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpa::analysis {

using util::accesses_from_blocks;
using util::ceil_div;
using util::clamp_non_negative;
using util::floor_div;
using util::SetMask;
using util::TaskId;

L2InterferenceTables::L2InterferenceTables(
    const tasks::TaskSet& ts, const std::vector<L2Footprint>& footprints)
{
    if (footprints.size() != ts.size()) {
        throw std::invalid_argument(
            "L2InterferenceTables: footprint count mismatch");
    }
    const std::size_t n = ts.size();
    overlap_.assign(n, std::vector<AccessCount>(n, AccessCount{0}));
    // The L2 is shared: every task of hep(i), on any core, can evict. For
    // fixed j the union over hep(i)\{j} grows with i -> ascending sweep.
    for (std::size_t j = 0; j < n; ++j) {
        SetMask evictors(footprints[j].ecb2.universe());
        for (std::size_t i = 0; i < n; ++i) {
            if (i != j) {
                evictors |= footprints[i].ecb2;
            }
            overlap_[j][i] = util::accesses_from_blocks(
                footprints[j].pcb2.intersection_count(evictors));
        }
    }
}

namespace {

// Two-level analogue of BusContentionAnalysis: request bounds (for the d_l2
// lookup term) and bus-access bounds (for the per-policy BAT combination).
class MultilevelBounds {
public:
    MultilevelBounds(const tasks::TaskSet& ts,
                     const PlatformConfig& platform,
                     const AnalysisConfig& config,
                     const std::vector<L2Footprint>& footprints,
                     const InterferenceTables& tables,
                     const L2InterferenceTables& l2_tables)
        : ts_(ts), platform_(platform), config_(config),
          footprints_(footprints), tables_(tables), l2_tables_(l2_tables)
    {
    }

    // B̂(n): bus accesses of n jobs of τ_j inside a priority-`level` window.
    [[nodiscard]] AccessCount bus_demand(std::size_t j, std::size_t level,
                                         std::int64_t n_jobs) const
    {
        const tasks::Task& task = ts_[j];
        const AccessCount raw = n_jobs * task.md;
        if (!config_.persistence_aware || n_jobs <= 0) {
            return std::max(raw, AccessCount{0});
        }
        const L2Footprint& fp = footprints_[j];
        const AccessCount warm =
            n_jobs * fp.md_residual_l2 +
            accesses_from_blocks(task.pcb.popcount()) +
            accesses_from_blocks(fp.pcb2.popcount()) +
            tables_.rho_hat(j, level, n_jobs) +
            l2_tables_.rho2_hat(j, level, n_jobs);
        return std::min(raw, warm);
    }

    // R̂(n): L1-miss requests (each costs d_l2) — the paper's Lemma 1
    // ingredients, unchanged by the L2.
    [[nodiscard]] AccessCount request_demand(std::size_t j,
                                             std::size_t level,
                                             std::int64_t n_jobs) const
    {
        const AccessCount raw = n_jobs * ts_[j].md;
        if (!config_.persistence_aware || n_jobs <= 0) {
            return std::max(raw, AccessCount{0});
        }
        return std::min(raw, md_hat(ts_[j], n_jobs) +
                                 tables_.rho_hat(j, level, n_jobs));
    }

    // Same-core requests in a window of length t (for the lookup term).
    [[nodiscard]] AccessCount reqs(std::size_t i, Cycles t) const
    {
        AccessCount total = ts_[i].md;
        for (const std::size_t j : ts_.tasks_on_core(ts_[i].core)) {
            if (j >= i) {
                break;
            }
            const std::int64_t jobs =
                ceil_div(t + ts_[j].jitter, ts_[j].period);
            total += request_demand(j, i, jobs) + jobs * tables_.gamma(i, j);
        }
        return total;
    }

    // Same-core bus accesses (two-level Lemma 1).
    [[nodiscard]] AccessCount bas(std::size_t i, Cycles t) const
    {
        AccessCount total = ts_[i].md;
        for (const std::size_t j : ts_.tasks_on_core(ts_[i].core)) {
            if (j >= i) {
                break;
            }
            const std::int64_t jobs =
                ceil_div(t + ts_[j].jitter, ts_[j].period);
            total += bus_demand(j, i, jobs) + jobs * tables_.gamma(i, j);
        }
        return total;
    }

    // Other-core bus accesses (two-level Lemma 2): Eq. (5)-(6) carry-out
    // and job-count machinery, with B̂ replacing Ŵ's demand cap.
    [[nodiscard]] AccessCount
    other_core_task(std::size_t k, std::size_t l, Cycles t,
                    const std::vector<Cycles>& response) const
    {
        const tasks::Task& task = ts_[l];
        const AccessCount gamma = tables_.gamma(k, l);
        const AccessCount per_job = task.md + gamma;
        const std::int64_t n_full = clamp_non_negative(floor_div(
            t + response[l] + task.jitter - per_job * platform_.d_mem,
            task.period));
        const AccessCount w_full =
            bus_demand(l, k, n_full) + n_full * gamma;
        const Cycles leftover = t + response[l] + task.jitter -
                                per_job * platform_.d_mem -
                                n_full * task.period;
        const AccessCount w_cout =
            std::clamp(util::accesses_covering(leftover, platform_.d_mem),
                       AccessCount{0}, per_job);
        return w_full + w_cout;
    }

    [[nodiscard]] AccessCount bao(std::size_t core, std::size_t k, Cycles t,
                                  const std::vector<Cycles>& response) const
    {
        AccessCount total{0};
        for (const std::size_t l : ts_.tasks_on_core(core)) {
            if (l > k) {
                break;
            }
            total += other_core_task(k, l, t, response);
        }
        return total;
    }

    [[nodiscard]] AccessCount
    bao_lower(std::size_t core, std::size_t i, Cycles t,
              const std::vector<Cycles>& response) const
    {
        AccessCount total{0};
        for (const std::size_t l : ts_.tasks_on_core(core)) {
            if (l <= i) {
                continue;
            }
            total += other_core_task(i, l, t, response);
        }
        return total;
    }

    // Per-policy total (the paper's Eq. (7)-(9) with two-level bounds).
    [[nodiscard]] AccessCount bat(std::size_t i, Cycles t,
                                  const std::vector<Cycles>& response) const
    {
        const AccessCount same_core = bas(i, t);
        const std::size_t my_core = ts_[i].core;
        const auto& on_core = ts_.tasks_on_core(my_core);
        const AccessCount blocking{
            (!on_core.empty() && on_core.back() > i) ? 1 : 0};

        switch (config_.policy) {
        case BusPolicy::kPerfect:
            return same_core;
        case BusPolicy::kFixedPriority: {
            AccessCount higher{0};
            AccessCount lower{0};
            for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
                if (core == my_core) {
                    continue;
                }
                higher += bao(core, i, t, response);
                lower += bao_lower(core, i, t, response);
            }
            return same_core + higher + blocking +
                   std::min(same_core, lower);
        }
        case BusPolicy::kRoundRobin: {
            const std::size_t lowest = ts_.size() - 1;
            AccessCount other{0};
            for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
                if (core == my_core) {
                    continue;
                }
                other += std::min(bao(core, lowest, t, response),
                                  platform_.slot_size * same_core);
            }
            return same_core + other + blocking;
        }
        case BusPolicy::kTdma: {
            const auto cores = static_cast<std::int64_t>(ts_.num_cores());
            return same_core + (cores - 1) * platform_.slot_size * same_core +
                   blocking;
        }
        }
        return same_core;
    }

private:
    const tasks::TaskSet& ts_;
    PlatformConfig platform_;
    AnalysisConfig config_;
    const std::vector<L2Footprint>& footprints_;
    const InterferenceTables& tables_;
    const L2InterferenceTables& l2_tables_;
};

} // namespace

WcrtResult
compute_wcrt_multilevel(const tasks::TaskSet& ts,
                        const PlatformConfig& platform,
                        const AnalysisConfig& config, const L2Config& l2,
                        const std::vector<L2Footprint>& footprints,
                        const InterferenceTables& tables,
                        const L2InterferenceTables& l2_tables)
{
    if (footprints.size() != ts.size()) {
        throw std::invalid_argument(
            "compute_wcrt_multilevel: footprint count mismatch");
    }
    if (ts.num_cores() > platform.num_cores) {
        throw std::invalid_argument(
            "compute_wcrt_multilevel: task set uses more cores than the "
            "platform has");
    }
    constexpr std::size_t kMaxOuter = 256;
    constexpr std::size_t kMaxInner = 100000;

    WcrtResult result;
    const std::size_t n = ts.size();
    result.response.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        result.response[i] =
            ts[i].pd + ts[i].md * (platform.d_mem + l2.d_l2);
    }

    const MultilevelBounds bounds(ts, platform, config, footprints, tables,
                                  l2_tables);

    for (std::size_t outer = 0; outer < kMaxOuter; ++outer) {
        result.outer_iterations = outer + 1;
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            Cycles r = std::max(result.response[i], Cycles{1});
            for (std::size_t iter = 0; iter < kMaxInner; ++iter) {
                Cycles rhs = ts[i].pd;
                for (const std::size_t j : ts.tasks_on_core(ts[i].core)) {
                    if (j >= i) {
                        break;
                    }
                    rhs += ceil_div(r, ts[j].period) * ts[j].pd;
                }
                rhs += bounds.reqs(i, r) * l2.d_l2;
                rhs += bounds.bat(i, r, result.response) * platform.d_mem;
                if (rhs <= r) {
                    break;
                }
                r = rhs;
                if (r > ts[i].effective_deadline()) {
                    break;
                }
            }
            if (r > ts[i].effective_deadline()) {
                result.schedulable = false;
                result.failed_task = TaskId{i};
                result.stop_reason = StopReason::kDeadlineMiss;
                result.response[i] = r;
                return result;
            }
            if (r != result.response[i]) {
                result.response[i] = r;
                changed = true;
            }
        }
        if (!changed) {
            result.schedulable = true;
            result.stop_reason = StopReason::kConverged;
            return result;
        }
    }
    result.schedulable = false;
    result.stop_reason = StopReason::kNoOuterConvergence;
    return result;
}

bool is_schedulable_multilevel(const tasks::TaskSet& ts,
                               const PlatformConfig& platform,
                               const AnalysisConfig& config,
                               const L2Config& l2,
                               const std::vector<L2Footprint>& footprints)
{
    if (ts.empty()) {
        return true;
    }
    if (config.policy == BusPolicy::kPerfect &&
        ts.bus_utilization(platform.d_mem) > 1.0) {
        return false;
    }
    const InterferenceTables tables(ts, config.crpd);
    const L2InterferenceTables l2_tables(ts, footprints);
    return compute_wcrt_multilevel(ts, platform, config, l2, footprints,
                                   tables, l2_tables)
        .schedulable;
}

} // namespace cpa::analysis
