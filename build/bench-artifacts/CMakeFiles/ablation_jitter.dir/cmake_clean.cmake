file(REMOVE_RECURSE
  "../bench/ablation_jitter"
  "../bench/ablation_jitter.pdb"
  "CMakeFiles/ablation_jitter.dir/ablation_jitter.cpp.o"
  "CMakeFiles/ablation_jitter.dir/ablation_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
