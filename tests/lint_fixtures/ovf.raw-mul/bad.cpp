// Fixture: multiplying raw representations sidesteps the
// CPA_CHECKED_ARITH trapping operators in units.hpp.
#include "util/units.hpp"

#include <cstdint>

std::int64_t footprint(cpa::util::AccessCount n)
{
    return n.count() * 8;
}
