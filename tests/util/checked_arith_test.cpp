// Runtime half of the CPA_CHECKED_ARITH contract (the compile-time half
// lives in tests/compile_fail/checked_*): with the option on, Quantity
// arithmetic that wraps 64 bits traps instead of silently folding the
// wrapped value into a bound. The asan-ubsan preset builds with
// -DCPA_CHECKED_ARITH=ON, so the death tests run armed there; in plain
// builds they skip (unchecked overflow is UB, not a defined wrap we could
// assert on).
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace {

using cpa::util::AccessCount;
using cpa::util::Cycles;

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

#if defined(CPA_CHECKED_ARITH)

TEST(CheckedArithDeathTest, AdditionOverflowTraps)
{
    // volatile keeps the operands out of the constant folder so the
    // overflow genuinely happens at run time.
    volatile std::int64_t big = kMax;
    EXPECT_DEATH(
        {
            Cycles c{big};
            Cycles sum = c + Cycles{1};
            (void)sum;
        },
        "");
}

TEST(CheckedArithDeathTest, CrossDimensionProductOverflowTraps)
{
    volatile std::int64_t big = kMax / 2;
    EXPECT_DEATH(
        {
            AccessCount n{big};
            Cycles demand = n * Cycles{3};
            (void)demand;
        },
        "");
}

TEST(CheckedArithDeathTest, CompoundSubtractionOverflowTraps)
{
    volatile std::int64_t low = std::numeric_limits<std::int64_t>::min();
    EXPECT_DEATH(
        {
            Cycles c{low};
            c -= Cycles{1};
            (void)c;
        },
        "");
}

#else

TEST(CheckedArithDeathTest, SkippedWithoutCheckedArith)
{
    GTEST_SKIP() << "CPA_CHECKED_ARITH is off in this build; the trap "
                    "behavior is exercised by the asan-ubsan preset";
}

#endif

// In-range arithmetic must be unaffected either way: the checked operators
// are the same operators, just with a wrap test in front.
TEST(CheckedArith, InRangeArithmeticUnchanged)
{
    EXPECT_EQ(Cycles{2} + Cycles{3}, Cycles{5});
    EXPECT_EQ(Cycles{5} - Cycles{7}, Cycles{-2});
    EXPECT_EQ(AccessCount{7} * Cycles{40}, Cycles{280});
    Cycles acc{kMax - 1};
    acc += Cycles{1};
    EXPECT_EQ(acc, Cycles{kMax});
}

} // namespace
