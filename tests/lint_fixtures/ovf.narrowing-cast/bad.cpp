// Fixture: casting a 64-bit representation to 32 bits truncates exactly
// where the analysis accumulates cycle values.
#include "util/units.hpp"

#include <cstdint>

std::int32_t truncate(cpa::util::Cycles c)
{
    return static_cast<std::int32_t>(c.count());
}
