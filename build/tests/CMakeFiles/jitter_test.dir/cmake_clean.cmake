file(REMOVE_RECURSE
  "CMakeFiles/jitter_test.dir/analysis/jitter_test.cpp.o"
  "CMakeFiles/jitter_test.dir/analysis/jitter_test.cpp.o.d"
  "jitter_test"
  "jitter_test.pdb"
  "jitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
