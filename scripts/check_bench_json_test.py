#!/usr/bin/env python3
"""Self-test for check_bench_json.py (stdlib unittest; run from ctest).

Builds valid and deliberately broken BENCH_*.json files in a temp directory
and asserts the validator's verdict on each — in particular the NaN/Infinity
rejection, which json.loads() would otherwise silently accept.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import check_bench_json  # noqa: E402


def valid_report(bench="demo"):
    return {
        "schema_version": 1,
        "tool": "bench",
        "bench": bench,
        "total_seconds": 1.25,
        "elapsed_ms": 1250,
        "jobs": 4,
        "sections": [{"name": "warmup", "seconds": 0.25}],
        "metrics": {
            "counters": {"wcrt.calls": 10},
            "gauges": {"tables.tasks": 4},
            "timers": {"wcrt.compute": {"total_ns": 1000, "count": 10}},
        },
    }


class CheckBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, report, bench="demo", raw=None):
        path = self.dir / f"BENCH_{bench}.json"
        path.write_text(raw if raw is not None else json.dumps(report) + "\n")
        return path

    def test_valid_report_passes(self):
        path = self.write(valid_report())
        self.assertTrue(check_bench_json.check_report(path))

    def test_main_over_directory(self):
        self.write(valid_report())
        self.assertEqual(
            check_bench_json.main(["check_bench_json", str(self.dir)]), 0)

    def test_nan_total_seconds_rejected(self):
        report = valid_report()
        report["total_seconds"] = float("nan")
        # json.dumps emits the non-standard token NaN; loads() accepts it
        # unless the validator explicitly rejects non-finite constants.
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_infinity_section_seconds_rejected(self):
        report = valid_report()
        report["sections"][0]["seconds"] = float("inf")
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_negative_infinity_rejected(self):
        report = valid_report()
        report["total_seconds"] = float("-inf")
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_malformed_json_rejected(self):
        path = self.write(None, raw="{not json\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_multiline_report_rejected(self):
        path = self.write(None,
                          raw=json.dumps(valid_report(), indent=2) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_wrong_schema_version_rejected(self):
        report = valid_report()
        report["schema_version"] = 2
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_mismatched_file_name_rejected(self):
        report = valid_report(bench="other")
        path = self.dir / "BENCH_demo.json"
        path.write_text(json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_missing_jobs_rejected(self):
        report = valid_report()
        del report["jobs"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_zero_jobs_rejected(self):
        report = valid_report()
        report["jobs"] = 0
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_elapsed_ms_rejected(self):
        report = valid_report()
        del report["elapsed_ms"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_float_elapsed_ms_rejected(self):
        report = valid_report()
        report["elapsed_ms"] = 1250.5
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_boolean_counter_rejected(self):
        report = valid_report()
        report["metrics"]["counters"]["wcrt.calls"] = True
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_metrics_rejected(self):
        report = valid_report()
        del report["metrics"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_main_flags_invalid_file(self):
        report = valid_report()
        report["total_seconds"] = float("nan")
        self.write(None, raw=json.dumps(report) + "\n")
        self.assertEqual(
            check_bench_json.main(["check_bench_json", str(self.dir)]), 1)


if __name__ == "__main__":
    unittest.main()
