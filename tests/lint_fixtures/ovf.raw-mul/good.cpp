// Fixture: the cross-dimension product operator carries the overflow
// check (and the dimensional bookkeeping) for us.
#include "util/units.hpp"

cpa::util::Cycles footprint(cpa::util::AccessCount n, cpa::util::Cycles per)
{
    return n * per;
}
