// Fixture: a shared accumulator updated inside a parallel body makes the
// result depend on thread interleaving (and float addition order).
#include "util/thread_pool.hpp"

#include <cstddef>

double sum_trials(cpa::util::ThreadPool& pool, std::size_t trials)
{
    double total = 0.0;
    pool.parallel_for_indexed(trials, [&](std::size_t i) {
        total += static_cast<double>(i);
    });
    return total;
}
