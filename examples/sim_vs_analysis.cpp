// Scenario: validating analytical bounds against execution.
//
// Generates a random 2-core workload, computes WCRT bounds for every bus
// policy, then runs the discrete-event simulator on the same workload and
// compares the worst observed response time with the bound — showing both
// soundness (observed <= bound) and the pessimism margin.
//
//   $ ./examples/sim_vs_analysis
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <iostream>

using namespace cpa;

int main()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 128;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;

    benchdata::GenerationConfig generation;
    generation.num_cores = 2;
    generation.tasks_per_core = 4;
    generation.cache_sets = 128;
    generation.per_core_utilization = 0.3;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 128);

    util::Rng rng(12);
    const tasks::TaskSet ts =
        benchdata::generate_task_set(rng, generation, pool);

    util::Cycles max_period{0};
    for (const auto& task : ts.tasks()) {
        max_period = std::max(max_period, task.period);
    }

    for (const auto& [name, policy] :
         {std::pair{"FP", analysis::BusPolicy::kFixedPriority},
          std::pair{"RR", analysis::BusPolicy::kRoundRobin},
          std::pair{"TDMA", analysis::BusPolicy::kTdma}}) {
        analysis::AnalysisConfig config;
        config.policy = policy;
        config.persistence_aware = true;
        const auto wcrt = analysis::compute_wcrt(ts, platform, config);

        sim::SimConfig sim_config;
        sim_config.policy = policy;
        sim_config.horizon = 4 * max_period;
        const auto observed = sim::simulate(ts, platform, sim_config);

        std::cout << "== " << name << " bus ("
                  << (wcrt.schedulable ? "schedulable" : "not schedulable")
                  << " per analysis) ==\n";
        util::TextTable table(
            {"task", "core", "observed R", "WCRT bound", "bound/observed"});
        for (std::size_t i = 0; i < ts.size(); ++i) {
            const bool have_bound =
                wcrt.schedulable || util::TaskId{i} < wcrt.failed_task;
            const double ratio =
                observed.max_response[i] > util::Cycles{0} && have_bound
                    ? util::to_double(wcrt.response[i]) /
                          util::to_double(observed.max_response[i])
                    : 0.0;
            table.add_row({ts[i].name, std::to_string(ts[i].core),
                           util::to_string(observed.max_response[i]),
                           have_bound ? util::to_string(wcrt.response[i])
                                      : std::string("n/a"),
                           ratio > 0 ? util::TextTable::num(ratio, 2)
                                     : std::string("-")});
        }
        table.print(std::cout);
        std::cout << (observed.deadline_missed
                          ? "simulation: DEADLINE MISS\n\n"
                          : "simulation: all deadlines met\n\n");
    }
    return 0;
}
