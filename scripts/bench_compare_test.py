#!/usr/bin/env python3
"""Self-test for bench_compare.py and bench_history.py (stdlib unittest).

The load-bearing property: an injected deterministic-counter regression
must FAIL the gate, while wall-clock noise (slower elapsed_ms, different
_ns histogram value statistics) must PASS it — otherwise the gate is either
blind or flaky.
"""

import io
import json
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402
import bench_history  # noqa: E402


def make_report(bench="fig2_core_utilization", sha="a" * 40):
    return {
        "schema_version": 2,
        "tool": "bench",
        "provenance": {
            "version": "1.0.0",
            "git_sha": sha,
            "git_dirty": "clean",
            "compiler": "GNU 12.2.0",
            "build_type": "Release",
            "obs": True,
            "check": True,
            "sanitize": "",
        },
        "bench": bench,
        "total_seconds": 1.0,
        "elapsed_ms": 1000,
        "jobs": 4,
        "sections": [{"name": "sweep", "seconds": 1.0}],
        "metrics": {
            "counters": {"wcrt.calls": 320, "wcrt.outer_iterations": 2100},
            "gauges": {"tables.tasks": 32},
            "timers": {"wcrt.compute": {"total_ns": 900000, "count": 320}},
            "histograms": {
                "bench.total_ns": {"count": 1, "sum": 10 ** 9,
                                   "min": 10 ** 9, "max": 10 ** 9,
                                   "p50": 10 ** 9, "p90": 10 ** 9,
                                   "p99": 10 ** 9},
                "trial.wall_ns": {"count": 80, "sum": 800000, "min": 5000,
                                  "max": 30000, "p50": 8191, "p90": 16383,
                                  "p99": 30000},
                "wcrt.inner_iterations_per_call": {
                    "count": 320, "sum": 4800, "min": 1, "max": 90,
                    "p50": 15, "p90": 31, "p99": 63},
            },
        },
    }


def run_compare(baseline_dir, current_dir, extra=()):
    out = io.StringIO()
    err = io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = bench_compare.main(
            ["bench_compare", str(baseline_dir), str(current_dir)]
            + list(extra))
    return code, out.getvalue(), err.getvalue()


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.base_dir = root / "baseline"
        self.cur_dir = root / "current"
        self.base_dir.mkdir()
        self.cur_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, report):
        path = directory / f"BENCH_{report['bench']}.json"
        path.write_text(json.dumps(report) + "\n")
        return path

    def test_identical_runs_pass(self):
        self.write(self.base_dir, make_report())
        self.write(self.cur_dir, make_report())
        code, out, _ = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 0)
        self.assertIn("match the baseline", out)

    def test_injected_counter_regression_fails(self):
        self.write(self.base_dir, make_report())
        regressed = make_report()
        regressed["metrics"]["counters"]["wcrt.outer_iterations"] += 150
        self.write(self.cur_dir, regressed)
        code, _, err = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 1)
        self.assertIn("wcrt.outer_iterations", err)

    def test_wall_clock_noise_passes(self):
        self.write(self.base_dir, make_report())
        noisy = make_report()
        # Twice as slow, different latency statistics: all wall clock.
        noisy["elapsed_ms"] = 2000
        noisy["total_seconds"] = 2.0
        noisy["metrics"]["timers"]["wcrt.compute"]["total_ns"] = 1800000
        wall = noisy["metrics"]["histograms"]["trial.wall_ns"]
        for key in ("sum", "min", "max", "p50", "p90", "p99"):
            wall[key] *= 2
        self.write(self.cur_dir, noisy)
        code, out, _ = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 0)
        self.assertIn("advisory", out)  # slower, but never a failure

    def test_wall_clock_within_tolerance_has_no_advisory(self):
        self.write(self.base_dir, make_report())
        slightly = make_report()
        slightly["elapsed_ms"] = 1100  # +10% < default 50% tolerance
        self.write(self.cur_dir, slightly)
        code, out, _ = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 0)
        self.assertNotIn("advisory:", out)

    def test_deterministic_histogram_value_change_fails(self):
        self.write(self.base_dir, make_report())
        regressed = make_report()
        hist = regressed["metrics"]["histograms"]
        hist["wcrt.inner_iterations_per_call"]["p90"] = 127
        self.write(self.cur_dir, regressed)
        code, _, err = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 1)
        self.assertIn("wcrt.inner_iterations_per_call", err)

    def test_wall_histogram_count_change_fails(self):
        # Counts are deterministic even for latency histograms: a different
        # sample count means work was added or lost, not noise.
        self.write(self.base_dir, make_report())
        regressed = make_report()
        regressed["metrics"]["histograms"]["trial.wall_ns"]["count"] = 79
        self.write(self.cur_dir, regressed)
        code, _, err = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 1)
        self.assertIn("trial.wall_ns", err)

    def test_missing_bench_fails(self):
        self.write(self.base_dir, make_report())
        self.write(self.base_dir, make_report(bench="soundness_sim"))
        self.write(self.cur_dir, make_report())
        code, _, err = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 1)
        self.assertIn("soundness_sim", err)

    def test_extra_bench_in_current_is_noted_not_failed(self):
        self.write(self.base_dir, make_report())
        self.write(self.cur_dir, make_report())
        self.write(self.cur_dir, make_report(bench="soundness_sim"))
        code, out, _ = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 0)
        self.assertIn("not in baseline", out)

    def test_missing_counter_fails(self):
        self.write(self.base_dir, make_report())
        regressed = make_report()
        del regressed["metrics"]["counters"]["wcrt.calls"]
        self.write(self.cur_dir, regressed)
        code, _, err = run_compare(self.base_dir, self.cur_dir)
        self.assertEqual(code, 1)
        self.assertIn("wcrt.calls", err)

    def test_history_entry_as_baseline(self):
        # The committed baseline is a bench_history.py consolidated entry;
        # the gate must accept it directly against a raw bench directory.
        self.write(self.base_dir, make_report())
        entry_path = Path(self._tmp.name) / "baseline-entry.json"
        code = bench_history.main(["bench_history", str(self.base_dir),
                                   "--out", str(entry_path)])
        self.assertEqual(code, 0)
        self.write(self.cur_dir, make_report())
        code, out, _ = run_compare(entry_path, self.cur_dir)
        self.assertEqual(code, 0)
        self.assertIn("match the baseline", out)

    def test_history_keys_entry_by_sha(self):
        self.write(self.base_dir, make_report())
        out_dir = Path(self._tmp.name) / "history"
        code = bench_history.main(["bench_history", str(self.base_dir),
                                   "--out-dir", str(out_dir)])
        self.assertEqual(code, 0)
        entry_path = out_dir / f"run-{'a' * 12}.json"
        self.assertTrue(entry_path.exists())
        entry = json.loads(entry_path.read_text())
        self.assertEqual(entry["git_sha"], "a" * 40)
        self.assertIn("fig2_core_utilization", entry["benches"])
        self.assertEqual(entry["provenance"]["build_type"], "Release")

    def test_history_rejects_mixed_shas(self):
        self.write(self.base_dir, make_report())
        self.write(self.base_dir,
                   make_report(bench="soundness_sim", sha="b" * 40))
        err = io.StringIO()
        with redirect_stderr(err):
            code = bench_history.main(
                ["bench_history", str(self.base_dir),
                 "--out-dir", str(Path(self._tmp.name) / "history")])
        self.assertEqual(code, 1)
        self.assertIn("multiple commits", err.getvalue())


if __name__ == "__main__":
    unittest.main()
