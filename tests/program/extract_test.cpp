#include "program/extract.hpp"

#include "program/synthetic.hpp"

#include <gtest/gtest.h>

namespace cpa::program {
namespace {

using namespace util::literals;

Program small_loop()
{
    // 4 straight blocks, then a loop of 6 blocks where blocks 8,9 alias
    // with 0,1 in an 8-set cache.
    ProgramBuilder b("small_loop");
    b.straight(0, 4);
    b.begin_loop(5);
    b.straight(4, 6); // blocks 4..9
    b.end_loop();
    return std::move(b).build();
}

TEST(Extract, PdIsTraceLengthTimesFetchCost)
{
    const Program p = small_loop();
    const ExtractedParams params = extract_parameters(p, {8, 32});
    EXPECT_EQ(params.pd,
              util::Cycles{static_cast<std::int64_t>(
                               p.reference_trace().size()) *
                           2});
}

TEST(Extract, EcbIsEverySetTouched)
{
    const ExtractedParams params = extract_parameters(small_loop(), {8, 32});
    EXPECT_EQ(params.ecb.popcount(), 8u); // blocks 0..9 cover all 8 sets
}

TEST(Extract, PcbIsSingleOccupancySets)
{
    // Blocks 0..9 on 8 sets: sets 0,1 hold {0,8} and {1,9}; sets 2..7 hold
    // one block each -> 6 PCBs.
    const ExtractedParams params = extract_parameters(small_loop(), {8, 32});
    EXPECT_EQ(params.pcb.popcount(), 6u);
    EXPECT_FALSE(params.pcb.contains(0));
    EXPECT_FALSE(params.pcb.contains(1));
}

TEST(Extract, MdEqualsResidualPlusPcbCount)
{
    // Each persistent block misses exactly once from cold, so
    // MD = MDʳ + |PCB| must hold exactly for any program.
    for (const Program& p : synthetic_suite()) {
        for (const std::size_t sets : {32u, 64u, 256u, 512u}) {
            const ExtractedParams params =
                extract_parameters(p, {sets, 32});
            EXPECT_EQ(params.md,
                      params.md_residual +
                          util::accesses_from_blocks(params.pcb.popcount()))
                << p.name() << " @" << sets;
        }
    }
}

TEST(Extract, ColdMissCountMatchesHandComputation)
{
    // small_loop in 8 sets: cold pass misses blocks 0..9 (10 misses) on
    // first touch; per remaining loop iteration blocks 4..7 hit, blocks 8,9
    // evict/reload against 0,1 -> but 0,1 are never re-accessed, so 8,9 stay
    // cached: only the first iteration misses them. Total = 10.
    const ExtractedParams params = extract_parameters(small_loop(), {8, 32});
    EXPECT_EQ(params.md, 10_acc);
    // With PCBs (sets 2..7, blocks 2..7... precisely blocks 2,3,4,5,6,7)
    // preloaded, misses are blocks 0,1,8,9 -> 4.
    EXPECT_EQ(params.md_residual, 4_acc);
}

TEST(Extract, UcbContainsReusedBlocksOnly)
{
    // Blocks 4..9 are reused across loop iterations without eviction
    // (8 and 9 conflict with 0 and 1, which never recur), so UCB covers
    // their sets; blocks 0..3's sets host no reuse... except sets 0,1 are
    // the sets of 8,9. Blocks 2,3 are accessed once -> their sets are not
    // useful.
    const ExtractedParams params = extract_parameters(small_loop(), {8, 32});
    EXPECT_FALSE(params.ucb.contains(2));
    EXPECT_FALSE(params.ucb.contains(3));
    for (const std::size_t set : {4u, 5u, 6u, 7u, 0u, 1u}) {
        EXPECT_TRUE(params.ucb.contains(set)) << set;
    }
}

TEST(Extract, PingPongLoopHasNoUsefulConflictingBlocks)
{
    // Two aliasing blocks accessed alternately never survive to their next
    // use -> no hits, MD = every access.
    ProgramBuilder b("pingpong");
    b.begin_loop(10);
    b.blocks({0, 8});
    b.end_loop();
    const Program p = std::move(b).build();
    const ExtractedParams params = extract_parameters(p, {8, 32});
    EXPECT_EQ(params.md, 20_acc);
    EXPECT_EQ(params.ucb.popcount(), 0u);
    EXPECT_EQ(params.pcb.popcount(), 0u);
    EXPECT_EQ(params.md_residual, 20_acc);
}

TEST(Extract, BiggerCacheRemovesConflicts)
{
    ProgramBuilder b("pingpong");
    b.begin_loop(10);
    b.blocks({0, 8});
    b.end_loop();
    const Program p = std::move(b).build();
    const ExtractedParams params = extract_parameters(p, {16, 32});
    EXPECT_EQ(params.md, 2_acc); // both blocks persistent now
    EXPECT_EQ(params.md_residual, 0_acc);
    EXPECT_EQ(params.pcb.popcount(), 2u);
}

TEST(Extract, UcbMaxPointBoundedByUcbCount)
{
    for (const Program& p : synthetic_suite()) {
        const ExtractedParams params = extract_parameters(p, {256, 32});
        EXPECT_LE(params.ucb_max_point, params.ucb.popcount()) << p.name();
    }
}

TEST(Extract, AssociativityRemovesPingPongMisses)
{
    // blocks {0, 8} alias in 8 sets: direct-mapped ping-pongs, 2-way holds
    // both and makes them persistent.
    ProgramBuilder b("pingpong");
    b.begin_loop(10);
    b.blocks({0, 8});
    b.end_loop();
    const Program p = std::move(b).build();

    const ExtractedParams one_way = extract_parameters(p, {8, 32, 1});
    const ExtractedParams two_way = extract_parameters(p, {8, 32, 2});
    EXPECT_EQ(one_way.md, 20_acc);
    EXPECT_EQ(two_way.md, 2_acc);
    EXPECT_EQ(one_way.pcb.popcount(), 0u);
    EXPECT_EQ(two_way.pcb.popcount(), 1u); // both blocks live in set 0
    EXPECT_EQ(two_way.md_residual, 0_acc);
}

TEST(Extract, PersistenceGrowsWithWays)
{
    for (const Program& p : synthetic_suite()) {
        std::size_t previous_pcb = 0;
        util::AccessCount previous_md{
            std::numeric_limits<std::int64_t>::max()};
        for (const std::size_t ways : {1u, 2u, 4u}) {
            const ExtractedParams params =
                extract_parameters(p, {256, 32, ways});
            EXPECT_GE(params.pcb.popcount(), previous_pcb)
                << p.name() << " ways=" << ways;
            EXPECT_LE(params.md, previous_md)
                << p.name() << " ways=" << ways;
            previous_pcb = params.pcb.popcount();
            previous_md = params.md;
        }
    }
}

TEST(Extract, ToTaskCopiesEverything)
{
    const ExtractedParams params = extract_parameters(small_loop(), {8, 32});
    const tasks::Task task = to_task(params, 1, 1000_cy);
    EXPECT_EQ(task.core, 1u);
    EXPECT_EQ(task.period, 1000_cy);
    EXPECT_EQ(task.deadline, 1000_cy);
    EXPECT_EQ(task.md, params.md);
    EXPECT_EQ(task.md_residual, params.md_residual);
    EXPECT_TRUE(task.pcb == params.pcb);
}

TEST(Extract, TaskInvariantsHoldForSyntheticSuite)
{
    // The extracted parameters must satisfy every TaskSet::validate()
    // invariant (UCB/PCB ⊆ ECB, MDʳ <= MD).
    for (const Program& p : synthetic_suite()) {
        const ExtractedParams params = extract_parameters(p, {256, 32});
        tasks::TaskSet ts(1, 256);
        ts.add_task(to_task(params, 0, util::Cycles{100'000'000}));
        EXPECT_NO_THROW(ts.validate()) << p.name();
    }
}

} // namespace
} // namespace cpa::program
