// Analytical invariant checker: asserts, for one analyzed task set, the
// dominance / monotonicity / structural relations the paper's bounds must
// obey. A bug in the analysis core would typically violate one of these
// while still producing plausible numbers, so the checker is the
// differential self-test behind `cpa check` and the property tests.
//
// The catalog (docs/static-analysis.md spells out each one):
//   structure.*  — task-model invariants (UCB/PCB ⊆ ECB, MDʳ ≤ MD, windows)
//   demand.*     — M̂D_i(n) dominance / monotonicity / subadditivity (Eq. 10)
//   tables.*     — γ / CPRO table shape (Eq. 2 / Eq. 14)
//   lemma1.*     — B̂AS ≤ BAS (Lemma 1, Eq. 16)
//   lemma2.*     — B̂AO ≤ BAO (Lemma 2, Eq. 17–18)
//   bat.*        — per-arbiter BAT composition (Eq. 7–9)
//   wcrt.*       — Eq. (19) fixed-point consistency and persistence gain
//   sim.*        — simulator-observed responses never exceed the bounds
//
// Every analytical quantity is read through AnalysisOracle so mutation tests
// can corrupt one quantity at a time and prove the matching invariant fires
// (the checker must never be tautologically green).
#pragma once

#include "analysis/bus_bounds.hpp"
#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "analysis/wcrt.hpp"
#include "sim/simulator.hpp"
#include "tasks/task.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cpa::check {

using analysis::AnalysisConfig;
using analysis::PlatformConfig;
using util::AccessCount;
using util::Cycles;

struct Violation {
    std::string invariant; // catalog name, e.g. "lemma1.bas_dominance"
    std::string detail;    // human-readable context (task, window, values)
};

struct InvariantInfo {
    std::string_view name;
    std::string_view summary;
};

// Every invariant check_task_set() can report, in evaluation order.
[[nodiscard]] const std::vector<InvariantInfo>& invariant_catalog();

struct CheckOptions {
    // Bus policies the BAT / WCRT / simulation invariants run under.
    std::vector<analysis::BusPolicy> policies = {
        analysis::BusPolicy::kFixedPriority,
        analysis::BusPolicy::kRoundRobin,
        analysis::BusPolicy::kTdma,
    };
    analysis::CrpdMethod crpd = analysis::CrpdMethod::kEcbUnion;
    analysis::CproMethod cpro = analysis::CproMethod::kUnion;
    // Cross-check the discrete-event simulator against the analytical WCRTs
    // (the most expensive invariant; `cpa check --skip-sim` turns it off).
    bool check_simulation = true;
    // Simulation horizon as a multiple of the largest period.
    std::int64_t sim_horizon_periods = 4;
    // The simulator costs roughly one event per bus access, and the task-set
    // generator can produce period ratios of 1e4+ (UUniFast hands some task
    // a tiny utilization share), so an unbounded horizon can make a single
    // cross-check take minutes. The horizon is halved until the estimated
    // access count fits this budget; the soundness relation holds for any
    // horizon, shorter ones just observe fewer jobs.
    std::int64_t sim_event_budget = 1'000'000;
    // Largest job count the M̂D invariants probe.
    std::int64_t max_demand_jobs = 16;
    // WCRT engine the WCRT-level invariants run against (`cpa check
    // --engine`). Checking the reference engine validates the oracle the
    // differential harness compares the incremental solver to.
    analysis::WcrtEngine engine = analysis::WcrtEngine::kIncremental;
};

struct CheckResult {
    std::size_t checks_run = 0; // individual relations evaluated
    std::vector<Violation> violations;

    [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

// Seam for mutation testing: the checker reads every analytical quantity
// through this interface. The default implementation delegates to the real
// analysis/simulation code; tests override single methods to return
// corrupted values and assert the matching invariant fires.
class AnalysisOracle {
public:
    // `ts` must outlive the oracle.
    AnalysisOracle(const tasks::TaskSet& ts, const PlatformConfig& platform,
                   analysis::CrpdMethod crpd =
                       analysis::CrpdMethod::kEcbUnion);
    virtual ~AnalysisOracle();
    AnalysisOracle(const AnalysisOracle&) = delete;
    AnalysisOracle& operator=(const AnalysisOracle&) = delete;

    [[nodiscard]] const tasks::TaskSet& task_set() const noexcept
    {
        return ts_;
    }
    [[nodiscard]] const PlatformConfig& platform() const noexcept
    {
        return platform_;
    }
    [[nodiscard]] const analysis::InterferenceTables& tables() const noexcept
    {
        return tables_;
    }

    // M̂D_i(n), Eq. (10).
    [[nodiscard]] virtual AccessCount md_hat(std::size_t i,
                                             std::int64_t n_jobs) const;
    // γ_{i,j}, Eq. (2).
    [[nodiscard]] virtual AccessCount gamma(std::size_t i,
                                            std::size_t j) const;
    // CPRO overlap of Eq. (14).
    [[nodiscard]] virtual AccessCount cpro_overlap(std::size_t j,
                                                   std::size_t i) const;
    // Pairwise eviction potential of the job-bounded CPRO refinement.
    [[nodiscard]] virtual AccessCount pair_overlap(std::size_t j,
                                                   std::size_t s) const;
    // BAS_i(t) / B̂AS_i(t) depending on config.persistence_aware.
    [[nodiscard]] virtual AccessCount bas(const AnalysisConfig& config,
                                          std::size_t i, Cycles t) const;
    // BAO / B̂AO of core `core` at priority level k.
    [[nodiscard]] virtual AccessCount
    bao(const AnalysisConfig& config, std::size_t core, std::size_t k,
        Cycles t, const std::vector<Cycles>& response) const;
    // BAT_i(t), Eq. (7)-(9) per config.policy.
    [[nodiscard]] virtual AccessCount
    bat(const AnalysisConfig& config, std::size_t i, Cycles t,
        const std::vector<Cycles>& response) const;
    // The Eq. (19) fixed point for the whole set.
    [[nodiscard]] virtual analysis::WcrtResult
    wcrt(const AnalysisConfig& config) const;
    // One discrete-event simulation run.
    [[nodiscard]] virtual sim::SimResult
    simulate(const sim::SimConfig& config) const;

private:
    const tasks::TaskSet& ts_;
    PlatformConfig platform_;
    analysis::InterferenceTables tables_;
};

// Runs the full catalog against the oracle's task set.
[[nodiscard]] CheckResult check_task_set(const AnalysisOracle& oracle,
                                         const CheckOptions& options = {});

// Convenience overload using the default (real-analysis) oracle.
[[nodiscard]] CheckResult check_task_set(const tasks::TaskSet& ts,
                                         const PlatformConfig& platform,
                                         const CheckOptions& options = {});

} // namespace cpa::check
