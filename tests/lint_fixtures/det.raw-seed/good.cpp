// Fixture: the per-trial seed derivation contract.
#include "util/rng.hpp"

#include <cstdint>
#include <random>

std::uint64_t draw(std::uint64_t base_seed, std::uint64_t trial)
{
    std::mt19937_64 gen(cpa::util::seed_for(base_seed, trial));
    return gen();
}
