// Time-unit conventions of the reproduction.
//
// Table I of the paper gives PD/MD/MDʳ in processor cycles while d_mem is
// quoted in microseconds; the clock frequency is never stated. Two facts pin
// the convention down (DESIGN.md §3.3):
//
//  1. Every distinct block of a program cold-misses at least once, so the
//     extraction latency L must satisfy MD_cycles >= #blocks * L. The
//     statemate row (MD = 18257 cycles, 476 blocks) forces L <= 38; fdct
//     (6017 cycles, 190 blocks) forces L <= 31. We use L = 10 cycles — a
//     standard Heptane-style miss penalty — so access counts are
//     nMD = MD_cycles / 10.
//
//  2. The paper's generation recipe T = D = (PD + MD)/U is evaluated in the
//     table's cycle units, and at the default d_mem = 5 µs a task's actual
//     demand PD + nMD * d_mem must equal that generation cost (otherwise
//     the utilization axis of Fig. 2 is meaningless). Hence 5 µs = 10
//     cycles, i.e., 1 µs = 2 cycles.
//
// Only the ratio d_mem/extraction-latency matters anywhere; the implied
// absolute clock is a labeling convention.
#pragma once

#include <cstdint>

namespace cpa::util {

using Cycles = std::int64_t;

inline constexpr Cycles kCyclesPerMicrosecond = 2;

// Memory latency behind the benchmark table's MD cycle figures: one main
// memory access contributes 10 cycles, so nMD = MD_cycles / 10. Equal to the
// default d_mem (5 µs) by construction (see file comment).
inline constexpr Cycles kExtractionLatencyCycles = 10;

[[nodiscard]] constexpr Cycles cycles_from_microseconds(std::int64_t us)
{
    return us * kCyclesPerMicrosecond;
}

[[nodiscard]] constexpr double microseconds_from_cycles(Cycles cycles)
{
    return static_cast<double>(cycles) /
           static_cast<double>(kCyclesPerMicrosecond);
}

} // namespace cpa::util
