#include "analysis/request.hpp"

namespace cpa::analysis {

std::optional<BusPolicy> bus_policy_from_string(std::string_view name)
{
    if (name == "fp") {
        return BusPolicy::kFixedPriority;
    }
    if (name == "rr") {
        return BusPolicy::kRoundRobin;
    }
    if (name == "tdma") {
        return BusPolicy::kTdma;
    }
    if (name == "perfect") {
        return BusPolicy::kPerfect;
    }
    return std::nullopt;
}

std::optional<CrpdMethod> crpd_method_from_string(std::string_view name)
{
    if (name == "ecb-union") {
        return CrpdMethod::kEcbUnion;
    }
    if (name == "ucb-only") {
        return CrpdMethod::kUcbOnly;
    }
    if (name == "ecb-only") {
        return CrpdMethod::kEcbOnly;
    }
    return std::nullopt;
}

std::optional<CproMethod> cpro_method_from_string(std::string_view name)
{
    if (name == "union") {
        return CproMethod::kUnion;
    }
    if (name == "job-bound") {
        return CproMethod::kJobBound;
    }
    return std::nullopt;
}

std::optional<WcrtEngine> wcrt_engine_from_string(std::string_view name)
{
    if (name == "reference") {
        return WcrtEngine::kReference;
    }
    if (name == "incremental") {
        return WcrtEngine::kIncremental;
    }
    return std::nullopt;
}

std::string_view spelling(BusPolicy policy)
{
    switch (policy) {
    case BusPolicy::kFixedPriority:
        return "fp";
    case BusPolicy::kRoundRobin:
        return "rr";
    case BusPolicy::kTdma:
        return "tdma";
    case BusPolicy::kPerfect:
        return "perfect";
    }
    return "unknown";
}

std::string_view spelling(CrpdMethod method)
{
    switch (method) {
    case CrpdMethod::kEcbUnion:
        return "ecb-union";
    case CrpdMethod::kUcbOnly:
        return "ucb-only";
    case CrpdMethod::kEcbOnly:
        return "ecb-only";
    }
    return "unknown";
}

std::string_view spelling(CproMethod method)
{
    switch (method) {
    case CproMethod::kUnion:
        return "union";
    case CproMethod::kJobBound:
        return "job-bound";
    }
    return "unknown";
}

std::string_view spelling(WcrtEngine engine)
{
    switch (engine) {
    case WcrtEngine::kReference:
        return "reference";
    case WcrtEngine::kIncremental:
        return "incremental";
    }
    return "unknown";
}

} // namespace cpa::analysis
