file(REMOVE_RECURSE
  "CMakeFiles/cpa.dir/main.cpp.o"
  "CMakeFiles/cpa.dir/main.cpp.o.d"
  "cpa"
  "cpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
