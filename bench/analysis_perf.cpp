// Micro-benchmarks (google-benchmark) of the analysis machinery itself:
// interference-table construction, single WCRT analyses per policy, and the
// full 7-variant schedulability battery, at several system sizes. These are
// engineering numbers (analysis cost), not paper artifacts.
#include "common.hpp"

#include "analysis/interference.hpp"
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "experiments/sweep.hpp"
#include "util/units.hpp"

#include "sim/simulator.hpp"
#include "util/set_mask.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace cpa;

tasks::TaskSet make_set(std::size_t cores, std::size_t tasks_per_core,
                        double utilization)
{
    benchdata::GenerationConfig generation;
    generation.num_cores = cores;
    generation.tasks_per_core = tasks_per_core;
    generation.cache_sets = 256;
    generation.per_core_utilization = utilization;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);
    util::Rng rng(7);
    return benchdata::generate_task_set(rng, generation, pool);
}

analysis::PlatformConfig platform_for(std::size_t cores)
{
    analysis::PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = 256;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;
    return platform;
}

void BM_InterferenceTables(benchmark::State& state)
{
    const auto cores = static_cast<std::size_t>(state.range(0));
    const tasks::TaskSet ts = make_set(cores, 8, 0.3);
    for (auto _ : state) {
        analysis::InterferenceTables tables(ts,
                                            analysis::CrpdMethod::kEcbUnion);
        benchmark::DoNotOptimize(tables.gamma(ts.size() - 1, 0));
    }
}
BENCHMARK(BM_InterferenceTables)->Arg(2)->Arg(4)->Arg(8);

void BM_WcrtPerPolicy(benchmark::State& state)
{
    const auto policy = static_cast<analysis::BusPolicy>(state.range(0));
    const tasks::TaskSet ts = make_set(4, 8, 0.3);
    const auto platform = platform_for(4);
    const analysis::InterferenceTables tables(
        ts, analysis::CrpdMethod::kEcbUnion);
    analysis::AnalysisConfig config;
    config.policy = policy;
    config.persistence_aware = true;
    for (auto _ : state) {
        const auto result =
            analysis::compute_wcrt(ts, platform, config, tables);
        benchmark::DoNotOptimize(result.schedulable);
    }
}
BENCHMARK(BM_WcrtPerPolicy)
    ->Arg(static_cast<int>(analysis::BusPolicy::kFixedPriority))
    ->Arg(static_cast<int>(analysis::BusPolicy::kRoundRobin))
    ->Arg(static_cast<int>(analysis::BusPolicy::kTdma));

void BM_FullVariantBattery(benchmark::State& state)
{
    const auto utilization = static_cast<double>(state.range(0)) / 10.0;
    const tasks::TaskSet ts = make_set(4, 8, utilization);
    const auto platform = platform_for(4);
    const auto variants = experiments::standard_variants();
    for (auto _ : state) {
        const analysis::InterferenceTables tables(
            ts, analysis::CrpdMethod::kEcbUnion);
        int schedulable = 0;
        for (const auto& variant : variants) {
            schedulable += analysis::is_schedulable(ts, platform,
                                                    variant.config, tables)
                               ? 1
                               : 0;
        }
        benchmark::DoNotOptimize(schedulable);
    }
}
BENCHMARK(BM_FullVariantBattery)->Arg(2)->Arg(5)->Arg(8);

void BM_TaskSetGeneration(benchmark::State& state)
{
    benchdata::GenerationConfig generation;
    generation.per_core_utilization = 0.5;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);
    util::Rng rng(11);
    for (auto _ : state) {
        const auto ts = benchdata::generate_task_set(rng, generation, pool);
        benchmark::DoNotOptimize(ts.size());
    }
}
BENCHMARK(BM_TaskSetGeneration);

void BM_SetMaskIntersectionCount(benchmark::State& state)
{
    const auto universe = static_cast<std::size_t>(state.range(0));
    util::SetMask a(universe);
    util::SetMask b(universe);
    a.insert_wrapped_range(3, universe / 2);
    b.insert_wrapped_range(universe / 3, universe / 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.intersection_count(b));
    }
}
BENCHMARK(BM_SetMaskIntersectionCount)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SimulatorHyperperiodSlice(benchmark::State& state)
{
    const tasks::TaskSet ts = make_set(2, 4, 0.3);
    analysis::PlatformConfig platform = platform_for(2);
    util::Cycles max_period{0};
    for (const auto& task : ts.tasks()) {
        max_period = std::max(max_period, task.period);
    }
    sim::SimConfig config;
    config.policy = analysis::BusPolicy::kRoundRobin;
    config.horizon = 2 * max_period;
    config.stop_on_deadline_miss = false;
    for (auto _ : state) {
        const auto result = sim::simulate(ts, platform, config);
        benchmark::DoNotOptimize(result.bus_accesses.front());
    }
}
BENCHMARK(BM_SimulatorHyperperiodSlice);

} // namespace

// Expanded BENCHMARK_MAIN() with the BENCH_*.json emitter. Metrics stay
// DISABLED for this binary: these micro-benchmarks measure the analysis hot
// path as shipped, i.e., with every obs macro reduced to its cheap
// not-enabled branch — the overhead budget the obs layer must honor.
int main(int argc, char** argv)
{
    cpa::bench::BenchReport bench_report("analysis_perf",
                                         /*enable_metrics=*/false);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
