// Deterministic random-number utilities for task-set generation.
//
// Every experiment in the paper draws random task sets (UUnifast utilizations,
// random benchmark assignment, random cache placement). We centralize the
// generator so experiments are reproducible from a single seed and so tests
// can re-run a failing draw.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cpa::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Uniform index in [0, n). Requires n > 0.
    [[nodiscard]] std::size_t uniform_index(std::size_t n);

    // Uniform real in [0, 1).
    [[nodiscard]] double uniform_real();

    // Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi);

    // Derives an independent child generator; used to give each task set its
    // own stream so adding experiments does not perturb earlier draws.
    [[nodiscard]] Rng fork();

    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
};

// UUnifast (Bini & Buttazzo, 2005): draws `n` task utilizations summing to
// `total_utilization`, uniformly over the n-1 simplex. This is the generator
// the paper cites ([11]) for per-core utilizations.
[[nodiscard]] std::vector<double>
uunifast(Rng& rng, std::size_t n, double total_utilization);

} // namespace cpa::util
