// Randomized invariant-check driver behind `cpa check`: draws seeded random
// task sets with the paper's Section V generator and runs the full invariant
// catalog (invariants.hpp) against each, aggregating violations per
// invariant. Fully deterministic for a given RandomCheckConfig — a failing
// trial is reproducible from its reported seed.
#pragma once

#include "check/invariants.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cpa::check {

struct RandomCheckConfig {
    std::uint64_t seed = 1;
    std::size_t trials = 50;
    std::size_t num_cores = 4;
    std::size_t tasks_per_core = 4;
    std::size_t cache_sets = 64;
    // Per-core utilization drawn uniformly in [min, max] per trial, so the
    // sweep covers both comfortably schedulable and saturated sets.
    double min_utilization = 0.1;
    double max_utilization = 0.7;
    // Every jitter_period-th trial is generated with release jitter to
    // exercise the J-dependent job-count terms; 0 disables jitter entirely.
    std::size_t jitter_period = 4;
    // Self-test hook (`cpa check --inject-violation`): appends one synthetic
    // violation per trial so the reporting and --fail-on-violation exit-code
    // paths can be exercised end-to-end against the (sound) real analysis.
    bool inject_violation = false;
    // Worker count for the trial loop (`cpa check --jobs N`): 0 = auto
    // (CPA_JOBS env, then hardware concurrency). Trials seed from their
    // index, so the result is identical for every value.
    std::size_t jobs = 0;
    // Optional progress observer, called from the orchestrator thread with
    // (trials_done, trials_total) as trial batches complete. When set, the
    // trial loop runs in index-ordered batches so there is something to
    // report between start and finish; results are identical either way
    // (trials seed from their global index and flush in index order).
    std::function<void(std::size_t done, std::size_t total)> progress;
    CheckOptions options;
};

// One trial whose task set violated at least one invariant.
struct TrialFailure {
    std::size_t trial = 0;      // index in [0, trials)
    std::uint64_t seed = 0;     // generator seed reproducing the task set
    double utilization = 0.0;   // per-core utilization of the draw
    std::vector<Violation> violations;
};

struct RandomCheckResult {
    std::size_t trials_run = 0;
    std::size_t checks_run = 0; // relations evaluated across all trials
    std::map<std::string, std::size_t> violations_by_invariant;
    std::vector<TrialFailure> failures;

    [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
    [[nodiscard]] std::size_t violation_count() const noexcept
    {
        std::size_t total = 0;
        for (const auto& [name, count] : violations_by_invariant) {
            total += count;
        }
        return total;
    }
};

// Runs `config.trials` generate-and-check rounds with the real analysis
// oracle. Throws std::invalid_argument on an unsatisfiable config.
[[nodiscard]] RandomCheckResult
run_random_checks(const RandomCheckConfig& config);

} // namespace cpa::check
