#!/usr/bin/env python3
"""Architecture layering analyzer for src/ (stdlib only, no third-party deps).

Enforces the module dependency DAG documented in docs/architecture.md:

    util  ->  cache / tasks / program  ->  analysis / sim
          ->  experiments / benchdata  ->  cli

with two cross-cutting special cases:

  * obs may be included from any layer (it only depends on util), and
  * check is split at file granularity: check/assert.* is a low layer
    usable from the analysis core, while check/invariants.* and
    check/random_check.* sit above analysis/sim/benchdata (they drive the
    real analysis as an oracle).

Checks performed:

  1. Whitelist: every `#include "module/..."` edge between modules must be
     allowed by the DAG below (this rejects upward and sideways edges).
  2. Unknown modules: every scanned file must belong to a known module.
  3. File-level include cycles (DFS over resolved quoted includes).
  4. Header hygiene: every header under src/ compiles standalone
     (`$CXX -fsyntax-only` on a TU that includes just that header).
     Skipped with --no-compile or when no compiler is available.

Exit status: 0 when clean, 1 when any violation is found.
Run with --self-test to exercise the analyzer against synthetic trees.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

# Allowed module -> set of modules it may include. Absence of an edge here
# is what makes "upward" includes (e.g. util -> analysis) build breaks.
ALLOWED = {
    "util": set(),
    "cache": {"util"},
    "obs": {"util"},
    "tasks": {"util"},
    "check/assert": {"util", "obs"},
    "program": {"util", "cache", "tasks"},
    "analysis": {"util", "obs", "cache", "tasks", "check/assert"},
    "sim": {"util", "obs", "cache", "tasks", "program", "analysis",
            "check/assert"},
    "benchdata": {"util", "obs", "cache", "tasks", "program", "analysis",
                  "check/assert"},
    "experiments": {"util", "obs", "cache", "tasks", "program", "analysis",
                    "sim", "benchdata", "check/assert"},
    "check": {"util", "obs", "cache", "tasks", "program", "analysis", "sim",
              "benchdata", "check/assert"},
    "verify": {"util", "obs", "cache", "tasks", "program", "analysis", "sim",
               "benchdata", "check", "check/assert"},
    "cli": {"util", "obs", "cache", "tasks", "program", "analysis", "sim",
            "benchdata", "experiments", "check", "verify", "check/assert"},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Files of the check module that form the low "check/assert" pseudo-module:
# the assertion gate and the shared tolerance seam. Both are leaf-ish headers
# that lower layers (analysis, experiments) may include without pulling in
# the full checker.
CHECK_LOW_STEMS = {"assert", "tolerance"}


def module_of(rel: Path) -> str:
    """Maps a src-relative path to its (pseudo-)module name."""
    top = rel.parts[0]
    if top == "check" and len(rel.parts) > 1:
        stem = rel.parts[1].split(".")[0]
        if stem in CHECK_LOW_STEMS:
            return "check/assert"
    return top


def scan(src: Path):
    """Collects module edges and the file-level include graph.

    Returns (edges, file_graph, unknown_files) where edges is a list of
    (src_file, line_no, from_module, to_module, include_text) and file_graph
    maps src-relative paths to the src-relative paths they include.
    """
    edges = []
    file_graph: dict[str, list[str]] = {}
    unknown = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(src)
        mod = module_of(rel)
        if mod not in ALLOWED:
            unknown.append(str(rel))
            continue
        includes = file_graph.setdefault(str(rel), [])
        for line_no, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1)
            if not (src / target).is_file():
                continue  # quoted non-project include (e.g. gtest)
            includes.append(target)
            to_mod = module_of(Path(target))
            if to_mod != mod:
                edges.append((str(rel), line_no, mod, to_mod, target))
    return edges, file_graph, unknown


def whitelist_violations(edges, unknown):
    problems = [
        f"unknown module for {rel}: add it to the DAG in "
        f"scripts/check_layers.py and docs/architecture.md"
        for rel in unknown
    ]
    for rel, line_no, mod, to_mod, target in edges:
        if to_mod not in ALLOWED.get(mod, set()):
            problems.append(
                f"{rel}:{line_no}: illegal layering edge {mod} -> {to_mod} "
                f'(#include "{target}")')
    return problems


def find_cycle(file_graph):
    """Returns one file-level include cycle as a path list, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in file_graph}
    stack_path: list[str] = []

    def dfs(node: str):
        color[node] = GREY
        stack_path.append(node)
        for nxt in file_graph.get(node, []):
            if color.get(nxt, WHITE) == GREY:
                return stack_path[stack_path.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE and nxt in file_graph:
                cycle = dfs(nxt)
                if cycle:
                    return cycle
        stack_path.pop()
        color[node] = BLACK
        return None

    for node in file_graph:
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


def compiler() -> str | None:
    for candidate in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def header_compile_failures(src: Path, cxx: str, jobs: int):
    """Compiles each header standalone; returns list of failure messages."""
    headers = sorted(p.relative_to(src) for p in src.rglob("*.hpp"))

    def try_one(rel: Path):
        with tempfile.TemporaryDirectory() as tmp:
            tu = Path(tmp) / "tu.cpp"
            tu.write_text(f'#include "{rel.as_posix()}"\n')
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only", f"-I{src}", str(tu)],
                capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.splitlines()[:8])
            return f"header {rel} does not compile standalone:\n{tail}"
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        return [msg for msg in pool.map(try_one, headers) if msg]


def analyze(src: Path, compile_headers: bool, jobs: int):
    edges, file_graph, unknown = scan(src)
    problems = whitelist_violations(edges, unknown)
    cycle = find_cycle(file_graph)
    if cycle:
        problems.append("include cycle: " + " -> ".join(cycle))
    if compile_headers:
        cxx = compiler()
        if cxx is None:
            print("check_layers: no C++ compiler found; "
                  "skipping standalone-header check", file=sys.stderr)
        else:
            problems.extend(header_compile_failures(src, cxx, jobs))
    return problems


# --------------------------- self test ----------------------------------


def _write_tree(root: Path, files: dict[str, str]):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def self_test() -> int:
    failures = []

    def expect(name: str, condition: bool, detail: str = ""):
        if not condition:
            failures.append(f"{name}: {detail}")

    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "clean"
        _write_tree(src, {
            "util/math.hpp": "#pragma once\n",
            "tasks/task.hpp": '#pragma once\n#include "util/math.hpp"\n',
            "analysis/wcrt.cpp": '#include "tasks/task.hpp"\n'
                                 '#include "check/assert.hpp"\n',
            "check/assert.hpp": '#pragma once\n#include "util/math.hpp"\n',
            "check/invariants.cpp": '#include "check/assert.hpp"\n'
                                    '#include "analysis/wcrt.hpp"\n',
            "analysis/wcrt.hpp": "#pragma once\n",
        })
        expect("clean tree accepted", analyze(src, False, 1) == [],
               str(analyze(src, False, 1)))

        src = Path(tmp) / "upward"
        _write_tree(src, {
            "analysis/wcrt.hpp": "#pragma once\n",
            "util/bad.hpp": '#pragma once\n#include "analysis/wcrt.hpp"\n',
        })
        problems = analyze(src, False, 1)
        expect("upward edge rejected",
               any("util -> analysis" in p for p in problems), str(problems))

        src = Path(tmp) / "cycle"
        _write_tree(src, {
            "tasks/a.hpp": '#pragma once\n#include "tasks/b.hpp"\n',
            "tasks/b.hpp": '#pragma once\n#include "tasks/a.hpp"\n',
        })
        problems = analyze(src, False, 1)
        expect("include cycle detected",
               any("include cycle" in p for p in problems), str(problems))

        src = Path(tmp) / "rogue"
        _write_tree(src, {"rogue/x.hpp": "#pragma once\n"})
        problems = analyze(src, False, 1)
        expect("unknown module rejected",
               any("unknown module" in p for p in problems), str(problems))

        src = Path(tmp) / "checksplit"
        _write_tree(src, {
            "check/invariants.hpp": "#pragma once\n",
            "check/assert.cpp": '#include "check/invariants.hpp"\n',
        })
        problems = analyze(src, False, 1)
        expect("check/assert may not include check core",
               any("check/assert -> check" in p for p in problems),
               str(problems))

        src = Path(tmp) / "verifyok"
        _write_tree(src, {
            "util/math.hpp": "#pragma once\n",
            "analysis/wcrt.hpp": "#pragma once\n",
            "check/invariants.hpp": "#pragma once\n",
            "check/tolerance.hpp": "#pragma once\n",
            "analysis/demand.cpp": '#include "check/tolerance.hpp"\n',
            "verify/prover.cpp": '#include "analysis/wcrt.hpp"\n'
                                 '#include "check/invariants.hpp"\n'
                                 '#include "check/tolerance.hpp"\n'
                                 '#include "util/math.hpp"\n',
        })
        expect("verify layer edges accepted", analyze(src, False, 1) == [],
               str(analyze(src, False, 1)))

        src = Path(tmp) / "verifyup"
        _write_tree(src, {
            "verify/interval.hpp": "#pragma once\n",
            "analysis/bad.cpp": '#include "verify/interval.hpp"\n',
        })
        problems = analyze(src, False, 1)
        expect("analysis may not include verify",
               any("analysis -> verify" in p for p in problems),
               str(problems))

        src = Path(tmp) / "verifyexp"
        _write_tree(src, {
            "verify/interval.hpp": "#pragma once\n",
            "experiments/bad.cpp": '#include "verify/interval.hpp"\n',
        })
        problems = analyze(src, False, 1)
        expect("experiments may not include verify",
               any("experiments -> verify" in p for p in problems),
               str(problems))

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_layers: self-test passed (8 cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: script's parent)")
    parser.add_argument("--no-compile", action="store_true",
                        help="skip the standalone-header compile check")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                        help="parallel header compiles")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer's own test cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    src = args.repo / "src"
    if not src.is_dir():
        print(f"check_layers: no src/ under {args.repo}", file=sys.stderr)
        return 1
    problems = analyze(src, not args.no_compile, args.jobs)
    if problems:
        for problem in problems:
            print(f"LAYERING VIOLATION: {problem}", file=sys.stderr)
        print(f"check_layers: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("check_layers: src/ layering clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
