// Ablation (not in the paper): task-to-core partitioning heuristics under
// the persistence-aware FP-bus analysis. The interesting interaction:
// CPRO (Eq. (14)) only counts SAME-core evictions of persistent blocks, so
// the cache-aware heuristic — which separates overlapping footprints —
// preserves persistence and should dominate pure load balancing. The
// paper's own recipe (per-core UUnifast, no explicit partitioning) is shown
// as the reference.
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "obs/parallel.hpp"
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("ablation_partitioning");
    util::ThreadPool threads(bench_report.jobs());
    using tasks::PartitionHeuristic;

    const std::size_t task_sets = experiments::task_sets_from_env(120);
    const auto platform = bench::default_platform();
    const auto generation = bench::default_generation();
    const auto pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);

    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kFixedPriority;
    config.persistence_aware = true;

    const std::vector<std::pair<std::string, PartitionHeuristic>> heuristics =
        {{"first-fit", PartitionHeuristic::kFirstFit},
         {"worst-fit", PartitionHeuristic::kWorstFit},
         {"cache-aware", PartitionHeuristic::kCacheAware}};

    std::cout << "== Ablation: partitioning heuristic (FP bus, persistence "
                 "aware) ==\n(task sets per point: "
              << task_sets << ")\n";
    util::TextTable table(
        {"U/core", "paper(per-core)", "first-fit", "worst-fit",
         "cache-aware", "overlap FF", "overlap WF", "overlap CA"});

    for (double u = 0.05; u <= 1.0 + 1e-9; u += 0.05) {
        benchdata::GenerationConfig gen = generation;
        gen.per_core_utilization = u;

        // Per-trial verdict slots, reduced in index order below so the
        // overlap sums (floating point) accumulate exactly as the old
        // serial loop did.
        struct TrialOutcome {
            std::uint8_t paper = 0;
            std::vector<std::uint8_t> scheduled;
            std::vector<double> overlap;
        };
        std::vector<TrialOutcome> outcomes(task_sets);

        obs::run_indexed_trials(threads, task_sets, [&](std::size_t n) {
            TrialOutcome& outcome = outcomes[n];
            outcome.scheduled.assign(heuristics.size(), 0);
            outcome.overlap.assign(heuristics.size(), 0.0);
            // Reuse the same trial seed for every variant so they see the
            // same draws.
            const auto seed_state = util::seed_for(4040, n);
            {
                util::Rng rng(seed_state);
                const tasks::TaskSet ts =
                    benchdata::generate_task_set(rng, gen, pool);
                outcome.paper =
                    analysis::is_schedulable(ts, platform, config) ? 1u : 0u;
            }
            for (std::size_t h = 0; h < heuristics.size(); ++h) {
                util::Rng rng(seed_state);
                const tasks::TaskSet ts =
                    benchdata::generate_task_set_partitioned(
                        rng, gen, pool, heuristics[h].second);
                outcome.scheduled[h] =
                    analysis::is_schedulable(ts, platform, config) ? 1u : 0u;
                outcome.overlap[h] =
                    static_cast<double>(tasks::same_core_overlap(
                        ts.tasks(), gen.num_cores)) /
                    static_cast<double>(task_sets);
            }
        });

        std::size_t paper_count = 0;
        std::vector<std::size_t> counts(heuristics.size(), 0);
        std::vector<double> overlaps(heuristics.size(), 0.0);
        for (const TrialOutcome& outcome : outcomes) {
            paper_count += outcome.paper;
            for (std::size_t h = 0; h < heuristics.size(); ++h) {
                counts[h] += outcome.scheduled[h];
                overlaps[h] += outcome.overlap[h];
            }
        }

        table.add_row({util::TextTable::num(u, 2),
                       std::to_string(paper_count),
                       std::to_string(counts[0]), std::to_string(counts[1]),
                       std::to_string(counts[2]),
                       util::TextTable::num(overlaps[0], 0),
                       util::TextTable::num(overlaps[1], 0),
                       util::TextTable::num(overlaps[2], 0)});
    }
    table.print(std::cout);
    return 0;
}
