// Entry point of the `cpa` command-line tool; all logic lives in
// commands.cpp so the tests can drive it in-process.
#include "cli/commands.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    return cpa::cli::run_cli(args, std::cout, std::cerr);
}
