// Analytical runtime assertions for the analysis core.
//
// The paper's bounds obey hard mathematical relations (the Lemma 1/2 caps
// never exceed their Eq. (1)/(3) baselines, Eq. (19) responses grow
// monotonically across outer iterations, the interference tables have a
// fixed shape). A bug in bus_bounds.cpp / wcrt.cpp / interference.cpp would
// typically violate one of them while still producing plausible numbers, so
// the hot paths carry CPA_CHECK_ASSERT tripwires for exactly these
// relations.
//
// Gating mirrors the observability layer (obs/obs.hpp):
//
//  1. Compile time: -DCPA_CHECK=OFF (definition CPA_CHECK_DISABLE) expands
//     every CPA_CHECK_ASSERT to nothing.
//  2. Run time: compiled-in assertions evaluate only when
//     `assertions_enabled()` is true — flipped on by `cpa check`, the tests,
//     or exporting CPA_CHECK_ASSERT=1 before running the CLI. The steady
//     state of a release run is one relaxed atomic load per site.
//
// A failed assertion reports through the PR-1 observability machinery (a
// "check" subsystem trace event plus the check.assert_failures counter) and
// throws AssertionError, so a violated invariant can never be silently
// folded into a schedulability verdict.
#pragma once

#include <stdexcept>
#include <string>

namespace cpa::check {

// Runtime switch for the compiled-in assertions. Off by default.
[[nodiscard]] bool assertions_enabled() noexcept;
void set_assertions_enabled(bool enabled) noexcept;

// Reads CPA_CHECK_ASSERT from the environment ("1"/"on"/"true" enable) and
// applies it; called once from the CLI entry point.
void apply_assertion_env();

// Thrown by CPA_CHECK_ASSERT on a violated analytical invariant.
class AssertionError : public std::logic_error {
public:
    AssertionError(std::string invariant, const std::string& detail);

    // Catalog name of the violated invariant (e.g. "wcrt.outer_monotone").
    [[nodiscard]] const std::string& invariant() const noexcept
    {
        return invariant_;
    }

private:
    std::string invariant_;
};

// Reports through the obs layer, then throws AssertionError. The ASSERT
// macro funnels here so call sites stay branch + call.
[[noreturn]] void assertion_failure(const char* invariant,
                                    const std::string& detail);

} // namespace cpa::check

#if defined(CPA_CHECK_DISABLE)
#define CPA_CHECK_ENABLED 0
#else
#define CPA_CHECK_ENABLED 1
#endif

#if CPA_CHECK_ENABLED

// Asserts an analytical invariant on the hot path. `detail_expr` is any
// expression convertible to std::string; it is evaluated only on failure.
#define CPA_CHECK_ASSERT(condition, invariant, detail_expr)                  \
    do {                                                                     \
        if (::cpa::check::assertions_enabled() && !(condition)) {            \
            ::cpa::check::assertion_failure(invariant, (detail_expr));       \
        }                                                                    \
    } while (0)

#else // !CPA_CHECK_ENABLED

#define CPA_CHECK_ASSERT(condition, invariant, detail_expr)                  \
    do {                                                                     \
    } while (0)

#endif // CPA_CHECK_ENABLED
