#include "verify/scenario.hpp"

#include "util/set_mask.hpp"

#include <algorithm>
#include <string>

namespace cpa::verify {

ScenarioParams clamp_params(const Point& point)
{
    ScenarioParams p;
    p.md = point[index_of(Dim::kMd)];
    p.ecb = std::min(point[index_of(Dim::kEcb)],
                     static_cast<std::int64_t>(kScenarioCacheSets));
    p.md_residual = std::min(point[index_of(Dim::kMdResidual)], p.md);
    p.pcb = std::min(point[index_of(Dim::kPcb)], p.ecb);
    p.ucb = std::min(point[index_of(Dim::kUcb)], p.ecb);
    p.pd = point[index_of(Dim::kPd)];
    p.period = point[index_of(Dim::kPeriod)];
    p.d_mem = point[index_of(Dim::kDmem)];
    p.cores = point[index_of(Dim::kCores)];
    return p;
}

Scenario make_scenario(const Point& point)
{
    const ScenarioParams p = clamp_params(point);
    const auto cores = static_cast<std::size_t>(p.cores);

    tasks::TaskSet ts(cores, kScenarioCacheSets);
    const std::size_t task_count = 2 * cores;
    for (std::size_t i = 0; i < task_count; ++i) {
        tasks::Task task;
        task.name = "verify_t" + std::to_string(i);
        task.core = i % cores;
        task.pd = util::Cycles{p.pd};
        task.md = util::AccessCount{p.md};
        task.md_residual = util::AccessCount{p.md_residual};
        task.period = util::Cycles{p.period};
        task.deadline = util::Cycles{p.period};
        task.jitter = util::Cycles{0};
        task.ecb = util::SetMask(kScenarioCacheSets);
        task.ecb.insert_wrapped_range(0, static_cast<std::size_t>(p.ecb));
        task.ucb = util::SetMask(kScenarioCacheSets);
        task.ucb.insert_wrapped_range(0, static_cast<std::size_t>(p.ucb));
        task.pcb = util::SetMask(kScenarioCacheSets);
        task.pcb.insert_wrapped_range(0, static_cast<std::size_t>(p.pcb));
        ts.add_task(std::move(task));
    }
    ts.validate();

    analysis::PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = kScenarioCacheSets;
    platform.d_mem = util::Cycles{p.d_mem};
    return Scenario{std::move(ts), platform};
}

} // namespace cpa::verify
