// Tests for the hierarchical phase profiler (obs/profiler.hpp): activation
// gating, span recording, ring wrap-around accounting, Chrome Trace Event
// export shape, same-thread nesting by time containment, and recording from
// util::ThreadPool workers.
#include "obs/profiler.hpp"

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

namespace cpa::obs {
namespace {

// The profiler is a process-wide singleton; stop + reset around every test
// so spans cannot leak between cases.
class ProfilerTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        Profiler::global().stop();
        Profiler::global().reset();
    }
    void TearDown() override
    {
        Profiler::global().stop();
        Profiler::global().reset();
    }

    static std::string export_trace(std::size_t* spans = nullptr)
    {
        std::ostringstream out;
        const std::size_t n = Profiler::global().write_chrome_trace(out);
        if (spans != nullptr) {
            *spans = n;
        }
        return out.str();
    }
};

TEST_F(ProfilerTest, InactiveProfilerRecordsNothing)
{
    ASSERT_FALSE(Profiler::global().active());
    {
        ScopedSpan span("should.not.appear");
    }
    std::size_t spans = 0;
    const std::string trace = export_trace(&spans);
    EXPECT_EQ(spans, 0u);
    EXPECT_EQ(trace.find("should.not.appear"), std::string::npos);
}

TEST_F(ProfilerTest, ActiveProfilerCapturesScopedSpans)
{
    Profiler::global().start();
    {
        ScopedSpan outer("outer.phase");
        ScopedSpan inner("inner.phase", "iter", 3);
    }
    Profiler::global().stop();

    std::size_t spans = 0;
    const std::string trace = export_trace(&spans);
    EXPECT_EQ(spans, 2u);
    EXPECT_NE(trace.find("\"name\":\"outer.phase\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"inner.phase\""), std::string::npos);
    EXPECT_NE(trace.find("\"args\":{\"iter\":3}"), std::string::npos);
}

TEST_F(ProfilerTest, SpanStartedWhileInactiveIsDropped)
{
    ASSERT_FALSE(Profiler::global().active());
    {
        // Construction sees an inactive profiler, so even though it becomes
        // active before destruction the span has no start timestamp and
        // must not be deposited.
        ScopedSpan span("late.span");
        Profiler::global().start();
    }
    Profiler::global().stop();
    std::size_t spans = 0;
    export_trace(&spans);
    EXPECT_EQ(spans, 0u);
}

TEST_F(ProfilerTest, TraceIsAChromeTraceEventObject)
{
    Profiler::global().start();
    {
        ScopedSpan span("one.span");
    }
    Profiler::global().stop();

    const std::string trace = export_trace();
    EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
              0u);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
    EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
    // Thread-name metadata event for the emitting (main) thread.
    EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"thread_name\""), std::string::npos);
    EXPECT_EQ(trace.back(), '\n');
}

TEST_F(ProfilerTest, NestedSpansAreContainedInTime)
{
    Profiler::global().start();
    {
        ScopedSpan outer("nest.outer");
        {
            ScopedSpan inner("nest.inner");
        }
    }
    Profiler::global().stop();

    // Same-thread records are sorted by (start ascending, duration
    // descending), so the outer span is emitted first and must contain the
    // inner one — that containment is exactly what makes Perfetto render
    // the flame graph without explicit parent links.
    const std::string trace = export_trace();
    const std::size_t outer_pos = trace.find("\"name\":\"nest.outer\"");
    const std::size_t inner_pos = trace.find("\"name\":\"nest.inner\"");
    ASSERT_NE(outer_pos, std::string::npos);
    ASSERT_NE(inner_pos, std::string::npos);
    EXPECT_LT(outer_pos, inner_pos);
}

TEST_F(ProfilerTest, RingWrapCountsDroppedSpans)
{
    SpanRing ring(4);
    SpanRecord record;
    record.name = "wrap";
    for (int i = 0; i < 10; ++i) {
        record.start_ns = i;
        ring.push(record);
    }
    EXPECT_EQ(ring.dropped(), 6u);
    const std::vector<SpanRecord> kept = ring.collect();
    ASSERT_EQ(kept.size(), 4u);
    // Oldest-first over the retained window: pushes 6..9 survive.
    EXPECT_EQ(kept.front().start_ns, 6);
    EXPECT_EQ(kept.back().start_ns, 9);
}

TEST_F(ProfilerTest, ClearEmptiesTheRing)
{
    SpanRing ring(4);
    ring.push(SpanRecord{});
    ring.clear();
    EXPECT_TRUE(ring.collect().empty());
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(ProfilerTest, ThreadPoolWorkersEachGetARing)
{
    Profiler::global().start();
    {
        util::ThreadPool pool(4);
        pool.parallel_for_indexed(64, [&](std::size_t index) {
            ScopedSpan span("pool.task", "index",
                            static_cast<std::int64_t>(index));
        });
    } // pool destroyed: worker threads exit, but their rings survive
    Profiler::global().stop();

    std::size_t spans = 0;
    const std::string trace = export_trace(&spans);
    EXPECT_EQ(spans, 64u);
    EXPECT_EQ(Profiler::global().dropped_spans(), 0u);
    EXPECT_NE(trace.find("\"name\":\"pool.task\""), std::string::npos);
}

TEST_F(ProfilerTest, ResetDiscardsRecordedSpans)
{
    Profiler::global().start();
    {
        ScopedSpan span("gone.after.reset");
    }
    Profiler::global().stop();
    Profiler::global().reset();
    std::size_t spans = 0;
    const std::string trace = export_trace(&spans);
    EXPECT_EQ(spans, 0u);
    EXPECT_EQ(trace.find("gone.after.reset"), std::string::npos);
}

} // namespace
} // namespace cpa::obs
