# Empty dependencies file for analysis_perf.
# This may be replaced when dependencies are built.
