#pragma once

#include <cstdint>

// The single tolerance seam shared by the random checker (cpa check), the
// interval prover (cpa verify), and every utilization comparison in the
// stack. Audit result for src/check/invariants.cpp: the invariant catalog is
// integer-exact — every relation compares util::Quantity values (64-bit
// integer cycles / accesses), so "violation" means a strict integer
// inequality failed and no epsilon is involved. The only floating-point
// comparisons in result-affecting code are utilization grids and the
// Perfect-policy bus-overload test; those previously carried ad-hoc 1e-9
// literals (experiments/sweep.cpp, experiments/sensitivity.cpp) or none at
// all (analysis/schedulability.cpp). They now all route through this header
// so the sampled checker and the interval prover agree on what a violation
// means at both kinds of boundary.

namespace cpa::check {

// Absolute slack applied when comparing accumulated utilization ratios
// against a grid limit. Utilization values are sums of double divisions, so
// a grid endpoint like 0.1 * 10 lands within a few ulp of 1.0; the slack
// keeps the intended endpoint inside the grid without admitting any point a
// whole step away.
inline constexpr double kUtilizationTolerance = 1e-9;

// value <= limit, up to the shared utilization tolerance.
constexpr bool utilization_within(double value, double limit)
{
    return value <= limit + kUtilizationTolerance;
}

// Strict overload test: the complement of utilization_within, used by the
// Perfect-policy bus capacity check.
constexpr bool utilization_exceeds(double value, double limit)
{
    return !utilization_within(value, limit);
}

// Catalog margins are exact 64-bit integers (Quantity counts). A relation is
// violated iff its margin is negative — tolerance zero, by definition. Both
// check::Checker semantics and verify::Prover refutations use this
// predicate, so a prover witness is a checker violation by construction.
constexpr bool margin_violates(std::int64_t margin)
{
    return margin < 0;
}

} // namespace cpa::check
