file(REMOVE_RECURSE
  "CMakeFiles/cpa_program.dir/abstract.cpp.o"
  "CMakeFiles/cpa_program.dir/abstract.cpp.o.d"
  "CMakeFiles/cpa_program.dir/extract.cpp.o"
  "CMakeFiles/cpa_program.dir/extract.cpp.o.d"
  "CMakeFiles/cpa_program.dir/program.cpp.o"
  "CMakeFiles/cpa_program.dir/program.cpp.o.d"
  "CMakeFiles/cpa_program.dir/synthetic.cpp.o"
  "CMakeFiles/cpa_program.dir/synthetic.cpp.o.d"
  "libcpa_program.a"
  "libcpa_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
