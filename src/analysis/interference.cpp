#include "analysis/interference.hpp"

#include "util/set_mask.hpp"

#include <algorithm>

namespace cpa::analysis {

using util::SetMask;

InterferenceTables::InterferenceTables(const tasks::TaskSet& ts,
                                       CrpdMethod method)
{
    const std::size_t n = ts.size();
    gamma_.assign(n, std::vector<std::int64_t>(n, 0));
    cpro_.assign(n, std::vector<std::int64_t>(n, 0));

    // γ table. For a fixed preempting task τ_j (on core y), the evicting
    // union ∪_{h ∈ Γ_y ∩ hep(j)} ECB_h is fixed, and as the analysis level i
    // grows the max over g ∈ Γ_y ∩ aff(i, j) only gains candidates — so one
    // ascending sweep with a running max fills a whole row.
    for (std::size_t core = 0; core < ts.num_cores(); ++core) {
        SetMask prefix_ecb(ts.cache_sets());
        for (const std::size_t j : ts.tasks_on_core(core)) {
            prefix_ecb |= ts[j].ecb;

            std::int64_t running_max = 0;
            bool any_affected = false;
            for (std::size_t i = j + 1; i < n; ++i) {
                if (ts[i].core == core) {
                    any_affected = true;
                    std::int64_t candidate = 0;
                    switch (method) {
                    case CrpdMethod::kEcbUnion:
                        candidate = static_cast<std::int64_t>(
                            ts[i].ucb.intersection_count(prefix_ecb));
                        break;
                    case CrpdMethod::kUcbOnly:
                        candidate =
                            static_cast<std::int64_t>(ts[i].ucb.count());
                        break;
                    case CrpdMethod::kEcbOnly:
                        candidate =
                            static_cast<std::int64_t>(prefix_ecb.count());
                        break;
                    }
                    running_max = std::max(running_max, candidate);
                }
                if (any_affected) {
                    gamma_[i][j] = running_max;
                }
            }
        }
    }

    // Pairwise eviction potentials for the job-bounded CPRO refinement.
    pair_overlap_.assign(n, std::vector<std::int64_t>(n, 0));
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t s = 0; s < n; ++s) {
            if (s != j && ts[s].core == ts[j].core) {
                pair_overlap_[j][s] = static_cast<std::int64_t>(
                    ts[j].pcb.intersection_count(ts[s].ecb));
            }
        }
    }

    // CPRO overlap table. For fixed τ_j the union over hep(i) \ {j} grows
    // with i, so again one ascending sweep per row.
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t core = ts[j].core;
        SetMask evictors(ts.cache_sets());
        for (std::size_t i = 0; i < n; ++i) {
            if (i != j && ts[i].core == core) {
                evictors |= ts[i].ecb;
            }
            cpro_[j][i] = static_cast<std::int64_t>(
                ts[j].pcb.intersection_count(evictors));
        }
    }
}

} // namespace cpa::analysis
