// Extension bench: cache partitioning vs cache sharing — the trade the
// paper's own companion work (ref [10], RTNS'18) studies, evaluated with
// the bus-contention analysis.
//
// Partitioned mode gives each task a private slice of the 256-set cache
// (sets/tasks_per_core per task): no inter-task evictions (γ = 0, CPRO = 0,
// every persistent block survives), but each task sees a much smaller
// cache, so its own parameters degrade (more conflict misses, fewer PCBs —
// recomputed with the region layout model at the slice size). Shared mode
// is the paper's default.
//
// Expected: partitioning wins for small-footprint task sets (their
// parameters survive the slicing and they gain full persistence) and loses
// when footprints exceed the slice (self-conflict misses explode) — the
// crossover is the interesting output.
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "obs/parallel.hpp"
#include "common.hpp"

int main()
{
    using namespace cpa;
    bench::BenchReport bench_report("extension_cache_partitioning");
    util::ThreadPool threads(bench_report.jobs());

    const std::size_t task_sets = experiments::task_sets_from_env(120);
    const auto platform = bench::default_platform();
    auto generation = bench::default_generation();

    // Shared-cache pool at 256 sets; partitioned pool at 256/8 = 32 sets
    // (each task's parameters re-derived for its slice).
    const auto shared_pool = benchdata::derive_all(
        benchdata::full_benchmark_table(), generation.cache_sets);
    const std::size_t slice_sets =
        generation.cache_sets / generation.tasks_per_core;
    const auto sliced_pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), slice_sets);

    analysis::AnalysisConfig config;
    config.policy = analysis::BusPolicy::kFixedPriority;
    config.persistence_aware = true;

    std::cout << "== Extension: per-task cache partitioning vs sharing "
                 "(FP bus, persistence aware, slice = "
              << slice_sets << " sets) ==\n(task sets per point: "
              << task_sets << ")\n";
    util::TextTable table({"U/core", "shared", "partitioned"});

    for (double u = 0.05; u <= 1.0 + 1e-9; u += 0.05) {
        generation.per_core_utilization = u;

        // verdicts[2n] = shared, verdicts[2n+1] = partitioned; each trial
        // owns its slot pair and seeds from its index, so the counts below
        // are independent of the pool's schedule.
        std::vector<std::uint8_t> verdicts(2 * task_sets, 0);
        obs::run_indexed_trials(threads, task_sets, [&](std::size_t n) {
            const auto seed_state = util::seed_for(31415, n);
            {
                util::Rng rng(seed_state);
                const tasks::TaskSet ts =
                    benchdata::generate_task_set(rng, generation,
                                                 shared_pool);
                verdicts[2 * n] =
                    analysis::is_schedulable(ts, platform, config) ? 1u : 0u;
            }
            {
                // Partitioned: draw with slice-sized parameters, then remap
                // each task's footprint into its own private slice of the
                // 256-set cache (slice k occupies sets [k*32, (k+1)*32)).
                benchdata::GenerationConfig sliced = generation;
                sliced.cache_sets = slice_sets;
                util::Rng rng(seed_state);
                const tasks::TaskSet drawn =
                    benchdata::generate_task_set(rng, sliced, sliced_pool);
                tasks::TaskSet ts(generation.num_cores,
                                  generation.cache_sets);
                std::vector<std::size_t> next_slice(generation.num_cores, 0);
                for (const tasks::Task& original : drawn.tasks()) {
                    tasks::Task task = original;
                    const std::size_t slice = next_slice[task.core]++;
                    const auto widen = [&](const util::SetMask& mask) {
                        util::SetMask out(generation.cache_sets);
                        for (const std::size_t s : mask.to_indices()) {
                            out.insert(slice * slice_sets + s);
                        }
                        return out;
                    };
                    task.ecb = widen(original.ecb);
                    task.ucb = widen(original.ucb);
                    task.pcb = widen(original.pcb);
                    ts.add_task(std::move(task));
                }
                ts.validate();
                verdicts[2 * n + 1] =
                    analysis::is_schedulable(ts, platform, config) ? 1u : 0u;
            }
        });

        std::size_t shared_count = 0;
        std::size_t partitioned_count = 0;
        for (std::size_t n = 0; n < task_sets; ++n) {
            shared_count += verdicts[2 * n];
            partitioned_count += verdicts[2 * n + 1];
        }
        table.add_row({util::TextTable::num(u, 2),
                       std::to_string(shared_count),
                       std::to_string(partitioned_count)});
    }
    table.print(std::cout);
    bench::maybe_write_csv("extension-cache-partitioning", table);
    return 0;
}
