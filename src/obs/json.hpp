// Minimal JSON value tree + serializer for the observability outputs (trace
// lines, run reports, bench JSON). Deliberately write-only: the repo has no
// JSON dependency and the consumers (scripts/check_bench_json.py, plotting)
// parse with standard tooling.
//
// Object keys keep insertion order so reports read top-down (tool, config,
// verdicts, metrics) instead of alphabetically.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cpa::obs {

// Writes `text` with JSON string escaping (quotes, backslash, control
// characters) — without the surrounding quotes.
void write_json_escaped(std::ostream& out, std::string_view text);

// Formats a double the way JSON requires (no inf/nan — both clamp to 0,
// which is the right degradation for durations and ratios).
[[nodiscard]] std::string json_number(double value);

class JsonValue {
public:
    JsonValue() : kind_(Kind::kNull) {}
    JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
    JsonValue(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
    JsonValue(int value) : JsonValue(static_cast<std::int64_t>(value)) {}
    JsonValue(std::size_t value)
        : JsonValue(static_cast<std::int64_t>(value))
    {
    }
    JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
    JsonValue(std::string value)
        : kind_(Kind::kString), string_(std::move(value))
    {
    }
    JsonValue(std::string_view value) : JsonValue(std::string(value)) {}
    JsonValue(const char* value) : JsonValue(std::string(value)) {}

    [[nodiscard]] static JsonValue object()
    {
        JsonValue v;
        v.kind_ = Kind::kObject;
        return v;
    }
    [[nodiscard]] static JsonValue array()
    {
        JsonValue v;
        v.kind_ = Kind::kArray;
        return v;
    }

    // Object insertion; returns the stored value for nested building.
    JsonValue& set(std::string_view key, JsonValue value);
    // Array append; returns the stored element.
    JsonValue& push(JsonValue value);

    [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
    [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

    // Serializes compactly (no whitespace). NDJSON callers add the newline.
    void write(std::ostream& out) const;
    [[nodiscard]] std::string to_string() const;

private:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kInt,
        kDouble,
        kString,
        kObject,
        kArray,
    };

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<std::pair<std::string, JsonValue>> members_; // objects
    std::vector<JsonValue> elements_;                        // arrays
};

} // namespace cpa::obs
