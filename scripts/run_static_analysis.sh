#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy) over the analysis core.
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#
#   build-dir   directory for the compile_commands.json configure
#               (default: build-tidy)
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy). CI pins a
#               major version here so profile behavior does not drift with
#               the runner image.
#   CPA_CI      when set to 1, a missing clang-tidy is a hard failure
#               instead of a skip. Locally the container toolchain is
#               gcc-only, so absence skips with a notice; in CI a silent
#               skip would turn the whole job into a green no-op.
#
# Exit codes: 0 = clean (or skipped locally), 1 = diagnostics found,
# missing tool under CPA_CI=1, or the configure failed.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tidy"}
clang_tidy=${CLANG_TIDY:-clang-tidy}

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
    if [ "${CPA_CI:-0}" = "1" ]; then
        echo "run_static_analysis: FATAL: '$clang_tidy' not found but CPA_CI=1" >&2
        echo "run_static_analysis: install it (or set CLANG_TIDY) -- a skip in CI would pass vacuously" >&2
        exit 1
    fi
    echo "run_static_analysis: '$clang_tidy' not found; skipping (install clang-tidy or set CLANG_TIDY to run this check)"
    exit 0
fi

# Tool versions up front so a CI log always shows what actually ran.
echo "run_static_analysis: using $(command -v "$clang_tidy")"
"$clang_tidy" --version | sed 's/^/run_static_analysis:   /'
cmake --version | head -n 1 | sed 's/^/run_static_analysis:   /'

# clang-tidy needs a compilation database; generate one without building.
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null

# run-clang-tidy parallelizes when available; otherwise iterate.
files=$(find "$repo_root/src" -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086 -- word splitting of $files is intended
    run-clang-tidy -quiet -p "$build_dir" \
        -clang-tidy-binary "$(command -v "$clang_tidy")" $files
else
    status=0
    for f in $files; do
        "$clang_tidy" -quiet -p "$build_dir" "$f" || status=1
    done
    exit $status
fi
