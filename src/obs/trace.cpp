#include "obs/trace.hpp"

#include <sstream>

namespace cpa::obs {

std::string_view to_string(Severity severity)
{
    switch (severity) {
    case Severity::kDebug:
        return "debug";
    case Severity::kInfo:
        return "info";
    case Severity::kWarn:
        return "warn";
    case Severity::kError:
        return "error";
    }
    return "info";
}

std::string TraceEvent::to_ndjson() const
{
    std::ostringstream out;
    out << "{\"subsys\":\"";
    write_json_escaped(out, subsystem_);
    out << "\",\"sev\":\"" << to_string(severity_) << "\",\"event\":\"";
    write_json_escaped(out, event_);
    out << '"';
    for (const auto& [key, value] : fields_) {
        out << ",\"";
        write_json_escaped(out, key);
        out << "\":";
        value.write(out);
    }
    out << '}';
    return out.str();
}

void StreamTraceSink::consume(const TraceEvent& event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << event.to_ndjson() << '\n';
}

Tracer& Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void Tracer::set_sink(std::shared_ptr<TraceSink> sink,
                      std::set<std::string> subsystems,
                      Severity min_severity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = std::move(sink);
    subsystems_.clear();
    for (auto& name : subsystems) {
        subsystems_.insert(std::move(name));
    }
    if (subsystems_.contains("all")) {
        subsystems_.clear(); // "all" == no filter
    }
    min_severity_ = min_severity;
    active_.store(sink_ != nullptr, std::memory_order_relaxed);
}

bool Tracer::enabled(std::string_view subsystem) const
{
    if (!active()) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_ == nullptr) {
        return false;
    }
    return subsystems_.empty() || subsystems_.find(subsystem) != subsystems_.end();
}

void Tracer::emit(const TraceEvent& event)
{
    std::shared_ptr<TraceSink> sink;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sink_ == nullptr || event.severity() < min_severity_) {
            return;
        }
        if (!subsystems_.empty() &&
            subsystems_.find(event.subsystem()) == subsystems_.end()) {
            return;
        }
        sink = sink_;
    }
    sink->consume(event);
}

} // namespace cpa::obs
