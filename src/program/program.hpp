// Structured program model: the input of the parameter-extraction pipeline
// that stands in for Heptane + Mälardalen binaries (DESIGN.md §3.1).
//
// A program is a tree of segments: straight-line block sequences and
// counted loops. Flattening the tree yields the instruction-fetch reference
// trace (one reference per executed block), from which the extraction in
// extract.hpp measures PD, MD, MDʳ and the UCB/ECB/PCB footprints exactly
// for a direct-mapped cache.
#pragma once

#include "util/units.hpp"

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cpa::program {

using util::Cycles;

struct Segment {
    // A straight-line run of block fetches (empty for pure loop segments).
    std::vector<std::size_t> blocks;
    // Loop: executed `iterations` times around `body` (ignored when body is
    // empty).
    std::size_t iterations = 0;
    std::vector<Segment> body;
    // Conditional: exactly one of `branches` executes (if/else, switch).
    std::vector<std::vector<Segment>> branches;
    // Procedure call: executes the named procedure's body (procedures are
    // shared between call sites, so their code blocks — and hence their
    // cache content — are reused across calls). A segment is exactly one of
    // straight-line, loop, alternative or call.
    std::string call;

    [[nodiscard]] static Segment straight(std::vector<std::size_t> blocks);
    [[nodiscard]] static Segment loop(std::size_t iterations,
                                      std::vector<Segment> body);
    [[nodiscard]] static Segment
    alternative(std::vector<std::vector<Segment>> branches);
    [[nodiscard]] static Segment call_procedure(std::string name);
};

// Decides which branch each dynamically encountered alternative takes:
// called with the number of branches, returns the index to execute.
using BranchSelector = std::function<std::size_t(std::size_t num_branches)>;

class Program {
public:
    // `procedures` maps names to bodies; every Segment::call must resolve
    // and call chains must be acyclic (validated here; throws
    // std::invalid_argument otherwise).
    Program(std::string name, std::vector<Segment> body,
            Cycles cycles_per_fetch = Cycles{2},
            std::map<std::string, std::vector<Segment>> procedures = {});

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    // Cost of executing one block when it hits in the cache; PD is
    // trace length * this.
    [[nodiscard]] Cycles cycles_per_fetch() const noexcept
    {
        return cycles_per_fetch_;
    }

    // The full instruction-fetch trace (block addresses, in program order).
    // `selector` resolves alternatives; the default takes branch 0, so the
    // no-argument form is exact only for programs without alternatives (the
    // abstract analysis in abstract.hpp covers the general case).
    [[nodiscard]] std::vector<std::size_t>
    reference_trace(const BranchSelector& selector = {}) const;

    // Distinct blocks referenced on ANY path, ascending.
    [[nodiscard]] std::vector<std::size_t> distinct_blocks() const;

    // True when the program contains at least one alternative segment.
    [[nodiscard]] bool has_alternatives() const;

    [[nodiscard]] const std::vector<Segment>& body() const noexcept
    {
        return body_;
    }

    [[nodiscard]] const std::map<std::string, std::vector<Segment>>&
    procedures() const noexcept
    {
        return procedures_;
    }

private:
    std::string name_;
    std::vector<Segment> body_;
    Cycles cycles_per_fetch_;
    std::map<std::string, std::vector<Segment>> procedures_;
};

// Fluent helper for building programs in tests/examples:
//   ProgramBuilder b("demo");
//   b.straight(0, 4);               // blocks 0..3
//   b.begin_loop(100);
//   b.straight(4, 8);               // loop body: blocks 4..11
//   b.end_loop();
//   Program p = std::move(b).build();
class ProgramBuilder {
public:
    explicit ProgramBuilder(std::string name,
                            Cycles cycles_per_fetch = Cycles{2});

    // Appends blocks base, base+1, ..., base+count-1.
    ProgramBuilder& straight(std::size_t base, std::size_t count);

    // Appends an explicit block sequence.
    ProgramBuilder& blocks(std::vector<std::size_t> blocks);

    ProgramBuilder& begin_loop(std::size_t iterations);
    ProgramBuilder& end_loop();

    // Alternatives (if/else, switch):
    //   b.begin_alternative();     // opens the construct and its 1st branch
    //   ...                        // then-branch segments
    //   b.next_branch();           // closes a branch, opens the next
    //   ...                        // else-branch segments
    //   b.end_alternative();
    ProgramBuilder& begin_alternative();
    ProgramBuilder& next_branch();
    ProgramBuilder& end_alternative();

    // Procedures (shared code):
    //   b.begin_procedure("encode");
    //   ...                        // the procedure body
    //   b.end_procedure();
    //   b.call("encode");          // at any number of call sites
    // Procedure definitions must be closed before build() and cannot nest.
    ProgramBuilder& begin_procedure(std::string name);
    ProgramBuilder& end_procedure();
    ProgramBuilder& call(std::string name);

    // Finalizes; throws if a loop or alternative is still open.
    [[nodiscard]] Program build() &&;

private:
    struct Frame {
        enum class Kind { kBody, kLoop, kBranch, kProcedure };
        Kind kind = Kind::kBody;
        std::size_t iterations = 0;
        std::vector<Segment> segments;
        // For kBranch frames: branches completed so far (kBranch frames sit
        // on the stack one at a time; finished branches accumulate here).
        std::vector<std::vector<Segment>> finished_branches;
        std::string procedure_name; // for kProcedure frames
    };

    std::string name_;
    Cycles cycles_per_fetch_;
    std::vector<Frame> stack_; // stack_[0] is the program body
    std::map<std::string, std::vector<Segment>> procedures_;
};

} // namespace cpa::program
