#include "check/assert.hpp"

#include "obs/obs.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace cpa::check {

namespace {

std::atomic<bool> g_assertions_enabled{false};

} // namespace

bool assertions_enabled() noexcept
{
    return g_assertions_enabled.load(std::memory_order_relaxed);
}

void set_assertions_enabled(bool enabled) noexcept
{
    g_assertions_enabled.store(enabled, std::memory_order_relaxed);
}

void apply_assertion_env()
{
    const char* value = std::getenv("CPA_CHECK_ASSERT");
    if (value == nullptr) {
        return;
    }
    const std::string_view v(value);
    set_assertions_enabled(v == "1" || v == "on" || v == "true");
}

AssertionError::AssertionError(std::string invariant,
                               const std::string& detail)
    : std::logic_error("analytical invariant violated: " + invariant + ": " +
                       detail),
      invariant_(std::move(invariant))
{
}

void assertion_failure(const char* invariant, const std::string& detail)
{
    CPA_COUNT("check.assert_failures");
    if (CPA_TRACE_ENABLED("check")) {
        obs::Tracer::global().emit(
            obs::TraceEvent("check", obs::Severity::kError,
                            "assertion_failure")
                .field("invariant", invariant)
                .field("detail", detail));
    }
    throw AssertionError(invariant, detail);
}

} // namespace cpa::check
