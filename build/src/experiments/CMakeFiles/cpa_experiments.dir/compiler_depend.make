# Empty compiler generated dependencies file for cpa_experiments.
# This may be replaced when dependencies are built.
