// Set-associative LRU cache. Like the direct-mapped cache, LRU replacement
// is deterministic, so simulating a reference trace yields exact miss
// counts. ways = 1 degenerates to the direct-mapped cache. This implements
// the platform the paper names as future work ("multilevel shared caches"
// start from associative L1s); the bus-contention analysis itself is
// agnostic to associativity — it only consumes the extracted parameters.
#pragma once

#include "cache/geometry.hpp"

#include <cstddef>
#include <vector>

namespace cpa::cache {

class LruCache {
public:
    explicit LruCache(CacheGeometry geometry);

    [[nodiscard]] const CacheGeometry& geometry() const noexcept
    {
        return geometry_;
    }

    // References `block_address`; installs it (evicting the LRU line of its
    // set if full) and makes it most-recently used. Returns true on hit.
    bool access(std::size_t block_address);

    [[nodiscard]] bool contains(std::size_t block_address) const;

    // Installs the block as most-recently used without counting an access.
    void preload(std::size_t block_address);

    void flush();

    // Number of valid lines across all sets.
    [[nodiscard]] std::size_t occupied() const;

private:
    CacheGeometry geometry_;
    // lines_[set] is ordered most-recently-used first.
    std::vector<std::vector<std::size_t>> lines_;
};

} // namespace cpa::cache
