# Empty compiler generated dependencies file for fig3a_cores.
# This may be replaced when dependencies are built.
