// Fixed-size worker pool for the embarrassingly parallel trial loops
// (utilization sweeps, `cpa check --trials`, the soundness benches).
//
// Design constraints:
//  * Deterministic results: parallel_for_indexed hands out raw indices, so a
//    body that (a) seeds its RNG from the index (util::seed_for) and
//    (b) writes into pre-sized slot `i` produces results independent of the
//    scheduling order. The engine guarantees nothing about *which* thread
//    runs an index — only that every index in [0, count) runs exactly once.
//  * Single orchestrator: one thread owns the pool and issues batches;
//    parallel_for_indexed must not be called concurrently or reentrantly
//    (the trial bodies themselves never need nested parallelism).
//  * The calling thread participates, so ThreadPool(jobs) spawns jobs - 1
//    workers and a 1-job pool degrades to a plain serial loop with zero
//    thread traffic.
#pragma once

#include "util/thread_safety.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace cpa::util {

class ThreadPool {
public:
    // Spawns `jobs - 1` workers (clamped to at least a 1-job serial pool).
    explicit ThreadPool(std::size_t jobs);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    // Total job count, including the calling thread.
    [[nodiscard]] std::size_t jobs() const noexcept
    {
        return workers_.size() + 1;
    }

    // Runs body(i) for every i in [0, count), distributing indices over the
    // workers plus the calling thread; blocks until every index completed.
    // If any body throws, the exception of the LOWEST failing index is
    // rethrown after the batch drains (a deterministic choice, so error
    // behavior does not depend on scheduling).
    void parallel_for_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& body);

private:
    // One parallel_for_indexed invocation. Lives on the caller's stack; the
    // caller waits until no worker references it before returning.
    struct Batch {
        const std::function<void(std::size_t)>* body = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> completed{0};
        std::vector<std::exception_ptr> errors; // slot per index
    };

    void worker_loop();
    static void run_slice(Batch& batch);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    std::condition_variable_any cv_;
    bool stop_ CPA_GUARDED_BY(mutex_) = false;
    std::uint64_t batch_seq_ CPA_GUARDED_BY(mutex_) = 0;
    Batch* batch_ CPA_GUARDED_BY(mutex_) = nullptr;
    std::size_t busy_workers_ CPA_GUARDED_BY(mutex_) = 0;
};

// Resolves a requested job count: values >= 1 pass through; 0 means "auto" —
// the CPA_JOBS environment variable if set to a positive integer, otherwise
// std::thread::hardware_concurrency() (at least 1). This is the single
// interpretation point for SweepConfig::jobs / RandomCheckConfig::jobs /
// the CLI --jobs flag.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested = 0);

} // namespace cpa::util
