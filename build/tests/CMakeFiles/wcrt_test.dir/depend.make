# Empty dependencies file for wcrt_test.
# This may be replaced when dependencies are built.
