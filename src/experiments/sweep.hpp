// Experiment harness for the paper's evaluation (Section V): schedulability
// vs. per-core utilization sweeps, and the weighted-schedulability measure of
// Bastoni et al. used by Fig. 3.
#pragma once

#include "analysis/config.hpp"
#include "benchdata/generator.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cpa::experiments {

struct AnalysisVariant {
    std::string label;
    analysis::AnalysisConfig config;
};

// The seven curves of Fig. 2: FP/RR/TDMA each with and without cache
// persistence, plus the perfect-bus upper bound. `include_perfect` lets the
// RR/TDMA-only experiments drop the bound curve.
[[nodiscard]] std::vector<AnalysisVariant>
standard_variants(bool include_perfect = true);

// Variants restricted to the slotted (RR/TDMA) policies for the Fig. 3d
// slot-size sweep.
[[nodiscard]] std::vector<AnalysisVariant> slotted_variants();

struct SweepConfig {
    double u_min = 0.05;
    double u_max = 1.0;
    double u_step = 0.05;
    std::size_t task_sets_per_point = 100;
    std::uint64_t seed = 20200309; // DATE 2020 start date
    // Worker count for the per-point trial loop: 0 = auto (CPA_JOBS env,
    // then hardware concurrency). Results are byte-identical for every
    // value — each trial is seeded from its index (util::seed_for) and
    // writes into its own slot.
    std::size_t jobs = 0;
    // Optional progress observer, called from the orchestrator thread after
    // each finished sweep point with (points_done, total_points). Pure
    // reporting — it cannot influence results. `cpa sweep --progress`
    // routes this to stderr so golden stdout transcripts stay identical.
    std::function<void(std::size_t done, std::size_t total)> progress;
    // WCRT engine applied to every variant (`cpa sweep --engine`). Both
    // engines produce byte-identical sweeps (wcrt_differential_test); the
    // reference engine exists for cross-checking and debugging.
    analysis::WcrtEngine engine = analysis::WcrtEngine::kIncremental;
};

struct SweepPoint {
    double utilization = 0.0;
    // schedulable[v] = number of task sets deemed schedulable by variant v.
    std::vector<std::size_t> schedulable;
};

struct UtilizationSweep {
    std::vector<AnalysisVariant> variants;
    std::vector<SweepPoint> points;
    std::size_t task_sets_per_point = 0;
};

// Runs the full utilization sweep: for each utilization level, generates
// `task_sets_per_point` random task sets (same draws for every variant) and
// counts how many each variant deems schedulable. Interference tables are
// shared across variants with the same CRPD method.
[[nodiscard]] UtilizationSweep
run_utilization_sweep(const benchdata::GenerationConfig& generation,
                      const analysis::PlatformConfig& platform,
                      const std::vector<AnalysisVariant>& variants,
                      const SweepConfig& sweep);

// Weighted schedulability (Bastoni, Brandenburg & Anderson, OSPERT'10):
// W = Σ_u u * sched_fraction(u) / Σ_u u over the sweep's utilization grid.
// Collapses a (parameter, utilization) surface to one number per parameter
// value, as used throughout Fig. 3.
[[nodiscard]] double weighted_schedulability(const UtilizationSweep& sweep,
                                             std::size_t variant_index);

// Reads the CPA_TASKSETS environment variable (task sets per sweep point),
// falling back to `fallback`. Lets CI run quick passes and users reproduce
// the paper's 1000-set experiments.
[[nodiscard]] std::size_t task_sets_from_env(std::size_t fallback);

} // namespace cpa::experiments
