#include "analysis/report.hpp"

#include "benchdata/generator.hpp"
#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;

PlatformConfig demo_platform()
{
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 16;
    platform.d_mem = util::Cycles{2};
    platform.slot_size = 1;
    return platform;
}

TEST(Report, ComponentsSumToResponseAtFixedPoint)
{
    const tasks::TaskSet ts = make_task_set(
        2, 16,
        {
            {0, 4, 2, 2, 50, 0, {1, 2}, {1}, {}},
            {1, 6, 3, 3, 60, 0, {3, 4}, {3}, {}},
            {0, 10, 2, 2, 200, 0, {5, 6}, {5}, {}},
        });
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    const auto breakdowns = explain_responses(ts, demo_platform(), config);
    ASSERT_EQ(breakdowns.size(), 3u);
    for (const ResponseBreakdown& b : breakdowns) {
        ASSERT_TRUE(b.analyzed);
        EXPECT_TRUE(b.meets_deadline);
        EXPECT_EQ(b.total(), b.response);
        EXPECT_GE(b.bat_accesses, b.bas_accesses);
    }
}

TEST(Report, SingleTaskIsAllSelfDemand)
{
    const tasks::TaskSet ts =
        make_task_set(2, 16, {{0, 10, 3, 3, 100, 0, {}, {}, {}}});
    AnalysisConfig config;
    const auto breakdowns = explain_responses(ts, demo_platform(), config);
    const ResponseBreakdown& b = breakdowns.at(0);
    EXPECT_EQ(b.cpu_self, util::Cycles{10});
    EXPECT_EQ(b.cpu_preemption, util::Cycles{0});
    EXPECT_EQ(b.bus_same_core, util::Cycles{3 * 2});
    EXPECT_EQ(b.bus_cross_core, util::Cycles{0});
    EXPECT_EQ(b.response, util::Cycles{16});
}

TEST(Report, PreemptionAttributedToCpuComponent)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 4, 2, 2, 20, 0, {}, {}, {}},
            {0, 5, 1, 1, 50, 0, {}, {}, {}},
        });
    AnalysisConfig config;
    const auto breakdowns = explain_responses(ts, demo_platform(), config);
    // From wcrt_test: R_2 = 15 = 5 (self) + 4 (preemption) + 6 (bus).
    const ResponseBreakdown& b = breakdowns.at(1);
    EXPECT_EQ(b.cpu_self, util::Cycles{5});
    EXPECT_EQ(b.cpu_preemption, util::Cycles{4});
    EXPECT_EQ(b.bus_same_core, util::Cycles{6});
    EXPECT_EQ(b.response, util::Cycles{15});
}

TEST(Report, CrossCoreComponentReflectsContention)
{
    const tasks::TaskSet ts = make_task_set(
        2, 16,
        {
            {0, 10, 4, 4, 200, 0, {}, {}, {}},
            {1, 10, 8, 8, 100, 0, {}, {}, {}},
        });
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    const auto breakdowns = explain_responses(ts, demo_platform(), config);
    // τ2 shares the bus with τ1's higher-priority accesses.
    EXPECT_GT(breakdowns.at(1).bus_cross_core, util::Cycles{0});
    EXPECT_EQ(breakdowns.at(1).total(), breakdowns.at(1).response);
}

TEST(Report, UnschedulableSetExplainsUpToFailingTask)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 50, 5, 5, 100, 65, {}, {}, {}},
            {0, 50, 5, 5, 100, 70, {}, {}, {}},
            {0, 10, 1, 1, 100, 100, {}, {}, {}},
        });
    AnalysisConfig config;
    const auto breakdowns = explain_responses(ts, demo_platform(), config);
    EXPECT_TRUE(breakdowns.at(0).analyzed);
    EXPECT_TRUE(breakdowns.at(0).meets_deadline);
    EXPECT_TRUE(breakdowns.at(1).analyzed);
    EXPECT_FALSE(breakdowns.at(1).meets_deadline);
    EXPECT_FALSE(breakdowns.at(2).analyzed);
}

TEST(Report, MatchesComputeWcrtResponses)
{
    util::Rng rng(55);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.25;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    const tasks::TaskSet ts = benchdata::generate_task_set(rng, gen, pool);

    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    AnalysisConfig config;
    config.policy = BusPolicy::kRoundRobin;

    const WcrtResult wcrt = compute_wcrt(ts, platform, config);
    const auto breakdowns = explain_responses(ts, platform, config);
    if (wcrt.schedulable) {
        for (std::size_t i = 0; i < ts.size(); ++i) {
            ASSERT_TRUE(breakdowns[i].analyzed);
            EXPECT_EQ(breakdowns[i].response, wcrt.response[i]) << i;
            EXPECT_EQ(breakdowns[i].total(), wcrt.response[i]) << i;
        }
    }
}

} // namespace
} // namespace cpa::analysis
