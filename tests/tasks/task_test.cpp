#include "tasks/task.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::tasks {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using namespace util::literals;

TEST(TaskSet, RequiresAtLeastOneCoreAndOneSet)
{
    EXPECT_THROW(TaskSet(0, 16), std::invalid_argument);
    EXPECT_THROW(TaskSet(2, 0), std::invalid_argument);
}

TEST(TaskSet, AddTaskRejectsBadCore)
{
    TaskSet ts(2, 16);
    Task task;
    task.core = 2;
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    EXPECT_THROW(ts.add_task(task), std::invalid_argument);
}

TEST(TaskSet, AddTaskRejectsWrongUniverse)
{
    TaskSet ts(2, 16);
    Task task;
    task.core = 0;
    task.ecb = util::SetMask(8);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    EXPECT_THROW(ts.add_task(task), std::invalid_argument);
}

TEST(TaskSet, TasksOnCorePreservesPriorityOrder)
{
    const TaskSet ts = make_task_set(2, 16,
                                     {
                                         {0, 1, 0, 0, 10, 0, {}, {}, {}},
                                         {1, 1, 0, 0, 10, 0, {}, {}, {}},
                                         {0, 1, 0, 0, 10, 0, {}, {}, {}},
                                     });
    EXPECT_EQ(ts.tasks_on_core(0), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(ts.tasks_on_core(1), (std::vector<std::size_t>{1}));
    EXPECT_THROW((void)ts.tasks_on_core(2), std::out_of_range);
}

TEST(TaskSet, UtilizationAccountsForMemoryTime)
{
    // One task: PD=10, MD=5, T=100, d_mem=4 -> (10 + 20)/100 = 0.3
    const TaskSet ts =
        make_task_set(1, 16, {{0, 10, 5, 5, 100, 0, {}, {}, {}}});
    EXPECT_DOUBLE_EQ(ts.core_utilization(0, 4_cy), 0.3);
    EXPECT_DOUBLE_EQ(ts.bus_utilization(4_cy), 0.2);
}

TEST(TaskSet, DeadlineMonotonicSortsByDeadline)
{
    TaskSet ts = make_task_set(1, 16,
                               {
                                   {0, 1, 0, 0, 30, 30, {}, {}, {}},
                                   {0, 1, 0, 0, 10, 10, {}, {}, {}},
                                   {0, 1, 0, 0, 20, 20, {}, {}, {}},
                               });
    ts.assign_priorities_deadline_monotonic();
    EXPECT_EQ(ts[0].deadline, 10_cy);
    EXPECT_EQ(ts[1].deadline, 20_cy);
    EXPECT_EQ(ts[2].deadline, 30_cy);
    EXPECT_EQ(ts.tasks_on_core(0), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TaskSet, RateMonotonicSortsByPeriod)
{
    TaskSet ts = make_task_set(1, 16,
                               {
                                   {0, 1, 0, 0, 30, 5, {}, {}, {}},
                                   {0, 1, 0, 0, 10, 9, {}, {}, {}},
                               });
    ts.assign_priorities_rate_monotonic();
    EXPECT_EQ(ts[0].period, 10_cy);
    EXPECT_EQ(ts[1].period, 30_cy);
}

TEST(TaskSet, ValidateRejectsResidualAboveMd)
{
    TaskSet ts(1, 16);
    Task task;
    task.core = 0;
    task.pd = 1_cy;
    task.md = 2_acc;
    task.md_residual = 3_acc;
    task.period = 10_cy;
    task.deadline = 10_cy;
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    ts.add_task(task);
    EXPECT_THROW(ts.validate(), std::invalid_argument);
}

TEST(TaskSet, ValidateRejectsUcbOutsideEcb)
{
    TaskSet ts(1, 16);
    Task task;
    task.core = 0;
    task.pd = 1_cy;
    task.md = 2_acc;
    task.md_residual = 1_acc;
    task.period = 10_cy;
    task.deadline = 10_cy;
    task.ecb = util::SetMask::from_indices(16, {1});
    task.ucb = util::SetMask::from_indices(16, {2});
    task.pcb = util::SetMask(16);
    ts.add_task(task);
    EXPECT_THROW(ts.validate(), std::invalid_argument);
}

TEST(TaskSet, ValidateRejectsDeadlineBeyondPeriod)
{
    TaskSet ts(1, 16);
    Task task;
    task.core = 0;
    task.pd = 1_cy;
    task.period = 10_cy;
    task.deadline = 11_cy;
    task.ecb = util::SetMask(16);
    task.ucb = util::SetMask(16);
    task.pcb = util::SetMask(16);
    ts.add_task(task);
    EXPECT_THROW(ts.validate(), std::invalid_argument);
}

TEST(Task, IsolatedDemandCombinesCpuAndMemory)
{
    Task task;
    task.pd = 100_cy;
    task.md = 7_acc;
    EXPECT_EQ(task.isolated_demand(10_cy), 170_cy);
}

} // namespace
} // namespace cpa::tasks
