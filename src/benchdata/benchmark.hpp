// Benchmark parameter database (paper Table I) and the cache-layout model
// used to rescale parameters to arbitrary cache sizes (Fig. 3c).
//
// The paper extracted (PD, MD, MDʳ, ECB, PCB, UCB) from the Mälardalen suite
// with the Heptane static WCET analyzer at a 256-set, 32 B/line,
// direct-mapped L1 instruction cache. We embed the six published rows
// verbatim and extend the suite with calibrated rows (full table is in paper
// ref [4], unavailable; see DESIGN.md §3.1).
//
// Layout model: each benchmark's code is a list of contiguous *regions* of
// cache-block-sized addresses. For a direct-mapped cache with N sets the
// occupancy of set s is the number of program blocks with address ≡ s
// (mod N). Then
//   ECB(N) = number of occupied sets,
//   PCB(N) = number of sets holding exactly one block (a block is persistent
//            iff nothing else in the program maps to its set),
//   X(N)   = number of blocks in conflicting (multiply occupied) sets.
// Region layouts are calibrated so the N = 256 values reproduce Table I.
#pragma once

#include "util/rng.hpp"
#include "util/set_mask.hpp"
#include "util/units.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpa::benchdata {

using util::Cycles;
using util::SetMask;

// A contiguous run of code blocks in the (block-granular) address space.
struct Region {
    std::size_t base_block = 0;
    std::size_t length = 0;
};

struct BenchmarkSpec {
    std::string name;
    Cycles pd;         // PD: pure execution demand, cycles
    Cycles md_cycles;  // MD at the 256-set reference, cycles (Table I)
    Cycles mdr_cycles; // MDʳ at the 256-set reference, cycles (Table I)
    std::vector<Region> regions; // code layout (see file comment)
    double ucb_fraction = 1.0;   // |UCB| / |ECB| at the reference cache
    bool published = false;      // true for the six rows printed in Table I
};

// Parameters of a benchmark for a cache with `cache_sets` sets, plus the
// occupancy pattern needed to place concrete ECB/PCB/UCB masks.
struct BenchmarkParams {
    std::string name;
    Cycles pd;
    util::AccessCount md;          // worst-case bus accesses in isolation
    util::AccessCount md_residual; // accesses with PCBs pre-loaded
    std::size_t ecb_count = 0;
    std::size_t pcb_count = 0;
    std::size_t ucb_count = 0;
    // Occupancy per cache set (relative to placement offset 0).
    std::vector<std::size_t> occupancy;

    // Total isolated demand in cycles at the extraction latency, the quantity
    // the paper's generation recipe divides by U: PD + MD (Table I units).
    [[nodiscard]] Cycles generation_cost() const
    {
        return pd + md * util::kExtractionLatencyCycles;
    }
};

// The reference geometry the table was extracted at.
inline constexpr std::size_t kReferenceCacheSets = 256;

// The six rows printed in the paper's Table I.
[[nodiscard]] const std::vector<BenchmarkSpec>& published_benchmarks();

// Published rows plus calibrated rows for the rest of the Mälardalen suite.
[[nodiscard]] const std::vector<BenchmarkSpec>& full_benchmark_table();

// Rescales `spec` to a cache with `cache_sets` sets using the layout model
// (exact for ECB/PCB/UCB) and the documented monotone demand model for
// MD/MDʳ (DESIGN.md §3.2). At kReferenceCacheSets this returns the table
// values unchanged.
[[nodiscard]] BenchmarkParams derive_params(const BenchmarkSpec& spec,
                                            std::size_t cache_sets);

// Places concrete footprint masks for a task instantiated from `params` at a
// rotation `offset` (the random placement used in the CRPD literature):
// ECB = occupied sets rotated by offset, PCB = single-occupancy sets rotated,
// UCB = the first ucb_count occupied sets (so UCB ⊆ ECB always holds).
struct FootprintMasks {
    SetMask ecb;
    SetMask ucb;
    SetMask pcb;
};
[[nodiscard]] FootprintMasks place_footprint(const BenchmarkParams& params,
                                             std::size_t cache_sets,
                                             std::size_t offset);

} // namespace cpa::benchdata
