// Fixture: per-index streams derive from (base_seed, index) — no shared
// generator touched inside the body.
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

void trial_streams(cpa::util::ThreadPool& pool, std::uint64_t base_seed,
                   std::vector<double>& slot)
{
    pool.parallel_for_indexed(slot.size(), [&](std::size_t i) {
        cpa::util::Rng local(cpa::util::seed_for(base_seed, i));
        slot[i] = local.uniform_real();
    });
}
