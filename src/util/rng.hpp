// Deterministic random-number utilities for task-set generation.
//
// Every experiment in the paper draws random task sets (UUnifast utilizations,
// random benchmark assignment, random cache placement). We centralize the
// generator so experiments are reproducible from a single seed and so tests
// can re-run a failing draw.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cpa::util {

// One output of the SplitMix64 generator (Steele, Lea & Flood; the seeding
// recommendation of Vigna's xoshiro family): a bijective avalanche mix of
// the counter `base + index * golden_gamma`. Bijectivity is what makes the
// derived streams collision-free for a fixed base (pinned by the RNG
// property tests).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// Deterministic per-trial seed derivation: the seed of trial `trial_index`
// under experiment seed `base_seed`. This is the contract that makes the
// parallel trial engine order-independent — every trial's stream depends
// only on (base_seed, trial_index), never on which thread runs it or how
// many trials ran before. Equivalent to the (trial_index + 1)-th output of
// a SplitMix64 sequence started at base_seed. The exact values are pinned
// by tests/util/rng_test.cpp; changing this function invalidates every
// golden file and stored-seed reproduction.
[[nodiscard]] constexpr std::uint64_t
seed_for(std::uint64_t base_seed, std::uint64_t trial_index) noexcept
{
    return splitmix64(base_seed + trial_index * 0x9E3779B97F4A7C15ULL);
}

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    // Uniform index in [0, n). Requires n > 0.
    [[nodiscard]] std::size_t uniform_index(std::size_t n);

    // Uniform real in [0, 1).
    [[nodiscard]] double uniform_real();

    // Uniform real in [lo, hi).
    [[nodiscard]] double uniform_real(double lo, double hi);

    // Derives an independent child generator; used to give each task set its
    // own stream so adding experiments does not perturb earlier draws.
    [[nodiscard]] Rng fork();

    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
};

// UUnifast (Bini & Buttazzo, 2005): draws `n` task utilizations summing to
// `total_utilization`, uniformly over the n-1 simplex. This is the generator
// the paper cites ([11]) for per-core utilizations.
[[nodiscard]] std::vector<double>
uunifast(Rng& rng, std::size_t n, double total_utilization);

} // namespace cpa::util
