file(REMOVE_RECURSE
  "CMakeFiles/benchmark_test.dir/benchdata/benchmark_test.cpp.o"
  "CMakeFiles/benchmark_test.dir/benchdata/benchmark_test.cpp.o.d"
  "benchmark_test"
  "benchmark_test.pdb"
  "benchmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
