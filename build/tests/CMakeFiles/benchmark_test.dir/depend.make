# Empty dependencies file for benchmark_test.
# This may be replaced when dependencies are built.
