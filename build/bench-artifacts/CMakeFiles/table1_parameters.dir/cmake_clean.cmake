file(REMOVE_RECURSE
  "../bench/table1_parameters"
  "../bench/table1_parameters.pdb"
  "CMakeFiles/table1_parameters.dir/table1_parameters.cpp.o"
  "CMakeFiles/table1_parameters.dir/table1_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
