#include "sim/program_sim.hpp"

#include "analysis/wcrt.hpp"
#include "program/extract.hpp"
#include "program/program.hpp"
#include "program/synthetic.hpp"

#include <gtest/gtest.h>

namespace cpa::sim {
namespace {

using namespace util::literals;

PlatformConfig platform(std::size_t cores, std::size_t sets, Cycles d_mem)
{
    PlatformConfig p;
    p.num_cores = cores;
    p.cache_sets = sets;
    p.d_mem = d_mem;
    p.slot_size = 2;
    return p;
}

ProgramSimConfig config(BusPolicy policy, Cycles horizon)
{
    ProgramSimConfig c;
    c.policy = policy;
    c.horizon = horizon;
    return c;
}

// A small loop program: 4 prologue blocks + 5x6 loop (blocks 4..9), which
// self-conflicts in an 8-set cache (8, 9 alias 0, 1).
program::Program small_loop()
{
    program::ProgramBuilder b("small_loop");
    b.straight(0, 4);
    b.begin_loop(5);
    b.straight(4, 6);
    b.end_loop();
    return std::move(b).build();
}

TEST(ProgramSim, SingleTaskMissesMatchExtraction)
{
    // Ground truth: the simulator's first job must miss exactly MD times,
    // and every later job exactly MDʳ times (the PCBs survive in the
    // private cache across jobs; the conflicting blocks re-miss).
    const program::Program p = small_loop();
    const auto params = program::extract_parameters(p, {8, 32});

    ProgramTask task;
    task.program = &p;
    task.core = 0;
    task.period = 10 * params.pd; // generous
    const std::vector<ProgramTask> workload{task};

    const int kJobs = 6;
    const ProgramSimResult result = simulate_programs(
        workload, platform(1, 8, 5_cy),
        config(BusPolicy::kPerfect, kJobs * task.period));
    EXPECT_FALSE(result.deadline_missed);
    ASSERT_EQ(result.jobs_completed[0], kJobs);
    EXPECT_EQ(result.bus_accesses[0],
              params.md + (kJobs - 1) * params.md_residual);
}

TEST(ProgramSim, FirstJobResponseIsPdPlusMdTimesDmem)
{
    const program::Program p = small_loop();
    const auto params = program::extract_parameters(p, {8, 32});
    ProgramTask task;
    task.program = &p;
    task.core = 0;
    task.period = 10 * params.pd;
    const ProgramSimResult result = simulate_programs(
        {task}, platform(1, 8, 5_cy),
        config(BusPolicy::kPerfect, task.period));
    // Exactly one job, cold cache.
    EXPECT_EQ(result.max_response[0], params.pd + params.md * 5_cy);
}

TEST(ProgramSim, HitCountsAreComplementOfMisses)
{
    const program::Program p = small_loop();
    ProgramTask task;
    task.program = &p;
    task.core = 0;
    task.period = Cycles{100000};
    const ProgramSimResult result = simulate_programs(
        {task}, platform(1, 8, 5_cy), config(BusPolicy::kPerfect, 300000_cy));
    const auto trace_len =
        static_cast<std::int64_t>(p.reference_trace().size());
    EXPECT_EQ(result.cache_hits[0] + result.bus_accesses[0],
              util::AccessCount{result.jobs_completed[0] * trace_len});
}

TEST(ProgramSim, DisjointFootprintsKeepPersistence)
{
    // Two tasks on one core whose code lives in different cache sets: the
    // cache is big enough for both, so steady-state jobs of both tasks run
    // missing only their self-conflicting blocks.
    const program::Program p = small_loop(); // blocks 0..9
    const auto params = program::extract_parameters(p, {32, 32});
    ASSERT_EQ(params.md_residual, 0_acc); // no self conflicts at 32 sets

    ProgramTask high;
    high.program = &p;
    high.core = 0;
    high.period = 20 * params.pd;
    ProgramTask low = high;
    low.address_base = 16; // blocks 16..25: disjoint sets at 32 sets
    low.period = 30 * params.pd;

    const ProgramSimResult result = simulate_programs(
        {high, low}, platform(1, 32, 5_cy),
        config(BusPolicy::kPerfect, 120 * params.pd));
    EXPECT_FALSE(result.deadline_missed);
    // Only the cold start misses: MD each, nothing afterwards.
    EXPECT_EQ(result.bus_accesses[0], params.md);
    EXPECT_EQ(result.bus_accesses[1], params.md);
}

TEST(ProgramSim, OverlappingFootprintsCauseCpro)
{
    // Same program at the SAME address for both tasks... would share code;
    // shift by one set instead so every job of each task evicts the other's
    // blocks (full overlap of sets, different tags).
    const program::Program p = small_loop();
    const auto params = program::extract_parameters(p, {32, 32});

    ProgramTask high;
    high.program = &p;
    high.core = 0;
    high.period = 20 * params.pd;
    ProgramTask low = high;
    low.address_base = 32 + 1; // same sets shifted by 1, different tags
    low.period = 20 * params.pd;
    low.offset = 10 * params.pd; // interleave releases

    const ProgramSimResult result = simulate_programs(
        {high, low}, platform(1, 32, 5_cy),
        config(BusPolicy::kPerfect, 100 * params.pd));
    EXPECT_FALSE(result.deadline_missed);
    // Every job of each task reloads (almost) its whole footprint because
    // the other task ran in between: misses must far exceed the
    // persistence-friendly scenario.
    EXPECT_GT(result.bus_accesses[0], 3 * params.md);
    EXPECT_GT(result.bus_accesses[1], 3 * params.md);
}

TEST(ProgramSim, PreemptionCausesCrpdReloads)
{
    // Low-priority task: long loop over blocks 0..5 (fits). High-priority
    // task: overlapping blocks (same sets, other tags), preempts mid-loop
    // -> the low task must re-fetch evicted loop blocks beyond its cold
    // misses.
    program::ProgramBuilder lb("victim");
    lb.begin_loop(300);
    lb.straight(0, 6);
    lb.end_loop();
    const program::Program victim = std::move(lb).build();

    program::ProgramBuilder hb("preempter");
    hb.straight(8, 6); // blocks 8..13 -> sets 0..5 in an 8-set cache
    const program::Program preempter = std::move(hb).build();

    ProgramTask high;
    high.program = &preempter;
    high.core = 0;
    high.period = Cycles{500}; // preempts the victim repeatedly
    ProgramTask low;
    low.program = &victim;
    low.core = 0;
    low.period = Cycles{100000};

    const ProgramSimResult result = simulate_programs(
        {high, low}, platform(1, 8, 5_cy),
        config(BusPolicy::kPerfect, 100000_cy));
    ASSERT_GT(result.jobs_completed[1], 0);
    // In isolation the victim would miss 6 times; preemptions force
    // re-fetches of the evicted loop blocks.
    EXPECT_GT(result.bus_accesses[1], 6_acc);
}

TEST(ProgramSim, DeadlineMissDetected)
{
    const program::Program p = small_loop();
    const auto params = program::extract_parameters(p, {8, 32});
    ProgramTask task;
    task.program = &p;
    task.core = 0;
    task.period = params.pd; // impossible: no time for the misses
    const ProgramSimResult result = simulate_programs(
        {task}, platform(1, 8, 5_cy),
        config(BusPolicy::kPerfect, 10 * params.pd));
    EXPECT_TRUE(result.deadline_missed);
    EXPECT_EQ(result.missed_task, util::TaskId{0});
}

TEST(ProgramSim, ValidatesInputs)
{
    const program::Program p = small_loop();
    ProgramTask task;
    task.program = &p;
    task.core = 5; // invalid
    task.period = Cycles{1000};
    EXPECT_THROW((void)simulate_programs({task}, platform(2, 8, 5_cy),
                                         config(BusPolicy::kPerfect, 100_cy)),
                 std::invalid_argument);
    task.core = 0;
    task.period = Cycles{0};
    EXPECT_THROW((void)simulate_programs({task}, platform(2, 8, 5_cy),
                                         config(BusPolicy::kPerfect, 100_cy)),
                 std::invalid_argument);
    task.period = Cycles{100};
    EXPECT_THROW((void)simulate_programs({task}, platform(2, 8, 5_cy),
                                         config(BusPolicy::kPerfect, 0_cy)),
                 std::invalid_argument);
}

TEST(ProgramSim, PartialFetchProgressSurvivesHarmlessPreemption)
{
    // A victim with large per-fetch cost is preempted mid-fetch by a task
    // whose footprint does NOT alias the victim's. Total victim execution
    // must equal exactly PD + MD*d_mem — no work may be lost or duplicated.
    program::ProgramBuilder vb("victim", /*cycles_per_fetch=*/Cycles{100});
    vb.straight(0, 6);
    const program::Program victim = std::move(vb).build();

    program::ProgramBuilder hb("preempter", Cycles{1});
    hb.straight(100, 2); // blocks 100,101 -> sets 4,5 of 8? no: 100%8=4...
    const program::Program preempter = std::move(hb).build();

    // Use 16 sets: victim blocks 0..5 -> sets 0..5; preempter 100,101 ->
    // sets 4,5. That ALIASES. Shift preempter to 104,105 -> sets 8,9.
    program::ProgramBuilder hb2("preempter2", Cycles{1});
    hb2.straight(104, 2);
    const program::Program preempter2 = std::move(hb2).build();

    sim::ProgramTask high;
    high.program = &preempter2;
    high.core = 0;
    high.period = Cycles{150}; // preempts the victim mid-fetch repeatedly
    sim::ProgramTask low;
    low.program = &victim;
    low.core = 0;
    low.period = Cycles{100000};

    const ProgramSimResult result = simulate_programs(
        {high, low}, platform(1, 16, 5_cy), config(BusPolicy::kPerfect, 100000_cy));
    ASSERT_EQ(result.jobs_completed[1], 1);
    // Victim demand: 6 misses * 5 + 6 fetches * 100 = 630 cycles of its own
    // work. With no aliasing it must not pay any reload.
    EXPECT_EQ(result.bus_accesses[1], 6_acc);
    // Exact timeline: the preempter's first job is cold (2*(5+1) = 12
    // cycles, delaying the victim's start to t = 12); its jobs at 150, 300,
    // 450 and 600 run warm (2 cycles each) and preempt the victim mid-fetch
    // without losing progress. Completion = 12 + 630 + 4*2 = 650 — any
    // lost or duplicated partial-fetch cycles would shift this.
    EXPECT_EQ(result.max_response[1], 650_cy);
}

TEST(ProgramSim, DeterministicAcrossRuns)
{
    const program::Program p = small_loop();
    ProgramTask a;
    a.program = &p;
    a.core = 0;
    a.period = Cycles{4000};
    ProgramTask b = a;
    b.core = 1;
    b.address_base = 64;
    const auto r1 = simulate_programs({a, b}, platform(2, 8, 5_cy),
                                      config(BusPolicy::kRoundRobin, 40000_cy));
    const auto r2 = simulate_programs({a, b}, platform(2, 8, 5_cy),
                                      config(BusPolicy::kRoundRobin, 40000_cy));
    EXPECT_EQ(r1.max_response, r2.max_response);
    EXPECT_EQ(r1.bus_accesses, r2.bus_accesses);
}

// The full-loop validation: extract parameters from programs, run the
// analytical WCRT, and check it bounds the ground-truth execution.
struct PolicyCase {
    BusPolicy policy;
    bool persistence;
};

class ProgramSimSoundness : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ProgramSimSoundness, AnalysisBoundsGroundTruthExecution)
{
    const PolicyCase c = GetParam();
    const PlatformConfig plat = platform(2, 256, 10_cy);

    // Workload: four synthetic-suite programs at staggered addresses.
    const program::Program p0 = program::synthetic_lcdnum();
    const program::Program p1 = program::synthetic_fdct();
    const program::Program p2 = program::synthetic_ludcmp();
    const program::Program p3 = program::synthetic_bsort100();

    struct Placement {
        const program::Program* program;
        std::size_t core;
        std::size_t base;
        std::int64_t period_factor;
    };
    const std::vector<Placement> placements = {
        {&p0, 0, 0, 30},
        {&p1, 0, 40, 12},
        {&p2, 1, 96, 12},
        {&p3, 1, 300, 4},
    };

    std::vector<ProgramTask> workload;
    tasks::TaskSet ts(2, 256);
    for (const Placement& placement : placements) {
        auto params = program::extract_parameters(
            *placement.program, {256, 32});
        // Account for the address base: shift the footprint masks.
        params.ecb = params.ecb.rotated(placement.base);
        params.ucb = params.ucb.rotated(placement.base);
        params.pcb = params.pcb.rotated(placement.base);
        const Cycles period =
            (params.pd + params.md * plat.d_mem) * placement.period_factor;

        ProgramTask task;
        task.program = placement.program;
        task.core = placement.core;
        task.period = period;
        task.address_base = placement.base;
        workload.push_back(task);

        ts.add_task(program::to_task(params, placement.core, period));
    }
    ts.validate();

    analysis::AnalysisConfig config;
    config.policy = c.policy;
    config.persistence_aware = c.persistence;
    const analysis::WcrtResult wcrt =
        analysis::compute_wcrt(ts, plat, config);
    ASSERT_TRUE(wcrt.schedulable)
        << "test workload should be analyzable as schedulable";

    Cycles max_period{0};
    for (const ProgramTask& task : workload) {
        max_period = std::max(max_period, task.period);
    }
    ProgramSimConfig sim_config;
    sim_config.policy = c.policy;
    sim_config.horizon = 4 * max_period;
    const ProgramSimResult observed =
        simulate_programs(workload, plat, sim_config);

    EXPECT_FALSE(observed.deadline_missed);
    for (std::size_t i = 0; i < workload.size(); ++i) {
        EXPECT_LE(observed.max_response[i], wcrt.response[i])
            << "task " << i << " under " << analysis::to_string(c.policy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ProgramSimSoundness,
    ::testing::Values(PolicyCase{BusPolicy::kFixedPriority, true},
                      PolicyCase{BusPolicy::kFixedPriority, false},
                      PolicyCase{BusPolicy::kRoundRobin, true},
                      PolicyCase{BusPolicy::kRoundRobin, false},
                      PolicyCase{BusPolicy::kTdma, true},
                      PolicyCase{BusPolicy::kTdma, false},
                      PolicyCase{BusPolicy::kPerfect, true}));

} // namespace
} // namespace cpa::sim
