# Empty compiler generated dependencies file for ablation_crpd.
# This may be replaced when dependencies are built.
