# Empty compiler generated dependencies file for wcet_extraction.
# This may be replaced when dependencies are built.
