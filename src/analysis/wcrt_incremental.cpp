#include "analysis/wcrt_incremental.hpp"

#include "analysis/bus_bounds.hpp"
#include "analysis/demand.hpp"
#include "check/assert.hpp"
#include "obs/obs.hpp"

#include <algorithm>
#include <string>

namespace cpa::analysis {

using util::to_string;

IncrementalWcrtSolver::IncrementalWcrtSolver(const tasks::TaskSet& ts,
                                             const PlatformConfig& platform,
                                             const AnalysisConfig& config,
                                             const InterferenceTables& tables)
    : ts_(ts), platform_(platform), config_(config), tables_(tables)
{
    const std::size_t n = ts.size();
    pcb_loads_.reserve(n);
    has_lower_on_core_.assign(n, false);
    for (std::size_t j = 0; j < n; ++j) {
        pcb_loads_.push_back(
            util::accesses_from_blocks(ts[j].pcb.popcount()));
        const auto& on_core = ts.tasks_on_core(ts[j].core);
        has_lower_on_core_[j] = !on_core.empty() && on_core.back() > j;
    }
    count_.assign(n, 0);
    count_valid_until_.assign(n, Cycles{0});
    core_count_changed_.assign(ts.num_cores(), false);
    w_full_core_sum_.assign(ts.num_cores(), AccessCount{0});
    w_cout_core_sum_.assign(ts.num_cores(), AccessCount{0});
    cpu_terms_.reserve(n);
    bas_terms_.reserve(n);
    bao_terms_.reserve(n);
    tracked_counts_.reserve(n);
}

// Mirrors BusContentionAnalysis::cpro_reload_bound with the evictor job
// counts ⌈(t+J_s)/T_s⌉ read from the maintained cursors instead of being
// re-derived (init_solve tracks every possible evictor of the solve).
AccessCount IncrementalWcrtSolver::cpro_reload(std::size_t j,
                                               std::size_t level,
                                               std::int64_t n_jobs) const
{
    const AccessCount by_union = tables_.rho_hat(j, level, n_jobs);
    if (config_.cpro == CproMethod::kUnion || by_union == AccessCount{0}) {
        return by_union;
    }
    AccessCount by_jobs{0};
    const AccessCount* overlaps = tables_.pair_overlap_row(j);
    for (const std::size_t s : ts_.tasks_on_core(ts_[j].core)) {
        if (s > level) {
            break; // evictors are Γ ∩ hep(level) \ {j}
        }
        if (s == j) {
            continue;
        }
        by_jobs += (count_[s] + 1) * overlaps[s];
    }
    return std::min(by_union, by_jobs);
}

// One Eq. (16) same-core term at the cached job count: the same arithmetic
// as the loop body of BusContentionAnalysis::bas.
AccessCount IncrementalWcrtSolver::bas_term_value(std::size_t i,
                                                  const BasTerm& term) const
{
    const tasks::Task& hp_task = ts_[term.task];
    const std::int64_t jobs = term.jobs;
    const AccessCount isolation = jobs * hp_task.md;
    AccessCount demand = isolation;
    if (config_.persistence_aware) {
        demand = std::min(isolation,
                          md_hat(hp_task, jobs, pcb_loads_[term.task]) +
                              cpro_reload(term.task, i, jobs));
    }
    CPA_CHECK_ASSERT(demand >= AccessCount{0} && demand <= isolation,
                     "lemma1.cap",
                     "task " + hp_task.name + ": capped demand " +
                         to_string(demand) + " outside [0, " +
                         to_string(isolation) + "]");
    return demand + jobs * term.gamma;
}

// The W_{k,l} full-job part of Eq. (4)/(18) at the cached N_l: the same
// arithmetic as BusContentionAnalysis::other_core_task_accesses minus the
// per-iteration carry-out term.
AccessCount IncrementalWcrtSolver::w_full_value(const BaoTerm& term) const
{
    const tasks::Task& task = ts_[term.task];
    AccessCount w_full = term.n_full * term.per_job;
    if (config_.persistence_aware) {
        const AccessCount capped =
            std::min(term.n_full * task.md,
                     md_hat(task, term.n_full, pcb_loads_[term.task]) +
                         cpro_reload(term.task, bao_level_, term.n_full));
        CPA_CHECK_ASSERT(capped >= AccessCount{0} &&
                             capped <= term.n_full * task.md,
                         "lemma2.cap",
                         "task " + task.name + ": capped full-job demand " +
                             to_string(capped) + " outside [0, " +
                             to_string(term.n_full * task.md) + "]");
        w_full = capped + term.n_full * term.gamma;
    }
    return w_full;
}

void IncrementalWcrtSolver::init_solve(std::size_t i, Cycles t,
                                       const std::vector<Cycles>& response)
{
    const tasks::Task& task = ts_[i];
    const std::size_t my_core = task.core;
    const bool job_bound = config_.persistence_aware &&
                           config_.cpro == CproMethod::kJobBound;
    const bool has_bao = config_.policy == BusPolicy::kFixedPriority ||
                         config_.policy == BusPolicy::kRoundRobin;
    bao_level_ = config_.policy == BusPolicy::kRoundRobin ? ts_.size() - 1 : i;

    cpu_terms_.clear();
    bas_terms_.clear();
    bao_terms_.clear();
    tracked_counts_.clear();
    cpu_sum_ = Cycles{0};
    bas_sum_ = AccessCount{0};
    w_full_hep_sum_ = AccessCount{0};
    w_full_lp_sum_ = AccessCount{0};
    std::fill(w_full_core_sum_.begin(), w_full_core_sum_.end(),
              AccessCount{0});

    const auto track = [&](std::size_t s) {
        count_[s] = jitter_job_count(t, ts_[s].jitter, ts_[s].period);
        count_valid_until_[s] = jitter_job_count_valid_until(
            count_[s], ts_[s].jitter, ts_[s].period);
        tracked_counts_.push_back(s);
    };

    // Own core: ⌈t/T⌉ CPU terms and E_j cursors for every hp task; τ_i
    // itself is tracked only as a kJobBound evictor of its hp tasks' ρ̂.
    for (const std::size_t j : ts_.tasks_on_core(my_core)) {
        if (j > i) {
            break;
        }
        if (j == i) {
            if (job_bound) {
                track(j);
            }
            break;
        }
        track(j);
        CpuTerm cpu{j, cpu_job_count(t, ts_[j].period), Cycles{0}};
        cpu.valid_until = cpu_job_count_valid_until(cpu.count,
                                                    ts_[j].period);
        cpu_sum_ += cpu.count * ts_[j].pd;
        cpu_terms_.push_back(cpu);
    }

    // Evictor cursors on the other cores must exist before any coupled
    // BAO term value is derived.
    if (has_bao && job_bound) {
        for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
            if (core == my_core) {
                continue;
            }
            for (const std::size_t s : ts_.tasks_on_core(core)) {
                if (s > bao_level_) {
                    break;
                }
                track(s);
            }
        }
    }

    // Second pass: cached term values (the cursors they read are in place).
    for (const std::size_t j : ts_.tasks_on_core(my_core)) {
        if (j >= i) {
            break;
        }
        BasTerm term{};
        term.task = j;
        term.jobs = count_[j];
        term.gamma = tables_.gamma(i, j);
        term.coupled =
            job_bound && tables_.cpro_overlap(j, i) > AccessCount{0};
        term.value = bas_term_value(i, term);
        bas_sum_ += term.value;
        bas_terms_.push_back(term);
    }

    if (has_bao) {
        for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
            if (core == my_core) {
                continue;
            }
            // Every task of the core contributes: under FP all of
            // hep(i) ∪ lp(i) (Eq. (7) charges both), under RR the BAO level
            // is the lowest priority n-1, which covers the whole core.
            for (const std::size_t l : ts_.tasks_on_core(core)) {
                BaoTerm term{};
                term.task = l;
                term.core = core;
                term.gamma = tables_.gamma(bao_level_, l);
                term.per_job = ts_[l].md + term.gamma;
                term.offset = response[l] + ts_[l].jitter -
                              term.per_job * platform_.d_mem;
                term.period = ts_[l].period;
                term.n_full = full_job_count(t, term.offset, term.period);
                term.n_full_valid_until = full_job_count_valid_until(
                    term.n_full, term.offset, term.period);
                term.coupled = job_bound && tables_.cpro_overlap(
                                                l, bao_level_) >
                                                AccessCount{0};
                term.lower = l > i;
                term.w_full = w_full_value(term);
                if (config_.policy == BusPolicy::kRoundRobin) {
                    w_full_core_sum_[core] += term.w_full;
                } else if (term.lower) {
                    w_full_lp_sum_ += term.w_full;
                } else {
                    w_full_hep_sum_ += term.w_full;
                }
                bao_terms_.push_back(term);
            }
        }
    }
}

void IncrementalWcrtSolver::refresh(std::size_t i, Cycles t)
{
    std::fill(core_count_changed_.begin(), core_count_changed_.end(), false);
    bool any_count_changed = false;
    for (const std::size_t s : tracked_counts_) {
        if (t <= count_valid_until_[s]) {
            continue;
        }
        count_[s] = jitter_job_count(t, ts_[s].jitter, ts_[s].period);
        count_valid_until_[s] = jitter_job_count_valid_until(
            count_[s], ts_[s].jitter, ts_[s].period);
        core_count_changed_[ts_[s].core] = true;
        any_count_changed = true;
    }

    for (CpuTerm& term : cpu_terms_) {
        if (t <= term.valid_until) {
            continue;
        }
        const std::int64_t updated = cpu_job_count(t, ts_[term.task].period);
        cpu_sum_ += (updated - term.count) * ts_[term.task].pd;
        term.count = updated;
        term.valid_until =
            cpu_job_count_valid_until(updated, ts_[term.task].period);
    }

    if (any_count_changed) {
        const bool own_changed = core_count_changed_[ts_[i].core];
        for (BasTerm& term : bas_terms_) {
            const std::int64_t jobs_now = count_[term.task];
            if (jobs_now == term.jobs && !(term.coupled && own_changed)) {
                continue;
            }
            term.jobs = jobs_now;
            const AccessCount updated = bas_term_value(i, term);
            bas_sum_ += updated - term.value;
            term.value = updated;
        }
    }

    for (BaoTerm& term : bao_terms_) {
        const bool n_full_stale = t > term.n_full_valid_until;
        if (!n_full_stale &&
            !(term.coupled && core_count_changed_[term.core])) {
            continue;
        }
        if (n_full_stale) {
            term.n_full = full_job_count(t, term.offset, term.period);
            term.n_full_valid_until = full_job_count_valid_until(
                term.n_full, term.offset, term.period);
        }
        const AccessCount updated = w_full_value(term);
        if (config_.policy == BusPolicy::kRoundRobin) {
            w_full_core_sum_[term.core] += updated - term.w_full;
        } else if (term.lower) {
            w_full_lp_sum_ += updated - term.w_full;
        } else {
            w_full_hep_sum_ += updated - term.w_full;
        }
        term.w_full = updated;
    }
}

Cycles IncrementalWcrtSolver::solve(std::size_t i,
                                    const std::vector<Cycles>& response,
                                    std::size_t& iterations_used,
                                    bool& budget_exhausted)
{
    CPA_PROFILE_SPAN_ARG("wcrt.inner", "task", i);
    const tasks::Task& task = ts_[i];
    const Cycles start =
        std::max(response[i], task.isolated_demand(platform_.d_mem));
    Cycles r = std::max(start, Cycles{1});
    init_solve(i, r, response);

    const auto hp_count = static_cast<std::int64_t>(bas_terms_.size());
    const AccessCount blocking =
        has_lower_on_core_[i] ? AccessCount{1} : AccessCount{0};

    // The per-iteration carry-out of one other-core task (Eq. (5)): varies
    // at d_mem granularity, hence re-derived fresh at every iterate.
    const auto w_cout_value = [&](const BaoTerm& term, Cycles t) {
        const Cycles leftover =
            t + term.offset - term.n_full * term.period;
        const AccessCount w_cout =
            std::clamp(util::accesses_covering(leftover, platform_.d_mem),
                       AccessCount{0}, term.per_job);
        CPA_CHECK_ASSERT(w_cout >= AccessCount{0} && w_cout <= term.per_job,
                         "lemma2.carry_out_range",
                         "task " + ts_[term.task].name +
                             ": carry-out accesses " + to_string(w_cout) +
                             " outside [0, " + to_string(term.per_job) +
                             "]");
        return w_cout;
    };

    for (std::size_t iter = 0; iter < kMaxInnerIterations; ++iter) {
        iterations_used = iter + 1;
        refresh(i, r);

        // Metric parity with the reference engine's bas() call: one
        // bas.calls tick per inner iteration plus one γ lookup per hp task.
        CPA_COUNT("bas.calls");
        if (hp_count > 0) {
            CPA_COUNT_ADD("tables.gamma_lookups", hp_count);
        }
        const AccessCount same_core = task.md + bas_sum_;

        AccessCount cross_core{0};
        AccessCount blocking_charged{0};
        AccessCount total = same_core;
        switch (config_.policy) {
        case BusPolicy::kPerfect:
            total = same_core;
            break;

        case BusPolicy::kFixedPriority: {
            AccessCount higher = w_full_hep_sum_;
            AccessCount lower = w_full_lp_sum_;
            for (const BaoTerm& term : bao_terms_) {
                const AccessCount w_cout = w_cout_value(term, r);
                if (term.lower) {
                    lower += w_cout;
                } else {
                    higher += w_cout;
                }
            }
            cross_core = higher + std::min(same_core, lower);
            blocking_charged = blocking;
            total = same_core + cross_core + blocking_charged;
            break;
        }

        case BusPolicy::kRoundRobin: {
            std::fill(w_cout_core_sum_.begin(), w_cout_core_sum_.end(),
                      AccessCount{0});
            for (const BaoTerm& term : bao_terms_) {
                w_cout_core_sum_[term.core] += w_cout_value(term, r);
            }
            AccessCount other{0};
            for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
                if (core == task.core) {
                    continue;
                }
                other += std::min(w_full_core_sum_[core] +
                                      w_cout_core_sum_[core],
                                  platform_.slot_size * same_core);
            }
            cross_core = other;
            blocking_charged = blocking;
            total = same_core + cross_core + blocking_charged;
            break;
        }

        case BusPolicy::kTdma: {
            const auto cycle_cores =
                static_cast<std::int64_t>(platform_.num_cores);
            cross_core = (cycle_cores - 1) * platform_.slot_size * same_core;
            blocking_charged = blocking;
            total = same_core + cross_core + blocking_charged;
            break;
        }
        }

        record_bat_breakdown(config_.policy, same_core, cross_core,
                             blocking_charged);
        CPA_CHECK_ASSERT(total >= same_core, "bat.dominates_bas",
                         "task " + task.name + ": BAT " + to_string(total) +
                             " below its own BAS term " +
                             to_string(same_core));

        const Cycles rhs = task.pd + cpu_sum_ + total * platform_.d_mem;
        if (rhs <= r) {
            return r; // busy window closed: all delaying work fits in r
        }
        r = rhs;
        if (r > task.effective_deadline()) {
            return r; // deadline already missed; no need to converge
        }
    }
    // Same conservative fallback as the reference loop; the caller emits
    // the wcrt.budget_exhausted counter + trace event.
    budget_exhausted = true;
    return task.effective_deadline() + Cycles{1};
}

} // namespace cpa::analysis
