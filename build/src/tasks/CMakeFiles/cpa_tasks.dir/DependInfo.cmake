
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasks/partition.cpp" "src/tasks/CMakeFiles/cpa_tasks.dir/partition.cpp.o" "gcc" "src/tasks/CMakeFiles/cpa_tasks.dir/partition.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "src/tasks/CMakeFiles/cpa_tasks.dir/task.cpp.o" "gcc" "src/tasks/CMakeFiles/cpa_tasks.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
