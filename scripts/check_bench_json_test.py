#!/usr/bin/env python3
"""Self-test for check_bench_json.py (stdlib unittest; run from ctest).

Builds valid and deliberately broken BENCH_*.json files in a temp directory
and asserts the validator's verdict on each — in particular the NaN/Infinity
rejection, which json.loads() would otherwise silently accept.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import check_bench_json  # noqa: E402


def valid_histogram(count=10, sum_=1000, min_=50, max_=200,
                    p50=100, p90=180, p99=200):
    return {"count": count, "sum": sum_, "min": min_, "max": max_,
            "p50": p50, "p90": p90, "p99": p99}


def valid_report(bench="demo"):
    return {
        "schema_version": 2,
        "tool": "bench",
        "provenance": {
            "version": "1.0.0",
            "git_sha": "0" * 40,
            "git_dirty": "clean",
            "compiler": "GNU 12.2.0",
            "build_type": "Release",
            "obs": True,
            "check": True,
            "sanitize": "",
        },
        "bench": bench,
        "total_seconds": 1.25,
        "elapsed_ms": 1250,
        "jobs": 4,
        "sections": [{"name": "warmup", "seconds": 0.25}],
        "metrics": {
            "counters": {"wcrt.calls": 10},
            "gauges": {"tables.tasks": 4},
            "timers": {"wcrt.compute": {"total_ns": 1000, "count": 10}},
            "histograms": {
                "bench.total_ns": valid_histogram(count=1, sum_=1250000000,
                                                  min_=1250000000,
                                                  max_=1250000000,
                                                  p50=1250000000,
                                                  p90=1250000000,
                                                  p99=1250000000),
                "wcrt.compute_ns": valid_histogram(),
                "wcrt.inner_iterations_per_call": valid_histogram(
                    sum_=120, min_=2, max_=40, p50=7, p90=31, p99=40),
            },
        },
    }


class CheckBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, report, bench="demo", raw=None):
        path = self.dir / f"BENCH_{bench}.json"
        path.write_text(raw if raw is not None else json.dumps(report) + "\n")
        return path

    def test_valid_report_passes(self):
        path = self.write(valid_report())
        self.assertTrue(check_bench_json.check_report(path))

    def test_main_over_directory(self):
        self.write(valid_report())
        self.assertEqual(
            check_bench_json.main(["check_bench_json", str(self.dir)]), 0)

    def test_nan_total_seconds_rejected(self):
        report = valid_report()
        report["total_seconds"] = float("nan")
        # json.dumps emits the non-standard token NaN; loads() accepts it
        # unless the validator explicitly rejects non-finite constants.
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_infinity_section_seconds_rejected(self):
        report = valid_report()
        report["sections"][0]["seconds"] = float("inf")
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_negative_infinity_rejected(self):
        report = valid_report()
        report["total_seconds"] = float("-inf")
        path = self.write(None, raw=json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_malformed_json_rejected(self):
        path = self.write(None, raw="{not json\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_multiline_report_rejected(self):
        path = self.write(None,
                          raw=json.dumps(valid_report(), indent=2) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_wrong_schema_version_rejected(self):
        report = valid_report()
        report["schema_version"] = 1
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_mismatched_file_name_rejected(self):
        report = valid_report(bench="other")
        path = self.dir / "BENCH_demo.json"
        path.write_text(json.dumps(report) + "\n")
        self.assertFalse(check_bench_json.check_report(path))

    def test_missing_jobs_rejected(self):
        report = valid_report()
        del report["jobs"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_zero_jobs_rejected(self):
        report = valid_report()
        report["jobs"] = 0
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_elapsed_ms_rejected(self):
        report = valid_report()
        del report["elapsed_ms"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_float_elapsed_ms_rejected(self):
        report = valid_report()
        report["elapsed_ms"] = 1250.5
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_boolean_counter_rejected(self):
        report = valid_report()
        report["metrics"]["counters"]["wcrt.calls"] = True
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_metrics_rejected(self):
        report = valid_report()
        del report["metrics"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_provenance_rejected(self):
        report = valid_report()
        del report["provenance"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_non_string_git_sha_rejected(self):
        report = valid_report()
        report["provenance"]["git_sha"] = 12345
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_non_bool_obs_flag_rejected(self):
        report = valid_report()
        report["provenance"]["obs"] = "on"
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_histograms_group_rejected(self):
        report = valid_report()
        del report["metrics"]["histograms"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_bench_total_histogram_rejected(self):
        report = valid_report()
        del report["metrics"]["histograms"]["bench.total_ns"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_negative_percentile_rejected(self):
        report = valid_report()
        report["metrics"]["histograms"]["wcrt.compute_ns"]["p90"] = -1
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_unordered_percentiles_rejected(self):
        report = valid_report()
        hist = report["metrics"]["histograms"]["wcrt.compute_ns"]
        hist["p50"], hist["p99"] = hist["p99"], hist["p50"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_percentile_above_max_rejected(self):
        report = valid_report()
        hist = report["metrics"]["histograms"]["wcrt.compute_ns"]
        hist["p99"] = hist["max"] + 1
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_missing_histogram_key_rejected(self):
        report = valid_report()
        del report["metrics"]["histograms"]["wcrt.compute_ns"]["p50"]
        self.assertFalse(check_bench_json.check_report(self.write(report)))

    def test_empty_histogram_passes(self):
        report = valid_report()
        report["metrics"]["histograms"]["wcrt.compute_ns"] = valid_histogram(
            count=0, sum_=0, min_=0, max_=0, p50=0, p90=0, p99=0)
        self.assertTrue(check_bench_json.check_report(self.write(report)))

    def test_main_flags_invalid_file(self):
        report = valid_report()
        report["total_seconds"] = float("nan")
        self.write(None, raw=json.dumps(report) + "\n")
        self.assertEqual(
            check_bench_json.main(["check_bench_json", str(self.dir)]), 1)


if __name__ == "__main__":
    unittest.main()
