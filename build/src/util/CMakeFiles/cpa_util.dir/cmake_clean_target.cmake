file(REMOVE_RECURSE
  "libcpa_util.a"
)
