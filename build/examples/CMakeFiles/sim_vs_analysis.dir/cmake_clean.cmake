file(REMOVE_RECURSE
  "CMakeFiles/sim_vs_analysis.dir/sim_vs_analysis.cpp.o"
  "CMakeFiles/sim_vs_analysis.dir/sim_vs_analysis.cpp.o.d"
  "sim_vs_analysis"
  "sim_vs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
