#include "analysis/session.hpp"

#include "check/tolerance.hpp"
#include "obs/obs.hpp"

#include <utility>

namespace cpa::analysis {

Session::Session(tasks::TaskSet ts, PlatformConfig base_platform)
    : Session(std::move(ts), base_platform, Options())
{
}

Session::Session(tasks::TaskSet ts, PlatformConfig base_platform,
                 Options options)
    : ts_(std::move(ts)), base_platform_(base_platform), options_(options)
{
}

PlatformConfig Session::resolve_platform(const AnalysisRequest& request) const
{
    PlatformConfig platform = base_platform_;
    if (request.d_mem.has_value()) {
        platform.d_mem = *request.d_mem;
    }
    if (request.slot_size.has_value()) {
        platform.slot_size = *request.slot_size;
    }
    return platform;
}

RequestKey Session::key_for(const AnalysisRequest& request) const
{
    const PlatformConfig platform = resolve_platform(request);
    RequestKey key;
    key.policy = request.config.policy;
    key.persistence_aware = request.config.persistence_aware;
    key.crpd = request.config.crpd;
    key.cpro = request.config.cpro;
    key.engine = request.config.wcrt_engine;
    key.d_mem = platform.d_mem;
    key.slot_size = platform.slot_size;
    return key;
}

const InterferenceTables& Session::tables(CrpdMethod method)
{
    auto it = tables_.find(method);
    if (it != tables_.end()) {
        ++stats_.table_hits;
        CPA_COUNT("session.tables.hit");
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        return it->second.tables;
    }
    ++stats_.table_misses;
    CPA_COUNT("session.tables.miss");
    if (options_.table_capacity > 0 &&
        tables_.size() >= options_.table_capacity) {
        ++stats_.table_evictions;
        CPA_COUNT("session.tables.evict");
        tables_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(method);
    auto [pos, inserted] = tables_.emplace(
        method, TableEntry{InterferenceTables(ts_, method), lru_.begin()});
    (void)inserted;
    return pos->second.tables;
}

SessionResult Session::evaluate(const AnalysisRequest& request,
                                const InterferenceTables& request_tables) const
{
    SessionResult result;
    result.platform = resolve_platform(request);
    result.config = request.config;
    if (ts_.empty()) {
        result.schedulable = true;
        result.wcrt.schedulable = true;
        return result;
    }
    // Mirror is_schedulable()'s perfect-bus admission test exactly: a
    // perfect bus with total utilization > 1 is rejected without running
    // the fixed point, so Session-served verdicts stay byte-identical to
    // the one-shot path.
    if (request.config.policy == BusPolicy::kPerfect &&
        check::utilization_exceeds(
            ts_.bus_utilization(result.platform.d_mem), 1.0)) {
        result.bus_ok = false;
        result.schedulable = false;
        return result;
    }
    result.wcrt =
        compute_wcrt(ts_, result.platform, request.config, request_tables);
    result.schedulable = result.wcrt.schedulable;
    return result;
}

const SessionResult& Session::analyze(const AnalysisRequest& request)
{
    const RequestKey key = key_for(request);
    if (const SessionResult* cached = find_result(key)) {
        return *cached;
    }
    return store_result(key, evaluate(request, tables(request.config.crpd)));
}

const SessionResult* Session::find_result(const RequestKey& key)
{
    auto it = results_.find(key);
    if (it != results_.end()) {
        ++stats_.result_hits;
        CPA_COUNT("session.results.hit");
        return it->second.get();
    }
    ++stats_.result_misses;
    CPA_COUNT("session.results.miss");
    return nullptr;
}

const SessionResult& Session::store_result(const RequestKey& key,
                                           SessionResult result)
{
    auto [it, inserted] = results_.emplace(
        key, std::make_unique<SessionResult>(std::move(result)));
    (void)inserted;
    return *it->second;
}

} // namespace cpa::analysis
