// Hierarchical phase profiler with Chrome Trace Event export.
//
// Recording model: each thread that emits a span lazily registers one
// single-writer ring buffer with the global Profiler (mutex only on that
// first touch), then every span completion is one store into the ring plus
// one release store of the write index — no locks, no allocation, safe
// under util::ThreadPool workers. When the ring wraps, the oldest records
// are overwritten and counted as dropped.
//
// Gating matches the rest of the obs layer: compiled out entirely under
// CPA_OBS_DISABLE (obs.hpp macros), and behind `Profiler::active()` — one
// relaxed atomic load — at run time. The profiler is off unless the CLI
// installed it via `--profile-out FILE`.
//
// Export (`write_chrome_trace`) must run while emitters are quiescent (the
// CLI writes after command work and thread pools have finished). Spans are
// emitted as Chrome "X" (complete) events; viewers (Perfetto,
// chrome://tracing) nest same-thread events by time containment, so the
// outer/inner WCRT fixed-point hierarchy renders as a flame graph without
// explicit parent links.
#pragma once

#include "util/thread_safety.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace cpa::obs {

// One completed span. Name/arg-key point at string literals from the call
// site (CPA_PROFILE_SPAN), which is what keeps records POD and the ring
// allocation-free.
struct SpanRecord {
    const char* name = nullptr;
    const char* arg_key = nullptr; // nullptr = no argument
    std::int64_t arg = 0;
    std::int64_t start_ns = 0; // relative to the profiler epoch
    std::int64_t dur_ns = 0;
};

// Fixed-capacity single-writer ring of span records. The owning thread is
// the only writer; the collector reads the release-stored push count when
// the writer is quiescent.
class SpanRing {
public:
    explicit SpanRing(std::size_t capacity) : slots_(capacity) {}

    void push(const SpanRecord& record) noexcept
    {
        const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
        slots_[static_cast<std::size_t>(n % slots_.size())] = record;
        pushed_.store(n + 1, std::memory_order_release);
    }

    // Oldest-first copy of the retained records (collector side; writer
    // must be quiescent).
    [[nodiscard]] std::vector<SpanRecord> collect() const;
    // Records lost to wrapping.
    [[nodiscard]] std::uint64_t dropped() const noexcept;
    void clear() noexcept { pushed_.store(0, std::memory_order_relaxed); }

private:
    std::vector<SpanRecord> slots_;
    std::atomic<std::uint64_t> pushed_{0};
};

class Profiler {
public:
    // Retained spans per thread; at 48 bytes a record this is ~3 MiB per
    // emitting thread, enough for every phase-level span of a large sweep.
    static constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

    [[nodiscard]] static Profiler& global();

    [[nodiscard]] bool active() const noexcept
    {
        return active_.load(std::memory_order_relaxed);
    }

    // Sets the epoch to "now" and starts accepting spans.
    void start();
    // Stops accepting spans (in-flight ScopedSpans re-check on completion
    // and drop themselves).
    void stop() noexcept { active_.store(false, std::memory_order_relaxed); }
    // Clears every registered ring. Emitters must be quiescent.
    void reset() CPA_EXCLUDES(mutex_);

    // Nanoseconds since the epoch set by start().
    [[nodiscard]] std::int64_t now_ns() const noexcept
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    // Deposits one completed span into this thread's ring (registering the
    // ring on first use).
    void record(const SpanRecord& record) CPA_EXCLUDES(mutex_);

    // Writes every retained span as Chrome Trace Event Format JSON
    // ({"traceEvents":[...]}). Emitters must be quiescent. Returns the
    // number of span events written.
    std::size_t write_chrome_trace(std::ostream& out) const
        CPA_EXCLUDES(mutex_);

    // Total records lost to ring wrap-around, across all threads.
    [[nodiscard]] std::uint64_t dropped_spans() const CPA_EXCLUDES(mutex_);

private:
    [[nodiscard]] SpanRing& ring_for_this_thread() CPA_EXCLUDES(mutex_);

    std::atomic<bool> active_{false};
    std::chrono::steady_clock::time_point epoch_{};
    mutable util::Mutex mutex_;
    // Rings are heap-allocated and never removed, so the thread-cached
    // pointer stays valid even after the owning thread exits (ThreadPool
    // teardown) — the records survive for export.
    std::vector<std::unique_ptr<SpanRing>> rings_ CPA_GUARDED_BY(mutex_);
};

// RAII span: captures the start timestamp if the profiler is active at
// construction, deposits the completed record at destruction. `name` and
// `arg_key` must be string literals (or otherwise outlive the export).
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name) noexcept : ScopedSpan(name, nullptr, 0)
    {
    }
    ScopedSpan(const char* name, const char* arg_key,
               std::int64_t arg) noexcept
    {
        Profiler& profiler = Profiler::global();
        if (profiler.active()) {
            name_ = name;
            arg_key_ = arg_key;
            arg_ = arg;
            start_ns_ = profiler.now_ns();
        }
    }
    ~ScopedSpan()
    {
        if (name_ == nullptr) {
            return;
        }
        Profiler& profiler = Profiler::global();
        if (!profiler.active()) {
            return;
        }
        SpanRecord record;
        record.name = name_;
        record.arg_key = arg_key_;
        record.arg = arg_;
        record.start_ns = start_ns_;
        record.dur_ns = profiler.now_ns() - start_ns_;
        profiler.record(record);
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const char* name_ = nullptr;
    const char* arg_key_ = nullptr;
    std::int64_t arg_ = 0;
    std::int64_t start_ns_ = 0;
};

} // namespace cpa::obs
