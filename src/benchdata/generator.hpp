// Random task-set generation following the paper's evaluation recipe
// (Section V): a fixed number of tasks per core, per-core utilizations drawn
// with UUnifast, each task's parameters drawn from a random benchmark of the
// Mälardalen table, implicit-deadline periods T = D = (PD + MD)/U (with PD
// and MD in the table's cycle units), deadline-monotonic priorities, and
// random (rotation) cache placement of each task's footprint.
#pragma once

#include "analysis/multilevel.hpp"
#include "benchdata/benchmark.hpp"
#include "tasks/partition.hpp"
#include "tasks/task.hpp"
#include "util/rng.hpp"

#include <cstddef>
#include <vector>

namespace cpa::benchdata {

enum class PriorityAssignment {
    kDeadlineMonotonic, // the paper's choice
    kRateMonotonic,     // kept for the ablation bench
};

struct GenerationConfig {
    std::size_t num_cores = 4;
    std::size_t tasks_per_core = 8;
    std::size_t cache_sets = 256;
    double per_core_utilization = 0.5;
    PriorityAssignment priority = PriorityAssignment::kDeadlineMonotonic;
    // D = deadline_ratio * T. The paper uses implicit deadlines (1.0); the
    // DM-vs-RM ablation uses < 1 (constrained deadlines), where the two
    // assignments actually differ. Must be in (0, 1].
    double deadline_ratio = 1.0;
    // Release jitter J = jitter_fraction * T, clamped to T - D (the paper's
    // model has none). Must be in [0, 1).
    double jitter_fraction = 0.0;
};

// Derives the per-benchmark parameters once for a given cache geometry; the
// result is shared by every task set generated at that geometry.
[[nodiscard]] std::vector<BenchmarkParams>
derive_all(const std::vector<BenchmarkSpec>& table, std::size_t cache_sets);

// Draws one random task set. `pool` must come from derive_all() at
// config.cache_sets. The returned set is validated and in priority order.
[[nodiscard]] tasks::TaskSet
generate_task_set(util::Rng& rng, const GenerationConfig& config,
                  const std::vector<BenchmarkParams>& pool);

// Variant with explicit task-to-core assignment: utilizations are drawn
// globally (UUnifast over num_cores * tasks_per_core tasks with total
// num_cores * per_core_utilization, redrawing until no task exceeds
// utilization 1), then tasks are partitioned with `heuristic`. The paper
// generates per core instead; this mode powers the partitioning ablation.
[[nodiscard]] tasks::TaskSet
generate_task_set_partitioned(util::Rng& rng, const GenerationConfig& config,
                              const std::vector<BenchmarkParams>& pool,
                              tasks::PartitionHeuristic heuristic);

// Derives shared-L2 footprints (analysis::L2Footprint) for an existing task
// set, for the multilevel extension: each task's benchmark is looked up by
// name in `table`, rescaled to the L2 geometry via the region layout model,
// and placed at a random rotation. MDʳ² is the residual demand at the L2
// geometry, capped by the task's L1 residual (both levels warm can never
// cost more than one level warm). Throws if a task name is not in `table`.
[[nodiscard]] std::vector<analysis::L2Footprint>
attach_l2_footprints(util::Rng& rng, const tasks::TaskSet& ts,
                     const std::vector<BenchmarkSpec>& table,
                     std::size_t l2_sets);

} // namespace cpa::benchdata
