#include "obs/profiler.hpp"

#include "obs/json.hpp"

#include <algorithm>
#include <ostream>

namespace cpa::obs {

namespace {

// This thread's ring, once registered. Rings outlive threads (the Profiler
// owns them), so a stale pointer after pool teardown is never dereferenced
// by anyone but a new span on the same (reused) thread — still valid.
thread_local SpanRing* t_span_ring = nullptr;

// Microsecond timestamp with nanosecond precision ("1234.567"), the unit
// Chrome Trace Event Format expects for ts/dur.
void write_us(std::ostream& out, std::int64_t ns)
{
    if (ns < 0) {
        ns = 0;
    }
    out << ns / 1000 << '.';
    const auto frac = ns % 1000;
    out << static_cast<char>('0' + frac / 100)
        << static_cast<char>('0' + frac / 10 % 10)
        << static_cast<char>('0' + frac % 10);
}

} // namespace

std::vector<SpanRecord> SpanRing::collect() const
{
    const std::uint64_t pushed = pushed_.load(std::memory_order_acquire);
    const auto capacity = static_cast<std::uint64_t>(slots_.size());
    const std::uint64_t retained = std::min(pushed, capacity);
    std::vector<SpanRecord> out;
    out.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t i = pushed - retained; i < pushed; ++i) {
        out.push_back(slots_[static_cast<std::size_t>(i % capacity)]);
    }
    return out;
}

std::uint64_t SpanRing::dropped() const noexcept
{
    const std::uint64_t pushed = pushed_.load(std::memory_order_acquire);
    const auto capacity = static_cast<std::uint64_t>(slots_.size());
    return pushed > capacity ? pushed - capacity : 0;
}

Profiler& Profiler::global()
{
    static Profiler profiler;
    return profiler;
}

void Profiler::start()
{
    epoch_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_relaxed);
}

void Profiler::reset()
{
    util::MutexLock lock(mutex_);
    for (const auto& ring : rings_) {
        ring->clear();
    }
}

SpanRing& Profiler::ring_for_this_thread()
{
    if (t_span_ring == nullptr) {
        util::MutexLock lock(mutex_);
        rings_.push_back(std::make_unique<SpanRing>(kRingCapacity));
        t_span_ring = rings_.back().get();
    }
    return *t_span_ring;
}

void Profiler::record(const SpanRecord& record)
{
    ring_for_this_thread().push(record);
}

std::size_t Profiler::write_chrome_trace(std::ostream& out) const
{
    util::MutexLock lock(mutex_);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    std::size_t events = 0;
    std::size_t spans = 0;
    const auto comma = [&] {
        if (events > 0) {
            out << ',';
        }
        ++events;
    };
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
        // Thread metadata: tid 1 is whichever thread emitted first (the
        // orchestrator in every CLI path); workers follow in first-span
        // order.
        comma();
        out << R"({"name":"thread_name","ph":"M","pid":1,"tid":)"
            << tid + 1 << R"(,"args":{"name":")"
            << (tid == 0 ? "main" : "worker") << '-' << tid + 1 << "\"}}";

        std::vector<SpanRecord> records = rings_[tid]->collect();
        // Parents before children: earlier start first, longer span first
        // on ties. Viewers nest by containment, but a deterministic order
        // keeps traces diffable for one recording.
        std::stable_sort(records.begin(), records.end(),
                         [](const SpanRecord& a, const SpanRecord& b) {
                             if (a.start_ns != b.start_ns) {
                                 return a.start_ns < b.start_ns;
                             }
                             return a.dur_ns > b.dur_ns;
                         });
        for (const SpanRecord& record : records) {
            comma();
            ++spans;
            out << "{\"name\":\"";
            write_json_escaped(out, record.name);
            out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid + 1
                << ",\"ts\":";
            write_us(out, record.start_ns);
            out << ",\"dur\":";
            write_us(out, record.dur_ns);
            if (record.arg_key != nullptr) {
                out << ",\"args\":{\"";
                write_json_escaped(out, record.arg_key);
                out << "\":" << record.arg << '}';
            }
            out << '}';
        }
        const std::uint64_t dropped = rings_[tid]->dropped();
        if (dropped > 0) {
            comma();
            out << R"({"name":"dropped_spans","ph":"M","pid":1,"tid":)"
                << tid + 1 << R"(,"args":{"count":)" << dropped << "}}";
        }
    }
    out << "]}\n";
    return spans;
}

std::uint64_t Profiler::dropped_spans() const
{
    util::MutexLock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& ring : rings_) {
        total += ring->dropped();
    }
    return total;
}

} // namespace cpa::obs
