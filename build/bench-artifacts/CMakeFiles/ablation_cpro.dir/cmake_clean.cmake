file(REMOVE_RECURSE
  "../bench/ablation_cpro"
  "../bench/ablation_cpro.pdb"
  "CMakeFiles/ablation_cpro.dir/ablation_cpro.cpp.o"
  "CMakeFiles/ablation_cpro.dir/ablation_cpro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
