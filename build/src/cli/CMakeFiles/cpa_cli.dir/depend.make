# Empty dependencies file for cpa_cli.
# This may be replaced when dependencies are built.
