file(REMOVE_RECURSE
  "CMakeFiles/cpa_sim.dir/arbiter.cpp.o"
  "CMakeFiles/cpa_sim.dir/arbiter.cpp.o.d"
  "CMakeFiles/cpa_sim.dir/program_sim.cpp.o"
  "CMakeFiles/cpa_sim.dir/program_sim.cpp.o.d"
  "CMakeFiles/cpa_sim.dir/simulator.cpp.o"
  "CMakeFiles/cpa_sim.dir/simulator.cpp.o.d"
  "libcpa_sim.a"
  "libcpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
