#include "verify/abstract.hpp"

#include <algorithm>
#include <optional>

namespace cpa::verify {

using util::AccessCount;
using util::Cycles;

namespace {

// The hi-endpoint ascent mirrors the concrete solver's iterate chain; the
// concrete inner loop is capped at 100000 steps, so a generous abstract cap
// only cuts off boxes the concrete solver would also struggle with.
constexpr std::size_t kMaxAscentSteps = 4096;
constexpr std::size_t kMaxSweeps = 64;

[[nodiscard]] IAccess to_access(const ICount& c)
{
    return {AccessCount{c.lo}, AccessCount{c.hi}};
}

[[nodiscard]] ICycles to_cycles(const ICount& c)
{
    return {Cycles{c.lo}, Cycles{c.hi}};
}

[[nodiscard]] IAccess blocks_to_access(const ICount& blocks)
{
    return {util::accesses_from_blocks(static_cast<std::size_t>(blocks.lo)),
            util::accesses_from_blocks(static_cast<std::size_t>(blocks.hi))};
}

[[nodiscard]] AccessCount md_hat_corner(std::int64_t n, AccessCount md,
                                        AccessCount mdr, AccessCount pcb)
{
    if (n <= 0) {
        return AccessCount{0};
    }
    return std::min(n * md, n * mdr + pcb);
}

} // namespace

IAccess AbstractScenario::gamma(std::size_t i, std::size_t j) const
{
    const bool active = j < cores && i >= j + cores;
    return active ? ucb : IAccess::point(AccessCount{0});
}

IAccess AbstractScenario::cpro_overlap(std::size_t j, std::size_t level) const
{
    return level >= partner(j) ? pcb : IAccess::point(AccessCount{0});
}

IAccess AbstractScenario::md_hat(const ICount& n) const
{
    // Non-decreasing in n, MD, MDʳ, and |PCB| separately, so the all-lo /
    // all-hi corners enclose every point (MDʳ <= MD holds endpoint-wise
    // because md_residual was clamped with an elementwise min).
    return {md_hat_corner(n.lo, md.lo, md_residual.lo, pcb.lo),
            md_hat_corner(n.hi, md.hi, md_residual.hi, pcb.hi)};
}

IAccess AbstractScenario::rho_hat(std::size_t j, std::size_t level,
                                  const ICount& n) const
{
    // Eq. (14): (n - 1) jobs can each reload the overlap once; no reloads
    // for n <= 1. Both factors are non-negative after the clamp.
    return mul(clamp_non_negative(n - ICount::point(1)),
               cpro_overlap(j, level));
}

AbstractScenario make_abstract(const ParamBox& box, std::int64_t cores)
{
    AbstractScenario s;
    s.cores = static_cast<std::size_t>(cores);
    const ICount cache =
        ICount::point(static_cast<std::int64_t>(kScenarioCacheSets));
    const ICount md = box[Dim::kMd];
    s.ecb_blocks = min(box[Dim::kEcb], cache);
    s.ucb_raw = box[Dim::kUcb];
    s.pcb_raw = box[Dim::kPcb];
    s.mdr_raw = box[Dim::kMdResidual];
    s.md = to_access(md);
    s.md_residual = to_access(min(s.mdr_raw, md));
    s.ucb = blocks_to_access(min(s.ucb_raw, s.ecb_blocks));
    s.pcb = blocks_to_access(min(s.pcb_raw, s.ecb_blocks));
    s.pd = to_cycles(box[Dim::kPd]);
    s.period = to_cycles(box[Dim::kPeriod]);
    s.d_mem = to_cycles(box[Dim::kDmem]);
    s.n_jobs = box[Dim::kNJobs];
    s.window = to_cycles(box[Dim::kWindow]);
    s.dt = to_cycles(box[Dim::kDt]);
    return s;
}

IAccess AbstractBounds::bas(std::size_t i, const ICycles& t) const
{
    IAccess total = s_.md;
    if (i >= s_.cores) {
        // Exactly one same-core higher-priority task in this family.
        const std::size_t j = i - s_.cores;
        const ICount jobs = ceil_div(t, s_.period); // jitter is 0
        const IAccess isolation = mul(jobs, s_.md);
        IAccess demand = isolation;
        if (config_.persistence_aware) {
            demand = min(isolation,
                         s_.md_hat(jobs) + s_.rho_hat(j, i, jobs));
        }
        total = total + demand + mul(jobs, s_.gamma(i, j));
    }
    return total;
}

IAccess AbstractBounds::other_core_task_accesses(
    std::size_t k, std::size_t l, const ICycles& t,
    const std::vector<ICycles>& response) const
{
    const IAccess gamma = s_.gamma(k, l);
    const IAccess per_job = s_.md + gamma;
    // Eq. (6): window shifted by the carry-in job's latest finish.
    const ICycles shift = t + response[l] - mul(per_job, s_.d_mem);
    const ICount n_full = clamp_non_negative(floor_div(shift, s_.period));

    // Eq. (4)/(18): demand of the fully-contained jobs.
    IAccess w_full = mul(n_full, per_job);
    if (config_.persistence_aware) {
        const IAccess capped =
            min(mul(n_full, s_.md),
                s_.md_hat(n_full) + s_.rho_hat(l, k, n_full));
        w_full = capped + mul(n_full, gamma);
    }

    // Eq. (5): carry-out accesses, clamped to one job's worth.
    const ICycles leftover = shift - mul(n_full, s_.period);
    const IAccess w_cout =
        clamp_to(accesses_covering(leftover, s_.d_mem), per_job);
    return w_full + w_cout;
}

IAccess AbstractBounds::bao(std::size_t core, std::size_t k, const ICycles& t,
                            const std::vector<ICycles>& response) const
{
    IAccess total = IAccess::point(AccessCount{0});
    for (const std::size_t l : {core, core + s_.cores}) {
        if (l <= k) {
            total = total + other_core_task_accesses(k, l, t, response);
        }
    }
    return total;
}

IAccess AbstractBounds::bao_lower(std::size_t core, std::size_t i,
                                  const ICycles& t,
                                  const std::vector<ICycles>& response) const
{
    IAccess total = IAccess::point(AccessCount{0});
    for (const std::size_t l : {core, core + s_.cores}) {
        if (l > i) {
            total = total + other_core_task_accesses(i, l, t, response);
        }
    }
    return total;
}

IAccess AbstractBounds::bat(std::size_t i, const ICycles& t,
                            const std::vector<ICycles>& response) const
{
    const IAccess same = bas(i, t);
    const std::size_t my_core = i % s_.cores;
    // Round-0 tasks have a lower-priority same-core task, so one in-flight
    // blocking access; round-1 tasks have none.
    const IAccess blocking = i < s_.cores ? IAccess::point(AccessCount{1})
                                          : IAccess::point(AccessCount{0});

    switch (config_.policy) {
    case analysis::BusPolicy::kPerfect:
        return same;

    case analysis::BusPolicy::kFixedPriority: {
        IAccess higher = IAccess::point(AccessCount{0});
        IAccess lower = IAccess::point(AccessCount{0});
        for (std::size_t core = 0; core < s_.cores; ++core) {
            if (core == my_core) {
                continue;
            }
            higher = higher + bao(core, i, t, response);
            lower = lower + bao_lower(core, i, t, response);
        }
        return same + higher + min(same, lower) + blocking;
    }

    case analysis::BusPolicy::kRoundRobin: {
        const std::size_t lowest = s_.task_count() - 1;
        const ICount slot = ICount::point(s_.slot_size);
        IAccess other = IAccess::point(AccessCount{0});
        for (std::size_t core = 0; core < s_.cores; ++core) {
            if (core == my_core) {
                continue;
            }
            other = other + min(bao(core, lowest, t, response),
                                mul(slot, same));
        }
        return same + other + blocking;
    }

    case analysis::BusPolicy::kTdma: {
        const ICount factor = ICount::point(
            (static_cast<std::int64_t>(s_.cores) - 1) * s_.slot_size);
        return same + mul(factor, same) + blocking;
    }
    }
    return same;
}

IAccess AbstractBounds::bas_persistence_slack(std::size_t i,
                                              const ICycles& t) const
{
    if (i < s_.cores) {
        return IAccess::point(AccessCount{0}); // no same-core hp task
    }
    const std::size_t j = i - s_.cores;
    const ICount jobs = ceil_div(t, s_.period);
    const IAccess isolation = mul(jobs, s_.md);
    const IAccess capped = s_.md_hat(jobs) + s_.rho_hat(j, i, jobs);
    return clamp_non_negative(isolation - capped);
}

IAccess AbstractBounds::other_core_persistence_slack(
    std::size_t k, std::size_t l, const ICycles& t,
    const std::vector<ICycles>& response) const
{
    // Mirrors other_core_task_accesses: only the w_full cap differs between
    // baseline and aware (per_job, n_full and w_cout are shared), so the
    // gap is n_full·MD minus the Lemma 2 cap, clamped at zero.
    const IAccess per_job = s_.md + s_.gamma(k, l);
    const ICycles shift = t + response[l] - mul(per_job, s_.d_mem);
    const ICount n_full = clamp_non_negative(floor_div(shift, s_.period));
    const IAccess capped = s_.md_hat(n_full) + s_.rho_hat(l, k, n_full);
    return clamp_non_negative(mul(n_full, s_.md) - capped);
}

IAccess AbstractBounds::bao_persistence_slack(
    std::size_t core, std::size_t k, const ICycles& t,
    const std::vector<ICycles>& response) const
{
    IAccess total = IAccess::point(AccessCount{0});
    for (const std::size_t l : {core, core + s_.cores}) {
        if (l <= k) {
            total = total + other_core_persistence_slack(k, l, t, response);
        }
    }
    return total;
}

IAccess AbstractBounds::bao_lower_persistence_slack(
    std::size_t core, std::size_t i, const ICycles& t,
    const std::vector<ICycles>& response) const
{
    IAccess total = IAccess::point(AccessCount{0});
    for (const std::size_t l : {core, core + s_.cores}) {
        if (l > i) {
            total = total + other_core_persistence_slack(i, l, t, response);
        }
    }
    return total;
}

ICycles isolated_demand(const AbstractScenario& s)
{
    return s.pd + mul(s.md, s.d_mem);
}

AbstractWcrt abstract_wcrt(const AbstractScenario& s,
                           const analysis::AnalysisConfig& config)
{
    AbstractWcrt out;
    const std::size_t n = s.task_count();
    const ICycles iso = isolated_demand(s);

    // Every point's Eq. 19 starting value already exceeds its deadline:
    // the concrete solver reports a miss everywhere in the box.
    if (iso.lo > s.period.hi) {
        out.verdict = AbstractSchedulability::kAllUnschedulable;
        return out;
    }

    const ICycles init{std::max(iso.lo, Cycles{1}),
                       std::max(iso.hi, Cycles{1})};
    std::vector<ICycles> enclosure(n, init);
    const AbstractBounds bounds(s, config);

    // Ascend the hi endpoint of τ_i's enclosure through the interval rhs
    // until post-fixed: every concrete iterate at every point stays below
    // the abstract chain, so the returned hi dominates the solver's result.
    const auto ascend = [&](std::size_t i) -> std::optional<Cycles> {
        Cycles hi = enclosure[i].hi;
        for (std::size_t iter = 0; iter < kMaxAscentSteps; ++iter) {
            const ICycles r{enclosure[i].lo, hi};
            ICycles rhs = s.pd;
            if (i >= s.cores) {
                rhs = rhs + mul(ceil_div(r, s.period), s.pd);
            }
            rhs = rhs + mul(bounds.bat(i, r, enclosure), s.d_mem);
            if (rhs.hi <= hi) {
                return hi;
            }
            hi = rhs.hi;
            if (hi > s.period.hi) {
                // Some point may miss its deadline; the box straddles.
                return std::nullopt;
            }
        }
        return std::nullopt;
    };

    bool converged = false;
    for (std::size_t sweep = 0; sweep < kMaxSweeps && !converged; ++sweep) {
        out.sweeps = sweep + 1;
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            const std::optional<Cycles> hi = ascend(i);
            if (!hi) {
                out.verdict = AbstractSchedulability::kUnknown;
                return out;
            }
            if (*hi != enclosure[i].hi) {
                enclosure[i] = ICycles{enclosure[i].lo, *hi};
                changed = true;
            }
        }
        converged = !changed;
    }
    if (!converged) {
        out.verdict = AbstractSchedulability::kUnknown;
        return out;
    }

    // Schedulable everywhere only if every enclosure fits under the
    // *smallest* deadline in the box.
    const bool all_fit = std::all_of(
        enclosure.begin(), enclosure.end(),
        [&](const ICycles& e) { return e.hi <= s.period.lo; });
    out.response = std::move(enclosure);
    out.verdict = all_fit ? AbstractSchedulability::kAllSchedulable
                          : AbstractSchedulability::kUnknown;
    return out;
}

} // namespace cpa::verify
