// Sensitivity analysis on top of the schedulability test: how far can a
// system be pushed before the analysis stops certifying it? Complements the
// population-level sweeps (Fig. 2/3) with per-system design margins.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "benchdata/generator.hpp"
#include "tasks/task.hpp"
#include "util/rng.hpp"

#include <cstddef>

namespace cpa::experiments {

// Largest memory latency (cycles) at which `ts` stays schedulable under
// `config`, found by binary search over [1, hi]; 0 when even d_mem = 1
// fails. Schedulability is antitone in d_mem (every bound scales with it),
// which makes the binary search exact.
[[nodiscard]] util::Cycles
critical_d_mem(const tasks::TaskSet& ts,
               const analysis::PlatformConfig& platform,
               const analysis::AnalysisConfig& config, util::Cycles hi);

// Breakdown utilization: the largest per-core utilization on a grid with
// step `u_step` at which the task set freshly generated from `generation`
// (same seed, scaled utilization) is schedulable. This is the quantity the
// bus_policy_selection example reports per arbitration policy.
//
// `jobs` parallelizes the grid evaluation (every point re-seeds from the
// same stored seed, so scheduling order cannot change the draws): 1 = serial
// (default), 0 = auto (CPA_JOBS env, then hardware concurrency).
[[nodiscard]] double breakdown_utilization(
    const benchdata::GenerationConfig& generation,
    const std::vector<benchdata::BenchmarkParams>& pool,
    const analysis::PlatformConfig& platform,
    const analysis::AnalysisConfig& config, std::uint64_t seed,
    double u_step = 0.05, std::size_t jobs = 1);

} // namespace cpa::experiments
