file(REMOVE_RECURSE
  "../bench/fig3b_dmem"
  "../bench/fig3b_dmem.pdb"
  "CMakeFiles/fig3b_dmem.dir/fig3b_dmem.cpp.o"
  "CMakeFiles/fig3b_dmem.dir/fig3b_dmem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_dmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
