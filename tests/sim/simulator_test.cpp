#include "sim/simulator.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::sim {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using namespace util::literals;

PlatformConfig platform(std::size_t cores, Cycles d_mem, std::int64_t slot = 1)
{
    PlatformConfig p;
    p.num_cores = cores;
    p.cache_sets = 16;
    p.d_mem = d_mem;
    p.slot_size = slot;
    return p;
}

SimConfig config(BusPolicy policy, Cycles horizon)
{
    SimConfig c;
    c.policy = policy;
    c.horizon = horizon;
    return c;
}

TEST(Simulator, SingleTaskResponseIsIsolatedDemand)
{
    // PD=10, MD=2, d_mem=5: first job = 10 + 2*5 = 20 cycles.
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 10, 2, 0, 100, 0, {1, 2}, {}, {1, 2}}});
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 500_cy));
    EXPECT_FALSE(result.deadline_missed);
    EXPECT_EQ(result.jobs_completed[0], 5);
    EXPECT_EQ(result.max_response[0], 20_cy);
}

TEST(Simulator, PersistenceReducesLaterJobsAccesses)
{
    // MD=2 with both blocks persistent and MDr=0: jobs after the first need
    // no bus accesses at all -> total accesses = 2 over 5 jobs.
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 10, 2, 0, 100, 0, {1, 2}, {}, {1, 2}}});
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 500_cy));
    EXPECT_EQ(result.bus_accesses[0], 2_acc);
}

TEST(Simulator, NoPersistenceKeepsFullDemandEveryJob)
{
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 10, 2, 2, 100, 0, {1, 2}, {}, {}}});
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 500_cy));
    EXPECT_EQ(result.bus_accesses[0], 10_acc); // 5 jobs * 2
}

TEST(Simulator, CproEvictionForcesPcbReload)
{
    // τ1 (high) and τ2 (low) alternate on one core; τ2's ECBs cover τ1's
    // PCBs, so every job of τ1 after the first still misses its PCBs.
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 10, 2, 0, 100, 0, {1, 2}, {}, {1, 2}},
            {0, 10, 2, 0, 100, 0, {1, 2}, {}, {1, 2}},
        });
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 500_cy));
    // Each task: 5 jobs, every one cold because the other task evicted the
    // footprint in between -> 2 accesses each time.
    EXPECT_EQ(result.bus_accesses[0], 10_acc);
    EXPECT_EQ(result.bus_accesses[1], 10_acc);
}

TEST(Simulator, PreemptionDelaysLowPriorityTask)
{
    // τ1: PD=20 every 50; τ2: PD=30. τ2's first job is preempted once.
    const tasks::TaskSet ts = make_task_set(1, 16,
                                            {
                                                {0, 20, 0, 0, 50, 0, {}, {}, {}},
                                                {0, 30, 0, 0, 200, 0, {}, {}, {}},
                                            });
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 200_cy));
    EXPECT_FALSE(result.deadline_missed);
    EXPECT_EQ(result.max_response[0], 20_cy);
    // τ2: runs 20..50 (30 demanded, 30 left at t=50? no: executes 30 cycles
    // in [20,50) -> done exactly at 50... executes 30 cycles: [20,50) = 30.
    EXPECT_EQ(result.max_response[1], 50_cy);
}

TEST(Simulator, CrpdReloadChargedOnResume)
{
    // τ2 (low) has UCBs that τ1 (high) evicts mid-execution: after the
    // preemption τ2 must reload the overlap (2 blocks).
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 10, 1, 1, 60, 0, {1, 2}, {}, {}},
            {0, 50, 2, 2, 300, 0, {1, 2, 3}, {1, 2}, {}},
        });
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 300_cy));
    EXPECT_FALSE(result.deadline_missed);
    // τ1: 5 jobs * 1 access. τ2: 1 job with 2 base accesses + reloads for
    // each of the preemptions that actually evicted its UCBs.
    EXPECT_EQ(result.bus_accesses[0], 5_acc);
    EXPECT_GE(result.bus_accesses[1], util::AccessCount{2 + 2});
}

TEST(Simulator, DeadlineMissDetected)
{
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 120, 0, 0, 100, 0, {}, {}, {}}});
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 1000_cy));
    EXPECT_TRUE(result.deadline_missed);
    EXPECT_EQ(result.missed_task, util::TaskId{0});
}

TEST(Simulator, FpBusServesHigherPriorityFirst)
{
    // Two single-task cores saturating the bus; the high-priority task's
    // accesses should suffer at most one blocking access each.
    const tasks::TaskSet ts = make_task_set(
        2, 16,
        {
            {0, 10, 5, 5, 200, 0, {}, {}, {}},
            {1, 10, 5, 5, 200, 0, {}, {}, {}},
        });
    const SimResult result =
        simulate(ts, platform(2, 10_cy), config(BusPolicy::kFixedPriority, 200_cy));
    EXPECT_FALSE(result.deadline_missed);
    // τ1 isolated: 10 + 50 = 60; plus at most one d_mem of blocking per
    // access: <= 60 + 5*10.
    EXPECT_LE(result.max_response[0], 110_cy);
    EXPECT_GE(result.max_response[1], result.max_response[0]);
}

TEST(Simulator, TdmaIsNonWorkConserving)
{
    // A single task on core 0 of a 2-core TDMA platform still waits for its
    // own slots even though core 1 is idle.
    const tasks::TaskSet ts =
        make_task_set(2, 16, {{0, 0, 3, 3, 1000, 0, {}, {}, {}}});
    const SimResult with_tdma =
        simulate(ts, platform(2, 10_cy, 1), config(BusPolicy::kTdma, 1000_cy));
    const SimResult with_perfect =
        simulate(ts, platform(2, 10_cy, 1), config(BusPolicy::kPerfect, 1000_cy));
    EXPECT_GT(with_tdma.max_response[0], with_perfect.max_response[0]);
}

TEST(Simulator, RoundRobinSkipsIdleCores)
{
    // Same single-task system under RR: no other core ever requests, so the
    // task is served back-to-back like on a perfect bus.
    const tasks::TaskSet ts =
        make_task_set(2, 16, {{0, 0, 3, 3, 1000, 0, {}, {}, {}}});
    const SimResult with_rr =
        simulate(ts, platform(2, 10_cy, 1), config(BusPolicy::kRoundRobin, 1000_cy));
    const SimResult with_perfect =
        simulate(ts, platform(2, 10_cy, 1), config(BusPolicy::kPerfect, 1000_cy));
    EXPECT_EQ(with_rr.max_response[0], with_perfect.max_response[0]);
}

TEST(Simulator, RejectsNonPositiveHorizon)
{
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 1, 0, 0, 10, 0, {}, {}, {}}});
    EXPECT_THROW((void)simulate(ts, platform(1, 5_cy),
                                config(BusPolicy::kFixedPriority, 0_cy)),
                 std::invalid_argument);
}

TEST(Simulator, EmptyTaskSetYieldsEmptyResult)
{
    const tasks::TaskSet ts(1, 16);
    const SimResult result =
        simulate(ts, platform(1, 5_cy), config(BusPolicy::kFixedPriority, 100_cy));
    EXPECT_TRUE(result.max_response.empty());
    EXPECT_FALSE(result.deadline_missed);
}

TEST(Simulator, OverloadedTaskTerminatesWithJobsInReleaseOrder)
{
    // Isolated demand 100 + 8*5 = 140 > T = 60: every job misses the next
    // release, so two jobs of the task are live at once. Regression test for
    // a livelock: breaking the dispatch tie by ready-queue position made the
    // two jobs interleave on every bus access, each switch charging a
    // |UCB ∩ ECB| CRPD reload, which refilled accesses faster than the bus
    // drained them. Jobs of one task must run in release order instead.
    const tasks::TaskSet ts = make_task_set(
        1, 16, {{0, 100, 8, 8, 60, 0, {1, 2, 3, 4}, {1, 2}, {}}});
    SimConfig cfg = config(BusPolicy::kFixedPriority, 600_cy);
    cfg.stop_on_deadline_miss = false; // keep going past the miss pile-up
    const SimResult result = simulate(ts, platform(1, 5_cy), cfg);
    EXPECT_TRUE(result.deadline_missed);
    EXPECT_GE(result.jobs_completed[0], 2);
}

TEST(Simulator, StalledCoreInheritsPriorityForQueuedRequest)
{
    // Core 0 runs hp task 0 (T=200) and lp task 3; cores 1 and 2 each
    // saturate the FP bus with 50 back-to-back accesses at intermediate
    // priorities, so whenever an access completes another intermediate
    // request is already pending and task 3's queued request loses every
    // arbitration round (~1000 cycles). When task 0 releases again at
    // t=200 its core is stalled on that queued request. Without priority
    // inheritance the whole core stays blocked past task 0's t=400
    // deadline — an inversion the Eq. (7) analysis does not charge. With
    // inheritance the request is promoted, wins the next round, and
    // task 0's response stays near its isolated demand.
    const tasks::TaskSet ts =
        make_task_set(3, 16, {{0, 10, 1, 1, 200, 0, {1}, {}, {}},
                              {1, 5, 50, 50, 2000, 0, {2}, {}, {}},
                              {2, 5, 50, 50, 2000, 0, {3}, {}, {}},
                              {0, 10, 2, 2, 1000, 0, {4}, {}, {}}});
    const SimResult result =
        simulate(ts, platform(3, 10_cy), config(BusPolicy::kFixedPriority, 600_cy));
    EXPECT_FALSE(result.deadline_missed);
    EXPECT_GE(result.jobs_completed[0], 2);
    EXPECT_LT(result.max_response[0], 100_cy);
}

} // namespace
} // namespace cpa::sim
