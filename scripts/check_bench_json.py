#!/usr/bin/env python3
"""Validate BENCH_*.json run reports emitted by the bench binaries.

Usage:
    check_bench_json.py FILE_OR_DIR [FILE_OR_DIR ...]

Directories are scanned (non-recursively) for BENCH_*.json. Every file must
be a single-line JSON object matching the RunReport schema documented in
docs/observability.md:

    schema_version : int == 1
    tool           : "bench"
    bench          : non-empty string
    total_seconds  : number >= 0
    elapsed_ms     : int >= 0 (wall clock, for speedup trajectories)
    jobs           : int >= 1 (resolved worker count of the run)
    sections       : list of {"name": str, "seconds": number >= 0}
    metrics        : {"counters": {str: int},
                      "gauges": {str: int},
                      "timers": {str: {"total_ns": int >= 0,
                                       "count": int >= 0}}}

Exit status 0 when every report validates, 1 otherwise. Stdlib only.
"""

import json
import math
import sys
from pathlib import Path

SCHEMA_VERSION = 1


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def _reject_constant(token):
    # json.loads() happily parses NaN/Infinity/-Infinity (non-standard JSON);
    # a timing bug that divides by zero must not produce a "valid" report.
    raise ValueError(f"non-finite JSON constant {token}")


def check_number(path, value, what, minimum=None):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return fail(path, f"{what} must be a number, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        return fail(path, f"{what} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        return fail(path, f"{what} must be >= {minimum}, got {value!r}")
    return True


def check_int(path, value, what, minimum=None):
    if isinstance(value, bool) or not isinstance(value, int):
        return fail(path, f"{what} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        return fail(path, f"{what} must be >= {minimum}, got {value!r}")
    return True


def check_metrics(path, metrics):
    ok = True
    if not isinstance(metrics, dict):
        return fail(path, f"metrics must be an object, got {metrics!r}")
    for group in ("counters", "gauges", "timers"):
        if group not in metrics:
            ok = fail(path, f"metrics.{group} missing")
    for group in ("counters", "gauges"):
        for name, value in metrics.get(group, {}).items():
            ok = check_int(path, value, f"metrics.{group}[{name!r}]") and ok
    for name, stat in metrics.get("timers", {}).items():
        what = f"metrics.timers[{name!r}]"
        if not isinstance(stat, dict):
            ok = fail(path, f"{what} must be an object, got {stat!r}")
            continue
        ok = check_int(path, stat.get("total_ns"), f"{what}.total_ns",
                       minimum=0) and ok
        ok = check_int(path, stat.get("count"), f"{what}.count",
                       minimum=0) and ok
    return ok


def check_report(path):
    try:
        text = path.read_text()
        report = json.loads(text, parse_constant=_reject_constant)
    except (OSError, ValueError) as error:
        # ValueError covers both JSONDecodeError (its subclass) and the
        # NaN/Infinity rejection above.
        return fail(path, f"unreadable: {error}")

    if text.count("\n") > 1 or (text.count("\n") == 1
                                and not text.endswith("\n")):
        return fail(path, "report must be a single JSON line")
    if not isinstance(report, dict):
        return fail(path, "top level must be a JSON object")

    ok = True
    if report.get("schema_version") != SCHEMA_VERSION:
        ok = fail(
            path, f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}")
    if report.get("tool") != "bench":
        ok = fail(path, f"tool must be 'bench', got {report.get('tool')!r}")
    bench = report.get("bench")
    if not isinstance(bench, str) or not bench:
        ok = fail(path, f"bench must be a non-empty string, got {bench!r}")
    elif path.name != f"BENCH_{bench}.json":
        ok = fail(path, f"file name does not match bench name {bench!r}")
    ok = check_number(path, report.get("total_seconds"), "total_seconds",
                      minimum=0) and ok
    ok = check_int(path, report.get("elapsed_ms"), "elapsed_ms",
                   minimum=0) and ok
    ok = check_int(path, report.get("jobs"), "jobs", minimum=1) and ok

    sections = report.get("sections")
    if not isinstance(sections, list):
        ok = fail(path, f"sections must be a list, got {sections!r}")
    else:
        for index, section in enumerate(sections):
            what = f"sections[{index}]"
            if not isinstance(section, dict):
                ok = fail(path, f"{what} must be an object, got {section!r}")
                continue
            name = section.get("name")
            if not isinstance(name, str) or not name:
                ok = fail(path,
                          f"{what}.name must be a non-empty string, "
                          f"got {name!r}")
            ok = check_number(path, section.get("seconds"),
                             f"{what}.seconds", minimum=0) and ok

    if "metrics" not in report:
        ok = fail(path, "metrics missing")
    else:
        ok = check_metrics(path, report["metrics"]) and ok
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    files = []
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
        else:
            files.append(path)
    if not files:
        print("check_bench_json: no BENCH_*.json files found",
              file=sys.stderr)
        return 1

    bad = 0
    for path in files:
        if check_report(path):
            print(f"{path}: ok")
        else:
            bad += 1
    if bad:
        print(f"check_bench_json: {bad}/{len(files)} report(s) invalid",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
