# Empty dependencies file for soundness_test.
# This may be replaced when dependencies are built.
