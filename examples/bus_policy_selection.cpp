// Scenario: choosing a bus arbitration policy for an automotive engine
// controller.
//
// A partitioned workload (sensor fusion, injection control, diagnostics,
// logging spread over 4 cores) is drawn from the Mälardalen parameter table
// at a target utilization. For each bus policy we run the persistence-aware
// WCRT analysis and report per-task slack, decompose where the
// lowest-priority task's response time goes, and compute each policy's
// breakdown utilization — the design question the paper's Fig. 2 answers in
// aggregate.
//
//   $ ./build/examples/bus_policy_selection
#include "analysis/report.hpp"
#include "analysis/schedulability.hpp"
#include "benchdata/generator.hpp"
#include "experiments/sensitivity.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <iostream>

using namespace cpa;

namespace {

constexpr std::uint64_t kSeed = 5;

analysis::PlatformConfig ecu_platform()
{
    analysis::PlatformConfig platform;
    platform.num_cores = 4;
    platform.cache_sets = 256;
    platform.d_mem = util::cycles_from_microseconds(util::Microseconds{5});
    platform.slot_size = 2;
    return platform;
}

analysis::AnalysisConfig config_for(analysis::BusPolicy policy,
                                    bool persistence = true)
{
    analysis::AnalysisConfig config;
    config.policy = policy;
    config.persistence_aware = persistence;
    return config;
}

} // namespace

int main()
{
    const analysis::PlatformConfig platform = ecu_platform();

    benchdata::GenerationConfig generation;
    generation.num_cores = 4;
    generation.tasks_per_core = 8;
    generation.cache_sets = 256;
    generation.per_core_utilization = 0.35;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);

    util::Rng rng(kSeed);
    const tasks::TaskSet ts =
        benchdata::generate_task_set(rng, generation, pool);
    const analysis::InterferenceTables tables(
        ts, analysis::CrpdMethod::kEcbUnion);

    // --- Per-task slack at the design utilization ------------------------
    std::cout << "Engine-controller workload: 32 tasks over 4 cores, "
                 "U/core = 0.35\n\n";
    std::vector<std::vector<analysis::ResponseBreakdown>> reports;
    for (const auto policy :
         {analysis::BusPolicy::kFixedPriority, analysis::BusPolicy::kRoundRobin,
          analysis::BusPolicy::kTdma}) {
        reports.push_back(
            analysis::explain_responses(ts, platform, config_for(policy),
                                        tables));
    }
    const auto slack = [&](const analysis::ResponseBreakdown& b,
                           std::size_t i) {
        if (!b.analyzed || !b.meets_deadline) {
            return std::string("miss");
        }
        return util::TextTable::num(
            100.0 * util::to_double(ts[i].deadline - b.response) /
                util::to_double(ts[i].deadline),
            1);
    };
    util::TextTable table(
        {"task", "core", "T (us)", "FP slack%", "RR slack%", "TDMA slack%"});
    for (std::size_t i = 0; i < ts.size(); ++i) {
        table.add_row({ts[i].name, std::to_string(ts[i].core),
                       util::TextTable::num(
                           util::microseconds_from_cycles(ts[i].period), 0),
                       slack(reports[0][i], i), slack(reports[1][i], i),
                       slack(reports[2][i], i)});
    }
    table.print(std::cout);

    // --- Where does the critical task's response time go? ----------------
    const std::size_t last = ts.size() - 1;
    std::cout << "\nResponse decomposition of the lowest-priority task ("
              << ts[last].name << "):\n";
    util::TextTable decomposition({"policy", "R (cyc)", "own CPU",
                                   "preemption", "same-core bus",
                                   "cross-core bus"});
    const char* names[] = {"FP", "RR", "TDMA"};
    for (std::size_t p = 0; p < 3; ++p) {
        const analysis::ResponseBreakdown& b = reports[p][last];
        decomposition.add_row(
            {names[p], b.analyzed ? util::to_string(b.response) : "-",
             util::to_string(b.cpu_self), util::to_string(b.cpu_preemption),
             util::to_string(b.bus_same_core),
             util::to_string(b.bus_cross_core)});
    }
    decomposition.print(std::cout);

    // --- Breakdown utilization per policy --------------------------------
    std::cout << "\nBreakdown utilization (highest U/core where this seed's "
                 "workload stays schedulable):\n";
    for (const bool persistence : {true, false}) {
        std::cout << (persistence ? "  with persistence:    "
                                  : "  without persistence: ");
        for (const auto& [name, policy] :
             {std::pair{"FP", analysis::BusPolicy::kFixedPriority},
              std::pair{"RR", analysis::BusPolicy::kRoundRobin},
              std::pair{"TDMA", analysis::BusPolicy::kTdma}}) {
            const double breakdown = experiments::breakdown_utilization(
                generation, pool, platform, config_for(policy, persistence),
                kSeed);
            std::cout << name << "=" << util::TextTable::num(breakdown, 2)
                      << "  ";
        }
        std::cout << "\n";
    }
    return 0;
}
