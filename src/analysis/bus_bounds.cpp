#include "analysis/bus_bounds.hpp"

#include "analysis/demand.hpp"
#include "check/assert.hpp"
#include "obs/obs.hpp"
#include "util/math.hpp"

#include <algorithm>
#include <string>

namespace cpa::analysis {

using util::AccessCount;
using util::ceil_div;
using util::clamp_non_negative;
using util::floor_div;
using util::to_metric;
using util::to_string;

namespace {

#if CPA_OBS_ENABLED
// Per-arbiter BAT statistics: call counts and the accumulated breakdown of
// Eq. (7)-(9) into same-core demand (BAS), cross-core interference, and
// blocking. Counter references are resolved once per policy (cold path);
// the recording itself only runs when metrics are enabled.
struct BatNames {
    const char* calls;
    const char* same_core;
    const char* cross_core;
    const char* blocking;
};

const BatNames& bat_names(BusPolicy policy)
{
    static constexpr BatNames fp{"bat.fp.calls", "bat.fp.same_core",
                                 "bat.fp.cross_core", "bat.fp.blocking"};
    static constexpr BatNames rr{"bat.rr.calls", "bat.rr.same_core",
                                 "bat.rr.cross_core", "bat.rr.blocking"};
    static constexpr BatNames tdma{"bat.tdma.calls", "bat.tdma.same_core",
                                   "bat.tdma.cross_core",
                                   "bat.tdma.blocking"};
    static constexpr BatNames perfect{
        "bat.perfect.calls", "bat.perfect.same_core",
        "bat.perfect.cross_core", "bat.perfect.blocking"};
    switch (policy) {
    case BusPolicy::kFixedPriority:
        return fp;
    case BusPolicy::kRoundRobin:
        return rr;
    case BusPolicy::kTdma:
        return tdma;
    case BusPolicy::kPerfect:
        break;
    }
    return perfect;
}

struct BatCounters {
    obs::Counter& calls;
    obs::Counter& same_core;
    obs::Counter& cross_core;
    obs::Counter& blocking;
};

BatCounters make_bat_counters(const BatNames& names)
{
    auto& registry = obs::MetricsRegistry::global();
    return BatCounters{registry.counter(names.calls),
                       registry.counter(names.same_core),
                       registry.counter(names.cross_core),
                       registry.counter(names.blocking)};
}

#endif // CPA_OBS_ENABLED

} // namespace

void record_bat_breakdown(BusPolicy policy, AccessCount same_core,
                          AccessCount cross_core, AccessCount blocking)
{
#if !CPA_OBS_ENABLED
    (void)policy;
    (void)same_core;
    (void)cross_core;
    (void)blocking;
#else
    if (!obs::metrics_enabled()) {
        return;
    }
    const BatNames& names = bat_names(policy);
    // Inside a parallel trial the events stage in the thread's buffer (same
    // contract as the obs.hpp macros); otherwise fall back to the cached
    // registry references so the serial hot path stays one atomic add.
    if (obs::MetricsBuffer* buffer = obs::current_metrics_buffer()) {
        buffer->add_counter(names.calls, 1);
        buffer->add_counter(names.same_core, to_metric(same_core));
        buffer->add_counter(names.cross_core, to_metric(cross_core));
        buffer->add_counter(names.blocking, to_metric(blocking));
        return;
    }
    static BatCounters fp =
        make_bat_counters(bat_names(BusPolicy::kFixedPriority));
    static BatCounters rr =
        make_bat_counters(bat_names(BusPolicy::kRoundRobin));
    static BatCounters tdma = make_bat_counters(bat_names(BusPolicy::kTdma));
    static BatCounters perfect =
        make_bat_counters(bat_names(BusPolicy::kPerfect));
    BatCounters* counters = &perfect;
    switch (policy) {
    case BusPolicy::kFixedPriority:
        counters = &fp;
        break;
    case BusPolicy::kRoundRobin:
        counters = &rr;
        break;
    case BusPolicy::kTdma:
        counters = &tdma;
        break;
    case BusPolicy::kPerfect:
        break;
    }
    counters->calls.add(1);
    counters->same_core.add(to_metric(same_core));
    counters->cross_core.add(to_metric(cross_core));
    counters->blocking.add(to_metric(blocking));
#endif // CPA_OBS_ENABLED
}

BusContentionAnalysis::BusContentionAnalysis(const tasks::TaskSet& ts,
                                             const PlatformConfig& platform,
                                             const AnalysisConfig& config,
                                             const InterferenceTables& tables)
    : ts_(ts), platform_(platform), config_(config), tables_(tables)
{
}

AccessCount BusContentionAnalysis::cpro_reload_bound(std::size_t j,
                                                     std::size_t level,
                                                     std::int64_t n_jobs,
                                                     Cycles t) const
{
    const AccessCount by_union = tables_.rho_hat(j, level, n_jobs);
    if (config_.cpro == CproMethod::kUnion || by_union == AccessCount{0}) {
        return by_union;
    }
    // Each job of an evicting task τ_s displaces at most |PCB_j ∩ ECB_s|
    // persistent blocks; at most ⌈t/T_s⌉ + 1 jobs of τ_s (one carry-in) can
    // execute in any window of length t.
    AccessCount by_jobs{0};
    for (const std::size_t s : ts_.tasks_on_core(ts_[j].core)) {
        if (s > level) {
            break; // evictors are Γ ∩ hep(level) \ {j}
        }
        if (s == j) {
            continue;
        }
        by_jobs += (ceil_div(t + ts_[s].jitter, ts_[s].period) + 1) *
                   tables_.pair_overlap(j, s);
    }
    return std::min(by_union, by_jobs);
}

AccessCount BusContentionAnalysis::bas(std::size_t i, Cycles t) const
{
    CPA_COUNT("bas.calls");
    const tasks::Task& task = ts_[i];
    AccessCount total = task.md;
    for (const std::size_t j : ts_.tasks_on_core(task.core)) {
        if (j >= i) {
            break; // per-core lists are in priority order; only hp(i) counts
        }
        CPA_COUNT("tables.gamma_lookups");
        const tasks::Task& hp_task = ts_[j];
        // E_j(t) with release jitter: ceil((t + J_j)/T_j).
        const std::int64_t jobs =
            ceil_div(t + hp_task.jitter, hp_task.period);
        const AccessCount isolation = jobs * hp_task.md;
        AccessCount demand = isolation;
        if (config_.persistence_aware) {
            // Lemma 1: cap by M̂D_j(E_j) + ρ̂_{j,i,x}(E_j).
            demand = std::min(isolation,
                              md_hat(hp_task, jobs) +
                                  cpro_reload_bound(j, i, jobs, t));
        }
        CPA_CHECK_ASSERT(demand >= AccessCount{0} && demand <= isolation,
                         "lemma1.cap",
                         "task " + hp_task.name + ": capped demand " +
                             to_string(demand) + " outside [0, " +
                             to_string(isolation) + "]");
        total += demand + jobs * tables_.gamma(i, j);
    }
    return total;
}

AccessCount BusContentionAnalysis::other_core_task_accesses(
    std::size_t k, std::size_t l, Cycles t,
    const std::vector<Cycles>& response) const
{
    const tasks::Task& task = ts_[l];
    const AccessCount gamma = tables_.gamma(k, l);
    const AccessCount per_job = task.md + gamma;
    const Cycles r_l = response[l];

    // Eq. (6): jobs that fully execute inside the window, assuming the first
    // job finishes as late as possible (just before R_l) and later jobs run
    // as early as possible.
    const std::int64_t n_full = clamp_non_negative(floor_div(
        t + r_l + task.jitter - per_job * platform_.d_mem, task.period));

    // Eq. (4) / Eq. (18): accesses of the fully-executed jobs.
    AccessCount w_full = n_full * per_job;
    if (config_.persistence_aware) {
        const AccessCount capped = std::min(
            n_full * task.md,
            md_hat(task, n_full) + cpro_reload_bound(l, k, n_full, t));
        CPA_CHECK_ASSERT(capped >= AccessCount{0} &&
                             capped <= n_full * task.md,
                         "lemma2.cap",
                         "task " + task.name + ": capped full-job demand " +
                             to_string(capped) + " outside [0, " +
                             to_string(n_full * task.md) + "]");
        w_full = capped + n_full * gamma;
    }

    // Eq. (5): accesses of the carry-out job, clamped to [0, MD + γ].
    const Cycles leftover = t + r_l + task.jitter -
                            per_job * platform_.d_mem -
                            n_full * task.period;
    const AccessCount w_cout =
        std::clamp(util::accesses_covering(leftover, platform_.d_mem),
                   AccessCount{0}, per_job);
    CPA_CHECK_ASSERT(w_cout >= AccessCount{0} && w_cout <= per_job,
                     "lemma2.carry_out_range",
                     "task " + task.name + ": carry-out accesses " +
                         to_string(w_cout) + " outside [0, " +
                         to_string(per_job) + "]");

    return w_full + w_cout;
}

AccessCount BusContentionAnalysis::bao(std::size_t core, std::size_t k,
                                       Cycles t,
                                       const std::vector<Cycles>& response) const
{
    AccessCount total{0};
    for (const std::size_t l : ts_.tasks_on_core(core)) {
        if (l > k) {
            break; // only Γ_core ∩ hep(k)
        }
        total += other_core_task_accesses(k, l, t, response);
    }
    return total;
}

AccessCount
BusContentionAnalysis::bao_lower(std::size_t core, std::size_t i, Cycles t,
                                 const std::vector<Cycles>& response) const
{
    AccessCount total{0};
    for (const std::size_t l : ts_.tasks_on_core(core)) {
        if (l <= i) {
            continue; // only Γ_core ∩ lp(i)
        }
        total += other_core_task_accesses(i, l, t, response);
    }
    return total;
}

bool BusContentionAnalysis::has_lower_priority_on_core(std::size_t i) const
{
    const auto& on_core = ts_.tasks_on_core(ts_[i].core);
    return !on_core.empty() && on_core.back() > i;
}

AccessCount BusContentionAnalysis::bat(std::size_t i, Cycles t,
                                       const std::vector<Cycles>& response) const
{
    const AccessCount same_core = bas(i, t);
    const std::size_t my_core = ts_[i].core;
    const AccessCount blocking =
        has_lower_priority_on_core(i) ? AccessCount{1} : AccessCount{0};

    // The Eq. (7)-(9) breakdown, recorded per arbiter policy when metrics
    // are on: BAS demand, cross-core interference, and blocking accesses.
    AccessCount cross_core{0};
    AccessCount blocking_charged{0};
    AccessCount total = same_core;

    switch (config_.policy) {
    case BusPolicy::kPerfect:
        // No contention: only the access time of the core's own demand.
        total = same_core;
        break;

    case BusPolicy::kFixedPriority: {
        // Eq. (7): all higher-or-equal priority other-core accesses delay
        // τ_i; each of τ_i's window accesses can additionally be blocked by
        // one in-flight lower-priority access.
        AccessCount higher{0};
        AccessCount lower{0};
        for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
            if (core == my_core) {
                continue;
            }
            higher += bao(core, i, t, response);
            lower += bao_lower(core, i, t, response);
        }
        cross_core = higher + std::min(same_core, lower);
        blocking_charged = blocking;
        total = same_core + cross_core + blocking_charged;
        break;
    }

    case BusPolicy::kRoundRobin: {
        // Eq. (8): per other core, at most s slots per own access, and never
        // more than that core's total demand (BAO at the lowest priority
        // level n, i.e., all tasks of the core).
        const std::size_t lowest = ts_.size() - 1;
        AccessCount other{0};
        for (std::size_t core = 0; core < ts_.num_cores(); ++core) {
            if (core == my_core) {
                continue;
            }
            other += std::min(bao(core, lowest, t, response),
                              platform_.slot_size * same_core);
        }
        cross_core = other;
        blocking_charged = blocking;
        total = same_core + cross_core + blocking_charged;
        break;
    }

    case BusPolicy::kTdma: {
        // Eq. (9): non-work-conserving; every own access can wait for the
        // remaining (L-1)*s slots of the TDMA cycle (L = number of cores).
        const auto cycle_cores =
            static_cast<std::int64_t>(platform_.num_cores);
        cross_core = (cycle_cores - 1) * platform_.slot_size * same_core;
        blocking_charged = blocking;
        total = same_core + cross_core + blocking_charged;
        break;
    }
    }

    record_bat_breakdown(config_.policy, same_core, cross_core,
                         blocking_charged);
    // Every arbiter of Eq. (7)-(9) adds contention on top of the core's own
    // demand; a BAT below its BAS term would un-price same-core accesses.
    CPA_CHECK_ASSERT(total >= same_core, "bat.dominates_bas",
                     "task " + ts_[i].name + ": BAT " + to_string(total) +
                         " below its own BAS term " +
                         to_string(same_core));
    return total;
}

} // namespace cpa::analysis
