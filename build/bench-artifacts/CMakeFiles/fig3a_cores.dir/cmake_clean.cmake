file(REMOVE_RECURSE
  "../bench/fig3a_cores"
  "../bench/fig3a_cores.pdb"
  "CMakeFiles/fig3a_cores.dir/fig3a_cores.cpp.o"
  "CMakeFiles/fig3a_cores.dir/fig3a_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
