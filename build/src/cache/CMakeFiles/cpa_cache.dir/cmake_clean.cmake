file(REMOVE_RECURSE
  "CMakeFiles/cpa_cache.dir/direct_mapped.cpp.o"
  "CMakeFiles/cpa_cache.dir/direct_mapped.cpp.o.d"
  "CMakeFiles/cpa_cache.dir/lru.cpp.o"
  "CMakeFiles/cpa_cache.dir/lru.cpp.o.d"
  "libcpa_cache.a"
  "libcpa_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
