file(REMOVE_RECURSE
  "CMakeFiles/interference_test.dir/analysis/interference_test.cpp.o"
  "CMakeFiles/interference_test.dir/analysis/interference_test.cpp.o.d"
  "interference_test"
  "interference_test.pdb"
  "interference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
