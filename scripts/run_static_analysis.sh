#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy) over the analysis core.
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#
#   build-dir   directory for the compile_commands.json configure
#               (default: build-tidy)
#
# Exit codes: 0 = clean (or clang-tidy unavailable — the container toolchain
# is gcc-only, so absence is a skip, not a failure; CI installs clang-tidy
# explicitly), 1 = diagnostics found or the configure failed.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tidy"}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_static_analysis: clang-tidy not found; skipping (install clang-tidy to run this check)"
    exit 0
fi

# clang-tidy needs a compilation database; generate one without building.
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null

# run-clang-tidy parallelizes when available; otherwise iterate.
files=$(find "$repo_root/src" -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086 -- word splitting of $files is intended
    run-clang-tidy -quiet -p "$build_dir" $files
else
    status=0
    for f in $files; do
        clang-tidy -quiet -p "$build_dir" "$f" || status=1
    done
    exit $status
fi
