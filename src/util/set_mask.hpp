// SetMask: a fixed-universe bitset over the sets of a direct-mapped cache.
//
// The CRPD / CPRO analyses of the paper manipulate sets of cache-set indices
// (UCBs, ECBs, PCBs) and need fast union / intersection-cardinality
// operations over universes of 32..4096 cache sets (the Fig. 3c sweep).
// std::bitset is sized at compile time and std::vector<bool> has no word-level
// operations, so we provide a small dynamic bitset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpa::util {

class SetMask {
public:
    SetMask() = default;

    // Creates an empty mask over a universe of `universe` cache sets.
    explicit SetMask(std::size_t universe);

    // Universe size (number of cache sets this mask ranges over).
    [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

    // Number of elements (cache sets) contained. Named popcount, not
    // count, so a cardinality can never be confused with a
    // util::Quantity::count() representation escape (scripts/cpa_lint.py
    // flags the latter).
    [[nodiscard]] std::size_t popcount() const noexcept;

    [[nodiscard]] bool empty() const noexcept { return popcount() == 0; }

    [[nodiscard]] bool contains(std::size_t set_index) const;

    void insert(std::size_t set_index);
    void erase(std::size_t set_index);
    void clear() noexcept;

    // Inserts `length` consecutive cache sets starting at `first`, wrapping
    // around the end of the cache (the standard placement used in the CRPD
    // literature: a task's ECBs occupy contiguous sets modulo cache size).
    // If length >= universe the mask becomes full.
    void insert_wrapped_range(std::size_t first, std::size_t length);

    SetMask& operator|=(const SetMask& other);
    SetMask& operator&=(const SetMask& other);
    // Removes all elements of `other` from this mask.
    SetMask& operator-=(const SetMask& other);

    [[nodiscard]] friend SetMask operator|(SetMask lhs, const SetMask& rhs)
    {
        lhs |= rhs;
        return lhs;
    }
    [[nodiscard]] friend SetMask operator&(SetMask lhs, const SetMask& rhs)
    {
        lhs &= rhs;
        return lhs;
    }
    [[nodiscard]] friend SetMask operator-(SetMask lhs, const SetMask& rhs)
    {
        lhs -= rhs;
        return lhs;
    }

    // |*this ∩ other| without materializing the intersection. This is the hot
    // operation of Eq. (2) and Eq. (14).
    [[nodiscard]] std::size_t intersection_count(const SetMask& other) const;

    [[nodiscard]] bool intersects(const SetMask& other) const;

    // True when every element of *this is also in `other`.
    [[nodiscard]] bool is_subset_of(const SetMask& other) const;

    [[nodiscard]] bool operator==(const SetMask& other) const;

    // Enumerates contained set indices in increasing order.
    [[nodiscard]] std::vector<std::size_t> to_indices() const;

    // Returns a copy with every element shifted by `offset` modulo the
    // universe (used to place a fixed footprint at a random cache offset).
    [[nodiscard]] SetMask rotated(std::size_t offset) const;

    // Convenience factory: mask over `universe` containing exactly `indices`.
    [[nodiscard]] static SetMask
    from_indices(std::size_t universe, const std::vector<std::size_t>& indices);

private:
    void check_same_universe(const SetMask& other) const;

    std::size_t universe_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace cpa::util
