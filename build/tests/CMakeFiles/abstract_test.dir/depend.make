# Empty dependencies file for abstract_test.
# This may be replaced when dependencies are built.
