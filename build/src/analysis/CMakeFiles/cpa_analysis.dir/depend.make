# Empty dependencies file for cpa_analysis.
# This may be replaced when dependencies are built.
