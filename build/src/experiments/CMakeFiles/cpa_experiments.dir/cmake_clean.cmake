file(REMOVE_RECURSE
  "CMakeFiles/cpa_experiments.dir/sensitivity.cpp.o"
  "CMakeFiles/cpa_experiments.dir/sensitivity.cpp.o.d"
  "CMakeFiles/cpa_experiments.dir/sweep.cpp.o"
  "CMakeFiles/cpa_experiments.dir/sweep.cpp.o.d"
  "libcpa_experiments.a"
  "libcpa_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
