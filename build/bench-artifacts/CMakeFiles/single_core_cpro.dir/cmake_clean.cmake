file(REMOVE_RECURSE
  "../bench/single_core_cpro"
  "../bench/single_core_cpro.pdb"
  "CMakeFiles/single_core_cpro.dir/single_core_cpro.cpp.o"
  "CMakeFiles/single_core_cpro.dir/single_core_cpro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_core_cpro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
