#!/usr/bin/env python3
"""Compare two run reports (or directories of BENCH_*.json) for determinism.

Usage:
    compare_run_reports.py A B

A and B are either two JSON report files or two directories; directories are
matched by file name (both must contain the same set of BENCH_*.json files).
Before comparison, every field that legitimately varies between runs is
normalized away:

    total_seconds, elapsed_ms         (wall clock)
    sections[].seconds                (wall clock)
    metrics.timers.*.total_ns         (wall clock; counts are kept)
    metrics.histograms.<name>_ns.*    (wall-clock latency histograms; the
                                       sample counts are kept, the value
                                       statistics are zeroed)
    jobs                              (the quantity under test)

Histograms NOT ending in "_ns" (e.g. wcrt.inner_iterations_per_call) are
deterministic iteration-count distributions and must match exactly.

Everything else — counters, gauges, timer counts, schedulability results,
config echoes — must match exactly: that is the serial == parallel contract
of the deterministic trial engine (see docs/architecture.md). Exit 0 when
the reports agree, 1 otherwise. Stdlib only.
"""

import json
import sys
from pathlib import Path

WALL_CLOCK_KEYS = {"total_seconds", "elapsed_ms", "jobs"}
# Value statistics of a wall-clock histogram; "count" stays significant.
HISTOGRAM_VALUE_KEYS = {"sum", "min", "max", "p50", "p90", "p99"}


def normalize(value, key=None):
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if k in WALL_CLOCK_KEYS or k == "total_ns" or k == "seconds":
                out[k] = 0
            elif (isinstance(k, str) and k.endswith("_ns")
                    and isinstance(v, dict)):
                out[k] = {hk: (0 if hk in HISTOGRAM_VALUE_KEYS else hv)
                          for hk, hv in v.items()}
            else:
                out[k] = normalize(v, k)
        return out
    if isinstance(value, list):
        return [normalize(item) for item in value]
    return value


def load(path):
    with open(path) as handle:
        return normalize(json.load(handle))


def diff_paths(a, b, prefix=""):
    """Yields human-readable locations where the two normalized trees differ."""
    if type(a) is not type(b):
        yield f"{prefix or '<root>'}: type {type(a).__name__} vs {type(b).__name__}"
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            where = f"{prefix}.{key}" if prefix else key
            if key not in a:
                yield f"{where}: only in B"
            elif key not in b:
                yield f"{where}: only in A"
            else:
                yield from diff_paths(a[key], b[key], where)
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{prefix}: list length {len(a)} vs {len(b)}"
            return
        for index, (left, right) in enumerate(zip(a, b)):
            yield from diff_paths(left, right, f"{prefix}[{index}]")
    elif a != b:
        yield f"{prefix or '<root>'}: {a!r} vs {b!r}"


def compare_files(path_a, path_b):
    differences = list(diff_paths(load(path_a), load(path_b)))
    for where in differences[:20]:
        print(f"{path_a} vs {path_b}: {where}", file=sys.stderr)
    return not differences


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a, b = Path(argv[1]), Path(argv[2])

    if a.is_dir() != b.is_dir():
        print("compare_run_reports: cannot compare a file to a directory",
              file=sys.stderr)
        return 2

    if not a.is_dir():
        pairs = [(a, b)]
    else:
        names_a = {p.name for p in a.glob("BENCH_*.json")}
        names_b = {p.name for p in b.glob("BENCH_*.json")}
        if not names_a:
            print(f"compare_run_reports: no BENCH_*.json in {a}",
                  file=sys.stderr)
            return 1
        if names_a != names_b:
            print(f"compare_run_reports: report sets differ: "
                  f"{sorted(names_a ^ names_b)}", file=sys.stderr)
            return 1
        pairs = [(a / name, b / name) for name in sorted(names_a)]

    ok = True
    for path_a, path_b in pairs:
        if compare_files(path_a, path_b):
            print(f"{path_a.name}: identical after normalization")
        else:
            ok = False
    if not ok:
        print("compare_run_reports: reports differ — the worker count "
              "leaked into the results", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
