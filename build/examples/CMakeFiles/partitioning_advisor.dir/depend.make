# Empty dependencies file for partitioning_advisor.
# This may be replaced when dependencies are built.
