file(REMOVE_RECURSE
  "CMakeFiles/cpa_cli.dir/commands.cpp.o"
  "CMakeFiles/cpa_cli.dir/commands.cpp.o.d"
  "CMakeFiles/cpa_cli.dir/taskset_io.cpp.o"
  "CMakeFiles/cpa_cli.dir/taskset_io.cpp.o.d"
  "libcpa_cli.a"
  "libcpa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
