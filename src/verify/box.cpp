#include "verify/box.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace cpa::verify {

namespace {

constexpr std::array<std::string_view, kDimCount> kDimNames = {
    "md",     "md_residual", "pcb",   "ucb",    "ecb",    "pd",
    "period", "d_mem",       "cores", "n_jobs", "window", "dt",
};

} // namespace

std::string_view ParamBox::name(Dim d) { return kDimNames[index_of(d)]; }

std::optional<Dim> ParamBox::find(std::string_view name)
{
    for (std::size_t i = 0; i < kDimCount; ++i) {
        if (kDimNames[i] == name) {
            return static_cast<Dim>(i);
        }
    }
    return std::nullopt;
}

void ParamBox::validate() const
{
    for (std::size_t i = 0; i < kDimCount; ++i) {
        if (dims[i].lo < 0) {
            throw std::invalid_argument(
                "verify box: dimension '" + std::string(kDimNames[i]) +
                "' must be non-negative");
        }
    }
    if ((*this)[Dim::kPeriod].lo < 1) {
        throw std::invalid_argument("verify box: period must be at least 1");
    }
    if ((*this)[Dim::kDmem].lo < 1) {
        throw std::invalid_argument("verify box: d_mem must be at least 1");
    }
    const ICount& cores = (*this)[Dim::kCores];
    if (cores.lo < 1 || cores.hi > 8) {
        throw std::invalid_argument("verify box: cores must lie in [1, 8]");
    }
}

std::string ParamBox::describe(const std::vector<Dim>& used) const
{
    std::ostringstream out;
    bool first = true;
    const auto emit = [&](Dim d) {
        if (!first) {
            out << ' ';
        }
        first = false;
        const ICount& iv = (*this)[d];
        out << name(d) << "=[" << iv.lo << ',' << iv.hi << ']';
    };
    if (used.empty()) {
        for (std::size_t i = 0; i < kDimCount; ++i) {
            emit(static_cast<Dim>(i));
        }
    } else {
        for (const Dim d : used) {
            emit(d);
        }
    }
    return out.str();
}

Point ParamBox::lo_corner() const
{
    Point p{};
    for (std::size_t i = 0; i < kDimCount; ++i) {
        p[i] = dims[i].lo;
    }
    return p;
}

Point ParamBox::hi_corner() const
{
    Point p{};
    for (std::size_t i = 0; i < kDimCount; ++i) {
        p[i] = dims[i].hi;
    }
    return p;
}

Point ParamBox::midpoint() const
{
    Point p{};
    for (std::size_t i = 0; i < kDimCount; ++i) {
        p[i] = dims[i].lo + (dims[i].hi - dims[i].lo) / 2;
    }
    return p;
}

std::optional<std::pair<ParamBox, ParamBox>>
ParamBox::bisect(const std::vector<Dim>& used) const
{
    std::optional<Dim> widest;
    std::int64_t width = 0;
    for (const Dim d : used) {
        const ICount& iv = (*this)[d];
        const std::int64_t w = iv.hi - iv.lo;
        if (w > width) {
            width = w;
            widest = d;
        }
    }
    if (!widest) {
        return std::nullopt;
    }
    const ICount& iv = (*this)[*widest];
    const std::int64_t mid = iv.lo + (iv.hi - iv.lo) / 2;
    ParamBox left = *this;
    ParamBox right = *this;
    left[*widest] = ICount{iv.lo, mid};
    right[*widest] = ICount{mid + 1, iv.hi};
    return std::pair{left, right};
}

ParamBox fast_box()
{
    ParamBox box;
    box[Dim::kMd] = ICount{2, 8};
    box[Dim::kMdResidual] = ICount{0, 4};
    box[Dim::kPcb] = ICount{0, 6};
    box[Dim::kUcb] = ICount{0, 6};
    box[Dim::kEcb] = ICount{4, 16};
    box[Dim::kPd] = ICount{40, 120};
    box[Dim::kPeriod] = ICount{4000, 12000};
    box[Dim::kDmem] = ICount{2, 10};
    box[Dim::kCores] = ICount{2, 4};
    box[Dim::kNJobs] = ICount{1, 6};
    box[Dim::kWindow] = ICount{0, 28000};
    box[Dim::kDt] = ICount{0, 28000};
    return box;
}

ParamBox full_box()
{
    ParamBox box;
    box[Dim::kMd] = ICount{1, 24};
    box[Dim::kMdResidual] = ICount{0, 16};
    box[Dim::kPcb] = ICount{0, 16};
    box[Dim::kUcb] = ICount{0, 16};
    box[Dim::kEcb] = ICount{0, 48};
    box[Dim::kPd] = ICount{20, 400};
    box[Dim::kPeriod] = ICount{2000, 40000};
    box[Dim::kDmem] = ICount{1, 20};
    box[Dim::kCores] = ICount{2, 6};
    box[Dim::kNJobs] = ICount{1, 12};
    box[Dim::kWindow] = ICount{0, 90000};
    box[Dim::kDt] = ICount{0, 90000};
    return box;
}

ParamBox parse_box(std::istream& in)
{
    ParamBox box = fast_box();
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string name;
        if (!(fields >> name)) {
            continue; // blank or comment-only line
        }
        const std::optional<Dim> dim = ParamBox::find(name);
        if (!dim) {
            throw std::invalid_argument("verify box: unknown dimension '" +
                                        name + "' on line " +
                                        std::to_string(line_no));
        }
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        std::string extra;
        if (!(fields >> lo >> hi) || (fields >> extra)) {
            throw std::invalid_argument(
                "verify box: expected 'name lo hi' on line " +
                std::to_string(line_no));
        }
        if (hi < lo) {
            throw std::invalid_argument("verify box: inverted range on line " +
                                        std::to_string(line_no));
        }
        box[*dim] = ICount{lo, hi};
    }
    box.validate();
    return box;
}

} // namespace cpa::verify
