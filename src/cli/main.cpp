// Entry point of the `cpa` command-line tool; all logic lives in
// commands.cpp so the tests can drive it in-process.
#include "check/assert.hpp"
#include "cli/commands.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv)
{
    // CPA_CHECK_ASSERT=1 in the environment arms the analysis-core runtime
    // assertions for any command (cpa check arms them itself).
    cpa::check::apply_assertion_env();
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        args.emplace_back(argv[i]);
    }
    return cpa::cli::run_cli(args, std::cout, std::cerr);
}
