# Empty dependencies file for bus_policy_selection.
# This may be replaced when dependencies are built.
