// analysis::Session — the long-lived batch analysis engine.
//
// A Session owns one loaded task set plus everything a stream of
// AnalysisRequests against that set can share:
//
//  * a keyed cache of InterferenceTables. The tables depend only on the
//    task set and the CRPD method — not on the bus policy, persistence,
//    CPRO, engine or d_mem — so a policy x CRPD x CPRO x d_mem request
//    matrix builds each table pair once instead of once per request (table
//    construction is the dominant per-run cost the cold CLI paid on every
//    invocation). The cache is LRU-bounded (Options::table_capacity) with
//    hit/miss/evict surfaced both as SessionStats and as the obs counters
//    session.tables.{hit,miss,evict}.
//
//  * per-request-key WCRT warm state: analyze() memoizes complete results
//    by the request's semantic key (config + resolved d_mem + slot size),
//    so re-issued configurations — the regulation-budget exploration
//    pattern where a driver revisits points of a sweep — are served from
//    the session instead of re-running the fixed points
//    (session.results.{hit,miss}).
//
// Threading: a Session is confined to one orchestrator thread (like
// util::ThreadPool batches). Parallel front ends such as `cpa batch`
// resolve caches serially in request order — which is also what makes the
// hit/miss counters deterministic and independent of the worker count —
// and fan out only the cache-missing solves, via the const evaluate()
// entry point that touches no session state.
#pragma once

#include "analysis/config.hpp"
#include "analysis/interference.hpp"
#include "analysis/request.hpp"
#include "analysis/wcrt.hpp"
#include "tasks/task.hpp"

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <tuple>

namespace cpa::analysis {

// Everything a request key can influence, in comparison order. Requests
// with equal keys are guaranteed identical results, which is what makes
// both the memo and the batch front end's dedup sound.
struct RequestKey {
    BusPolicy policy = BusPolicy::kFixedPriority;
    bool persistence_aware = true;
    CrpdMethod crpd = CrpdMethod::kEcbUnion;
    CproMethod cpro = CproMethod::kUnion;
    WcrtEngine engine = WcrtEngine::kIncremental;
    Cycles d_mem{0};
    std::int64_t slot_size = 0;

    [[nodiscard]] friend bool operator<(const RequestKey& a,
                                        const RequestKey& b)
    {
        return std::tie(a.policy, a.persistence_aware, a.crpd, a.cpro,
                        a.engine, a.d_mem, a.slot_size) <
               std::tie(b.policy, b.persistence_aware, b.crpd, b.cpro,
                        b.engine, b.d_mem, b.slot_size);
    }
};

// Result of one analyzed request. `wcrt` is empty (no responses) when the
// perfect-bus utilization test already rejected the set and no fixed point
// was run.
struct SessionResult {
    bool schedulable = false;
    // False only for BusPolicy::kPerfect with total bus utilization > 1
    // (the paper's perfect-bus admission test).
    bool bus_ok = true;
    WcrtResult wcrt;
    // The fully resolved inputs the result was computed from.
    PlatformConfig platform;
    AnalysisConfig config;
};

struct SessionStats {
    std::size_t table_hits = 0;
    std::size_t table_misses = 0;
    std::size_t table_evictions = 0;
    std::size_t result_hits = 0;
    std::size_t result_misses = 0;
};

class Session {
public:
    struct Options {
        // Maximum number of InterferenceTables kept warm; 0 = unbounded.
        // There are only as many possible keys as CRPD methods, so the
        // default never evicts; a bound exists so memory-capped embedders
        // (and the eviction tests) can exercise the LRU path.
        std::size_t table_capacity = 0;
    };

    Session(tasks::TaskSet ts, PlatformConfig base_platform);
    Session(tasks::TaskSet ts, PlatformConfig base_platform,
            Options options);

    [[nodiscard]] const tasks::TaskSet& task_set() const noexcept
    {
        return ts_;
    }
    [[nodiscard]] const PlatformConfig& base_platform() const noexcept
    {
        return base_platform_;
    }

    // The session's base platform with `request`'s overrides applied.
    [[nodiscard]] PlatformConfig
    resolve_platform(const AnalysisRequest& request) const;

    // The request's semantic cache key (config + resolved platform knobs).
    [[nodiscard]] RequestKey key_for(const AnalysisRequest& request) const;

    // Find-or-build the interference tables for `method`. The returned
    // reference stays valid until `method` is evicted (never, at the
    // default capacity).
    [[nodiscard]] const InterferenceTables& tables(CrpdMethod method);

    // Analyzes one request, serving repeats from the memo. The returned
    // reference is stable for the session's lifetime.
    [[nodiscard]] const SessionResult& analyze(const AnalysisRequest& request);

    // Cache-bypassing compute path for parallel front ends: runs the
    // analysis with the given (already built) tables, touching no session
    // state. Requires tables.size() == task_set().size().
    [[nodiscard]] SessionResult
    evaluate(const AnalysisRequest& request,
             const InterferenceTables& request_tables) const;

    // Memo bookkeeping seam for front ends that dedup requests themselves
    // (`cpa batch`): records a hit/miss for `key` and, on miss, stores
    // `result` for later lookups. Returns the stored result.
    [[nodiscard]] const SessionResult* find_result(const RequestKey& key);
    const SessionResult& store_result(const RequestKey& key,
                                      SessionResult result);

    [[nodiscard]] const SessionStats& stats() const noexcept
    {
        return stats_;
    }

private:
    tasks::TaskSet ts_;
    PlatformConfig base_platform_;
    Options options_;
    SessionStats stats_;

    // LRU table cache: map for lookup, list front = most recently used.
    struct TableEntry {
        InterferenceTables tables;
        std::list<CrpdMethod>::iterator lru_position;
    };
    std::map<CrpdMethod, TableEntry> tables_;
    std::list<CrpdMethod> lru_;

    // Result memo. unique_ptr keeps handed-out references stable.
    std::map<RequestKey, std::unique_ptr<SessionResult>> results_;
};

} // namespace cpa::analysis
