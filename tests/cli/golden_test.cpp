// Golden-file CLI regression tests: the exact bytes of the main CLI
// surfaces, pinned as committed fixtures under tests/cli/golden/. Any
// behavior change — an analysis result, a table column, a report field, the
// RNG scheme — shows up as a readable fixture diff instead of slipping
// through, replacing the by-hand pre/post-migration diffing of earlier PRs.
//
// Refresh workflow (after an INTENDED output change):
//   CPA_UPDATE_GOLDEN=1 ctest --test-dir build -R CliGolden
// then review `git diff tests/cli/golden/` like any other code change.
// Wall-clock timer totals inside run reports are normalized to 0 before
// comparison, so fixtures are stable across machines.
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace cpa::cli {
namespace {

std::string golden_dir()
{
    return std::string(CPA_SOURCE_DIR) + "/tests/cli/golden/";
}

std::string normalize(std::string text)
{
    static const std::regex total_ns("\"total_ns\":-?[0-9]+");
    text = std::regex_replace(text, total_ns, "\"total_ns\":0");
    // Wall-clock ("_ns"-suffixed) histogram value statistics vary between
    // machines; their sample counts stay significant. Deterministic
    // histograms (no "_ns") are left untouched and pinned exactly.
    static const std::regex ns_histogram(
        "(\"[^\"]*_ns\":\\{\"count\":-?[0-9]+,)\"sum\":-?[0-9]+,"
        "\"min\":-?[0-9]+,\"max\":-?[0-9]+,\"p50\":-?[0-9]+,"
        "\"p90\":-?[0-9]+,\"p99\":-?[0-9]+");
    text = std::regex_replace(
        text, ns_histogram,
        "$1\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0");
    // Build provenance differs per checkout/toolchain; keep the key order,
    // zero the values.
    static const std::regex provenance("\"provenance\":\\{[^}]*\\}");
    text = std::regex_replace(
        text, provenance,
        "\"provenance\":{\"version\":\"\",\"git_sha\":\"\","
        "\"git_dirty\":\"\",\"compiler\":\"\",\"build_type\":\"\","
        "\"obs\":true,\"check\":true,\"sanitize\":\"\"}");
    return text;
}

// Runs the CLI in-process and compares stdout against the named fixture.
// With CPA_UPDATE_GOLDEN=1 the fixture is rewritten instead.
void expect_golden(const std::string& name,
                   const std::vector<std::string>& args,
                   int expected_exit = 0)
{
    std::ostringstream out;
    std::ostringstream err;
    const int exit_code = run_cli(args, out, err);
    EXPECT_EQ(exit_code, expected_exit) << err.str();
    const std::string actual = normalize(out.str());

    const std::string path = golden_dir() + name + ".txt";
    if (const char* update = std::getenv("CPA_UPDATE_GOLDEN");
        update != nullptr && update[0] == '1') {
        std::ofstream file(path, std::ios::binary);
        ASSERT_TRUE(file) << "cannot write " << path;
        file << actual;
        return;
    }

    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file) << "missing fixture " << path
                      << " — run with CPA_UPDATE_GOLDEN=1 to create it";
    std::ostringstream expected;
    expected << file.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "CLI output diverged from " << path
        << "\nIf the change is intended, refresh with:\n"
           "  CPA_UPDATE_GOLDEN=1 ctest --test-dir build -R CliGolden";
}

std::string input_taskset()
{
    return golden_dir() + "input.taskset";
}

TEST(CliGolden, Generate)
{
    expect_golden("generate",
                  {"generate", "--cores", "2", "--tasks-per-core", "2",
                   "--cache-sets", "64", "--utilization", "0.4", "--seed",
                   "5"});
}

TEST(CliGolden, Analyze)
{
    expect_golden("analyze", {"analyze", input_taskset()});
}

TEST(CliGolden, AnalyzeReportCsv)
{
    expect_golden("analyze_report_csv",
                  {"analyze", input_taskset(), "--policy", "fp", "--report",
                   "--csv"});
}

TEST(CliGolden, SimulateRoundRobin)
{
    expect_golden("simulate_rr",
                  {"simulate", input_taskset(), "--policy", "rr",
                   "--horizon-periods", "3"});
}

TEST(CliGolden, SweepCsv)
{
    expect_golden("sweep_csv",
                  {"sweep", "--cores", "2", "--tasks-per-core", "2",
                   "--cache-sets", "64", "--task-sets", "4", "--seed", "3",
                   "--csv"});
}

TEST(CliGolden, SweepMetricsReport)
{
    expect_golden("sweep_metrics",
                  {"sweep", "--cores", "2", "--tasks-per-core", "2",
                   "--cache-sets", "64", "--task-sets", "4", "--seed", "3",
                   "--metrics-out", "-"});
}

TEST(CliGolden, CheckMetricsReport)
{
    expect_golden("check_metrics",
                  {"check", "--seed", "2", "--trials", "3", "--cores", "2",
                   "--tasks-per-core", "2", "--cache-sets", "64",
                   "--skip-sim", "--metrics-out", "-"});
}

TEST(CliGolden, CheckList)
{
    expect_golden("check_list", {"check", "--list"});
}

TEST(CliGolden, VerifyFast)
{
    expect_golden("verify_fast", {"verify", "--profile", "fast"});
}

TEST(CliGolden, VerifyList)
{
    expect_golden("verify_list", {"verify", "--list"});
}

TEST(CliGolden, VerifyMetricsReport)
{
    expect_golden("verify_metrics",
                  {"verify", "--profile", "fast", "--metrics-out", "-"});
}

} // namespace
} // namespace cpa::cli
