# Empty compiler generated dependencies file for cpa_benchdata.
# This may be replaced when dependencies are built.
