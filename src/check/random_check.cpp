#include "check/random_check.hpp"

#include "benchdata/generator.hpp"
#include "check/assert.hpp"
#include "obs/obs.hpp"
#include "obs/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cpa::check {

RandomCheckResult run_random_checks(const RandomCheckConfig& config)
{
    if (config.num_cores == 0 || config.tasks_per_core == 0 ||
        config.cache_sets == 0) {
        throw std::invalid_argument(
            "random check: cores, tasks per core, and cache sets must be "
            "positive");
    }
    if (!(config.min_utilization > 0.0) ||
        config.max_utilization < config.min_utilization) {
        throw std::invalid_argument(
            "random check: need 0 < min utilization <= max utilization");
    }

    CPA_SCOPED_TIMER("check.random_driver");

    benchdata::GenerationConfig generation;
    generation.num_cores = config.num_cores;
    generation.tasks_per_core = config.tasks_per_core;
    generation.cache_sets = config.cache_sets;
    const auto pool = benchdata::derive_all(benchdata::full_benchmark_table(),
                                            config.cache_sets);

    analysis::PlatformConfig platform;
    platform.num_cores = config.num_cores;
    platform.cache_sets = config.cache_sets;

    // Each trial computes into its own slot; the loop below then reduces the
    // slots in trial order, so the aggregate (and the failure list order) is
    // identical no matter how the pool schedules the trials.
    struct TrialOutcome {
        std::uint64_t seed = 0;
        double utilization = 0.0;
        std::size_t checks_run = 0;
        std::vector<Violation> violations;
    };
    std::vector<TrialOutcome> outcomes(config.trials);

    util::ThreadPool threads(util::resolve_jobs(config.jobs));
    const auto run_trial = [&](std::size_t trial) {
        TrialOutcome& outcome = outcomes[trial];
        outcome.seed = util::seed_for(config.seed, trial);
        util::Rng rng(outcome.seed);

        benchdata::GenerationConfig trial_generation = generation;
        trial_generation.per_core_utilization =
            rng.uniform_real(config.min_utilization, config.max_utilization);
        outcome.utilization = trial_generation.per_core_utilization;
        // Constrained deadlines + jitter on a subset of trials so the
        // J-dependent and D<T paths of the bounds are exercised too.
        if (config.jitter_period != 0 &&
            trial % config.jitter_period == config.jitter_period - 1) {
            trial_generation.deadline_ratio = 0.9;
            trial_generation.jitter_fraction = 0.05;
        } else {
            trial_generation.deadline_ratio = 1.0;
            trial_generation.jitter_fraction = 0.0;
        }

        const tasks::TaskSet ts =
            benchdata::generate_task_set(rng, trial_generation, pool);
        CheckResult trial_result;
        try {
            trial_result = check_task_set(ts, platform, config.options);
        } catch (const AssertionError& error) {
            // With runtime assertions enabled (as `cpa check` does), a
            // violated hot-path tripwire surfaces here; fold it into the
            // trial report instead of aborting the whole sweep.
            trial_result.violations.push_back(
                Violation{error.invariant(), error.what()});
        }
        if (config.inject_violation) {
            trial_result.violations.push_back(Violation{
                "selftest.injected",
                "synthetic violation requested via inject_violation"});
        }
        outcome.checks_run = trial_result.checks_run;
        outcome.violations = std::move(trial_result.violations);
        CPA_COUNT("check.trials");
    };
    if (!config.progress) {
        obs::run_indexed_trials(threads, config.trials, run_trial);
    } else {
        // Index-ordered batches sized to keep the pool saturated while
        // still yielding progress events; batch b covers global trials
        // [b*chunk, b*chunk+n), so seeds and flush order match the
        // single-batch path exactly.
        const std::size_t chunk =
            std::max<std::size_t>(std::size_t{4} * threads.jobs(), 1);
        for (std::size_t begin = 0; begin < config.trials; begin += chunk) {
            const std::size_t n = std::min(chunk, config.trials - begin);
            obs::run_indexed_trials(threads, n, [&](std::size_t offset) {
                run_trial(begin + offset);
            });
            config.progress(begin + n, config.trials);
        }
    }

    RandomCheckResult result;
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
        TrialOutcome& outcome = outcomes[trial];
        ++result.trials_run;
        result.checks_run += outcome.checks_run;
        if (!outcome.violations.empty()) {
            for (const Violation& violation : outcome.violations) {
                ++result.violations_by_invariant[violation.invariant];
            }
            result.failures.push_back(TrialFailure{
                trial, outcome.seed, outcome.utilization,
                std::move(outcome.violations)});
        }
    }
    return result;
}

} // namespace cpa::check
