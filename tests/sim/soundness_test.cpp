// Soundness spot checks: for task sets the analysis deems schedulable, no
// simulated execution may exhibit a response time above the analytical WCRT.
// The simulator produces one legal execution (synchronous periodic releases)
// of the modeled platform, so any violation here is a real soundness bug in
// the bounds.
#include "analysis/demand.hpp"
#include "analysis/interference.hpp"
#include "analysis/wcrt.hpp"
#include "benchdata/generator.hpp"
#include "sim/simulator.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cpa::sim {
namespace {

using analysis::AnalysisConfig;
using analysis::compute_wcrt;
using analysis::WcrtResult;

struct Case {
    BusPolicy policy;
    bool persistence;
};

class SoundnessTest : public ::testing::TestWithParam<Case> {};

TEST_P(SoundnessTest, SimulatedResponseNeverExceedsWcrtOnRandomSets)
{
    const Case c = GetParam();

    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;

    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    util::Rng rng(31337);
    int checked = 0;
    for (const double u : {0.15, 0.3, 0.45}) {
        gen.per_core_utilization = u;
        for (int repeat = 0; repeat < 8; ++repeat) {
            util::Rng child = rng.fork();
            const tasks::TaskSet ts =
                benchdata::generate_task_set(child, gen, pool);

            AnalysisConfig config;
            config.policy = c.policy;
            config.persistence_aware = c.persistence;
            const WcrtResult wcrt = compute_wcrt(ts, platform, config);
            if (!wcrt.schedulable) {
                continue;
            }
            ++checked;

            Cycles max_period{0};
            for (const tasks::Task& task : ts.tasks()) {
                max_period = std::max(max_period, task.period);
            }
            SimConfig sim_config;
            sim_config.policy = c.policy;
            sim_config.horizon = 4 * max_period;
            const SimResult sim = simulate(ts, platform, sim_config);

            EXPECT_FALSE(sim.deadline_missed)
                << "analysis said schedulable, simulation missed task "
                << sim.missed_task << " (u=" << u << ")";
            for (std::size_t i = 0; i < ts.size(); ++i) {
                EXPECT_LE(sim.max_response[i], wcrt.response[i])
                    << "task " << i << " (" << ts[i].name << ") u=" << u;
            }
        }
    }
    // The utilizations are low enough that a fair share must be schedulable;
    // an all-skip run would make the test vacuous.
    EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SoundnessTest,
    ::testing::Values(Case{BusPolicy::kFixedPriority, true},
                      Case{BusPolicy::kFixedPriority, false},
                      Case{BusPolicy::kRoundRobin, true},
                      Case{BusPolicy::kRoundRobin, false},
                      Case{BusPolicy::kTdma, true},
                      Case{BusPolicy::kTdma, false}));

TEST(Soundness, HoldsUnderRandomReleaseOffsets)
{
    // Asynchronous releases are legal sporadic behaviors too; the bound
    // must cover them (the other-core analysis explicitly assumes no
    // synchronization between cores).
    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;

    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.3;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    util::Rng rng(271828);
    int checked = 0;
    for (int repeat = 0; repeat < 6; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        AnalysisConfig config;
        config.policy = BusPolicy::kFixedPriority;
        const WcrtResult wcrt = compute_wcrt(ts, platform, config);
        if (!wcrt.schedulable) {
            continue;
        }
        ++checked;

        Cycles max_period{0};
        for (const tasks::Task& task : ts.tasks()) {
            max_period = std::max(max_period, task.period);
        }
        for (int offsets_draw = 0; offsets_draw < 3; ++offsets_draw) {
            SimConfig sim_config;
            sim_config.policy = BusPolicy::kFixedPriority;
            sim_config.horizon = 4 * max_period;
            for (std::size_t i = 0; i < ts.size(); ++i) {
                sim_config.release_offsets.push_back(util::Cycles{
                    child.uniform_int(0, ts[i].period.count())});
            }
            const SimResult sim = simulate(ts, platform, sim_config);
            for (std::size_t i = 0; i < ts.size(); ++i) {
                EXPECT_LE(sim.max_response[i], wcrt.response[i])
                    << "task " << i << " draw " << offsets_draw;
            }
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(Soundness, OffsetVectorValidation)
{
    const tasks::TaskSet ts = cpa::testing::make_task_set(
        1, 16, {{0, 10, 1, 1, 100, 0, {}, {}, {}}});
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = util::Cycles{5};

    SimConfig config;
    config.policy = BusPolicy::kFixedPriority;
    config.horizon = util::Cycles{1000};
    config.release_offsets = {util::Cycles{10}, util::Cycles{20}}; // wrong size
    EXPECT_THROW((void)simulate(ts, platform, config), std::invalid_argument);
    config.release_offsets = {util::Cycles{-1}};
    EXPECT_THROW((void)simulate(ts, platform, config), std::invalid_argument);
    config.release_offsets = {util::Cycles{40}};
    const SimResult result = simulate(ts, platform, config);
    EXPECT_EQ(result.jobs_completed[0], 10); // releases at 40, 140, ..., 940
}

TEST(Soundness, SimulatedAccessesBoundedByMdHatPlusCpro)
{
    // On a single-core two-task system, the accesses the simulator issues
    // for the high-priority task across n jobs must respect
    // M̂D(n) + ρ̂(n) + per-preemption CRPD.
    const tasks::TaskSet ts = cpa::testing::make_task_set(
        1, 16,
        {
            {0, 10, 4, 1, 100, 0, {1, 2, 3, 4}, {1, 2}, {1, 2, 3}},
            {0, 20, 3, 3, 250, 0, {3, 4, 5}, {3}, {}},
        });
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = util::Cycles{5};
    platform.slot_size = 1;

    SimConfig config;
    config.policy = BusPolicy::kFixedPriority;
    config.horizon = util::Cycles{1000}; // 10 jobs of τ1
    const SimResult sim = simulate(ts, platform, config);
    ASSERT_FALSE(sim.deadline_missed);
    ASSERT_EQ(sim.jobs_completed[0], 10);

    const analysis::InterferenceTables tables(
        ts, analysis::CrpdMethod::kEcbUnion);
    const util::AccessCount md_hat_bound = analysis::md_hat(ts[0], 10);
    const util::AccessCount cpro_bound = tables.rho_hat(0, 1, 10);
    EXPECT_LE(sim.bus_accesses[0], md_hat_bound + cpro_bound);
}

} // namespace
} // namespace cpa::sim
