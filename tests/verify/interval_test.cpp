// Property tests for the verify interval domain.
//
// Two layers: (1) outward rounding — for every operation, an exhaustive
// sweep over small intervals checks that each pointwise evaluation lies
// inside the interval evaluation, and that the exact ops attain their
// endpoints (no over-widening); (2) model soundness — at 10,000 random
// points of the fast box, every abstract enclosure (tables, M̂D, BAS, BAO,
// BAT, the Eq. 19 fixed point) must contain the value the real
// AnalysisOracle computes at that point.
#include "verify/interval.hpp"

#include "check/invariants.hpp"
#include "util/rng.hpp"
#include "verify/abstract.hpp"
#include "verify/box.hpp"
#include "verify/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace cpa::verify {
namespace {

using util::AccessCount;
using util::Cycles;

// All closed intervals with endpoints in [lo, hi].
std::vector<ICount> small_intervals(std::int64_t lo, std::int64_t hi)
{
    std::vector<ICount> out;
    for (std::int64_t a = lo; a <= hi; ++a) {
        for (std::int64_t b = a; b <= hi; ++b) {
            out.push_back(ICount{a, b});
        }
    }
    return out;
}

TEST(Interval, InvertedBoundsThrow)
{
    EXPECT_THROW(ICount(2, 1), std::invalid_argument);
    EXPECT_NO_THROW(ICount(2, 2));
    EXPECT_TRUE(ICount::point(3).is_point());
}

TEST(Interval, ExactOpsContainEveryPointAndAttainEndpoints)
{
    const auto intervals = small_intervals(-3, 3);
    for (const ICount& a : intervals) {
        for (const ICount& b : intervals) {
            const ICount sum = a + b;
            const ICount diff = a - b;
            const ICount prod = mul(a, b);
            const ICount lo_of = min(a, b);
            const ICount hi_of = max(a, b);
            const ICount joined = hull(a, b);
            std::int64_t seen_sum_lo = sum.hi, seen_sum_hi = sum.lo;
            std::int64_t seen_prod_lo = prod.hi, seen_prod_hi = prod.lo;
            for (std::int64_t x = a.lo; x <= a.hi; ++x) {
                for (std::int64_t y = b.lo; y <= b.hi; ++y) {
                    ASSERT_TRUE(sum.contains(x + y));
                    ASSERT_TRUE(diff.contains(x - y));
                    ASSERT_TRUE(prod.contains(x * y));
                    ASSERT_TRUE(lo_of.contains(std::min(x, y)));
                    ASSERT_TRUE(hi_of.contains(std::max(x, y)));
                    ASSERT_TRUE(joined.contains(x));
                    ASSERT_TRUE(joined.contains(y));
                    seen_sum_lo = std::min(seen_sum_lo, x + y);
                    seen_sum_hi = std::max(seen_sum_hi, x + y);
                    seen_prod_lo = std::min(seen_prod_lo, x * y);
                    seen_prod_hi = std::max(seen_prod_hi, x * y);
                }
            }
            // Addition and multiplication are exact hulls: the interval
            // endpoints are attained by actual point pairs.
            EXPECT_EQ(sum.lo, seen_sum_lo);
            EXPECT_EQ(sum.hi, seen_sum_hi);
            EXPECT_EQ(prod.lo, seen_prod_lo);
            EXPECT_EQ(prod.hi, seen_prod_hi);
        }
    }
}

TEST(Interval, CeilDivIsTheExactRange)
{
    for (const ICount& a : small_intervals(0, 7)) {
        for (const ICount& b : small_intervals(1, 4)) {
            const ICount q = ceil_div(a, b);
            std::int64_t seen_lo = q.hi, seen_hi = q.lo;
            for (std::int64_t x = a.lo; x <= a.hi; ++x) {
                for (std::int64_t y = b.lo; y <= b.hi; ++y) {
                    const std::int64_t v = util::ceil_div(x, y);
                    ASSERT_TRUE(q.contains(v))
                        << x << "/" << y << " = " << v << " outside ["
                        << q.lo << "," << q.hi << "]";
                    seen_lo = std::min(seen_lo, v);
                    seen_hi = std::max(seen_hi, v);
                }
            }
            EXPECT_EQ(q.lo, seen_lo);
            EXPECT_EQ(q.hi, seen_hi);
        }
    }
}

TEST(Interval, FloorDivIsTheExactRange)
{
    for (const ICount& a : small_intervals(-5, 5)) {
        for (const ICount& b : small_intervals(1, 3)) {
            const ICount q = floor_div(a, b);
            std::int64_t seen_lo = q.hi, seen_hi = q.lo;
            for (std::int64_t x = a.lo; x <= a.hi; ++x) {
                for (std::int64_t y = b.lo; y <= b.hi; ++y) {
                    const std::int64_t v = util::floor_div(x, y);
                    ASSERT_TRUE(q.contains(v));
                    seen_lo = std::min(seen_lo, v);
                    seen_hi = std::max(seen_hi, v);
                }
            }
            EXPECT_EQ(q.lo, seen_lo);
            EXPECT_EQ(q.hi, seen_hi);
        }
    }
}

TEST(Interval, AccessesCoveringContainsEveryPoint)
{
    for (const ICount& a : small_intervals(-6, 6)) {
        for (const ICount& b : small_intervals(1, 4)) {
            const ICycles span{Cycles{a.lo}, Cycles{a.hi}};
            const ICycles d_mem{Cycles{b.lo}, Cycles{b.hi}};
            const IAccess n = accesses_covering(span, d_mem);
            for (std::int64_t x = a.lo; x <= a.hi; ++x) {
                for (std::int64_t y = b.lo; y <= b.hi; ++y) {
                    ASSERT_TRUE(n.contains(
                        util::accesses_covering(Cycles{x}, Cycles{y})));
                }
            }
        }
    }
}

TEST(Interval, ClampToContainsEveryPoint)
{
    for (const ICount& x : small_intervals(-3, 4)) {
        for (const ICount& cap : small_intervals(-2, 4)) {
            const ICount c = clamp_to(x, cap);
            const ICount nn = clamp_non_negative(x);
            for (std::int64_t xv = x.lo; xv <= x.hi; ++xv) {
                ASSERT_TRUE(nn.contains(std::max<std::int64_t>(xv, 0)));
                for (std::int64_t cv = cap.lo; cv <= cap.hi; ++cv) {
                    const std::int64_t v = std::clamp<std::int64_t>(
                        xv, 0, std::max<std::int64_t>(cv, 0));
                    ASSERT_TRUE(c.contains(v));
                }
            }
        }
    }
}

TEST(Interval, MonotoneHullContainsEveryPointOfAMonotoneMap)
{
    // The M̂D shape: min(n*md, n*mdr + pcb), non-decreasing in all four.
    const auto md_hat = [](std::int64_t n, std::int64_t md, std::int64_t mdr,
                           std::int64_t pcb) {
        return std::min(n * md, n * mdr + pcb);
    };
    for (const ICount& n : small_intervals(0, 3)) {
        for (const ICount& md : small_intervals(0, 3)) {
            for (const ICount& mdr : small_intervals(0, 2)) {
                for (const ICount& pcb : small_intervals(0, 2)) {
                    const auto h = monotone_hull(md_hat, n, md, mdr, pcb);
                    for (std::int64_t a = n.lo; a <= n.hi; ++a) {
                        for (std::int64_t b = md.lo; b <= md.hi; ++b) {
                            for (std::int64_t c = mdr.lo; c <= mdr.hi; ++c) {
                                for (std::int64_t d = pcb.lo; d <= pcb.hi;
                                     ++d) {
                                    ASSERT_TRUE(
                                        h.contains(md_hat(a, b, c, d)));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

// --- model soundness against the concrete implementation -----------------

Point random_point(const ParamBox& box, util::Rng& rng)
{
    Point point{};
    for (std::size_t d = 0; d < kDimCount; ++d) {
        point[d] = rng.uniform_int(box.dims[d].lo, box.dims[d].hi);
    }
    return point;
}

ParamBox point_box(const Point& point)
{
    ParamBox box;
    for (std::size_t d = 0; d < kDimCount; ++d) {
        box.dims[d] = ICount::point(point[d]);
    }
    return box;
}

std::vector<analysis::AnalysisConfig> all_configs()
{
    std::vector<analysis::AnalysisConfig> configs;
    for (const analysis::BusPolicy policy :
         {analysis::BusPolicy::kFixedPriority,
          analysis::BusPolicy::kRoundRobin, analysis::BusPolicy::kTdma}) {
        for (const bool aware : {true, false}) {
            analysis::AnalysisConfig config;
            config.policy = policy;
            config.persistence_aware = aware;
            configs.push_back(config);
        }
    }
    return configs;
}

// At a degenerate (point) box the abstract model must enclose the concrete
// oracle values: tables, M̂D, and the three bus bounds, for every policy and
// both persistence modes. 10,000 seeded random points of the fast box.
TEST(AbstractSoundness, EnclosuresContainOracleValuesAtRandomPoints)
{
    const ParamBox box = fast_box();
    const std::vector<analysis::AnalysisConfig> configs = all_configs();
    util::Rng rng(20260808);
    for (int trial = 0; trial < 10000; ++trial) {
        const Point point = random_point(box, rng);
        const AbstractScenario abs =
            make_abstract(point_box(point), point[index_of(Dim::kCores)]);
        const Scenario concrete = make_scenario(point);
        const check::AnalysisOracle oracle(concrete.task_set,
                                           concrete.platform);
        const std::size_t n = abs.task_count();
        ASSERT_EQ(n, concrete.task_set.size());

        const std::int64_t n_jobs = point[index_of(Dim::kNJobs)];
        const Cycles window{point[index_of(Dim::kWindow)]};
        const ICycles window_i = ICycles::point(window);
        std::vector<Cycles> response;
        std::vector<ICycles> response_i;
        for (std::size_t k = 0; k < n; ++k) {
            const Cycles iso = concrete.task_set.tasks()[k].isolated_demand(
                concrete.platform.d_mem);
            response.push_back(iso);
            response_i.push_back(ICycles::point(iso));
        }

        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(abs.md_hat(ICount::point(n_jobs))
                            .contains(oracle.md_hat(i, n_jobs)))
                << "md_hat trial " << trial << " task " << i;
            for (std::size_t j = 0; j < n; ++j) {
                ASSERT_TRUE(abs.gamma(i, j).contains(oracle.gamma(i, j)))
                    << "gamma trial " << trial << " (" << i << "," << j
                    << ")";
                ASSERT_TRUE(abs.cpro_overlap(j, i).contains(
                    oracle.cpro_overlap(j, i)))
                    << "cpro trial " << trial << " (" << j << "," << i
                    << ")";
            }
        }

        for (const analysis::AnalysisConfig& config : configs) {
            const AbstractBounds bounds(abs, config);
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_TRUE(bounds.bas(i, window_i)
                                .contains(oracle.bas(config, i, window)))
                    << "bas trial " << trial << " task " << i;
                ASSERT_TRUE(
                    bounds.bat(i, window_i, response_i)
                        .contains(oracle.bat(config, i, window, response)))
                    << "bat trial " << trial << " task " << i << " policy "
                    << analysis::to_string(config.policy);
            }
            for (std::size_t core = 0; core < abs.cores; ++core) {
                for (std::size_t k = 0; k < n; ++k) {
                    ASSERT_TRUE(
                        bounds.bao(core, k, window_i, response_i)
                            .contains(oracle.bao(config, core, k, window,
                                                 response)))
                        << "bao trial " << trial << " core " << core
                        << " level " << k;
                }
            }
        }
    }
}

// The abstract Eq. 19 resolution may only claim what the concrete solver
// confirms: kAllSchedulable implies the real fixed point converges with
// every response inside its enclosure; kAllUnschedulable implies the real
// solver rejects the set.
TEST(AbstractSoundness, WcrtVerdictMatchesOracleAtRandomPoints)
{
    const ParamBox box = fast_box();
    const std::vector<analysis::AnalysisConfig> configs = all_configs();
    util::Rng rng(77002);
    for (int trial = 0; trial < 1000; ++trial) {
        const Point point = random_point(box, rng);
        const AbstractScenario abs =
            make_abstract(point_box(point), point[index_of(Dim::kCores)]);
        const Scenario concrete = make_scenario(point);
        const check::AnalysisOracle oracle(concrete.task_set,
                                           concrete.platform);
        for (const analysis::AnalysisConfig& config : configs) {
            const AbstractWcrt abstract = abstract_wcrt(abs, config);
            if (abstract.verdict == AbstractSchedulability::kUnknown) {
                continue;
            }
            const analysis::WcrtResult real = oracle.wcrt(config);
            if (abstract.verdict ==
                AbstractSchedulability::kAllUnschedulable) {
                EXPECT_FALSE(real.schedulable) << "trial " << trial;
                continue;
            }
            ASSERT_TRUE(real.schedulable) << "trial " << trial;
            ASSERT_EQ(abstract.response.size(), real.response.size());
            for (std::size_t i = 0; i < real.response.size(); ++i) {
                EXPECT_TRUE(abstract.response[i].contains(real.response[i]))
                    << "trial " << trial << " task " << i;
            }
        }
    }
}

} // namespace
} // namespace cpa::verify
