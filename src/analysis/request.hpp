// AnalysisRequest: the single serializable request type of the analysis
// service layer. One request = "analyze this task set under this
// configuration"; every front end (cpa analyze flags, cpa batch NDJSON
// lines, the experiments sweep, library callers) builds one of these and
// hands it to analysis::Session, replacing the per-command hand-rolled
// config assembly the CLI used to carry. The stable surface is documented
// in docs/api.md.
#pragma once

#include "analysis/config.hpp"
#include "util/units.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cpa::analysis {

struct AnalysisRequest {
    // Free-form tag echoed back in results (the batch codec's "id" field);
    // never interpreted.
    std::string id;
    // Task-set reference. The Session is bound to one task set and ignores
    // this; the batch front end uses it to route requests to sessions ("" =
    // the command-line default task set).
    std::string taskset;
    // The analysis configuration (policy, persistence, CRPD, CPRO, engine).
    AnalysisConfig config;
    // Platform overrides relative to the session's base platform; absent
    // fields keep the base value. Only the bus-timing knobs are per-request
    // — core count and cache geometry are properties of the task set.
    std::optional<util::Cycles> d_mem;
    std::optional<std::int64_t> slot_size;
};

// Name <-> enum mappings shared by the CLI flag parser, the batch codec and
// the NDJSON emitters, so the accepted spellings cannot drift between
// front ends. Parsers return nullopt on unknown names; callers own the
// error message (they know which flag or field was being parsed).
[[nodiscard]] std::optional<BusPolicy>
bus_policy_from_string(std::string_view name);
[[nodiscard]] std::optional<CrpdMethod>
crpd_method_from_string(std::string_view name);
[[nodiscard]] std::optional<CproMethod>
cpro_method_from_string(std::string_view name);
[[nodiscard]] std::optional<WcrtEngine>
wcrt_engine_from_string(std::string_view name);

// Lower-case canonical spellings accepted by the parsers above and used in
// batch result records ("fp", "ecb-union", ...). The to_string overloads in
// config.hpp are display names ("FP") and do not round-trip.
[[nodiscard]] std::string_view spelling(BusPolicy policy);
[[nodiscard]] std::string_view spelling(CrpdMethod method);
[[nodiscard]] std::string_view spelling(CproMethod method);
[[nodiscard]] std::string_view spelling(WcrtEngine engine);

} // namespace cpa::analysis
