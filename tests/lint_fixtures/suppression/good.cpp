// Fixture: a well-formed suppression — rule named, reason given, placed
// on the standalone comment line directly above the site.
#include "util/units.hpp"

#include <cstdint>
#include <random>

std::int64_t jitter_draw(cpa::util::Cycles jitter, std::mt19937_64& gen)
{
    // cpa-lint: allow(unit.raw-count): RNG distribution bound; the draw
    // is re-wrapped into Cycles by the caller.
    std::uniform_int_distribution<std::int64_t> dist(0, jitter.count());
    return dist(gen);
}
