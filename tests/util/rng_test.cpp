#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cpa::util {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIndexStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.uniform_index(17), 17u);
    }
}

TEST(Rng, UniformRealStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform_real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RejectsEmptyRanges)
{
    Rng rng(7);
    EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_real(2.0, 2.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(42);
    Rng child = parent.fork();
    // The child must not replay the parent's stream.
    Rng reference(42);
    (void)reference.engine()(); // parent consumed one draw for the fork
    bool any_difference = false;
    for (int i = 0; i < 16; ++i) {
        if (child.uniform_int(0, 1'000'000) !=
            parent.uniform_int(0, 1'000'000)) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
}

class UUnifastTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(UUnifastTest, SumsToTotalAndAllNonNegative)
{
    const auto [n, total] = GetParam();
    Rng rng(1234);
    for (int repeat = 0; repeat < 50; ++repeat) {
        const std::vector<double> u = uunifast(rng, n, total);
        ASSERT_EQ(u.size(), n);
        const double sum = std::accumulate(u.begin(), u.end(), 0.0);
        EXPECT_NEAR(sum, total, 1e-9);
        for (const double value : u) {
            EXPECT_GE(value, 0.0);
            EXPECT_LE(value, total + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, UUnifastTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 32),
                       ::testing::Values(0.05, 0.5, 1.0)));

TEST(UUnifast, SingleTaskGetsEverything)
{
    Rng rng(5);
    const std::vector<double> u = uunifast(rng, 1, 0.7);
    ASSERT_EQ(u.size(), 1u);
    EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUnifast, RejectsZeroTasks)
{
    Rng rng(5);
    EXPECT_THROW((void)uunifast(rng, 0, 0.5), std::invalid_argument);
}

TEST(UUnifast, ZeroUtilizationGivesAllZeros)
{
    Rng rng(5);
    for (const double value : uunifast(rng, 4, 0.0)) {
        EXPECT_DOUBLE_EQ(value, 0.0);
    }
}

} // namespace
} // namespace cpa::util
