// Positive control for the compile-fail harness: this file uses the same
// include path and dialect as the MUST-NOT-COMPILE cases and is expected to
// compile. If it fails, the harness (not the unit system) is broken, and
// every red case would be a false positive.
#include "util/units.hpp"

using namespace cpa::util::literals;

cpa::util::Cycles good(cpa::util::AccessCount accesses)
{
    return accesses * cpa::util::Cycles{10} + 4_cy;
}
