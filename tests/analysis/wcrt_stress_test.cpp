// Scale/stress tier for the incremental WCRT engine plus property tests of
// its breakpoint-cursor primitives (all pinned constants — nothing here
// depends on wall clock or randomness beyond seeded generators).
#include "analysis/wcrt.hpp"
#include "analysis/wcrt_incremental.hpp"

#include "benchdata/generator.hpp"
#include "helpers.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;

// --- Breakpoint-cursor properties -----------------------------------------

// Walking t upward one cycle at a time, the cursor must (a) always agree
// with the direct count function and (b) be refreshed exactly when t
// crosses a (jitter-shifted) multiple of the period — nowhere else.
TEST(WcrtBreakpointProperty, JitterCountStepsExactlyAtShiftedMultiples)
{
    struct Pin {
        std::int64_t period;
        std::int64_t jitter;
        std::int64_t window;
    };
    const std::vector<Pin> pins = {
        {7, 3, 200}, {10, 0, 300}, {1, 0, 50}, {12, 9, 400}, {100, 99, 950},
    };
    for (const Pin& pin : pins) {
        const Cycles period{pin.period};
        const Cycles jitter{pin.jitter};
        std::int64_t count = jitter_job_count(Cycles{1}, jitter, period);
        Cycles valid_until =
            jitter_job_count_valid_until(count, jitter, period);
        std::vector<std::int64_t> refreshed_at;
        for (std::int64_t raw_t = 1; raw_t <= pin.window; ++raw_t) {
            const Cycles t{raw_t};
            if (t > valid_until) {
                count = jitter_job_count(t, jitter, period);
                valid_until =
                    jitter_job_count_valid_until(count, jitter, period);
                refreshed_at.push_back(raw_t);
            }
            ASSERT_EQ(count, jitter_job_count(t, jitter, period))
                << "T=" << pin.period << " J=" << pin.jitter
                << " t=" << raw_t;
        }
        // The refresh points are exactly the multiples of T shifted left by
        // J, plus one (the first t past each breakpoint).
        std::vector<std::int64_t> expected;
        const std::int64_t first =
            jitter_job_count(Cycles{1}, jitter, period);
        for (std::int64_t k = first;; ++k) {
            const std::int64_t breakpoint = k * pin.period - pin.jitter + 1;
            if (breakpoint > pin.window) {
                break;
            }
            if (breakpoint >= 2) {
                expected.push_back(breakpoint);
            }
        }
        EXPECT_EQ(refreshed_at, expected)
            << "T=" << pin.period << " J=" << pin.jitter;
    }
}

TEST(WcrtBreakpointProperty, CpuCountStepsExactlyAtMultiples)
{
    const std::vector<std::int64_t> periods = {1, 2, 7, 10, 33};
    const std::int64_t window = 250;
    for (const std::int64_t raw_period : periods) {
        const Cycles period{raw_period};
        std::int64_t count = cpu_job_count(Cycles{1}, period);
        Cycles valid_until = cpu_job_count_valid_until(count, period);
        std::vector<std::int64_t> refreshed_at;
        for (std::int64_t raw_t = 1; raw_t <= window; ++raw_t) {
            const Cycles t{raw_t};
            if (t > valid_until) {
                count = cpu_job_count(t, period);
                valid_until = cpu_job_count_valid_until(count, period);
                refreshed_at.push_back(raw_t);
            }
            ASSERT_EQ(count, cpu_job_count(t, period))
                << "T=" << raw_period << " t=" << raw_t;
        }
        std::vector<std::int64_t> expected;
        for (std::int64_t k = 1;; ++k) {
            const std::int64_t breakpoint = k * raw_period + 1;
            if (breakpoint > window) {
                break;
            }
            if (breakpoint >= 2) {
                expected.push_back(breakpoint);
            }
        }
        EXPECT_EQ(refreshed_at, expected) << "T=" << raw_period;
    }
}

// The Eq. (6) full-job cursor with positive, negative, and zero offsets
// (c_l = R_l + J_l - per_job·d_mem can have any sign), including the
// clamped-at-zero regime.
TEST(WcrtBreakpointProperty, FullJobCountStepsExactlyAtOffsetMultiples)
{
    struct Pin {
        std::int64_t period;
        std::int64_t offset;
        std::int64_t window;
    };
    const std::vector<Pin> pins = {
        {10, 0, 300}, {10, 37, 300}, {10, -37, 300},
        {7, -100, 400}, {1, 5, 60},
    };
    for (const Pin& pin : pins) {
        const Cycles period{pin.period};
        const Cycles offset{pin.offset};
        std::int64_t count = full_job_count(Cycles{1}, offset, period);
        Cycles valid_until =
            full_job_count_valid_until(count, offset, period);
        for (std::int64_t raw_t = 1; raw_t <= pin.window; ++raw_t) {
            const Cycles t{raw_t};
            if (t > valid_until) {
                const std::int64_t previous = count;
                count = full_job_count(t, offset, period);
                valid_until =
                    full_job_count_valid_until(count, offset, period);
                EXPECT_GT(count, previous)
                    << "stale cursor must mean the count grew: T="
                    << pin.period << " c=" << pin.offset << " t=" << raw_t;
            }
            ASSERT_EQ(count, full_job_count(t, offset, period))
                << "T=" << pin.period << " c=" << pin.offset
                << " t=" << raw_t;
        }
    }
}

// Cursor arithmetic at large magnitudes (the overflow paths a 16-core
// stress window exercises): jumping from breakpoint to breakpoint must
// advance the count by exactly one per period crossed.
TEST(WcrtBreakpointProperty, LargeMagnitudeBreakpointJumps)
{
    const Cycles period{1'000'000'000};
    const Cycles jitter{123'456'789};
    Cycles t{1};
    std::int64_t count = jitter_job_count(t, jitter, period);
    for (int step = 0; step < 1000; ++step) {
        const Cycles valid_until =
            jitter_job_count_valid_until(count, jitter, period);
        ASSERT_EQ(count, jitter_job_count(valid_until, jitter, period));
        t = valid_until + Cycles{1};
        const std::int64_t next = jitter_job_count(t, jitter, period);
        ASSERT_EQ(next, count + 1) << "step=" << step;
        count = next;
    }
    EXPECT_EQ(count, jitter_job_count(Cycles{1}, jitter, period) + 1000);
}

// --- 16 cores x 32 tasks/core stress tier ---------------------------------

tasks::TaskSet stress_set(std::uint64_t seed, double utilization)
{
    util::Rng rng(seed);
    benchdata::GenerationConfig gen;
    gen.num_cores = 16;
    gen.tasks_per_core = 32;
    gen.cache_sets = 256;
    gen.per_core_utilization = utilization;
    static const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 256);
    return benchdata::generate_task_set(rng, gen, pool);
}

TEST(WcrtStress, SixteenCoresMatchAcrossEngines)
{
    PlatformConfig platform;
    platform.num_cores = 16;
    platform.cache_sets = 256;
    platform.d_mem = Cycles{5};
    platform.slot_size = 2;

    const tasks::TaskSet ts = stress_set(1, 0.3);
    ASSERT_EQ(ts.size(), 16u * 32u);
    const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);

    for (const BusPolicy policy :
         {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
          BusPolicy::kTdma}) {
        AnalysisConfig config;
        config.policy = policy;
        config.persistence_aware = true;

        config.wcrt_engine = WcrtEngine::kReference;
        const WcrtResult reference = compute_wcrt(ts, platform, config,
                                                  tables);
        config.wcrt_engine = WcrtEngine::kIncremental;
        const WcrtResult incremental = compute_wcrt(ts, platform, config,
                                                    tables);

        EXPECT_EQ(reference.schedulable, incremental.schedulable)
            << to_string(policy);
        EXPECT_EQ(reference.response, incremental.response)
            << to_string(policy);
        EXPECT_EQ(reference.outer_iterations, incremental.outer_iterations)
            << to_string(policy);
        EXPECT_EQ(reference.inner_iterations, incremental.inner_iterations)
            << to_string(policy);
        EXPECT_EQ(reference.failed_task, incremental.failed_task)
            << to_string(policy);
        EXPECT_EQ(reference.stop_reason, incremental.stop_reason)
            << to_string(policy);
    }
}

// --- Inner-iteration budget exhaustion (regression) ------------------------

// Two highest-priority tasks saturate the core (utilization exactly 1), so
// the lowest-priority recurrence creeps upward by 1-2 cycles per iteration
// and can neither converge nor cross its (huge) deadline within
// kMaxInnerIterations. d_mem is zero so the unconditional lower-priority
// blocking charge does not push the CPU-saturated high-priority tasks past
// their own tight deadlines. Before the fix this was silently classified as
// a plain deadline miss; now both engines must report the capitulation via
// WcrtResult::inner_budget_exhausted plus the wcrt.budget_exhausted
// counter.
TEST(WcrtStress, InnerBudgetExhaustionIsReportedByBothEngines)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 1, 0, 0, 2, 0, {}, {}, {}},
            {0, 1, 0, 0, 2, 0, {}, {}, {}},
            {0, 1, 0, 0, 1'000'000, 0, {}, {}, {}},
        });
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = Cycles{0};

    for (const WcrtEngine engine :
         {WcrtEngine::kReference, WcrtEngine::kIncremental}) {
#if CPA_OBS_ENABLED
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
#endif
        AnalysisConfig config;
        config.policy = BusPolicy::kFixedPriority;
        config.wcrt_engine = engine;
        const WcrtResult result = compute_wcrt(ts, platform, config);

        const std::string context = to_string(engine);
        EXPECT_FALSE(result.schedulable) << context;
        EXPECT_TRUE(result.inner_budget_exhausted) << context;
        EXPECT_EQ(result.stop_reason, StopReason::kDeadlineMiss) << context;
        EXPECT_EQ(result.failed_task, util::TaskId{2}) << context;
        // The conservative fallback value, not a genuine fixed point.
        EXPECT_EQ(result.response[2], Cycles{1'000'001}) << context;

#if CPA_OBS_ENABLED
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::global().snapshot();
        EXPECT_EQ(snap.counters.at("wcrt.budget_exhausted"), 1) << context;
        obs::set_metrics_enabled(false);
        obs::MetricsRegistry::global().reset();
#endif
    }
}

// A convergent set must never raise the budget flag (the counter stays
// untouched, keeping it out of every metrics golden).
TEST(WcrtStress, ConvergentSetDoesNotRaiseBudgetFlag)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            {0, 10, 2, 1, 100, 0, {1, 2}, {1}, {1}},
            {0, 20, 3, 1, 200, 0, {2, 3}, {3}, {3}},
        });
    PlatformConfig platform;
    platform.num_cores = 1;
    platform.cache_sets = 16;
    platform.d_mem = Cycles{2};

    for (const WcrtEngine engine :
         {WcrtEngine::kReference, WcrtEngine::kIncremental}) {
        AnalysisConfig config;
        config.wcrt_engine = engine;
        const WcrtResult result = compute_wcrt(ts, platform, config);
        EXPECT_TRUE(result.schedulable) << to_string(engine);
        EXPECT_FALSE(result.inner_budget_exhausted) << to_string(engine);
    }
}

} // namespace
} // namespace cpa::analysis
