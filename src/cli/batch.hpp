// `cpa batch` — the NDJSON request service over analysis::Session.
//
// One request per input line (schema v1, docs/batch.md), one result record
// per request on stdout, in request order. The runner is deterministic by
// construction: requests are parsed, routed to per-task-set Sessions and
// deduplicated serially in input order (so every session cache counter is
// worker-count-invariant), the unique solves fan out over util::ThreadPool
// with pre-sized result slots, and records are emitted serially in request
// order again — `--jobs 8` output is byte-identical to `--jobs 1`.
//
// Per-request isolation: a malformed line, an unloadable task set, or an
// iteration-budget exhaustion yields a structured error record
// ({"status":"error","error":{"kind":...,"message":...}}) and the batch
// keeps going; an unschedulable set is a normal "ok" record with
// "schedulable":false. Exit code: 3 if any error record was emitted, else
// 2 if any request was unschedulable, else 0.
#pragma once

#include "cli/commands.hpp"

#include <cstddef>
#include <iosfwd>
#include <string>

namespace cpa::cli {

struct BatchOptions {
    // Directory request-local "taskset" references resolve against ("" =
    // process CWD; cmd_batch sets it to the --input file's directory).
    std::string base_dir;
    // Task-set file for requests without a "taskset" field (--taskset).
    std::string default_taskset;
    std::size_t jobs = 0; // 0 = resolve via CPA_JOBS / hardware concurrency
};

// Reads NDJSON requests from `in` and writes one NDJSON record per request
// to `out`. Throws only on broken streams — request-level problems become
// error records.
[[nodiscard]] ExitCode run_batch(const BatchOptions& options,
                                 std::istream& in, std::ostream& out);

} // namespace cpa::cli
