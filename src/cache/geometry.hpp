// Cache geometry of the modeled platform: a private, single-level,
// direct-mapped instruction cache per core (paper Section II). Addresses are
// handled at cache-block granularity throughout (the paper's 32 B lines only
// fix the block size; all analyses operate on block/set indices).
#pragma once

#include <cstddef>
#include <stdexcept>

namespace cpa::cache {

struct CacheGeometry {
    std::size_t sets = 256;
    std::size_t block_bytes = 32;
    // Associativity. The paper's platform is direct-mapped (ways = 1); the
    // LRU extension (src/cache/lru.hpp) supports ways > 1 for the paper's
    // future-work direction.
    std::size_t ways = 1;

    [[nodiscard]] std::size_t set_of(std::size_t block_address) const
    {
        if (sets == 0) {
            throw std::invalid_argument("CacheGeometry: zero sets");
        }
        return block_address % sets;
    }

    [[nodiscard]] std::size_t size_bytes() const { return sets * block_bytes; }
};

} // namespace cpa::cache
