// Fixture: the sanctioned shapes — a named conversion point, and
// std::chrono duration .count() (same spelling, different type; exempt).
#include "util/units.hpp"

#include <chrono>
#include <cstdint>

std::int64_t metric(cpa::util::Cycles c)
{
    return cpa::util::to_metric(c);
}

std::int64_t elapsed_us(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}
