#include "cli/commands.hpp"

#include "cli/taskset_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cpa::cli {
namespace {

// Writes a demo task-set file and removes it on teardown.
class CommandsTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "cpa_cli_demo.taskset";
        std::ofstream out(path_);
        out << R"(platform cores=2 cache_sets=64 d_mem_us=5 slot_size=2
task ctrl core=0 pd=1000 md=20 mdr=4 period=100000 ecb=0-19 ucb=0-15 pcb=0-19
task log  core=1 pd=500  md=10 mdr=2 period=200000 ecb=30-39 pcb=30-39
)";
    }
    void TearDown() override { std::remove(path_.c_str()); }

    int run(std::initializer_list<std::string> args)
    {
        out_.str("");
        err_.str("");
        return run_cli(std::vector<std::string>(args), out_, err_);
    }

    std::string path_;
    std::ostringstream out_;
    std::ostringstream err_;
};

TEST_F(CommandsTest, HelpPrintsUsage)
{
    EXPECT_EQ(run({"help"}), 0);
    EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CommandsTest, NoArgumentsPrintsUsageAndFails)
{
    EXPECT_EQ(run({}), 1);
    EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CommandsTest, UnknownCommandFails)
{
    EXPECT_EQ(run({"frobnicate"}), 1);
    EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CommandsTest, AnalyzeSchedulableSetReturnsZero)
{
    EXPECT_EQ(run({"analyze", path_}), 0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("FP bus"), std::string::npos);
    EXPECT_NE(text.find("TDMA bus"), std::string::npos);
    EXPECT_NE(text.find("SCHEDULABLE"), std::string::npos);
    EXPECT_NE(text.find("ctrl"), std::string::npos);
}

TEST_F(CommandsTest, AnalyzeSinglePolicy)
{
    EXPECT_EQ(run({"analyze", path_, "--policy", "rr"}), 0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("RR bus"), std::string::npos);
    EXPECT_EQ(text.find("TDMA bus"), std::string::npos);
}

TEST_F(CommandsTest, AnalyzeReportAddsBreakdownColumns)
{
    EXPECT_EQ(run({"analyze", path_, "--policy", "fp", "--report"}), 0);
    EXPECT_NE(out_.str().find("bus-cross"), std::string::npos);
}

TEST_F(CommandsTest, AnalyzeRejectsBadFlags)
{
    EXPECT_EQ(run({"analyze", path_, "--policy", "warp"}), 1);
    EXPECT_NE(err_.str().find("unknown policy"), std::string::npos);
    EXPECT_EQ(run({"analyze", path_, "--wibble", "x"}), 1);
    EXPECT_NE(err_.str().find("unknown argument"), std::string::npos);
    EXPECT_EQ(run({"analyze"}), 1);
    EXPECT_NE(err_.str().find("requires a task-set file"),
              std::string::npos);
}

TEST_F(CommandsTest, AnalyzeUnschedulableReturnsTwo)
{
    const std::string bad = ::testing::TempDir() + "cpa_cli_bad.taskset";
    {
        std::ofstream out(bad);
        out << R"(platform cores=1 cache_sets=8 d_mem_us=5
task hog core=0 pd=90 md=0 mdr=0 period=100
task starved core=0 pd=90 md=0 mdr=0 period=100
)";
    }
    EXPECT_EQ(run({"analyze", bad, "--policy", "fp"}), 2);
    EXPECT_NE(out_.str().find("NOT SCHEDULABLE"), std::string::npos);
    std::remove(bad.c_str());
}

TEST_F(CommandsTest, SimulateReportsObservedResponses)
{
    EXPECT_EQ(run({"simulate", path_, "--policy", "fp"}), 0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("simulation"), std::string::npos);
    EXPECT_NE(text.find("ctrl"), std::string::npos);
    EXPECT_NE(text.find("max R"), std::string::npos);
}

TEST_F(CommandsTest, SimulateValidatesHorizon)
{
    EXPECT_EQ(run({"simulate", path_, "--horizon-periods", "0"}), 1);
    EXPECT_NE(err_.str().find("horizon"), std::string::npos);
}

TEST_F(CommandsTest, GenerateEmitsParsableFile)
{
    EXPECT_EQ(run({"generate", "--cores", "2", "--tasks-per-core", "3",
                   "--utilization", "0.2", "--seed", "11"}),
              0);
    std::istringstream emitted(out_.str());
    const ParsedSystem parsed = parse_task_set(emitted);
    EXPECT_EQ(parsed.ts.size(), 6u);
    EXPECT_EQ(parsed.platform.num_cores, 2u);
}

TEST_F(CommandsTest, GenerateAnalyzeRoundTrip)
{
    ASSERT_EQ(run({"generate", "--cores", "2", "--tasks-per-core", "2",
                   "--utilization", "0.1", "--seed", "3"}),
              0);
    const std::string file = ::testing::TempDir() + "cpa_cli_gen.taskset";
    {
        std::ofstream f(file);
        f << out_.str();
    }
    EXPECT_EQ(run({"analyze", file, "--policy", "fp"}), 0);
    std::remove(file.c_str());
}

TEST_F(CommandsTest, AnalyzeCsvOutput)
{
    EXPECT_EQ(run({"analyze", path_, "--policy", "fp", "--csv"}), 0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("task,core,R,D,verdict"), std::string::npos);
    EXPECT_EQ(text.find("|"), std::string::npos); // no ASCII table art
}

TEST_F(CommandsTest, SimulateHyperperiodHorizon)
{
    // Periods 100000 and 200000 -> hyperperiod 200000 cycles.
    EXPECT_EQ(run({"simulate", path_, "--hyperperiod"}), 0);
    EXPECT_NE(out_.str().find("200000 cycles"), std::string::npos);
}

TEST_F(CommandsTest, SimulateHyperperiodRejectsExplosion)
{
    const std::string file = ::testing::TempDir() + "cpa_cli_huge.taskset";
    {
        std::ofstream f(file);
        f << "platform cores=1 cache_sets=8\n"
             "task a core=0 pd=1 md=0 mdr=0 period=999999999937\n"
             "task b core=0 pd=1 md=0 mdr=0 period=999999999767\n";
    }
    EXPECT_EQ(run({"simulate", file, "--hyperperiod"}), 1);
    EXPECT_NE(err_.str().find("hyperperiod"), std::string::npos);
    std::remove(file.c_str());
}

TEST_F(CommandsTest, AnalyzeSimCheckReportsMargin)
{
    EXPECT_EQ(run({"analyze", path_, "--policy", "fp", "--sim-check"}), 0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("sim-check: bounds hold"), std::string::npos);
    EXPECT_NE(text.find("worst observed/bound"), std::string::npos);
    EXPECT_EQ(text.find("VIOLATION"), std::string::npos);
}

TEST_F(CommandsTest, SweepProducesUtilizationTable)
{
    EXPECT_EQ(run({"sweep", "--cores", "2", "--tasks-per-core", "2",
                   "--task-sets", "4"}),
              0);
    const std::string text = out_.str();
    EXPECT_NE(text.find("FP-CP"), std::string::npos);
    EXPECT_NE(text.find("PerfectBus"), std::string::npos);
    EXPECT_NE(text.find("0.05"), std::string::npos);
    EXPECT_NE(text.find("1.00"), std::string::npos);
}

TEST_F(CommandsTest, SweepCsvOutput)
{
    EXPECT_EQ(run({"sweep", "--cores", "2", "--tasks-per-core", "2",
                   "--task-sets", "3", "--csv"}),
              0);
    EXPECT_NE(out_.str().find("U/core,FP-CP"), std::string::npos);
}

TEST_F(CommandsTest, AnalyzeWithSharedL2)
{
    const std::string file = ::testing::TempDir() + "cpa_cli_l2.taskset";
    {
        std::ofstream f(file);
        f << "platform cores=2 cache_sets=64 d_mem_us=5 l2_sets=256 "
             "d_l2_us=1\n"
             "task a core=0 pd=1000 md=20 mdr=8 period=100000 "
             "ecb=0-19 ecb2=0-19 pcb2=0-19 mdr2=2\n"
             "task b core=1 pd=500 md=10 mdr=10 period=200000 ecb=30-39\n";
    }
    EXPECT_EQ(run({"analyze", file, "--policy", "fp"}), 0) << err_.str();
    EXPECT_NE(out_.str().find("shared L2"), std::string::npos);
    // --report is not available for the multilevel analysis.
    EXPECT_EQ(run({"analyze", file, "--report"}), 1);
    EXPECT_NE(err_.str().find("--report"), std::string::npos);
    std::remove(file.c_str());
}

TEST_F(CommandsTest, ShippedDemoFileStaysValidAndSchedulable)
{
    // Keeps examples/data/engine_controller.taskset honest: it must parse,
    // analyze as schedulable under every policy, and survive simulation.
    const std::string shipped =
        std::string(CPA_SOURCE_DIR) + "/examples/data/engine_controller.taskset";
    EXPECT_EQ(run({"analyze", shipped}), 0) << err_.str();
    EXPECT_EQ(run({"simulate", shipped, "--policy", "tdma"}), 0)
        << err_.str();
}

TEST_F(CommandsTest, MissingFileSurfacesError)
{
    EXPECT_EQ(run({"analyze", "/no/such/file"}), 1);
    EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

} // namespace
} // namespace cpa::cli
