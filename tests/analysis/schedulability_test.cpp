#include "analysis/schedulability.hpp"

#include "benchdata/generator.hpp"
#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;

PlatformConfig default_platform(std::size_t cores = 2,
                                std::size_t cache_sets = 64)
{
    PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = cache_sets;
    platform.d_mem = util::Cycles{10};
    platform.slot_size = 2;
    return platform;
}

TEST(Schedulability, EmptyTaskSetIsSchedulable)
{
    const tasks::TaskSet ts(2, 64);
    AnalysisConfig config;
    EXPECT_TRUE(is_schedulable(ts, default_platform(), config));
}

TEST(Schedulability, PerfectBusRejectsOverloadedBus)
{
    // One task whose memory demand alone saturates the bus:
    // MD*d_mem/T = 80*10/500 = 1.6 > 1.
    const tasks::TaskSet ts =
        make_task_set(2, 64, {{0, 10, 80, 80, 500, 0, {}, {}, {}}});
    AnalysisConfig config;
    config.policy = BusPolicy::kPerfect;
    EXPECT_FALSE(is_schedulable(ts, default_platform(), config));
}

TEST(Schedulability, PerfectBusAcceptsLightLoad)
{
    const tasks::TaskSet ts =
        make_task_set(2, 64, {{0, 10, 2, 2, 10000, 0, {}, {}, {}}});
    AnalysisConfig config;
    config.policy = BusPolicy::kPerfect;
    EXPECT_TRUE(is_schedulable(ts, default_platform(), config));
}

TEST(Schedulability, TrivialSingleTaskSchedulableUnderEveryPolicy)
{
    const tasks::TaskSet ts =
        make_task_set(2, 64, {{0, 10, 2, 2, 10000, 0, {1, 2}, {1}, {1}}});
    for (const BusPolicy policy :
         {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin, BusPolicy::kTdma,
          BusPolicy::kPerfect}) {
        AnalysisConfig config;
        config.policy = policy;
        EXPECT_TRUE(is_schedulable(ts, default_platform(), config))
            << to_string(policy);
    }
}

// Dominance properties on randomly generated task sets. These mirror the
// claims behind Fig. 2: persistence-aware tests dominate their counterparts,
// and the perfect bus dominates everything (within a policy, tighter BAT ->
// tighter WCRT -> more schedulable sets).
class SchedulabilityDominance : public ::testing::TestWithParam<BusPolicy> {};

TEST_P(SchedulabilityDominance, PersistenceAwareDominatesBaseline)
{
    util::Rng rng(4242);
    benchdata::GenerationConfig gen;
    gen.num_cores = 4;
    gen.tasks_per_core = 4;
    gen.cache_sets = 128;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 128);
    const PlatformConfig platform = default_platform(4, 128);

    for (const double u : {0.2, 0.4, 0.6}) {
        gen.per_core_utilization = u;
        for (int repeat = 0; repeat < 15; ++repeat) {
            util::Rng child = rng.fork();
            const tasks::TaskSet ts =
                benchdata::generate_task_set(child, gen, pool);
            const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);

            AnalysisConfig baseline;
            baseline.policy = GetParam();
            baseline.persistence_aware = false;
            AnalysisConfig persist = baseline;
            persist.persistence_aware = true;

            if (is_schedulable(ts, platform, baseline, tables)) {
                EXPECT_TRUE(is_schedulable(ts, platform, persist, tables))
                    << to_string(GetParam()) << " u=" << u;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulabilityDominance,
                         ::testing::Values(BusPolicy::kFixedPriority,
                                           BusPolicy::kRoundRobin,
                                           BusPolicy::kTdma));

TEST(Schedulability, FpDominatesTdmaOnRandomSets)
{
    // The paper observes FP > RR > TDMA. TDMA's bound (Eq. (9)) is pointwise
    // at least RR's (Eq. (8)) for equal slot size... not in general, but FP
    // vs TDMA holds on these workloads; use it as a smoke property.
    util::Rng rng(777);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);
    const PlatformConfig platform = default_platform(2, 64);

    int fp_count = 0;
    int tdma_count = 0;
    for (const double u : {0.2, 0.35, 0.5}) {
        gen.per_core_utilization = u;
        for (int repeat = 0; repeat < 10; ++repeat) {
            util::Rng child = rng.fork();
            const tasks::TaskSet ts =
                benchdata::generate_task_set(child, gen, pool);
            const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
            AnalysisConfig fp;
            fp.policy = BusPolicy::kFixedPriority;
            AnalysisConfig tdma;
            tdma.policy = BusPolicy::kTdma;
            fp_count += is_schedulable(ts, platform, fp, tables) ? 1 : 0;
            tdma_count += is_schedulable(ts, platform, tdma, tables) ? 1 : 0;
        }
    }
    EXPECT_GE(fp_count, tdma_count);
}

} // namespace
} // namespace cpa::analysis
