// Closed integer intervals over the util::Quantity strong types — the
// abstract domain of `cpa verify`. All quantities in the analysis equations
// are 64-bit integers, so addition/subtraction/multiplication of interval
// endpoints is exact; the only rounding happens in the division wrappers,
// which take the hull over the corner evaluations of util::ceil_div /
// floor_div / accesses_covering. Integer division is monotone in each
// argument separately (non-decreasing in the dividend, and monotone in the
// divisor on either sign of the dividend), so the corner hull is the exact
// range, i.e. outward rounding never loses a representable point.
#pragma once

#include "util/math.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace cpa::verify {

template <typename T>
struct Interval {
    T lo{};
    T hi{};

    constexpr Interval() = default;
    constexpr Interval(T low, T high) : lo(low), hi(high)
    {
        if (hi < lo) {
            throw std::invalid_argument("verify::Interval: inverted bounds");
        }
    }

    [[nodiscard]] static constexpr Interval point(T value)
    {
        return Interval(value, value);
    }

    [[nodiscard]] constexpr bool is_point() const { return lo == hi; }

    [[nodiscard]] constexpr bool contains(T value) const
    {
        return lo <= value && value <= hi;
    }

    [[nodiscard]] constexpr bool contains(const Interval& other) const
    {
        return lo <= other.lo && other.hi <= hi;
    }

    friend constexpr bool operator==(const Interval&,
                                     const Interval&) = default;
};

using ICount = Interval<std::int64_t>;
using ICycles = Interval<util::Cycles>;
using IAccess = Interval<util::AccessCount>;

// -- exact endpoint arithmetic ---------------------------------------------

template <typename T>
[[nodiscard]] constexpr Interval<T> operator+(const Interval<T>& a,
                                              const Interval<T>& b)
{
    return {a.lo + b.lo, a.hi + b.hi};
}

template <typename T>
[[nodiscard]] constexpr Interval<T> operator-(const Interval<T>& a,
                                              const Interval<T>& b)
{
    return {a.lo - b.hi, a.hi - b.lo};
}

// Corner-hull product. Covers scalar*Quantity and the AccessCount*Cycles
// cross-dimension product from units.hpp; with possibly-negative operands
// the four corners bound every pointwise product.
template <typename A, typename B>
[[nodiscard]] constexpr auto mul(const Interval<A>& a, const Interval<B>& b)
    -> Interval<decltype(a.lo * b.lo)>
{
    const auto c1 = a.lo * b.lo;
    const auto c2 = a.lo * b.hi;
    const auto c3 = a.hi * b.lo;
    const auto c4 = a.hi * b.hi;
    return {std::min({c1, c2, c3, c4}), std::max({c1, c2, c3, c4})};
}

// Pointwise min/max are monotone non-decreasing in both arguments, so the
// elementwise endpoints are the exact hull.
template <typename T>
[[nodiscard]] constexpr Interval<T> min(const Interval<T>& a,
                                        const Interval<T>& b)
{
    return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

template <typename T>
[[nodiscard]] constexpr Interval<T> max(const Interval<T>& a,
                                        const Interval<T>& b)
{
    return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

template <typename T>
[[nodiscard]] constexpr Interval<T> hull(const Interval<T>& a,
                                         const Interval<T>& b)
{
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

template <typename T>
[[nodiscard]] constexpr Interval<T> clamp_non_negative(const Interval<T>& a)
{
    return {std::max(a.lo, T{0}), std::max(a.hi, T{0})};
}

// clamp(x, 0, hi) with an interval-valued upper bound: monotone
// non-decreasing in both x and hi.
template <typename T>
[[nodiscard]] constexpr Interval<T> clamp_to(const Interval<T>& x,
                                             const Interval<T>& hi)
{
    const T floor_lo = std::max(hi.lo, T{0});
    const T floor_hi = std::max(hi.hi, T{0});
    return {std::clamp(x.lo, T{0}, floor_lo),
            std::clamp(x.hi, T{0}, floor_hi)};
}

// -- outward-rounded division ----------------------------------------------

// util::ceil_div requires a non-negative dividend and positive divisor;
// within that domain it is non-decreasing in the dividend and
// non-increasing in the divisor, so the two extreme corners are exact.
template <typename T>
[[nodiscard]] constexpr ICount ceil_div(const Interval<T>& a,
                                        const Interval<T>& b)
{
    return {util::ceil_div(a.lo, b.hi), util::ceil_div(a.hi, b.lo)};
}

// floor_div admits negative dividends; the divisor monotonicity flips with
// the dividend sign, so take the hull over all four corners.
template <typename T>
[[nodiscard]] constexpr ICount floor_div(const Interval<T>& a,
                                         const Interval<T>& b)
{
    const std::int64_t c1 = util::floor_div(a.lo, b.lo);
    const std::int64_t c2 = util::floor_div(a.lo, b.hi);
    const std::int64_t c3 = util::floor_div(a.hi, b.lo);
    const std::int64_t c4 = util::floor_div(a.hi, b.hi);
    return {std::min({c1, c2, c3, c4}), std::max({c1, c2, c3, c4})};
}

// Interval lift of util::accesses_covering (signed ceiling division of a
// cycle span by d_mem); same four-corner hull as floor_div.
[[nodiscard]] inline IAccess accesses_covering(const ICycles& span,
                                               const ICycles& d_mem)
{
    const util::AccessCount c1 = util::accesses_covering(span.lo, d_mem.lo);
    const util::AccessCount c2 = util::accesses_covering(span.lo, d_mem.hi);
    const util::AccessCount c3 = util::accesses_covering(span.hi, d_mem.lo);
    const util::AccessCount c4 = util::accesses_covering(span.hi, d_mem.hi);
    return {std::min({c1, c2, c3, c4}), std::max({c1, c2, c3, c4})};
}

// -- monotone-function evaluation rule -------------------------------------

// For a map that is non-decreasing in every argument, the lo/hi corner
// evaluations give the exact hull over the box. This is how M̂D_i(n) and
// ρ̂ are lifted without splitting their min/product structure apart.
template <typename F, typename... T>
[[nodiscard]] constexpr auto monotone_hull(F&& f, const Interval<T>&... args)
{
    using R = decltype(f(args.lo...));
    return Interval<R>(f(args.lo...), f(args.hi...));
}

} // namespace cpa::verify
