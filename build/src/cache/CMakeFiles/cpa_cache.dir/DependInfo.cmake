
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/direct_mapped.cpp" "src/cache/CMakeFiles/cpa_cache.dir/direct_mapped.cpp.o" "gcc" "src/cache/CMakeFiles/cpa_cache.dir/direct_mapped.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/cache/CMakeFiles/cpa_cache.dir/lru.cpp.o" "gcc" "src/cache/CMakeFiles/cpa_cache.dir/lru.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
