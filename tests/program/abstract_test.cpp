#include "program/abstract.hpp"

#include "cache/direct_mapped.hpp"
#include "program/extract.hpp"
#include "program/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cpa::program {
namespace {

const cache::CacheGeometry kGeo8{8, 32, 1};
const cache::CacheGeometry kGeo256{256, 32, 1};

// Counts the misses of one concrete trace from a cold (or PCB-warm) cache.
util::AccessCount concrete_misses(const Program& p,
                                  const cache::CacheGeometry& geo,
                                  const BranchSelector& selector,
                                  bool preload_pcbs = false)
{
    cache::DirectMappedCache cache({geo.sets, geo.block_bytes});
    if (preload_pcbs) {
        std::map<std::size_t, std::size_t> per_set;
        for (const std::size_t b : p.distinct_blocks()) {
            per_set[geo.set_of(b)] += 1;
        }
        for (const std::size_t b : p.distinct_blocks()) {
            if (per_set[geo.set_of(b)] == 1) {
                cache.preload(b);
            }
        }
    }
    util::AccessCount misses{0};
    for (const std::size_t block : p.reference_trace(selector)) {
        if (!cache.access(block)) {
            misses += util::AccessCount{1};
        }
    }
    return misses;
}

TEST(AbstractAnalysis, RejectsAssociativeGeometry)
{
    ProgramBuilder b("p");
    b.straight(0, 2);
    const Program p = std::move(b).build();
    EXPECT_THROW((void)analyze_program(p, {8, 32, 2}), std::invalid_argument);
}

TEST(AbstractAnalysis, MatchesTraceExtractionOnSyntheticSuite)
{
    // On alternative-free programs the must analysis should lose nothing:
    // every classification coincides with the exact trace simulation.
    for (const Program& p : synthetic_suite()) {
        for (const std::size_t sets : {64u, 256u, 1024u}) {
            const cache::CacheGeometry geo{sets, 32, 1};
            const ExtractedParams exact = extract_parameters(p, geo);
            const AbstractExtraction bound = analyze_program(p, geo);
            EXPECT_EQ(bound.md, exact.md) << p.name() << " @" << sets;
            EXPECT_EQ(bound.md_residual, exact.md_residual)
                << p.name() << " @" << sets;
            EXPECT_EQ(bound.pd, exact.pd) << p.name() << " @" << sets;
            EXPECT_TRUE(bound.ecb == exact.ecb) << p.name();
            EXPECT_TRUE(bound.pcb == exact.pcb) << p.name();
            // UCB is a conservative superset of the trace classification.
            EXPECT_TRUE(exact.ucb.is_subset_of(bound.ucb)) << p.name();
        }
    }
}

Program branchy_program()
{
    // init; loop { if (...) stage A else stage B }; epilogue — stage A and
    // stage B alias in an 8-set cache.
    ProgramBuilder b("branchy");
    b.straight(0, 2);
    b.begin_loop(6);
    b.begin_alternative();
    b.straight(2, 4); // blocks 2..5
    b.next_branch();
    b.straight(10, 4); // blocks 10..13 -> sets 2..5 (alias)
    b.end_alternative();
    b.end_loop();
    b.straight(6, 2);
    return std::move(b).build();
}

TEST(AbstractAnalysis, BoundsEveryBranchResolution)
{
    const Program p = branchy_program();
    const AbstractExtraction bound = analyze_program(p, kGeo8);

    // Enumerate resolutions: always-A, always-B, alternating both phases,
    // and a pseudo-random pattern.
    std::size_t call = 0;
    const std::vector<BranchSelector> selectors = {
        [](std::size_t) { return 0u; },
        [](std::size_t) { return 1u; },
        [&call](std::size_t) { return call++ % 2; },
        [&call](std::size_t) { return (call++ % 3) == 0 ? 1u : 0u; },
    };
    for (std::size_t s = 0; s < selectors.size(); ++s) {
        call = 0;
        const util::AccessCount cold =
            concrete_misses(p, kGeo8, selectors[s]);
        call = 0;
        const util::AccessCount warm =
            concrete_misses(p, kGeo8, selectors[s], true);
        EXPECT_GE(bound.md, cold) << "selector " << s;
        EXPECT_GE(bound.md_residual, warm) << "selector " << s;
    }
}

TEST(AbstractAnalysis, AlternatingBranchesForceConservativeLoopBound)
{
    // Worst resolution alternates branches: every iteration misses all 4
    // blocks (aliasing). Abstract bound must cover it: 2 (init) + 6*4 + 2.
    const Program p = branchy_program();
    const AbstractExtraction bound = analyze_program(p, kGeo8);
    EXPECT_GE(bound.md, util::AccessCount{2 + 6 * 4 + 2});
}

TEST(AbstractAnalysis, PdTakesTheLongestBranch)
{
    ProgramBuilder b("pd");
    b.begin_alternative();
    b.straight(0, 3);
    b.next_branch();
    b.straight(10, 7);
    b.end_alternative();
    const Program p = std::move(b).build();
    const AbstractExtraction bound = analyze_program(p, {64, 32, 1});
    EXPECT_EQ(bound.pd, 7 * p.cycles_per_fetch());
}

TEST(AbstractAnalysis, EcbCoversAllBranches)
{
    const Program p = branchy_program();
    const AbstractExtraction bound = analyze_program(p, {64, 32, 1});
    // Blocks 0..7 and 10..13 -> 12 distinct sets at 64 sets.
    EXPECT_EQ(bound.ecb.popcount(), 12u);
    // All sets single-occupancy at 64 sets -> everything persistent.
    EXPECT_EQ(bound.pcb.popcount(), 12u);
}

TEST(AbstractAnalysis, LoopInvariantStateKeepsPersistentHits)
{
    // A loop whose body fits without conflicts: first iteration cold-misses,
    // every later iteration hits everything.
    ProgramBuilder b("stable_loop");
    b.begin_loop(50);
    b.straight(0, 6);
    b.end_loop();
    const Program p = std::move(b).build();
    const AbstractExtraction bound = analyze_program(p, kGeo8);
    EXPECT_EQ(bound.md, util::AccessCount{6});
    EXPECT_EQ(bound.md_residual, util::AccessCount{0}); // all six blocks are PCBs
}

TEST(AbstractAnalysis, SelfConflictingLoopChargedEveryIteration)
{
    ProgramBuilder b("conflict_loop");
    b.begin_loop(10);
    b.blocks({0, 8}); // alias in 8 sets
    b.end_loop();
    const Program p = std::move(b).build();
    const AbstractExtraction bound = analyze_program(p, kGeo8);
    EXPECT_EQ(bound.md, util::AccessCount{20});
    EXPECT_EQ(bound.pcb.popcount(), 0u);
}

TEST(AbstractAnalysis, ZeroIterationLoopContributesNothing)
{
    ProgramBuilder b("zero");
    b.begin_loop(0);
    b.straight(0, 4);
    b.end_loop();
    const Program p = std::move(b).build();
    const AbstractExtraction bound = analyze_program(p, kGeo8);
    EXPECT_EQ(bound.md, util::AccessCount{0});
    EXPECT_EQ(bound.pd, util::Cycles{0});
}

TEST(AbstractAnalysis, NestedBranchInLoopStaysSound)
{
    ProgramBuilder b("nested");
    b.begin_loop(4);
    b.straight(0, 2);
    b.begin_alternative();
    b.begin_loop(3);
    b.blocks({2, 3});
    b.end_loop();
    b.next_branch();
    b.blocks({11}); // aliases block 3 in 8 sets
    b.end_alternative();
    b.end_loop();
    const Program p = std::move(b).build();
    const AbstractExtraction bound = analyze_program(p, kGeo8);

    std::size_t call = 0;
    for (int pattern = 0; pattern < 4; ++pattern) {
        call = 0;
        const BranchSelector sel = [&call, pattern](std::size_t) {
            return static_cast<std::size_t>((static_cast<int>(call++) >>
                                             (pattern % 2)) &
                                            1);
        };
        EXPECT_GE(bound.md, concrete_misses(p, kGeo8, sel))
            << "pattern " << pattern;
    }
}

TEST(AbstractAnalysis, SharedProcedureReusedAcrossCallSites)
{
    // Two call sites of the same helper: the second call must-hit the
    // helper's blocks (still resident), so the miss bound counts them once.
    ProgramBuilder b("two_calls");
    b.begin_procedure("helper");
    b.straight(4, 3);
    b.end_procedure();
    b.blocks({0});
    b.call("helper");
    b.blocks({1});
    b.call("helper");
    const Program p = std::move(b).build();

    const AbstractExtraction bound = analyze_program(p, kGeo8);
    EXPECT_EQ(bound.md, util::AccessCount{5}); // blocks 0, 1, 4, 5, 6 — each once
    // And the abstract bound matches the exact trace extraction.
    const ExtractedParams exact = extract_parameters(p, kGeo8);
    EXPECT_EQ(bound.md, exact.md);
    EXPECT_EQ(bound.pd, exact.pd);
    // The helper's blocks are reused -> useful.
    for (const std::size_t set : {4u, 5u, 6u}) {
        EXPECT_TRUE(bound.ucb.contains(set)) << set;
    }
}

TEST(AbstractAnalysis, ProcedureCalledFromBothBranchesStaysSound)
{
    // The helper executes on EITHER branch; the must-join keeps its blocks
    // (present on both paths), so post-alternative reuse still hits.
    ProgramBuilder b("branch_calls");
    b.begin_procedure("helper");
    b.blocks({4, 5});
    b.end_procedure();
    b.begin_alternative();
    b.blocks({0});
    b.call("helper");
    b.next_branch();
    b.blocks({1});
    b.call("helper");
    b.end_alternative();
    b.call("helper"); // must-hit regardless of the branch taken
    const Program p = std::move(b).build();

    const AbstractExtraction bound = analyze_program(p, kGeo8);
    // Worst branch misses: 1 (own block) + 2 (helper) = 3; the trailing
    // call hits both helper blocks.
    EXPECT_EQ(bound.md, util::AccessCount{3});
    for (const auto& selector :
         {BranchSelector{[](std::size_t) { return 0u; }},
          BranchSelector{[](std::size_t) { return 1u; }}}) {
        EXPECT_GE(bound.md, concrete_misses(p, kGeo8, selector));
    }
}

TEST(AbstractAnalysis, ResidualNeverExceedsCold)
{
    for (const Program& p : synthetic_suite()) {
        const AbstractExtraction bound = analyze_program(p, kGeo256);
        EXPECT_LE(bound.md_residual, bound.md) << p.name();
    }
    const AbstractExtraction branchy =
        analyze_program(branchy_program(), kGeo8);
    EXPECT_LE(branchy.md_residual, branchy.md);
}

} // namespace
} // namespace cpa::program
