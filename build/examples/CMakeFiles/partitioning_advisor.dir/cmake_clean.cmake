file(REMOVE_RECURSE
  "CMakeFiles/partitioning_advisor.dir/partitioning_advisor.cpp.o"
  "CMakeFiles/partitioning_advisor.dir/partitioning_advisor.cpp.o.d"
  "partitioning_advisor"
  "partitioning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
