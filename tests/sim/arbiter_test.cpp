#include "sim/arbiter.hpp"

#include <gtest/gtest.h>

namespace cpa::sim {
namespace {

using analysis::BusPolicy;
using util::Cycles;
using namespace util::literals;

TEST(BusArbiter, RejectsBadConfiguration)
{
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 0, Cycles{10}, 2),
                 std::invalid_argument);
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 2, Cycles{0}, 2),
                 std::invalid_argument);
    EXPECT_THROW(BusArbiter(BusPolicy::kFixedPriority, 2, Cycles{10}, 0),
                 std::invalid_argument);
}

TEST(BusArbiter, PerfectServesImmediately)
{
    BusArbiter arbiter(BusPolicy::kPerfect, 2, Cycles{10}, 2);
    EXPECT_EQ(arbiter.request(CoreId{0}, TaskId{5}, 100_cy), 110_cy);
    EXPECT_EQ(arbiter.request(CoreId{1}, TaskId{7}, 100_cy), 110_cy); // no contention
}

TEST(BusArbiter, FpIdleBusGrantsImmediately)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 2, Cycles{10}, 2);
    EXPECT_EQ(arbiter.request(CoreId{0}, TaskId{5}, 0_cy), 10_cy);
}

TEST(BusArbiter, FpQueuesWhenBusyAndPicksHighestPriority)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 3, Cycles{10}, 2);
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{9}, 0_cy), 10_cy);
    EXPECT_EQ(arbiter.request(CoreId{1}, TaskId{5}, 2_cy), std::nullopt); // queued
    EXPECT_EQ(arbiter.request(CoreId{2}, TaskId{3}, 4_cy), std::nullopt); // queued, higher
    const auto grant = arbiter.complete(CoreId{0}, 10_cy);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, CoreId{2}); // priority 3 beats 5
    EXPECT_EQ(grant->second, 20_cy);
    const auto grant2 = arbiter.complete(CoreId{2}, 20_cy);
    ASSERT_TRUE(grant2.has_value());
    EXPECT_EQ(grant2->first, CoreId{1});
}

TEST(BusArbiter, FpRejectsDoubleRequest)
{
    BusArbiter arbiter(BusPolicy::kFixedPriority, 2, Cycles{10}, 2);
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 0_cy), 10_cy);
    ASSERT_EQ(arbiter.request(CoreId{1}, TaskId{2}, 0_cy), std::nullopt);
    EXPECT_THROW((void)arbiter.request(CoreId{1}, TaskId{2}, 1_cy), std::logic_error);
}

TEST(BusArbiter, RoundRobinHonorsSlotBudget)
{
    // slot_size = 2: core 0 gets two back-to-back grants while core 1
    // waits, then the turn passes.
    BusArbiter arbiter(BusPolicy::kRoundRobin, 2, Cycles{10}, 2);
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 0_cy), 10_cy); // turn: core0, used 1
    ASSERT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 1_cy), std::nullopt);
    // Core 0 finishes and immediately requests again.
    auto grant = arbiter.complete(CoreId{0}, 10_cy);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, CoreId{1}); // core0 has nothing pending -> turn passes
    // Queue another core-0 request while core 1 is in service.
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 12_cy), std::nullopt);
    grant = arbiter.complete(CoreId{1}, 20_cy);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, CoreId{0});
}

TEST(BusArbiter, RoundRobinConsecutiveGrantsCapThenRotate)
{
    BusArbiter arbiter(BusPolicy::kRoundRobin, 2, Cycles{10}, 2);
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 0_cy), 10_cy); // used = 1
    ASSERT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 0_cy), std::nullopt);
    // Re-request from core 0 before completion (not allowed: one
    // outstanding per core) — so emulate: complete, core0 requests again
    // instantly; it still has a slot left in its turn.
    auto grant = arbiter.complete(CoreId{0}, 10_cy);
    ASSERT_TRUE(grant.has_value()); // grant goes to... core0 has nothing
    EXPECT_EQ(grant->first, CoreId{1});
    (void)arbiter.complete(CoreId{1}, 20_cy);

    // Fresh round: both queue while busy with core 0.
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 30_cy), 40_cy); // new turn for core 0, used 1
    ASSERT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 31_cy), std::nullopt);
    grant = arbiter.complete(CoreId{0}, 40_cy);
    ASSERT_TRUE(grant.has_value());
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 41_cy), std::nullopt);
    // Core 0 already used 1 of 2; when core 1's access finishes the
    // pending core-0 request is served... rotation state decides; what we
    // require is that NOBODY starves:
    grant = arbiter.complete(grant->first, grant->second);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->first, CoreId{0});
}

TEST(BusArbiter, TdmaTokenRotation)
{
    // 2 cores, slot 1, d_mem 10: core 0 owns [0,10), [20,30)...; core 1
    // owns [10,20), [30,40)...
    BusArbiter arbiter(BusPolicy::kTdma, 2, Cycles{10}, 1);
    EXPECT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 0_cy), 10_cy);    // own token right now
    EXPECT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 0_cy), 20_cy);    // waits for [10,20)
    // Mid-token start is allowed:
    BusArbiter arbiter2(BusPolicy::kTdma, 2, Cycles{10}, 1);
    EXPECT_EQ(arbiter2.request(CoreId{0}, TaskId{1}, 5_cy), 15_cy);   // starts at 5 within token
    // Just after the token: wait for the next one.
    BusArbiter arbiter3(BusPolicy::kTdma, 2, Cycles{10}, 1);
    EXPECT_EQ(arbiter3.request(CoreId{0}, TaskId{1}, 10_cy), 30_cy);  // next own token at 20
}

TEST(BusArbiter, TdmaSlotSizeGroupsSlots)
{
    // slot_size 2: core 0 owns [0,20), core 1 [20,40), cycle 40.
    BusArbiter arbiter(BusPolicy::kTdma, 2, Cycles{10}, 2);
    EXPECT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 0_cy), 30_cy);  // waits for 20
    EXPECT_EQ(arbiter.request(CoreId{0}, TaskId{1}, 15_cy), 25_cy); // mid-token start
}

TEST(BusArbiter, TdmaIgnoresComplete)
{
    BusArbiter arbiter(BusPolicy::kTdma, 2, Cycles{10}, 1);
    (void)arbiter.request(CoreId{0}, TaskId{1}, 0_cy);
    EXPECT_EQ(arbiter.complete(CoreId{0}, 10_cy), std::nullopt);
}

TEST(BusArbiter, WorstCaseFpWaitIsBoundedByAllOthers)
{
    // 4 cores: core 3's request waits for the in-flight access plus all
    // higher-priority pending ones: <= 4 * d_mem total.
    BusArbiter arbiter(BusPolicy::kFixedPriority, 4, Cycles{10}, 1);
    ASSERT_EQ(arbiter.request(CoreId{0}, TaskId{9}, 0_cy), 10_cy);
    ASSERT_EQ(arbiter.request(CoreId{1}, TaskId{1}, 1_cy), std::nullopt);
    ASSERT_EQ(arbiter.request(CoreId{2}, TaskId{2}, 2_cy), std::nullopt);
    ASSERT_EQ(arbiter.request(CoreId{3}, TaskId{8}, 3_cy), std::nullopt);
    Cycles t{10};
    CoreId served_core{0};
    for (int i = 0; i < 3; ++i) {
        const auto grant = arbiter.complete(served_core, t);
        ASSERT_TRUE(grant.has_value());
        served_core = grant->first;
        t = grant->second;
    }
    EXPECT_EQ(served_core, CoreId{3}); // served last
    EXPECT_LE(t, 40_cy);
}

} // namespace
} // namespace cpa::sim
