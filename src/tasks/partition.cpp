#include "tasks/partition.hpp"

#include "util/set_mask.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cpa::tasks {

std::string to_string(PartitionHeuristic heuristic)
{
    switch (heuristic) {
    case PartitionHeuristic::kFirstFit:
        return "first-fit";
    case PartitionHeuristic::kWorstFit:
        return "worst-fit";
    case PartitionHeuristic::kCacheAware:
        return "cache-aware";
    }
    return "unknown";
}

namespace {

double load_of(const Task& task, util::Cycles d_mem)
{
    return util::to_double(task.isolated_demand(d_mem)) /
           util::to_double(task.period);
}

// Cores whose load is within `slack` of the minimum: the candidate set the
// cache-aware rule may choose from without unbalancing the system.
std::vector<std::size_t> near_least_loaded(const std::vector<double>& loads,
                                           double slack)
{
    const double min_load = *std::min_element(loads.begin(), loads.end());
    std::vector<std::size_t> candidates;
    for (std::size_t c = 0; c < loads.size(); ++c) {
        if (loads[c] <= min_load + slack) {
            candidates.push_back(c);
        }
    }
    return candidates;
}

} // namespace

void partition_tasks(std::vector<Task>& tasks, std::size_t num_cores,
                     PartitionHeuristic heuristic, util::Cycles d_mem)
{
    if (num_cores == 0) {
        throw std::invalid_argument("partition_tasks: need at least one core");
    }
    if (tasks.empty()) {
        return;
    }
    const std::size_t universe = tasks.front().ecb.universe();

    // Order of consideration: decreasing load (the bin-packing convention).
    std::vector<std::size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return load_of(tasks[a], d_mem) >
                                load_of(tasks[b], d_mem);
                     });

    std::vector<double> loads(num_cores, 0.0);
    std::vector<util::SetMask> footprints(num_cores,
                                          util::SetMask(universe));

    for (const std::size_t t : order) {
        const double load = load_of(tasks[t], d_mem);
        std::size_t chosen = 0;

        switch (heuristic) {
        case PartitionHeuristic::kFirstFit: {
            bool placed = false;
            for (std::size_t c = 0; c < num_cores; ++c) {
                if (loads[c] + load <= 1.0) {
                    chosen = c;
                    placed = true;
                    break;
                }
            }
            if (!placed) {
                chosen = static_cast<std::size_t>(
                    std::min_element(loads.begin(), loads.end()) -
                    loads.begin());
            }
            break;
        }
        case PartitionHeuristic::kWorstFit:
            chosen = static_cast<std::size_t>(
                std::min_element(loads.begin(), loads.end()) - loads.begin());
            break;
        case PartitionHeuristic::kCacheAware: {
            std::size_t best_overlap =
                std::numeric_limits<std::size_t>::max();
            for (const std::size_t c : near_least_loaded(loads, 0.1)) {
                const std::size_t overlap =
                    tasks[t].ecb.intersection_count(footprints[c]);
                if (overlap < best_overlap ||
                    (overlap == best_overlap &&
                     loads[c] < loads[chosen])) {
                    best_overlap = overlap;
                    chosen = c;
                }
            }
            break;
        }
        }

        tasks[t].core = chosen;
        loads[chosen] += load;
        footprints[chosen] |= tasks[t].ecb;
    }
}

std::size_t same_core_overlap(const std::vector<Task>& tasks,
                              std::size_t num_cores)
{
    std::size_t total = 0;
    for (std::size_t a = 0; a < tasks.size(); ++a) {
        for (std::size_t b = a + 1; b < tasks.size(); ++b) {
            if (tasks[a].core == tasks[b].core &&
                tasks[a].core < num_cores) {
                total += tasks[a].ecb.intersection_count(tasks[b].ecb);
            }
        }
    }
    return total;
}

} // namespace cpa::tasks
