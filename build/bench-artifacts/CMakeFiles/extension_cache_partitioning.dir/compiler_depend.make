# Empty compiler generated dependencies file for extension_cache_partitioning.
# This may be replaced when dependencies are built.
