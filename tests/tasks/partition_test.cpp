#include "tasks/partition.hpp"

#include "helpers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cpa::tasks {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;

// Tasks with given loads (pd over period 100, no memory) and ECB ranges.
std::vector<Task> demo_tasks(
    const std::vector<std::pair<std::int64_t, std::vector<std::size_t>>>&
        specs)
{
    std::vector<Task> tasks;
    for (const auto& [pd, ecb] : specs) {
        Task task;
        // Two steps to dodge GCC 12's -Wrestrict false positive on
        // operator+(const char*, std::string&&).
        task.name = "t";
        task.name += std::to_string(tasks.size());
        task.pd = util::Cycles{pd};
        task.period = util::Cycles{100};
        task.deadline = util::Cycles{100};
        task.ecb = util::SetMask::from_indices(16, ecb);
        task.ucb = util::SetMask(16);
        task.pcb = util::SetMask(16);
        tasks.push_back(std::move(task));
    }
    return tasks;
}

TEST(Partition, RejectsZeroCores)
{
    std::vector<Task> tasks = demo_tasks({{10, {}}});
    EXPECT_THROW(partition_tasks(tasks, 0, PartitionHeuristic::kWorstFit, util::Cycles{1}),
                 std::invalid_argument);
}

TEST(Partition, EmptyTaskListIsNoop)
{
    std::vector<Task> tasks;
    partition_tasks(tasks, 4, PartitionHeuristic::kWorstFit, util::Cycles{1});
    EXPECT_TRUE(tasks.empty());
}

TEST(Partition, WorstFitBalancesLoad)
{
    // Loads 60, 50, 40, 30 over two cores: worst-fit (decreasing) puts
    // 60 -> core A, 50 -> core B, 40 -> B (30 < 60? no: B has 50 < 60...
    // after 60/50: least loaded = B(50): 40 -> B = 90? min is... A=60,B=50:
    // 40 -> B (90); 30 -> A (90). Perfect balance.
    std::vector<Task> tasks =
        demo_tasks({{60, {}}, {50, {}}, {40, {}}, {30, {}}});
    partition_tasks(tasks, 2, PartitionHeuristic::kWorstFit, util::Cycles{1});
    double loads[2] = {0, 0};
    for (const Task& task : tasks) {
        ASSERT_LT(task.core, 2u);
        loads[task.core] += util::to_double(task.pd) / 100.0;
    }
    EXPECT_DOUBLE_EQ(loads[0], 0.9);
    EXPECT_DOUBLE_EQ(loads[1], 0.9);
}

TEST(Partition, FirstFitPacksGreedily)
{
    // Loads 0.6, 0.5, 0.4, 0.3: first-fit decreasing -> core0: 0.6+0.4=1.0,
    // core1: 0.5+0.3.
    std::vector<Task> tasks =
        demo_tasks({{60, {}}, {50, {}}, {40, {}}, {30, {}}});
    partition_tasks(tasks, 2, PartitionHeuristic::kFirstFit, util::Cycles{1});
    EXPECT_EQ(tasks[0].core, 0u);
    EXPECT_EQ(tasks[1].core, 1u);
    EXPECT_EQ(tasks[2].core, 0u);
    EXPECT_EQ(tasks[3].core, 1u);
}

TEST(Partition, FirstFitFallsBackWhenNothingFits)
{
    std::vector<Task> tasks = demo_tasks({{90, {}}, {90, {}}, {90, {}}});
    partition_tasks(tasks, 2, PartitionHeuristic::kFirstFit, util::Cycles{1});
    // Third task does not fit anywhere; it must still get a core.
    for (const Task& task : tasks) {
        EXPECT_LT(task.core, 2u);
    }
}

TEST(Partition, CacheAwareSeparatesOverlappingFootprints)
{
    // Two pairs of identical footprints with equal loads: cache-aware must
    // split each pair across the cores.
    std::vector<Task> tasks = demo_tasks({
        {40, {1, 2, 3}},
        {40, {1, 2, 3}},
        {40, {8, 9}},
        {40, {8, 9}},
    });
    partition_tasks(tasks, 2, PartitionHeuristic::kCacheAware, util::Cycles{1});
    EXPECT_NE(tasks[0].core, tasks[1].core);
    EXPECT_NE(tasks[2].core, tasks[3].core);
    EXPECT_EQ(same_core_overlap(tasks, 2), 0u);
}

TEST(Partition, CacheAwareBeatsWorstFitOnOverlap)
{
    std::vector<Task> tasks = demo_tasks({
        {50, {0, 1, 2, 3, 4}},
        {45, {0, 1, 2, 3}},
        {40, {10, 11, 12}},
        {35, {10, 11}},
        {30, {5, 6}},
        {25, {5, 6, 7}},
    });
    std::vector<Task> by_worst_fit = tasks;
    partition_tasks(by_worst_fit, 2, PartitionHeuristic::kWorstFit, util::Cycles{1});
    partition_tasks(tasks, 2, PartitionHeuristic::kCacheAware, util::Cycles{1});
    EXPECT_LE(same_core_overlap(tasks, 2),
              same_core_overlap(by_worst_fit, 2));
}

TEST(Partition, ToStringCoversAllHeuristics)
{
    EXPECT_EQ(to_string(PartitionHeuristic::kFirstFit), "first-fit");
    EXPECT_EQ(to_string(PartitionHeuristic::kWorstFit), "worst-fit");
    EXPECT_EQ(to_string(PartitionHeuristic::kCacheAware), "cache-aware");
}

TEST(Partition, SameCoreOverlapCountsPairs)
{
    std::vector<Task> tasks = demo_tasks({
        {10, {1, 2}},
        {10, {2, 3}},
        {10, {2, 9}},
    });
    tasks[0].core = 0;
    tasks[1].core = 0;
    tasks[2].core = 1;
    // Only the pair (0,1) shares a core; overlap |{1,2} ∩ {2,3}| = 1.
    EXPECT_EQ(same_core_overlap(tasks, 2), 1u);
}

} // namespace
} // namespace cpa::tasks
