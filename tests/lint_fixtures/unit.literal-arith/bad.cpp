// Fixture: integer-literal arithmetic on a raw representation re-creates
// an unnamed conversion factor.
#include "util/units.hpp"

#include <cstdint>

std::int64_t off_by_one(cpa::util::Cycles c)
{
    return c.count() + 1;
}
