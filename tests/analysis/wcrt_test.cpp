#include "analysis/wcrt.hpp"

#include "benchdata/generator.hpp"
#include "helpers.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using cpa::testing::make_task_set;
using cpa::testing::TaskSpec;
using namespace util::literals;

PlatformConfig small_platform(std::size_t cores, Cycles d_mem)
{
    PlatformConfig platform;
    platform.num_cores = cores;
    platform.cache_sets = 16;
    platform.d_mem = d_mem;
    platform.slot_size = 2;
    return platform;
}

AnalysisConfig fp_config(bool persistence = true)
{
    AnalysisConfig config;
    config.policy = BusPolicy::kFixedPriority;
    config.persistence_aware = persistence;
    return config;
}

TEST(Wcrt, RejectsTaskSetWiderThanPlatform)
{
    const tasks::TaskSet ts = make_task_set(
        4, 16, {{3, 10, 3, 3, 100, 0, {}, {}, {}}});
    EXPECT_THROW((void)compute_wcrt(ts, small_platform(2, 2_cy), fp_config()),
                 std::invalid_argument);
}

TEST(Wcrt, SingleTaskResponseIsIsolatedDemand)
{
    const tasks::TaskSet ts =
        make_task_set(1, 16, {{0, 10, 3, 3, 100, 0, {}, {}, {}}});
    const WcrtResult result =
        compute_wcrt(ts, small_platform(1, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);
    EXPECT_EQ(result.response[0], util::Cycles{10 + 3 * 2});
}

TEST(Wcrt, TwoTasksSameCoreClassicPreemption)
{
    // τ1: PD=4, MD=2, T=20. τ2: PD=5, MD=1, T=50. d_mem=2, no cache overlap.
    const tasks::TaskSet ts = make_task_set(1, 16,
                                            {
                                                {0, 4, 2, 2, 20, 0, {}, {}, {}},
                                                {0, 5, 1, 1, 50, 0, {}, {}, {}},
                                            });
    const WcrtResult result =
        compute_wcrt(ts, small_platform(1, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);
    // τ1 has a lower-priority task on its core, so Eq. (7) adds the +1
    // blocking access: R_1 = 4 + (2 + 1)*2 = 10.
    EXPECT_EQ(result.response[0], 10_cy);
    // R_2 = 5 + 1*4 (CPU) + (1 + 1*2) * 2 (bus, no blocking: lowest) = 15.
    EXPECT_EQ(result.response[1], 15_cy);
}

TEST(Wcrt, ReportsFirstFailingTask)
{
    const tasks::TaskSet ts = make_task_set(
        1, 16,
        {
            // τ1: R = 50 + (5 + 1 blocking)*2 = 62 <= 65.
            {0, 50, 5, 5, 100, 65, {}, {}, {}},
            // τ2: R = 50 + 50 (preemption) + 10*2 = 120 > 70.
            {0, 50, 5, 5, 100, 70, {}, {}, {}},
        });
    const WcrtResult result =
        compute_wcrt(ts, small_platform(1, 2_cy), fp_config());
    EXPECT_FALSE(result.schedulable);
    EXPECT_EQ(result.failed_task, util::TaskId{1});
    EXPECT_GT(result.response[1], ts[1].deadline);
}

TEST(Wcrt, CrossCoreContentionRaisesResponse)
{
    // Same task alone vs. with a memory-hungry task on the other core.
    const tasks::TaskSet alone =
        make_task_set(2, 16, {{0, 10, 4, 4, 200, 0, {}, {}, {}}});
    const tasks::TaskSet contended =
        make_task_set(2, 16,
                      {
                          {0, 10, 4, 4, 200, 0, {}, {}, {}},
                          {1, 10, 8, 8, 100, 0, {}, {}, {}},
                      });
    const PlatformConfig platform = small_platform(2, 3_cy);
    const WcrtResult r_alone = compute_wcrt(alone, platform, fp_config());
    const WcrtResult r_contended =
        compute_wcrt(contended, platform, fp_config());
    ASSERT_TRUE(r_alone.schedulable);
    ASSERT_TRUE(r_contended.schedulable);
    EXPECT_GT(r_contended.response[0], r_alone.response[0]);
}

TEST(Wcrt, OuterLoopConvergesOnMutualDependency)
{
    // Tasks on two cores whose BAO terms depend on each other's response
    // times; the outer loop must reach a global fixed point.
    const tasks::TaskSet ts = make_task_set(
        2, 16,
        {
            {0, 20, 5, 5, 300, 0, {1, 2}, {1, 2}, {}},
            {1, 20, 5, 5, 300, 0, {3, 4}, {3, 4}, {}},
            {0, 30, 4, 4, 400, 0, {5, 6}, {5, 6}, {}},
            {1, 30, 4, 4, 400, 0, {7, 8}, {7, 8}, {}},
        });
    const WcrtResult result =
        compute_wcrt(ts, small_platform(2, 2_cy), fp_config());
    ASSERT_TRUE(result.schedulable);
    EXPECT_GE(result.outer_iterations, 2u);
    for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_GE(result.response[i],
                  ts[i].isolated_demand(2_cy)); // at least isolation
        EXPECT_LE(result.response[i], ts[i].deadline);
    }
}

class WcrtPolicyTest : public ::testing::TestWithParam<BusPolicy> {};

TEST_P(WcrtPolicyTest, PersistenceAwareResponseNeverLarger)
{
    util::Rng rng(99);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.3;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = 10_cy;
    platform.slot_size = 2;

    for (int repeat = 0; repeat < 20; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        AnalysisConfig with = fp_config(true);
        with.policy = GetParam();
        AnalysisConfig without = fp_config(false);
        without.policy = GetParam();

        const WcrtResult r_with = compute_wcrt(ts, platform, with);
        const WcrtResult r_without = compute_wcrt(ts, platform, without);
        if (r_without.schedulable) {
            ASSERT_TRUE(r_with.schedulable) << "dominance violated";
            for (std::size_t i = 0; i < ts.size(); ++i) {
                EXPECT_LE(r_with.response[i], r_without.response[i]) << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, WcrtPolicyTest,
                         ::testing::Values(BusPolicy::kFixedPriority,
                                           BusPolicy::kRoundRobin,
                                           BusPolicy::kTdma));

TEST(Wcrt, PerfectBusResponseLowerBoundsRealPolicies)
{
    util::Rng rng(7);
    benchdata::GenerationConfig gen;
    gen.num_cores = 2;
    gen.tasks_per_core = 3;
    gen.cache_sets = 64;
    gen.per_core_utilization = 0.25;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 64);

    PlatformConfig platform;
    platform.num_cores = 2;
    platform.cache_sets = 64;
    platform.d_mem = 10_cy;
    platform.slot_size = 2;

    for (int repeat = 0; repeat < 10; ++repeat) {
        util::Rng child = rng.fork();
        const tasks::TaskSet ts =
            benchdata::generate_task_set(child, gen, pool);
        AnalysisConfig perfect = fp_config(true);
        perfect.policy = BusPolicy::kPerfect;
        const WcrtResult r_perfect = compute_wcrt(ts, platform, perfect);
        for (const BusPolicy policy :
             {BusPolicy::kFixedPriority, BusPolicy::kRoundRobin,
              BusPolicy::kTdma}) {
            AnalysisConfig config = fp_config(true);
            config.policy = policy;
            const WcrtResult r = compute_wcrt(ts, platform, config);
            if (r.schedulable && r_perfect.schedulable) {
                for (std::size_t i = 0; i < ts.size(); ++i) {
                    EXPECT_LE(r_perfect.response[i], r.response[i]);
                }
            }
        }
    }
}

} // namespace
} // namespace cpa::analysis
