file(REMOVE_RECURSE
  "CMakeFiles/bus_policy_selection.dir/bus_policy_selection.cpp.o"
  "CMakeFiles/bus_policy_selection.dir/bus_policy_selection.cpp.o.d"
  "bus_policy_selection"
  "bus_policy_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_policy_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
