#include "util/set_mask.hpp"

#include <bit>
#include <stdexcept>

namespace cpa::util {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t universe)
{
    return (universe + kWordBits - 1) / kWordBits;
}
} // namespace

SetMask::SetMask(std::size_t universe)
    : universe_(universe), words_(words_for(universe), 0)
{
}

std::size_t SetMask::popcount() const noexcept
{
    std::size_t total = 0;
    for (const std::uint64_t word : words_) {
        total += static_cast<std::size_t>(std::popcount(word));
    }
    return total;
}

bool SetMask::contains(std::size_t set_index) const
{
    if (set_index >= universe_) {
        throw std::out_of_range("SetMask::contains: index outside universe");
    }
    return (words_[set_index / kWordBits] >> (set_index % kWordBits)) & 1U;
}

void SetMask::insert(std::size_t set_index)
{
    if (set_index >= universe_) {
        throw std::out_of_range("SetMask::insert: index outside universe");
    }
    words_[set_index / kWordBits] |= std::uint64_t{1} << (set_index % kWordBits);
}

void SetMask::erase(std::size_t set_index)
{
    if (set_index >= universe_) {
        throw std::out_of_range("SetMask::erase: index outside universe");
    }
    words_[set_index / kWordBits] &=
        ~(std::uint64_t{1} << (set_index % kWordBits));
}

void SetMask::clear() noexcept
{
    for (std::uint64_t& word : words_) {
        word = 0;
    }
}

void SetMask::insert_wrapped_range(std::size_t first, std::size_t length)
{
    if (universe_ == 0) {
        if (length > 0) {
            throw std::out_of_range(
                "SetMask::insert_wrapped_range: empty universe");
        }
        return;
    }
    if (length >= universe_) {
        for (std::size_t i = 0; i < universe_; ++i) {
            insert(i);
        }
        return;
    }
    std::size_t index = first % universe_;
    for (std::size_t i = 0; i < length; ++i) {
        insert(index);
        index = (index + 1 == universe_) ? 0 : index + 1;
    }
}

void SetMask::check_same_universe(const SetMask& other) const
{
    if (universe_ != other.universe_) {
        throw std::invalid_argument("SetMask: universe size mismatch");
    }
}

SetMask& SetMask::operator|=(const SetMask& other)
{
    check_same_universe(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] |= other.words_[i];
    }
    return *this;
}

SetMask& SetMask::operator&=(const SetMask& other)
{
    check_same_universe(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] &= other.words_[i];
    }
    return *this;
}

SetMask& SetMask::operator-=(const SetMask& other)
{
    check_same_universe(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        words_[i] &= ~other.words_[i];
    }
    return *this;
}

std::size_t SetMask::intersection_count(const SetMask& other) const
{
    check_same_universe(other);
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        total += static_cast<std::size_t>(
            std::popcount(words_[i] & other.words_[i]));
    }
    return total;
}

bool SetMask::intersects(const SetMask& other) const
{
    check_same_universe(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & other.words_[i]) != 0) {
            return true;
        }
    }
    return false;
}

bool SetMask::is_subset_of(const SetMask& other) const
{
    check_same_universe(other);
    for (std::size_t i = 0; i < words_.size(); ++i) {
        if ((words_[i] & ~other.words_[i]) != 0) {
            return false;
        }
    }
    return true;
}

bool SetMask::operator==(const SetMask& other) const
{
    return universe_ == other.universe_ && words_ == other.words_;
}

std::vector<std::size_t> SetMask::to_indices() const
{
    std::vector<std::size_t> indices;
    indices.reserve(popcount());
    for (std::size_t i = 0; i < universe_; ++i) {
        if (contains(i)) {
            indices.push_back(i);
        }
    }
    return indices;
}

SetMask SetMask::rotated(std::size_t offset) const
{
    SetMask result(universe_);
    if (universe_ == 0) {
        return result;
    }
    for (std::size_t i = 0; i < universe_; ++i) {
        if (contains(i)) {
            result.insert((i + offset) % universe_);
        }
    }
    return result;
}

SetMask SetMask::from_indices(std::size_t universe,
                              const std::vector<std::size_t>& indices)
{
    SetMask mask(universe);
    for (const std::size_t index : indices) {
        mask.insert(index);
    }
    return mask;
}

} // namespace cpa::util
