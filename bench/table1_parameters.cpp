// Reproduces Table I: per-benchmark task parameters.
//
// Three sections:
//  1. The published Table I rows (embedded verbatim) next to the values our
//     region-layout model derives at the reference geometry — ECB/PCB/UCB
//     must match exactly, MD/MDʳ convert at 100 cycles/access.
//  2. The extended (calibrated) rows used by the task-set generator.
//  3. A from-scratch extraction: our static cache analysis applied to the
//     synthetic Mälardalen stand-ins, i.e., the role Heptane plays in the
//     paper, shown at 256 sets.
#include "common.hpp"

#include "benchdata/benchmark.hpp"
#include "program/extract.hpp"
#include "program/synthetic.hpp"
#include "util/table.hpp"

#include <iostream>

int main()
{
    using namespace cpa;
    using util::TextTable;
    bench::BenchReport bench_report("table1_parameters");

    const auto print_params_table = [](const std::string& title, bool only_published,
                                       bool only_extended) {
        std::cout << "== " << title << " ==\n";
        TextTable table({"Name", "PD (cyc)", "MD (acc)", "MDr (acc)", "|ECB|",
                         "|PCB|", "|UCB|"});
        for (const auto& spec : benchdata::full_benchmark_table()) {
            if ((only_published && !spec.published) ||
                (only_extended && spec.published)) {
                continue;
            }
            const auto params = benchdata::derive_params(
                spec, benchdata::kReferenceCacheSets);
            table.add_row({params.name, util::to_string(params.pd),
                           util::to_string(params.md),
                           util::to_string(params.md_residual),
                           std::to_string(params.ecb_count),
                           std::to_string(params.pcb_count),
                           std::to_string(params.ucb_count)});
        }
        table.print(std::cout);
        std::cout << '\n';
    };

    bench_report.section("table-rows");
    print_params_table(
        "Table I (published rows; MD/MDr converted to accesses at 10 "
        "cycles/access)",
        true, false);
    print_params_table("Extended suite (calibrated rows, see DESIGN.md)",
                       false, true);

    bench_report.section("extraction");
    std::cout << "== From-scratch extraction: static cache analysis of the "
                 "synthetic suite (Table I + extended stand-ins) @256 sets "
                 "==\n";
    TextTable extraction({"Name", "PD (cyc)", "MD (acc)", "MDr (acc)",
                          "|ECB|", "|PCB|", "|UCB|", "maxUCB@pt"});
    for (const auto& program : program::synthetic_suite_extended()) {
        const auto params =
            program::extract_parameters(program, {256, 32});
        extraction.add_row({params.name, util::to_string(params.pd),
                            util::to_string(params.md),
                            util::to_string(params.md_residual),
                            std::to_string(params.ecb.popcount()),
                            std::to_string(params.pcb.popcount()),
                            std::to_string(params.ucb.popcount()),
                            std::to_string(params.ucb_max_point)});
    }
    extraction.print(std::cout);

    bench_report.section("cache-scaling");
    std::cout << "\n== Extraction vs cache size (mechanism of Fig. 3c: PCBs "
                 "grow with the cache) ==\n";
    TextTable scaling({"Name", "sets", "MD", "MDr", "|ECB|", "|PCB|"});
    for (const auto& program : program::synthetic_suite()) {
        for (const std::size_t sets : {64u, 256u, 1024u}) {
            const auto params =
                program::extract_parameters(program, {sets, 32});
            scaling.add_row({params.name, std::to_string(sets),
                             util::to_string(params.md),
                             util::to_string(params.md_residual),
                             std::to_string(params.ecb.popcount()),
                             std::to_string(params.pcb.popcount())});
        }
    }
    scaling.print(std::cout);
    return 0;
}
