// Differential tests: the optimized implementations (incremental prefix
// unions, running maxima, shared tables) must agree with naive, literal
// transcriptions of the paper's equations on random task sets.
#include "analysis/bus_bounds.hpp"
#include "analysis/demand.hpp"
#include "analysis/interference.hpp"
#include "benchdata/generator.hpp"
#include "util/math.hpp"

#include <gtest/gtest.h>

namespace cpa::analysis {
namespace {

using util::SetMask;

// Literal Eq. (2): γ_{i,j} = max_{g ∈ Γ_core(j) ∩ aff(i,j)}
//                  |UCB_g ∩ ∪_{h ∈ Γ_core(j) ∩ hep(j)} ECB_h|.
util::AccessCount naive_gamma(const tasks::TaskSet& ts, std::size_t i,
                              std::size_t j)
{
    const std::size_t core = ts[j].core;
    SetMask evicting(ts.cache_sets());
    for (std::size_t h = 0; h <= j; ++h) {
        if (ts[h].core == core) {
            evicting |= ts[h].ecb;
        }
    }
    util::AccessCount best{0};
    bool any = false;
    for (std::size_t g = j + 1; g <= i && g < ts.size(); ++g) {
        if (ts[g].core != core) {
            continue;
        }
        any = true;
        best = std::max(best, util::accesses_from_blocks(
                                  ts[g].ucb.intersection_count(evicting)));
    }
    return any ? best : util::AccessCount{0};
}

// Literal Eq. (14) overlap: |PCB_j ∩ ∪_{s ∈ Γ_core(j) ∩ hep(i) \ {j}} ECB_s|.
util::AccessCount naive_cpro_overlap(const tasks::TaskSet& ts,
                                     std::size_t j, std::size_t i)
{
    const std::size_t core = ts[j].core;
    SetMask evictors(ts.cache_sets());
    for (std::size_t s = 0; s <= i && s < ts.size(); ++s) {
        if (s != j && ts[s].core == core) {
            evictors |= ts[s].ecb;
        }
    }
    return util::accesses_from_blocks(ts[j].pcb.intersection_count(evictors));
}

// Literal Lemma 1 (Eq. (16)).
util::AccessCount naive_bas_hat(const tasks::TaskSet& ts, std::size_t i,
                                util::Cycles t)
{
    util::AccessCount total = ts[i].md;
    for (std::size_t j = 0; j < i; ++j) {
        if (ts[j].core != ts[i].core) {
            continue;
        }
        const std::int64_t jobs =
            util::ceil_div(t + ts[j].jitter, ts[j].period);
        const util::AccessCount rho =
            jobs <= 1 ? util::AccessCount{0}
                      : (jobs - 1) * naive_cpro_overlap(ts, j, i);
        total += std::min(jobs * ts[j].md, md_hat(ts[j], jobs) + rho) +
                 jobs * naive_gamma(ts, i, j);
    }
    return total;
}

tasks::TaskSet random_set(std::uint64_t seed, double utilization)
{
    util::Rng rng(seed);
    benchdata::GenerationConfig gen;
    gen.num_cores = 3;
    gen.tasks_per_core = 4;
    gen.cache_sets = 128;
    gen.per_core_utilization = utilization;
    const auto pool =
        benchdata::derive_all(benchdata::full_benchmark_table(), 128);
    return benchdata::generate_task_set(rng, gen, pool);
}

TEST(Differential, GammaTableMatchesNaiveEq2)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const tasks::TaskSet ts = random_set(seed, 0.3);
        const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
        for (std::size_t i = 0; i < ts.size(); ++i) {
            for (std::size_t j = 0; j < ts.size(); ++j) {
                if (j >= i) {
                    continue; // table is only defined for hp preempters
                }
                EXPECT_EQ(tables.gamma(i, j), naive_gamma(ts, i, j))
                    << "seed=" << seed << " i=" << i << " j=" << j;
            }
        }
    }
}

TEST(Differential, CproTableMatchesNaiveEq14)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const tasks::TaskSet ts = random_set(seed, 0.3);
        const InterferenceTables tables(ts, CrpdMethod::kEcbUnion);
        for (std::size_t j = 0; j < ts.size(); ++j) {
            for (std::size_t i = 0; i < ts.size(); ++i) {
                EXPECT_EQ(tables.cpro_overlap(j, i),
                          naive_cpro_overlap(ts, j, i))
                    << "seed=" << seed << " j=" << j << " i=" << i;
            }
        }
    }
}

TEST(Differential, BasHatMatchesNaiveLemma1)
{
    PlatformConfig platform;
    platform.num_cores = 3;
    platform.cache_sets = 128;
    platform.d_mem = util::Cycles{10};
    AnalysisConfig config;
    config.persistence_aware = true;

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const tasks::TaskSet ts = random_set(seed, 0.3);
        const InterferenceTables tables(ts, config.crpd);
        const BusContentionAnalysis bounds(ts, platform, config, tables);
        for (std::size_t i = 0; i < ts.size(); ++i) {
            for (const util::Cycles t :
                 {util::Cycles{0}, util::Cycles{1000}, util::Cycles{50000},
                  ts[i].period}) {
                EXPECT_EQ(bounds.bas(i, t), naive_bas_hat(ts, i, t))
                    << "seed=" << seed << " i=" << i << " t=" << t;
            }
        }
    }
}

// Literal Lemma 2: Σ over Γ_core ∩ hep(k) of Ŵ + W_cout with Eq. (5)-(6).
util::AccessCount naive_bao_hat(const tasks::TaskSet& ts,
                                const analysis::PlatformConfig& platform,
                                std::size_t core, std::size_t k,
                                util::Cycles t,
                                const std::vector<util::Cycles>& response)
{
    util::AccessCount total{0};
    for (std::size_t l = 0; l <= k && l < ts.size(); ++l) {
        if (ts[l].core != core) {
            continue;
        }
        const util::AccessCount gamma = naive_gamma(ts, k, l);
        const util::AccessCount per_job = ts[l].md + gamma;
        // Eq. (6) with the jitter widening.
        std::int64_t n_full =
            util::floor_div(t + response[l] + ts[l].jitter -
                                per_job * platform.d_mem,
                            ts[l].period);
        n_full = std::max<std::int64_t>(n_full, 0);
        // Eq. (18).
        const util::AccessCount rho =
            n_full <= 1 ? util::AccessCount{0}
                        : (n_full - 1) * naive_cpro_overlap(ts, l, k);
        const util::AccessCount w_full =
            std::min(n_full * ts[l].md, md_hat(ts[l], n_full) + rho) +
            n_full * gamma;
        // Eq. (5).
        const util::Cycles leftover = t + response[l] + ts[l].jitter -
                                      per_job * platform.d_mem -
                                      n_full * ts[l].period;
        const util::AccessCount w_cout =
            std::clamp(util::accesses_covering(leftover, platform.d_mem),
                       util::AccessCount{0}, per_job);
        total += w_full + w_cout;
    }
    return total;
}

TEST(Differential, BaoHatMatchesNaiveLemma2)
{
    PlatformConfig platform;
    platform.num_cores = 3;
    platform.cache_sets = 128;
    platform.d_mem = util::Cycles{10};
    AnalysisConfig config;
    config.persistence_aware = true;

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const tasks::TaskSet ts = random_set(seed, 0.3);
        const InterferenceTables tables(ts, config.crpd);
        const BusContentionAnalysis bounds(ts, platform, config, tables);
        // Frozen response estimates: the isolated demands.
        std::vector<util::Cycles> response;
        for (const tasks::Task& task : ts.tasks()) {
            response.push_back(task.isolated_demand(platform.d_mem));
        }
        for (std::size_t k = 0; k < ts.size(); ++k) {
            for (std::size_t core = 0; core < ts.num_cores(); ++core) {
                if (core == ts[k].core) {
                    continue;
                }
                for (const util::Cycles t :
                     {util::Cycles{0}, util::Cycles{5000}, ts[k].period}) {
                    EXPECT_EQ(bounds.bao(core, k, t, response),
                              naive_bao_hat(ts, platform, core, k, t,
                                            response))
                        << "seed=" << seed << " k=" << k << " core=" << core
                        << " t=" << t;
                }
            }
        }
    }
}

TEST(Differential, BaselineBasMatchesNaiveEq1)
{
    PlatformConfig platform;
    platform.num_cores = 3;
    platform.cache_sets = 128;
    platform.d_mem = util::Cycles{10};
    AnalysisConfig config;
    config.persistence_aware = false;

    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const tasks::TaskSet ts = random_set(seed, 0.3);
        const InterferenceTables tables(ts, config.crpd);
        const BusContentionAnalysis bounds(ts, platform, config, tables);
        for (std::size_t i = 0; i < ts.size(); ++i) {
            // Eq. (1): MD_i + Σ E_j (MD_j + γ).
            const util::Cycles t = ts[i].period / 2;
            util::AccessCount expected = ts[i].md;
            for (std::size_t j = 0; j < i; ++j) {
                if (ts[j].core != ts[i].core) {
                    continue;
                }
                const std::int64_t jobs =
                    util::ceil_div(t + ts[j].jitter, ts[j].period);
                expected += jobs * (ts[j].md + naive_gamma(ts, i, j));
            }
            EXPECT_EQ(bounds.bas(i, t), expected) << "seed=" << seed;
        }
    }
}

} // namespace
} // namespace cpa::analysis
