file(REMOVE_RECURSE
  "CMakeFiles/taskset_io_test.dir/cli/taskset_io_test.cpp.o"
  "CMakeFiles/taskset_io_test.dir/cli/taskset_io_test.cpp.o.d"
  "taskset_io_test"
  "taskset_io_test.pdb"
  "taskset_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskset_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
