#include "util/thread_pool.hpp"

#include <cstdlib>
#include <exception>

namespace cpa::util {

ThreadPool::ThreadPool(std::size_t jobs)
{
    const std::size_t workers = jobs <= 1 ? 0 : jobs - 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::run_slice(Batch& batch)
{
    for (;;) {
        const std::size_t index =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= batch.count) {
            return;
        }
        try {
            (*batch.body)(index);
        } catch (...) {
            batch.errors[index] = std::current_exception();
        }
        batch.completed.fetch_add(1, std::memory_order_release);
    }
}

void ThreadPool::worker_loop()
{
    std::uint64_t seen_seq = 0;
    for (;;) {
        Batch* batch = nullptr;
        {
            MutexLock lock(mutex_);
            // Plain wait loop instead of the predicate overload: clang's
            // thread-safety analysis does not propagate the held lock into
            // a predicate lambda, and cv_.wait(mutex_) itself is analyzed
            // as a system-header call.
            while (!stop_ && (batch_ == nullptr || batch_seq_ == seen_seq)) {
                cv_.wait(mutex_);
            }
            if (stop_) {
                return;
            }
            seen_seq = batch_seq_;
            batch = batch_;
            ++busy_workers_;
        }
        run_slice(*batch);
        {
            MutexLock lock(mutex_);
            --busy_workers_;
        }
        // Wakes the orchestrator waiting for quiescence (and is harmless for
        // sibling workers, which re-check their predicate and sleep again).
        cv_.notify_all();
    }
}

void ThreadPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t)>& body)
{
    if (count == 0) {
        return;
    }
    if (workers_.empty() || count == 1) {
        // Serial reference path: the parallel path must be byte-identical
        // to this plain loop (the determinism test suite pins it).
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }

    Batch batch;
    batch.body = &body;
    batch.count = count;
    batch.errors.assign(count, nullptr);
    {
        MutexLock lock(mutex_);
        batch_ = &batch;
        ++batch_seq_;
    }
    cv_.notify_all();
    run_slice(batch);
    {
        MutexLock lock(mutex_);
        // `completed == count` means every body ran; `busy_workers_ == 0`
        // means no worker still holds a pointer into the stack Batch.
        while (busy_workers_ != 0 ||
               batch.completed.load(std::memory_order_acquire) != count) {
            cv_.wait(mutex_);
        }
        batch_ = nullptr;
    }
    for (const std::exception_ptr& error : batch.errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
}

std::size_t resolve_jobs(std::size_t requested)
{
    if (requested >= 1) {
        return requested;
    }
    if (const char* raw = std::getenv("CPA_JOBS"); raw != nullptr) {
        const long value = std::strtol(raw, nullptr, 10);
        if (value > 0) {
            return static_cast<std::size_t>(value);
        }
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

} // namespace cpa::util
