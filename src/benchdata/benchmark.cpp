#include "benchdata/benchmark.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cpa::benchdata {

using namespace util::literals;
using util::AccessCount;

namespace {

// Demand-model constants (DESIGN.md §3.2): κ scales how strongly the
// conflict share drives recurring misses; the floor keeps MD positive even
// when a large cache removes every conflict.
constexpr double kConflictSlope = 1.5;
constexpr double kMdFloorFraction = 0.1;

std::vector<BenchmarkSpec> make_published()
{
    // Table I of the paper, verbatim (PD/MD/MDʳ in cycles at 256 sets).
    // Region layouts are calibrated so the derived ECB/PCB counts at 256
    // sets equal the printed |ECB|/|PCB| (see header comment).
    std::vector<BenchmarkSpec> specs;
    specs.push_back({"lcdnum", 984_cy, 1440_cy, 192_cy, {{0, 20}}, 20.0 / 20.0, true});
    specs.push_back(
        {"bsort100", 710289_cy, 89893_cy, 88907_cy, {{0, 20}}, 18.0 / 20.0, true});
    specs.push_back(
        {"ludcmp", 27036_cy, 8607_cy, 3545_cy, {{0, 98}}, 98.0 / 98.0, true});
    // fdct: 106 occupied sets of which 22 single-occupancy -> two regions,
    // the second one cache-aliasing onto sets [22, 106).
    specs.push_back(
        {"fdct", 6550_cy, 6017_cy, 819_cy, {{0, 106}, {278, 84}}, 58.0 / 106.0, true});
    // nsichneu: code far larger than the cache; 1374 blocks -> every set
    // multiply occupied at 256 sets (PCB = 0).
    specs.push_back(
        {"nsichneu", 22009_cy, 147200_cy, 147200_cy, {{0, 1374}}, 1.0, true});
    // statemate: 476 blocks -> sets [0, 220) doubly occupied, [220, 256)
    // single -> PCB = 36.
    specs.push_back({"statemate", 10586_cy, 18257_cy, 3891_cy, {{0, 476}}, 1.0, true});
    return specs;
}

std::vector<BenchmarkSpec> make_full()
{
    // Published rows first, then calibrated rows for the rest of the suite
    // (the paper's full table is in its ref [4]; these values are synthetic,
    // patterned on the suite's code sizes and loop structure).
    std::vector<BenchmarkSpec> specs = make_published();
    specs.push_back({"bs", 446_cy, 1280_cy, 320_cy, {{0, 16}}, 12.0 / 16.0, false});
    specs.push_back({"crc", 36159_cy, 4800_cy, 1440_cy, {{0, 42}}, 38.0 / 42.0, false});
    specs.push_back(
        {"expint", 8058_cy, 2240_cy, 640_cy, {{0, 24}}, 20.0 / 24.0, false});
    specs.push_back({"fibcall", 442_cy, 960_cy, 288_cy, {{0, 12}}, 8.0 / 12.0, false});
    specs.push_back(
        {"insertsort", 2218_cy, 1120_cy, 336_cy, {{0, 14}}, 12.0 / 14.0, false});
    specs.push_back({"jfdctint", 5388_cy, 5440_cy, 1630_cy, {{0, 96}, {284, 68}},
                     64.0 / 96.0, false});
    specs.push_back(
        {"matmult", 163420_cy, 12800_cy, 11200_cy, {{0, 48}}, 44.0 / 48.0, false});
    specs.push_back({"minver", 12758_cy, 7040_cy, 2880_cy, {{0, 124}, {342, 38}},
                     102.0 / 124.0, false});
    specs.push_back({"ns", 10436_cy, 2560_cy, 768_cy, {{0, 26}}, 22.0 / 26.0, false});
    specs.push_back(
        {"qurt", 5535_cy, 3360_cy, 1010_cy, {{0, 52}, {296, 12}}, 44.0 / 52.0, false});
    specs.push_back({"sqrt", 1105_cy, 1600_cy, 480_cy, {{0, 18}}, 14.0 / 18.0, false});
    specs.push_back(
        {"ud", 15627_cy, 6080_cy, 2400_cy, {{0, 88}, {328, 16}}, 80.0 / 88.0, false});
    specs.push_back({"adpcm", 118090_cy, 26400_cy, 8000_cy, {{0, 200}, {426, 64}},
                     180.0 / 234.0, false});
    specs.push_back({"cnt", 4087_cy, 2200_cy, 660_cy, {{0, 20}}, 16.0 / 20.0, false});
    specs.push_back(
        {"compress", 27403_cy, 9500_cy, 2850_cy, {{0, 95}}, 82.0 / 95.0, false});
    specs.push_back(
        {"cover", 8794_cy, 14000_cy, 11000_cy, {{0, 140}}, 126.0 / 140.0, false});
    specs.push_back({"duff", 2118_cy, 3100_cy, 930_cy, {{0, 30}}, 24.0 / 30.0, false});
    specs.push_back(
        {"edn", 85399_cy, 15500_cy, 4650_cy, {{0, 150}}, 132.0 / 150.0, false});
    specs.push_back({"fac", 301_cy, 800_cy, 240_cy, {{0, 8}}, 6.0 / 8.0, false});
    specs.push_back({"fir", 6247_cy, 2100_cy, 630_cy, {{0, 20}}, 16.0 / 20.0, false});
    specs.push_back(
        {"janne_complex", 553_cy, 1100_cy, 330_cy, {{0, 10}}, 8.0 / 10.0, false});
    specs.push_back(
        {"ndes", 55003_cy, 16000_cy, 4800_cy, {{0, 150}}, 138.0 / 150.0, false});
    specs.push_back({"prime", 4198_cy, 1000_cy, 300_cy, {{0, 10}}, 8.0 / 10.0, false});
    specs.push_back(
        {"qsort_exam", 19007_cy, 6400_cy, 1920_cy, {{0, 62}}, 54.0 / 62.0, false});
    specs.push_back(
        {"select", 4912_cy, 6100_cy, 1830_cy, {{0, 60}}, 52.0 / 60.0, false});
    return specs;
}

struct Occupancy {
    std::vector<std::size_t> per_set;
    std::size_t ecb = 0;          // occupied sets
    std::size_t pcb = 0;          // single-occupancy sets
    std::size_t conflicting = 0;  // blocks in multiply occupied sets (X)
    std::size_t total_blocks = 0; // B
};

Occupancy compute_occupancy(const BenchmarkSpec& spec, std::size_t cache_sets)
{
    Occupancy occ;
    occ.per_set.assign(cache_sets, 0);
    for (const Region& region : spec.regions) {
        for (std::size_t b = 0; b < region.length; ++b) {
            occ.per_set[(region.base_block + b) % cache_sets] += 1;
        }
        occ.total_blocks += region.length;
    }
    for (const std::size_t count : occ.per_set) {
        if (count > 0) {
            occ.ecb += 1;
        }
        if (count == 1) {
            occ.pcb += 1;
        }
        if (count >= 2) {
            occ.conflicting += count;
        }
    }
    return occ;
}

AccessCount to_access_count(Cycles md_cycles)
{
    return util::accesses_from_md_cycles(md_cycles);
}

} // namespace

const std::vector<BenchmarkSpec>& published_benchmarks()
{
    static const std::vector<BenchmarkSpec> specs = make_published();
    return specs;
}

const std::vector<BenchmarkSpec>& full_benchmark_table()
{
    static const std::vector<BenchmarkSpec> specs = make_full();
    return specs;
}

BenchmarkParams derive_params(const BenchmarkSpec& spec,
                              std::size_t cache_sets)
{
    if (cache_sets == 0) {
        throw std::invalid_argument("derive_params: cache_sets must be > 0");
    }
    if (spec.regions.empty()) {
        throw std::invalid_argument("derive_params: benchmark has no code");
    }

    const Occupancy occ = compute_occupancy(spec, cache_sets);
    const Occupancy ref = compute_occupancy(spec, kReferenceCacheSets);

    const double blocks = static_cast<double>(occ.total_blocks);
    const double q = static_cast<double>(occ.conflicting) / blocks;
    const double q_ref = static_cast<double>(ref.conflicting) / blocks;

    const AccessCount md_ref = to_access_count(spec.md_cycles);
    const AccessCount mdr_ref =
        std::min(md_ref, to_access_count(spec.mdr_cycles));

    // Monotone demand model: recurring misses scale with the conflict share
    // q(N) relative to the reference geometry.
    const auto md_floor = std::max<std::int64_t>(
        1, std::llround(kMdFloorFraction * util::to_double(md_ref)));
    const std::int64_t md_scaled = std::llround(
        util::to_double(md_ref) * (1.0 + kConflictSlope * (q - q_ref)));
    const AccessCount md{std::max(md_floor, md_scaled)};

    // Residual demand: the residual share shrinks as the persistent share of
    // the footprint grows (more PCBs -> more of the demand is one-off).
    const double residual_ratio =
        md_ref > AccessCount{0}
            ? util::to_double(mdr_ref) / util::to_double(md_ref)
            : 0.0;
    const double pshare =
        occ.ecb > 0
            ? static_cast<double>(occ.pcb) / static_cast<double>(occ.ecb)
            : 0.0;
    const double pshare_ref =
        ref.ecb > 0
            ? static_cast<double>(ref.pcb) / static_cast<double>(ref.ecb)
            : 0.0;
    const AccessCount mdr = std::clamp(
        AccessCount{std::llround(util::to_double(md) * residual_ratio *
                                 (1.0 - (pshare - pshare_ref)))},
        AccessCount{0}, md);

    BenchmarkParams params;
    params.name = spec.name;
    params.pd = spec.pd;
    params.md = md;
    params.md_residual = mdr;
    params.ecb_count = occ.ecb;
    params.pcb_count = occ.pcb;
    params.ucb_count = std::min(
        occ.ecb, static_cast<std::size_t>(std::llround(
                     spec.ucb_fraction * static_cast<double>(occ.ecb))));
    params.occupancy = occ.per_set;
    return params;
}

FootprintMasks place_footprint(const BenchmarkParams& params,
                               std::size_t cache_sets, std::size_t offset)
{
    if (params.occupancy.size() != cache_sets) {
        throw std::invalid_argument(
            "place_footprint: params derived for a different cache size");
    }
    FootprintMasks masks{SetMask(cache_sets), SetMask(cache_sets),
                         SetMask(cache_sets)};
    std::size_t ucb_placed = 0;
    for (std::size_t s = 0; s < cache_sets; ++s) {
        if (params.occupancy[s] == 0) {
            continue;
        }
        const std::size_t rotated = (s + offset) % cache_sets;
        masks.ecb.insert(rotated);
        if (params.occupancy[s] == 1) {
            masks.pcb.insert(rotated);
        }
        if (ucb_placed < params.ucb_count) {
            masks.ucb.insert(rotated);
            ++ucb_placed;
        }
    }
    return masks;
}

} // namespace cpa::benchdata
