// Clang thread-safety annotations (-Wthread-safety) behind a CPA_TS() macro
// that expands to nothing on compilers without the attribute, plus a Mutex /
// MutexLock pair the analysis understands. libstdc++'s std::mutex carries no
// capability attributes, so classes with lock-guarded state wrap one in
// util::Mutex and annotate members with CPA_GUARDED_BY(mutex_); clang then
// statically rejects any access outside a MutexLock scope (or a method
// annotated CPA_REQUIRES(mutex_)). The werror/CI builds compile with
// -Wthread-safety -Werror, so a locking-discipline violation is a build
// break, not a data race waiting for the parallel sweep.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CPA_TS(x) __attribute__((x))
#endif
#endif
#ifndef CPA_TS
#define CPA_TS(x)
#endif

#define CPA_CAPABILITY(name) CPA_TS(capability(name))
#define CPA_SCOPED_CAPABILITY CPA_TS(scoped_lockable)
#define CPA_GUARDED_BY(x) CPA_TS(guarded_by(x))
#define CPA_REQUIRES(...) CPA_TS(requires_capability(__VA_ARGS__))
#define CPA_ACQUIRE(...) CPA_TS(acquire_capability(__VA_ARGS__))
#define CPA_RELEASE(...) CPA_TS(release_capability(__VA_ARGS__))
#define CPA_EXCLUDES(...) CPA_TS(locks_excluded(__VA_ARGS__))
#define CPA_NO_THREAD_SAFETY_ANALYSIS CPA_TS(no_thread_safety_analysis)

namespace cpa::util {

// std::mutex annotated as a thread-safety capability.
class CPA_CAPABILITY("mutex") Mutex {
public:
    void lock() CPA_ACQUIRE() { mutex_.lock(); }
    void unlock() CPA_RELEASE() { mutex_.unlock(); }

private:
    std::mutex mutex_;
};

// RAII lock whose scope the analysis tracks (std::lock_guard over an
// annotated mutex would not be).
class CPA_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) CPA_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() CPA_RELEASE() { mutex_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

} // namespace cpa::util
