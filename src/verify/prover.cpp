#include "verify/prover.hpp"

#include "obs/obs.hpp"
#include "obs/parallel.hpp"
#include "util/thread_pool.hpp"
#include "verify/abstract.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace cpa::verify {

const char* to_string(Verdict verdict)
{
    switch (verdict) {
    case Verdict::kProved:
        return "PROVED";
    case Verdict::kRefuted:
        return "REFUTED";
    case Verdict::kUndecided:
        return "UNDECIDED";
    }
    return "UNDECIDED";
}

std::string Witness::describe() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < kDimCount; ++i) {
        if (i > 0) {
            out << ' ';
        }
        out << ParamBox::name(static_cast<Dim>(i)) << '=' << point[i];
    }
    return out.str();
}

std::size_t VerifyReport::proved() const
{
    return static_cast<std::size_t>(std::count_if(
        properties.begin(), properties.end(), [](const PropertyReport& p) {
            return p.verdict == Verdict::kProved;
        }));
}

std::size_t VerifyReport::refuted() const
{
    return static_cast<std::size_t>(std::count_if(
        properties.begin(), properties.end(), [](const PropertyReport& p) {
            return p.verdict == Verdict::kRefuted;
        }));
}

std::size_t VerifyReport::undecided() const
{
    return static_cast<std::size_t>(std::count_if(
        properties.begin(), properties.end(), [](const PropertyReport& p) {
            return p.verdict == Verdict::kUndecided;
        }));
}

namespace {

// Beyond the three root samples, witness hunting in inconclusive sub-boxes
// is capped so a degenerate box cannot turn the prover into an exhaustive
// concrete sweep.
constexpr std::size_t kMaxWitnessSamples = 8;

struct UnitResult {
    std::size_t nodes = 0;
    std::size_t proved_boxes = 0;
    std::size_t undecided_boxes = 0;
    std::size_t samples = 0;
    std::size_t max_depth = 0;
    std::vector<Witness> witnesses;
    bool budget_exhausted = false;
    bool model_disagreement = false; // margin said false, samples disagreed
};

[[nodiscard]] std::unique_ptr<check::AnalysisOracle>
make_oracle(const ProverOptions& options, const Scenario& scenario)
{
    if (options.oracle_factory) {
        return options.oracle_factory(scenario);
    }
    return std::make_unique<check::AnalysisOracle>(scenario.task_set,
                                                   scenario.platform);
}

// Replays `point` through the real checker; a violation naming this
// property becomes a witness (replayable by construction — the witness is
// the checker input).
bool sample_point(const ProverOptions& options, const Property& property,
                  const Point& point, UnitResult& result)
{
    const Scenario scenario = make_scenario(point);
    const auto oracle = make_oracle(options, scenario);
    check::CheckOptions check_options;
    check_options.check_simulation =
        property.name == "sim.response_soundness";
    check_options.engine = options.engine;
    const check::CheckResult checked =
        check::check_task_set(*oracle, check_options);
    ++result.samples;
    CPA_COUNT("verify.samples");
    for (const check::Violation& violation : checked.violations) {
        if (violation.invariant == property.name) {
            result.witnesses.push_back(Witness{std::string(property.name),
                                               point, violation.detail});
            return true;
        }
    }
    return false;
}

void run_unit(const ProverOptions& options, const Property& property,
              std::int64_t cores, UnitResult& result)
{
    CPA_PROFILE_SPAN_ARG("verify.unit", "cores", cores);
    ParamBox root = options.box;
    root[Dim::kCores] = ICount::point(cores);

    // Root cross-check: even a box the margin rule discharges immediately
    // gets its corners and midpoint replayed through the implementation.
    std::vector<Point> root_points = {root.lo_corner(), root.midpoint(),
                                      root.hi_corner()};
    root_points.erase(std::unique(root_points.begin(), root_points.end()),
                      root_points.end());
    for (const Point& point : root_points) {
        sample_point(options, property, point, result);
    }

    if (!property.bisectable || property.margin == nullptr) {
        // No interval rule: the whole box stays an open obligation.
        result.undecided_boxes = 1;
        return;
    }

    std::size_t extra_samples = 0;
    const auto hunt_witness = [&](const ParamBox& box) {
        if (extra_samples >= kMaxWitnessSamples) {
            return false;
        }
        ++extra_samples;
        return sample_point(options, property, box.midpoint(), result);
    };

    struct Node {
        ParamBox box;
        std::size_t depth;
    };
    std::vector<Node> stack;
    stack.push_back(Node{root, 0});

    while (!stack.empty()) {
        if (result.nodes >= options.max_nodes) {
            // Unexpanded subtrees are open obligations, never dropped.
            result.undecided_boxes += stack.size();
            result.budget_exhausted = true;
            break;
        }
        const Node node = std::move(stack.back());
        stack.pop_back();
        ++result.nodes;
        CPA_COUNT("verify.nodes");
        result.max_depth = std::max(result.max_depth, node.depth);

        const AbstractScenario abstract = make_abstract(node.box, cores);
        const std::optional<ICount> margin = property.margin(abstract);
        if (margin && margin->lo >= 0) {
            ++result.proved_boxes;
            CPA_HISTOGRAM("verify.proof_depth",
                          static_cast<std::int64_t>(node.depth));
            continue;
        }
        if (margin && margin->hi < 0) {
            // The model claims a violation everywhere here; find a concrete
            // witness. Failure to find one is a model/implementation
            // disagreement worth surfacing, not a proof.
            if (!hunt_witness(node.box)) {
                ++result.undecided_boxes;
                result.model_disagreement = true;
            }
            continue;
        }
        if (node.depth >= options.max_depth) {
            ++result.undecided_boxes;
            result.budget_exhausted = true;
            hunt_witness(node.box);
            continue;
        }
        const auto split = node.box.bisect(property.used);
        if (!split) {
            // Every used dimension is already a point and the margin still
            // straddles zero: the rule cannot decide this configuration.
            ++result.undecided_boxes;
            hunt_witness(node.box);
            continue;
        }
        // Right pushed first so the left half is explored first (a fixed
        // DFS order keeps witness lists identical across runs).
        stack.push_back(Node{split->second, node.depth + 1});
        stack.push_back(Node{split->first, node.depth + 1});
    }
}

} // namespace

VerifyReport run_prover(const ProverOptions& options)
{
    CPA_SCOPED_TIMER("verify.prover");
    CPA_PROFILE_SPAN("verify.prover");
    options.box.validate();

    const std::vector<Property>& catalog = property_catalog();
    const ICount cores_range = options.box[Dim::kCores];
    const std::size_t cores_count =
        static_cast<std::size_t>(cores_range.hi - cores_range.lo + 1);
    const std::size_t unit_count = catalog.size() * cores_count;

    std::vector<UnitResult> units(unit_count);
    util::ThreadPool pool(std::max<std::size_t>(options.jobs, 1));
    obs::run_indexed_trials(pool, unit_count, [&](std::size_t index) {
        const Property& property = catalog[index / cores_count];
        const std::int64_t cores =
            cores_range.lo + static_cast<std::int64_t>(index % cores_count);
        run_unit(options, property, cores, units[index]);
    });

    VerifyReport report;
    report.properties.reserve(catalog.size());
    for (std::size_t p = 0; p < catalog.size(); ++p) {
        const Property& property = catalog[p];
        PropertyReport entry;
        entry.name = std::string(property.name);
        entry.note = std::string(property.note);
        bool budget_exhausted = false;
        bool model_disagreement = false;
        for (std::size_t c = 0; c < cores_count; ++c) {
            const UnitResult& unit = units[p * cores_count + c];
            entry.nodes += unit.nodes;
            entry.proved_boxes += unit.proved_boxes;
            entry.undecided_boxes += unit.undecided_boxes;
            entry.samples += unit.samples;
            entry.max_depth = std::max(entry.max_depth, unit.max_depth);
            entry.witnesses.insert(entry.witnesses.end(),
                                   unit.witnesses.begin(),
                                   unit.witnesses.end());
            budget_exhausted = budget_exhausted || unit.budget_exhausted;
            model_disagreement =
                model_disagreement || unit.model_disagreement;
        }
        if (!entry.witnesses.empty()) {
            entry.verdict = Verdict::kRefuted;
        } else if (property.bisectable && entry.undecided_boxes == 0) {
            entry.verdict = Verdict::kProved;
        } else {
            entry.verdict = Verdict::kUndecided;
        }
        const auto append_note = [&](std::string_view text) {
            if (!entry.note.empty()) {
                entry.note += "; ";
            }
            entry.note += text;
        };
        if (budget_exhausted) {
            append_note("depth/node budget exhausted");
        }
        if (model_disagreement) {
            append_note("abstract refutation without a concrete witness");
        }
        report.properties.push_back(std::move(entry));
    }
    return report;
}

} // namespace cpa::verify
