#include "sim/arbiter.hpp"

#include <stdexcept>

namespace cpa::sim {

using analysis::BusPolicy;
using util::Cycles;
using util::MutexLock;
using util::to_index;

BusArbiter::BusArbiter(BusPolicy policy, std::size_t num_cores, Cycles d_mem,
                       std::int64_t slot_size)
    : policy_(policy), num_cores_(num_cores), d_mem_(d_mem),
      slot_size_(slot_size), pending_(num_cores)
{
    if (num_cores == 0 || d_mem <= Cycles{0} || slot_size <= 0) {
        throw std::invalid_argument("BusArbiter: bad configuration");
    }
}

Cycles BusArbiter::tdma_start(CoreId core, Cycles from) const
{
    const auto s = static_cast<std::uint64_t>(slot_size_);
    const auto m = static_cast<std::uint64_t>(num_cores_);
    // Slot index of `from` (same-dimension ratio, dimensionless), walked
    // forward until the TDMA schedule hands the slot to `core`.
    std::uint64_t k = static_cast<std::uint64_t>(from / d_mem_);
    for (std::uint64_t step = 0; step <= m * s; ++step, ++k) {
        if ((k / s) % m == to_index(core)) {
            return std::max(from, d_mem_ * static_cast<std::int64_t>(k));
        }
    }
    throw std::logic_error("BusArbiter::tdma_start: no slot found");
}

std::optional<Cycles> BusArbiter::request(CoreId core, TaskId priority,
                                          Cycles now)
{
    if (to_index(core) >= num_cores_) {
        throw std::out_of_range("BusArbiter::request: bad core");
    }
    MutexLock lock(mutex_);
    if (pending_[to_index(core)].has_value()) {
        throw std::logic_error(
            "BusArbiter::request: core already has an outstanding request");
    }
    switch (policy_) {
    case BusPolicy::kPerfect:
        return now + d_mem_;
    case BusPolicy::kTdma:
        return tdma_start(core, now) + d_mem_;
    case BusPolicy::kFixedPriority:
    case BusPolicy::kRoundRobin:
        pending_[to_index(core)] = priority;
        if (busy_) {
            return std::nullopt;
        }
        // Idle bus: this request wins arbitration immediately (for RR it
        // either continues the current turn or starts a new one).
        if (const auto grant = pick_next(); grant.has_value()) {
            pending_[to_index(*grant)].reset();
            busy_ = true;
            if (*grant == core) {
                return now + d_mem_;
            }
            throw std::logic_error(
                "BusArbiter::request: idle-bus grant must pick the requester");
        }
        return std::nullopt;
    }
    return std::nullopt;
}

std::optional<CoreId> BusArbiter::pick_next()
{
    if (policy_ == BusPolicy::kFixedPriority) {
        std::optional<CoreId> best;
        for (std::size_t c = 0; c < num_cores_; ++c) {
            if (pending_[c].has_value() &&
                (!best.has_value() ||
                 *pending_[c] < *pending_[to_index(*best)])) {
                best = CoreId{c};
            }
        }
        return best;
    }
    // Round-Robin: continue the current core's turn while it has pending
    // requests and slots left, else advance to the next pending core.
    if (pending_[rr_core_].has_value() && rr_used_ < slot_size_) {
        ++rr_used_;
        return CoreId{rr_core_};
    }
    for (std::size_t step = 1; step <= num_cores_; ++step) {
        const std::size_t c = (rr_core_ + step) % num_cores_;
        if (pending_[c].has_value()) {
            rr_core_ = c;
            rr_used_ = 1;
            return CoreId{c};
        }
    }
    return std::nullopt;
}

void BusArbiter::promote(CoreId core, TaskId priority)
{
    if (to_index(core) >= num_cores_) {
        throw std::out_of_range("BusArbiter::promote: bad core");
    }
    MutexLock lock(mutex_);
    if (pending_[to_index(core)].has_value() &&
        priority < *pending_[to_index(core)]) {
        pending_[to_index(core)] = priority;
    }
}

std::optional<std::pair<CoreId, Cycles>> BusArbiter::complete(CoreId /*core*/,
                                                              Cycles now)
{
    if (policy_ == BusPolicy::kPerfect || policy_ == BusPolicy::kTdma) {
        return std::nullopt;
    }
    MutexLock lock(mutex_);
    busy_ = false;
    if (const auto grant = pick_next(); grant.has_value()) {
        pending_[to_index(*grant)].reset();
        busy_ = true;
        return std::make_pair(*grant, now + d_mem_);
    }
    return std::nullopt;
}

} // namespace cpa::sim
