#include "analysis/report.hpp"

#include "analysis/bus_bounds.hpp"
#include "util/math.hpp"

namespace cpa::analysis {

std::vector<ResponseBreakdown>
explain_responses(const tasks::TaskSet& ts, const PlatformConfig& platform,
                  const AnalysisConfig& config,
                  const InterferenceTables& tables)
{
    const WcrtResult wcrt = compute_wcrt(ts, platform, config, tables);
    const BusContentionAnalysis bounds(ts, platform, config, tables);

    std::vector<ResponseBreakdown> breakdowns(ts.size());
    const std::size_t analyzable =
        wcrt.schedulable ? ts.size() : util::to_index(wcrt.failed_task) + 1;

    for (std::size_t i = 0; i < analyzable && i < ts.size(); ++i) {
        const tasks::Task& task = ts[i];
        const Cycles r = wcrt.response[i];
        ResponseBreakdown& b = breakdowns[i];
        b.analyzed = true;
        b.response = r;
        b.meets_deadline = r <= task.effective_deadline();
        b.cpu_self = task.pd;
        for (const std::size_t j : ts.tasks_on_core(task.core)) {
            if (j >= i) {
                break;
            }
            b.cpu_preemption += util::ceil_div(r, ts[j].period) * ts[j].pd;
        }
        b.bas_accesses = bounds.bas(i, r);
        b.bat_accesses = bounds.bat(i, r, wcrt.response);
        b.bus_same_core = b.bas_accesses * platform.d_mem;
        b.bus_cross_core =
            (b.bat_accesses - b.bas_accesses) * platform.d_mem;
    }
    return breakdowns;
}

std::vector<ResponseBreakdown>
explain_responses(const tasks::TaskSet& ts, const PlatformConfig& platform,
                  const AnalysisConfig& config)
{
    const InterferenceTables tables(ts, config.crpd);
    return explain_responses(ts, platform, config, tables);
}

} // namespace cpa::analysis
