// Unit tests for the log2-bucketed latency histogram (obs/metrics.hpp):
// bucket mapping, percentile estimation and its ordering guarantee, merge
// commutativity (the property the deterministic parallel flush relies on),
// and concurrent recording.
#include "obs/metrics.hpp"

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace cpa::obs {
namespace {

class HistogramTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        MetricsRegistry::global().reset();
        set_metrics_enabled(true);
    }
    void TearDown() override
    {
        set_metrics_enabled(false);
        MetricsRegistry::global().reset();
    }
};

TEST_F(HistogramTest, BucketMappingIsLogTwo)
{
    EXPECT_EQ(histogram_bucket(-5), 0u);
    EXPECT_EQ(histogram_bucket(0), 0u);
    EXPECT_EQ(histogram_bucket(1), 1u);
    EXPECT_EQ(histogram_bucket(2), 2u);
    EXPECT_EQ(histogram_bucket(3), 2u);
    EXPECT_EQ(histogram_bucket(4), 3u);
    EXPECT_EQ(histogram_bucket(7), 3u);
    EXPECT_EQ(histogram_bucket(8), 4u);
    EXPECT_EQ(histogram_bucket(INT64_MAX), 63u);
}

TEST_F(HistogramTest, EmptyHistogramStatIsAllZero)
{
    Histogram histogram;
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, 0);
    EXPECT_EQ(stat.sum, 0);
    EXPECT_EQ(stat.min, 0);
    EXPECT_EQ(stat.max, 0);
    EXPECT_EQ(stat.p50, 0);
    EXPECT_EQ(stat.p99, 0);
}

TEST_F(HistogramTest, SingleSampleCollapsesEveryStatistic)
{
    Histogram histogram;
    histogram.record(1234);
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, 1);
    EXPECT_EQ(stat.sum, 1234);
    EXPECT_EQ(stat.min, 1234);
    EXPECT_EQ(stat.max, 1234);
    // One sample: every percentile is clamped into [min, max] = {1234}.
    EXPECT_EQ(stat.p50, 1234);
    EXPECT_EQ(stat.p90, 1234);
    EXPECT_EQ(stat.p99, 1234);
}

TEST_F(HistogramTest, PercentilesAreOrderedAndBracketedByExtrema)
{
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<std::int64_t> dist(0, 1'000'000);
    Histogram histogram;
    std::int64_t lo = INT64_MAX;
    std::int64_t hi = INT64_MIN;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t value = dist(rng);
        histogram.record(value);
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.min, lo);
    EXPECT_EQ(stat.max, hi);
    EXPECT_LE(stat.min, stat.p50);
    EXPECT_LE(stat.p50, stat.p90);
    EXPECT_LE(stat.p90, stat.p99);
    EXPECT_LE(stat.p99, stat.max);
}

TEST_F(HistogramTest, PercentileIsAnUpperBoundOfItsBucket)
{
    // 90 samples at 10 (bucket [8,15]) and 10 at 1000 (bucket [512,1023]):
    // p50 must resolve inside the low bucket, p99 inside the high one.
    Histogram histogram;
    for (int i = 0; i < 90; ++i) {
        histogram.record(10);
    }
    for (int i = 0; i < 10; ++i) {
        histogram.record(1000);
    }
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.p50, 15);   // bucket upper bound 2^4 - 1
    EXPECT_EQ(stat.p90, 15);   // rank 90 still lands in the low bucket
    EXPECT_EQ(stat.p99, 1000); // bucket bound 1023 clamped to max
}

TEST_F(HistogramTest, NegativeSamplesClampIntoBucketZero)
{
    Histogram histogram;
    histogram.record(-50);
    histogram.record(3);
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, 2);
    EXPECT_EQ(stat.min, -50);
    EXPECT_EQ(stat.max, 3);
    EXPECT_GE(stat.p50, stat.min);
    EXPECT_LE(stat.p99, stat.max);
}

TEST_F(HistogramTest, MergeIsCommutative)
{
    HistogramData a;
    HistogramData b;
    for (std::int64_t value : {5, 80, 80, 3000}) {
        a.record(value);
    }
    for (std::int64_t value : {1, 9, 512}) {
        b.record(value);
    }

    Histogram ab;
    ab.merge(a);
    ab.merge(b);
    Histogram ba;
    ba.merge(b);
    ba.merge(a);

    const HistogramStat x = ab.stat();
    const HistogramStat y = ba.stat();
    EXPECT_EQ(x.count, y.count);
    EXPECT_EQ(x.sum, y.sum);
    EXPECT_EQ(x.min, y.min);
    EXPECT_EQ(x.max, y.max);
    EXPECT_EQ(x.p50, y.p50);
    EXPECT_EQ(x.p90, y.p90);
    EXPECT_EQ(x.p99, y.p99);
    EXPECT_EQ(x.count, 7);
    EXPECT_EQ(x.min, 1);
    EXPECT_EQ(x.max, 3000);
}

TEST_F(HistogramTest, MergingEmptyDataIsANoOp)
{
    Histogram histogram;
    histogram.record(42);
    histogram.merge(HistogramData{});
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, 1);
    EXPECT_EQ(stat.min, 42);
    EXPECT_EQ(stat.max, 42);
}

TEST_F(HistogramTest, ResetClearsButKeepsTheReferenceUsable)
{
    Histogram& histogram =
        MetricsRegistry::global().histogram("test.histogram");
    histogram.record(100);
    MetricsRegistry::global().reset();
    EXPECT_EQ(histogram.stat().count, 0);
    histogram.record(7);
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, 1);
    EXPECT_EQ(stat.min, 7);
}

TEST_F(HistogramTest, SnapshotCarriesRegisteredHistograms)
{
    MetricsRegistry::global().histogram("test.snap").record(64);
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.histograms.contains("test.snap"));
    EXPECT_EQ(snap.histograms.at("test.snap").count, 1);
    EXPECT_EQ(snap.histograms.at("test.snap").max, 64);
}

TEST_F(HistogramTest, BufferStagesAndFlushesToGlobal)
{
    MetricsBuffer buffer;
    buffer.record_histogram("test.buffered", 10);
    buffer.record_histogram("test.buffered", 300);
    // Nothing visible globally until the flush.
    EXPECT_FALSE(MetricsRegistry::global()
                     .snapshot()
                     .histograms.contains("test.buffered"));
    buffer.flush_to_global();
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snap.histograms.contains("test.buffered"));
    EXPECT_EQ(snap.histograms.at("test.buffered").count, 2);
    EXPECT_EQ(snap.histograms.at("test.buffered").min, 10);
    EXPECT_EQ(snap.histograms.at("test.buffered").max, 300);
}

TEST_F(HistogramTest, ConcurrentRecordLosesNoSamples)
{
    Histogram& histogram =
        MetricsRegistry::global().histogram("test.concurrent");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10'000;
    util::ThreadPool pool(kThreads);
    pool.parallel_for_indexed(kThreads, [&](std::size_t thread) {
        for (int i = 0; i < kPerThread; ++i) {
            histogram.record(static_cast<std::int64_t>(thread) * kPerThread
                             + i + 1);
        }
    });
    const HistogramStat stat = histogram.stat();
    EXPECT_EQ(stat.count, kThreads * kPerThread);
    EXPECT_EQ(stat.min, 1);
    EXPECT_EQ(stat.max, kThreads * kPerThread);
    EXPECT_LE(stat.p50, stat.p99);
}

} // namespace
} // namespace cpa::obs
